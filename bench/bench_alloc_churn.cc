/**
 * @file
 * Allocation churn in the training hot path: measures the steady
 * state step's components in their warm, workspace-backed form
 * against the historical by-value form, and reports heap
 * allocations per iteration as a benchmark counter (allocs_per_iter,
 * bytes_per_iter) via base::AllocGuard. A regression that
 * reintroduces steady-state churn shows up here as a nonzero
 * counter long before it costs enough wall clock to trip a
 * throughput bench.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "marlin/base/alloc_guard.hh"
#include "marlin/core/train_loop.hh"
#include "marlin/replay/gather.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

core::TrainConfig
churnConfig()
{
    core::TrainConfig config;
    config.batchSize = 64;
    config.bufferCapacity = 4096;
    config.warmupTransitions = 64;
    config.updateEvery = 10;
    config.hiddenDims = {64, 64};
    config.seed = 23;
    return config;
}

/** Attach guard-derived allocation counters to the bench row. */
void
reportAllocs(benchmark::State &state, const base::AllocGuard &guard)
{
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_iter"] =
        static_cast<double>(guard.allocations()) / iters;
    state.counters["bytes_per_iter"] =
        static_cast<double>(guard.bytes()) / iters;
}

// --- environment stepping -------------------------------------------

void
BM_EnvStepByValue(benchmark::State &state)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 7);
    environment->reset();
    const std::vector<int> actions{1, 2, 3};
    base::AllocGuard guard;
    for (auto _ : state) {
        env::StepResult result = environment->step(actions);
        benchmark::DoNotOptimize(result.rewards.data());
    }
    reportAllocs(state, guard);
}
BENCHMARK(BM_EnvStepByValue);

void
BM_EnvStepInto(benchmark::State &state)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 7);
    environment->reset();
    const std::vector<int> actions{1, 2, 3};
    env::StepResult result;
    environment->stepInto(actions, result); // Warm the scratch.
    base::AllocGuard guard;
    for (auto _ : state) {
        environment->stepInto(actions, result);
        benchmark::DoNotOptimize(result.rewards.data());
    }
    reportAllocs(state, guard);
}
BENCHMARK(BM_EnvStepInto);

// --- replay gather --------------------------------------------------

void
BM_GatherWarm(benchmark::State &state)
{
    const auto batch = static_cast<std::size_t>(state.range(0));
    replay::ReplayBuffer buffer({18, 5}, 4096);
    Rng rng(3);
    std::vector<Real> obs(18), next_obs(18), act(5);
    for (BufferIndex i = 0; i < 1024; ++i) {
        for (Real &v : obs)
            v = rng.uniform() * 2 - 1;
        for (Real &v : act)
            v = rng.uniform();
        for (Real &v : next_obs)
            v = rng.uniform() * 2 - 1;
        buffer.add(obs, act, Real(0.1), next_obs, false);
    }
    replay::UniformSampler sampler;
    replay::IndexPlan plan;
    replay::AgentBatch gathered;
    base::AllocGuard guard;
    for (auto _ : state) {
        sampler.planInto(buffer.size(), batch, rng, plan);
        replay::gatherAgentBatch(buffer, plan, gathered);
        benchmark::DoNotOptimize(gathered.obs.data());
    }
    reportAllocs(state, guard);
}
BENCHMARK(BM_GatherWarm)->Arg(64)->Arg(1024);

// --- full trainer update -------------------------------------------

void
BM_TrainerUpdateWarm(benchmark::State &state)
{
    const auto agents = static_cast<std::size_t>(state.range(0));
    auto config = churnConfig();
    auto trainer = makeTrainer(
        Algo::Maddpg, taskObsDims(Task::PredatorPrey, agents), 5,
        config, uniformFactory());
    replay::MultiAgentBuffer buffers(
        taskShapes(Task::PredatorPrey, agents),
        config.bufferCapacity);
    Rng fill_rng(99);
    fillSynthetic(buffers, 512, fill_rng);
    profile::PhaseTimer timer;
    trainer->update(buffers, timer); // Warm the workspaces.
    base::AllocGuard guard;
    for (auto _ : state) {
        const core::UpdateStats stats =
            trainer->update(buffers, timer);
        benchmark::DoNotOptimize(stats.criticLoss);
    }
    reportAllocs(state, guard);
}
BENCHMARK(BM_TrainerUpdateWarm)->Arg(3)->Arg(6);

// --- end-to-end steady-state step ----------------------------------

void
BM_TrainLoopEpisodeWarm(benchmark::State &state)
{
    // Whole episodes through TrainLoop::run, measured past the
    // warm-up regime so every step is in steady state. The loop's
    // own AllocGuard accounting (TrainResult.steadyStateAllocs)
    // feeds the counters, covering exactly the guarded region the
    // alloc.steady_state_* gauges see in production.
    auto environment = env::makeCooperativeNavigationEnv(3, 31);
    auto config = churnConfig();
    core::MaddpgTrainer trainer(
        {environment->obsDim(0), environment->obsDim(1),
         environment->obsDim(2)},
        environment->actionDim(), config, uniformFactory());
    core::TrainLoop loop(*environment, trainer, config);
    loop.run(10); // Past warm-up: later episodes are all steady.
    std::uint64_t allocs = 0, bytes = 0, steps = 0;
    std::size_t target = 10;
    for (auto _ : state) {
        target += 1;
        const core::TrainResult result = loop.run(target);
        allocs += result.steadyStateAllocs;
        bytes += result.steadyStateAllocBytes;
        steps += result.steadyStateSteps;
        benchmark::DoNotOptimize(result.envSteps);
    }
    if (steps > 0) {
        state.counters["allocs_per_step"] =
            static_cast<double>(allocs) / static_cast<double>(steps);
        state.counters["bytes_per_step"] =
            static_cast<double>(bytes) / static_cast<double>(steps);
    }
}
BENCHMARK(BM_TrainLoopEpisodeWarm);

} // namespace

// Hand-rolled BENCHMARK_MAIN so --threads / --isa are consumed
// before google-benchmark's flag parser (which rejects unknown
// flags).
int
main(int argc, char **argv)
{
    marlin::bench::initThreads(argc, argv);
    marlin::bench::initIsa(argc, argv);
    marlin::bench::initLogLevel(argc, argv);
    marlin::bench::ObsSession obs(argc, argv, "bench_alloc_churn");
    marlin::bench::banner("alloc_churn");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
