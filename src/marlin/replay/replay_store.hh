/**
 * @file
 * The storage interface every replay consumer programs against.
 *
 * PR-10 splits replay into *policy* (samplers, which plan indices
 * over a logical slot space) and *storage* (this interface, which
 * maps logical slots to bytes). The three implementations are:
 *
 *   - MultiAgentBuffer       per-agent SoA rings (the baseline)
 *   - InterleavedReplayStore record-major joint store (Figure 14)
 *   - ShardedStore           power-of-two shards with an optional
 *                            mmap-backed cold tier (out-of-core)
 *
 * Determinism contract (mirrors the PR-1 thread-count contract):
 * samplers draw over the logical index space [0, size()) only, and
 * storage maps logical slot -> shard purely arithmetically, so a
 * fixed seed yields bit-identical sample indices for ANY shard
 * count. Sharding changes *where* a record lives, never *which*
 * records a plan selects.
 */

#ifndef MARLIN_REPLAY_REPLAY_STORE_HH
#define MARLIN_REPLAY_REPLAY_STORE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "marlin/replay/transition.hh"

namespace marlin::replay
{

struct AgentBatch;
struct IndexPlan;
struct JointTransitionLayout;
class AccessTrace;

/** Typed outcome category of a store-level state restore. */
enum class StoreLoadError
{
    None = 0,
    /** Serialized geometry (capacity/shape/shards) differs from the
     *  constructed store. */
    ShapeMismatch,
    /** Stream ended before the serialized payload did. */
    Truncated,
    /** A backing file (cold segment) is missing or unreadable. */
    IoError,
    /** A CRC-guarded region failed its checksum. */
    Corrupt,
};

/**
 * Result of ReplayStore::loadState. Stores validate geometry and
 * stage the payload before committing anything, so a failed load —
 * a mid-payload truncation included — leaves the store's previous
 * contents intact, and the caller (core/checkpoint.cc) can map the
 * category onto its own CkptError without re-deriving the cause
 * from downstream shape checks. (ReplayBuffer is the one exception:
 * a data-region short read is fatal, so no failure path there
 * returns control over a half-mutated buffer either.)
 */
struct StoreLoadResult
{
    StoreLoadError error = StoreLoadError::None;
    std::string detail;

    explicit operator bool() const
    {
        return error == StoreLoadError::None;
    }

    static StoreLoadResult
    ok()
    {
        return {};
    }

    static StoreLoadResult
    fail(StoreLoadError e, std::string why)
    {
        return {e, std::move(why)};
    }
};

/**
 * Abstract replay storage: a ring of joint transitions addressed by
 * logical slot in [0, size()). All appends advance every agent in
 * lock-step, so one logical slot addresses the same timestep in
 * every agent's record — the common-indices property of Figure 5.
 */
class ReplayStore
{
  public:
    virtual ~ReplayStore() = default;

    /** Stable backend name for logs/metrics ("per_agent", ...). */
    virtual const char *backendName() const = 0;

    virtual std::size_t numAgents() const = 0;
    virtual const TransitionShape &agentShape(std::size_t agent) const = 0;

    /** Logical ring capacity in joint transitions. */
    virtual BufferIndex capacity() const = 0;

    /** Valid joint transitions currently stored. */
    virtual BufferIndex size() const = 0;

    /** Logical slot the next append writes (ring cursor). */
    virtual BufferIndex writeCursor() const = 0;

    bool empty() const { return size() == 0; }

    /** Append one joint transition (vectors indexed by agent). */
    virtual void append(const std::vector<std::vector<Real>> &obs,
                        const std::vector<std::vector<Real>> &actions,
                        const std::vector<Real> &rewards,
                        const std::vector<std::vector<Real>> &next_obs,
                        const std::vector<bool> &dones) = 0;

    /**
     * Append one packed joint record (the async drain path). @p rec
     * holds layout.stride Reals laid out by JointTransitionLayout;
     * allocation-free on a warm store.
     */
    virtual void appendRecord(const JointTransitionLayout &layout,
                              const Real *rec) = 0;

    /**
     * Gather the plan's rows for one agent into a dense batch.
     * Indices are logical slots and must be < size(). @p trace
     * optionally records the physical reads for memsim replay.
     */
    virtual void gatherAgent(std::size_t agent, const IndexPlan &plan,
                             AgentBatch &out,
                             AccessTrace *trace = nullptr) const = 0;

    /**
     * Gather the plan for every agent (out is resized to numAgents).
     * Overridden by record-major stores to touch each record once.
     */
    virtual void gatherAll(const IndexPlan &plan,
                           std::vector<AgentBatch> &out,
                           AccessTrace *trace = nullptr) const;

    /** Bytes of transition storage (RAM + cold tier). */
    virtual std::size_t storageBytes() const = 0;

    /** Serialize geometry, cursors and the valid transitions. */
    virtual void saveState(std::ostream &os) const = 0;

    /**
     * Restore state written by saveState on an identically
     * constructed store. Validates geometry before mutating.
     */
    virtual StoreLoadResult loadState(std::istream &is) = 0;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_REPLAY_STORE_HH
