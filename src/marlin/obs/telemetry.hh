/**
 * @file
 * Per-step run telemetry: one JSONL record per training step.
 *
 * The file starts with a schema-versioned header record (build
 * commit, free-form run metadata), followed by step records carrying
 * episode/step counters, per-phase wall-time deltas, losses and grad
 * norms, and a merged snapshot of every registered metric, and ends
 * with a summary record. Each record is one line, flushed as soon as
 * it is written, so a crash mid-run loses at most the line being
 * formatted — everything before it parses.
 *
 * The writer is a pure observer: it reads timers, stats and metric
 * counters and never feeds anything back, so a run with telemetry on
 * is bit-identical to the same run with it off (tests enforce this).
 *
 * Layering: obs does not know about profile::Phase or UpdateStats;
 * callers hand over (name, value) pairs. TrainLoop owns the mapping.
 */

#ifndef MARLIN_OBS_TELEMETRY_HH
#define MARLIN_OBS_TELEMETRY_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace marlin::obs
{

/**
 * Version of the JSONL layout; bump on incompatible change.
 * v2: step records may carry async transition-ring accounting
 * (ring_depth / ring_dropped / ring_seq_gaps).
 * v3: step records may carry supervisor accounting (sup_restarts /
 * sup_degradations / sup_watchdog_trips / sup_quarantined).
 * v4: step records may carry cross-tier latency attribution
 * (transit_p50_us / transit_p99_us / policy_staleness), an
 * all-or-nothing group like the ring and supervisor groups.
 */
inline constexpr int telemetrySchemaVersion = 4;

/** Everything one step record carries; fill what you have. */
struct StepRecord
{
    std::uint64_t episode = 0;
    std::uint64_t envStep = 0;
    std::uint64_t updateCalls = 0;
    /** (phase name, nanoseconds spent since the last record). */
    std::vector<std::pair<const char *, std::uint64_t>> phaseNs;
    /** Losses/norms are absent until the first trainer update. */
    bool haveLosses = false;
    double criticLoss = 0.0;
    double actorLoss = 0.0;
    double meanAbsTd = 0.0;
    double criticGradNorm = 0.0;
    double actorGradNorm = 0.0;
    /** Async runtime only: transition-ring accounting (schema v2). */
    bool haveRing = false;
    std::uint64_t ringDepth = 0;    ///< Records currently in flight.
    std::uint64_t ringDropped = 0;  ///< Total dropped (rings full).
    std::uint64_t ringSeqGaps = 0;  ///< Total sequence-gap count.
    /** Supervised async runtime only (schema v3). */
    bool haveSupervisor = false;
    std::uint64_t supRestarts = 0;      ///< Actor restarts so far.
    std::uint64_t supDegradations = 0;  ///< Actors given up on.
    std::uint64_t supWatchdogTrips = 0; ///< Stall trips latched.
    std::uint64_t supQuarantined = 0;   ///< NaN/Inf records dropped.
    /** Cross-tier latency attribution (schema v4, async only). */
    bool haveAsyncLatency = false;
    double transitP50Us = 0.0; ///< Median ring transit age, µs.
    double transitP99Us = 0.0; ///< Tail ring transit age, µs.
    /** Learner snapshot version minus the slowest actor's adopted
     *  version (0 = every actor runs the freshest policy). */
    std::uint64_t policyStaleness = 0;
};

/**
 * JSONL telemetry stream. Construction opens the file and writes the
 * header record; destruction closes it (writeSummary is the caller's
 * job — TrainLoop and the CLI call it so the summary can carry final
 * results). Not thread-safe: exactly one thread (the training loop)
 * writes records.
 */
class TelemetryWriter
{
  public:
    /**
     * @param meta Free-form (key, value) string pairs recorded in
     *        the header (env name, algorithm, thread count, ISA...).
     */
    TelemetryWriter(
        const std::string &path,
        const std::vector<std::pair<std::string, std::string>> &meta);

    TelemetryWriter(const TelemetryWriter &) = delete;
    TelemetryWriter &operator=(const TelemetryWriter &) = delete;

    ~TelemetryWriter();

    /** False when the file could not be opened (already warned). */
    bool ok() const { return file != nullptr; }

    /**
     * Append one step record plus the current merged snapshot of the
     * metrics registry. Flushes the line before returning.
     */
    void writeStep(const StepRecord &rec);

    /**
     * Append the closing summary record: final (key, value) numeric
     * results plus a last metrics snapshot.
     */
    void writeSummary(
        const std::vector<std::pair<std::string, double>> &results);

    /** Records written so far (header and summary included). */
    std::uint64_t recordsWritten() const { return records; }

  private:
    void writeLine(const std::string &line);

    std::FILE *file = nullptr;
    std::uint64_t records = 0;
};

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace marlin::obs

#endif // MARLIN_OBS_TELEMETRY_HH
