/**
 * @file
 * Tests for the AoS replay layout and the rank-based prioritized
 * sampler (the proportional-PER ablation counterparts).
 */

#include <gtest/gtest.h>

#include <set>

#include "marlin/replay/aos_buffer.hh"
#include "marlin/replay/rank_sampler.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin::replay
{
namespace
{

void
addMarked(AosReplayBuffer &buf, int t)
{
    const auto &shape = buf.shape();
    std::vector<Real> obs(shape.obsDim, static_cast<Real>(t));
    std::vector<Real> act(shape.actDim, Real(0));
    act[static_cast<std::size_t>(t) % shape.actDim] = Real(1);
    std::vector<Real> next(shape.obsDim, static_cast<Real>(t) + 0.5f);
    buf.add(obs.data(), act.data(), static_cast<Real>(t), next.data(),
            t % 5 == 0);
}

TEST(AosBuffer, RecordSizeAndStorage)
{
    AosReplayBuffer buf({4, 5}, 8);
    EXPECT_EQ(buf.recordSize(), 2 * 4 + 5 + 2);
    EXPECT_EQ(buf.storageBytes(), buf.recordSize() * 8 * sizeof(Real));
}

TEST(AosBuffer, ViewRoundTrip)
{
    AosReplayBuffer buf({3, 5}, 8);
    addMarked(buf, 7);
    auto v = buf.view(0);
    EXPECT_EQ(v.obs[0], Real(7));
    EXPECT_EQ(v.obs[2], Real(7));
    EXPECT_EQ(v.action[2], Real(1)); // 7 % 5 == 2.
    EXPECT_EQ(v.reward, Real(7));
    EXPECT_EQ(v.nextObs[1], Real(7.5));
    EXPECT_EQ(v.done, Real(0));
}

TEST(AosBuffer, RingWraparound)
{
    AosReplayBuffer buf({2, 5}, 4);
    for (int t = 0; t < 6; ++t)
        addMarked(buf, t);
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.view(0).reward, Real(4));
    EXPECT_EQ(buf.view(1).reward, Real(5));
    EXPECT_EQ(buf.view(2).reward, Real(2));
}

TEST(AosBuffer, GatherMatchesSoaGather)
{
    // AoS and SoA layouts must produce identical batches for the
    // same content and plan — the ablation only changes memory
    // behaviour, never semantics.
    TransitionShape shape{3, 5};
    AosReplayBuffer aos(shape, 64);
    ReplayBuffer soa(shape, 64);
    for (int t = 0; t < 40; ++t) {
        addMarked(aos, t);
        std::vector<Real> obs(3, static_cast<Real>(t));
        std::vector<Real> act(5, Real(0));
        act[t % 5] = Real(1);
        std::vector<Real> next(3, static_cast<Real>(t) + 0.5f);
        soa.add(obs, act, static_cast<Real>(t), next, t % 5 == 0);
    }
    IndexPlan plan;
    plan.indices = {0, 13, 39, 5, 5};
    AgentBatch from_aos, from_soa;
    aos.gather(plan, from_aos);
    gatherAgentBatch(soa, plan, from_soa);
    EXPECT_EQ(from_aos.obs, from_soa.obs);
    EXPECT_EQ(from_aos.actions, from_soa.actions);
    EXPECT_EQ(from_aos.rewards, from_soa.rewards);
    EXPECT_EQ(from_aos.nextObs, from_soa.nextObs);
    EXPECT_EQ(from_aos.dones, from_soa.dones);
}

TEST(AosBuffer, GatherTraceIsOneRecordPerRow)
{
    AosReplayBuffer buf({3, 5}, 16);
    for (int t = 0; t < 8; ++t)
        addMarked(buf, t);
    IndexPlan plan;
    plan.indices = {1, 2, 3};
    AgentBatch out;
    AccessTrace trace;
    buf.gather(plan, out, &trace);
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.entries()[0].bytes,
              buf.recordSize() * sizeof(Real));
}

TEST(RankSampler, SamplesHighTdSlotsMoreOften)
{
    PerConfig cfg;
    cfg.capacity = 64;
    cfg.alpha = Real(1);
    RankBasedSampler sampler(cfg);
    std::vector<BufferIndex> ids(64);
    std::vector<Real> tds(64, Real(0.1));
    for (BufferIndex i = 0; i < 64; ++i)
        ids[i] = i;
    tds[10] = Real(100); // Rank 1.
    tds[20] = Real(50);  // Rank 2.
    sampler.updatePriorities(ids, tds);

    Rng rng(1);
    std::vector<int> counts(64, 0);
    for (int rep = 0; rep < 50; ++rep) {
        auto plan = sampler.plan(64, 64, rng);
        for (auto i : plan.indices)
            ++counts[i];
    }
    // 1/rank distribution: slot 10 (rank 1) ~2x slot 20 (rank 2),
    // and far more than a mid-rank slot.
    EXPECT_GT(counts[10], counts[20]);
    EXPECT_GT(counts[20], counts[40]);
    EXPECT_GT(counts[10], 3 * counts[40]);
}

TEST(RankSampler, WeightsNormalized)
{
    PerConfig cfg;
    cfg.capacity = 128;
    RankBasedSampler sampler(cfg);
    std::vector<BufferIndex> ids(128);
    std::vector<Real> tds(128);
    Rng noise(2);
    for (BufferIndex i = 0; i < 128; ++i) {
        ids[i] = i;
        tds[i] = noise.uniformf() + Real(0.01);
    }
    sampler.updatePriorities(ids, tds);
    Rng rng(3);
    auto plan = sampler.plan(128, 64, rng);
    ASSERT_EQ(plan.weights.size(), 64u);
    Real max_w = 0;
    for (Real w : plan.weights) {
        EXPECT_GT(w, Real(0));
        EXPECT_LE(w, Real(1) + Real(1e-5));
        max_w = std::max(max_w, w);
    }
    EXPECT_NEAR(max_w, 1.0, 1e-5);
}

TEST(RankSampler, FreshInsertsRankHighly)
{
    PerConfig cfg;
    cfg.capacity = 32;
    cfg.alpha = Real(1);
    RankBasedSampler sampler(cfg);
    std::vector<BufferIndex> ids;
    std::vector<Real> tds;
    for (BufferIndex i = 0; i < 16; ++i) {
        ids.push_back(i);
        tds.push_back(Real(0.05));
    }
    sampler.updatePriorities(ids, tds);
    sampler.onAdd(16); // Enters at running max TD.
    sampler.setResortInterval(1);

    Rng rng(4);
    std::vector<int> counts(32, 0);
    for (int rep = 0; rep < 40; ++rep) {
        auto plan = sampler.plan(17, 32, rng);
        for (auto i : plan.indices)
            ++counts[i];
    }
    int max_other = 0;
    for (BufferIndex i = 0; i < 16; ++i)
        max_other = std::max(max_other, counts[i]);
    EXPECT_GT(counts[16], max_other);
}

TEST(RankSampler, IndicesAlwaysInBufferRange)
{
    PerConfig cfg;
    cfg.capacity = 256;
    RankBasedSampler sampler(cfg);
    for (BufferIndex i = 0; i < 100; ++i)
        sampler.onAdd(i);
    Rng rng(5);
    auto plan = sampler.plan(100, 512, rng);
    for (auto i : plan.indices)
        EXPECT_LT(i, 100u);
}

TEST(RankSampler, BetaAnnealing)
{
    PerConfig cfg;
    cfg.capacity = 16;
    cfg.beta = Real(0.5);
    cfg.betaAnneal = Real(0.25);
    RankBasedSampler sampler(cfg);
    sampler.onAdd(0);
    Rng rng(6);
    sampler.plan(1, 4, rng);
    sampler.plan(1, 4, rng);
    EXPECT_NEAR(sampler.currentBeta(), 1.0, 1e-6);
}

} // namespace
} // namespace marlin::replay
