#include "marlin/base/args.hh"

#include <cstdio>
#include <cstdlib>

#include "marlin/base/logging.hh"
#include "marlin/base/string_utils.hh"

namespace marlin
{

ArgParser::ArgParser(std::string program_in)
    : program(std::move(program_in))
{
}

void
ArgParser::addOption(const std::string &name,
                     const std::string &default_value,
                     const std::string &help)
{
    options[name] = {default_value, help, false};
    values[name] = default_value;
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    options[name] = {"false", help, true};
    values[name] = "false";
}

void
ArgParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("%s", usage().c_str());
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            positionals.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_inline = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline = true;
        }
        auto it = options.find(name);
        if (it == options.end())
            fatal("unknown option '--%s'\n%s", name.c_str(),
                  usage().c_str());
        if (it->second.isFlag) {
            values[name] = has_inline ? value : "true";
        } else if (has_inline) {
            values[name] = value;
        } else {
            if (i + 1 >= argc)
                fatal("option '--%s' expects a value\n%s",
                      name.c_str(), usage().c_str());
            values[name] = argv[++i];
        }
    }
}

const std::string &
ArgParser::get(const std::string &name) const
{
    auto it = values.find(name);
    if (it == values.end())
        panic("option '%s' was never declared", name.c_str());
    return it->second;
}

long
ArgParser::getInt(const std::string &name) const
{
    const std::string &raw = get(name);
    char *end = nullptr;
    const long v = std::strtol(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0')
        fatal("option '--%s' expects an integer, got '%s'",
              name.c_str(), raw.c_str());
    return v;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string &raw = get(name);
    char *end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0')
        fatal("option '--%s' expects a number, got '%s'",
              name.c_str(), raw.c_str());
    return v;
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return get(name) == "true";
}

std::string
ArgParser::usage() const
{
    std::string out = csprintf("usage: %s [options]\n", program.c_str());
    for (const auto &[name, opt] : options) {
        if (opt.isFlag) {
            out += csprintf("  --%-20s %s\n", name.c_str(),
                            opt.help.c_str());
        } else {
            out += csprintf("  --%-20s %s (default: %s)\n",
                            (name + " <v>").c_str(),
                            opt.help.c_str(),
                            opt.defaultValue.c_str());
        }
    }
    return out;
}

} // namespace marlin
