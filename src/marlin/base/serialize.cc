#include "marlin/base/serialize.hh"

namespace marlin
{

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<std::uint64_t>(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    const auto len = readPod<std::uint64_t>(is);
    std::string s(len, '\0');
    is.read(s.data(), static_cast<std::streamsize>(len));
    if (!is)
        fatal("checkpoint truncated while reading string of %llu",
              static_cast<unsigned long long>(len));
    return s;
}

void
writeHeader(std::ostream &os, std::uint32_t magic,
            std::uint32_t version)
{
    writePod(os, magic);
    writePod(os, version);
}

std::uint32_t
readHeader(std::istream &is, std::uint32_t magic,
           std::uint32_t max_version)
{
    const auto file_magic = readPod<std::uint32_t>(is);
    if (file_magic != magic)
        fatal("bad checkpoint magic 0x%08x (expected 0x%08x)",
              file_magic, magic);
    const auto version = readPod<std::uint32_t>(is);
    if (version > max_version)
        fatal("checkpoint version %u is newer than supported %u",
              version, max_version);
    return version;
}

} // namespace marlin
