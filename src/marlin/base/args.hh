/**
 * @file
 * Small command-line argument parser for the examples and tools:
 * --name value / --name=value / --flag, with typed accessors,
 * defaults, and an auto-generated usage string.
 */

#ifndef MARLIN_BASE_ARGS_HH
#define MARLIN_BASE_ARGS_HH

#include <map>
#include <string>
#include <vector>

namespace marlin
{

/** Declarative option table + parsed values. */
class ArgParser
{
  public:
    /** @param program Name shown in the usage string. */
    explicit ArgParser(std::string program);

    /**
     * Declare an option taking a value.
     *
     * @param name Long option name without dashes ("episodes").
     * @param default_value Value when the flag is absent.
     * @param help One-line description.
     */
    void addOption(const std::string &name,
                   const std::string &default_value,
                   const std::string &help);

    /** Declare a boolean flag (false unless present). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Unknown options or missing values are reported
     * via fatal() along with the usage text. "--help" prints usage
     * and exits 0.
     */
    void parse(int argc, char **argv);

    /** Raw string value of @p name. @pre the option was declared. */
    const std::string &get(const std::string &name) const;

    /** Typed accessors (fatal on malformed numbers). */
    long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positionals;
    }

    /** Render the usage text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string defaultValue;
        std::string help;
        bool isFlag = false;
    };

    std::string program;
    std::map<std::string, Option> options;
    std::map<std::string, std::string> values;
    std::vector<std::string> positionals;
};

} // namespace marlin

#endif // MARLIN_BASE_ARGS_HH
