/**
 * @file
 * Learner thread of the async runtime: drains every actor's
 * transition ring into the replay buffer, runs trainer updates, and
 * publishes fresh actor weights back to the rollout threads.
 */

#ifndef MARLIN_ASYNC_LEARNER_RUNNER_HH
#define MARLIN_ASYNC_LEARNER_RUNNER_HH

#include <string>
#include <vector>

#include "marlin/async/policy_snapshot.hh"
#include "marlin/async/run_control.hh"
#include "marlin/base/fault_injector.hh"
#include "marlin/base/worker_thread.hh"
#include "marlin/core/maddpg.hh"
#include "marlin/obs/metrics.hh"
#include "marlin/obs/telemetry.hh"
#include "marlin/profile/timer.hh"
#include "marlin/replay/sharded_store.hh"
#include "marlin/replay/transition_ring.hh"

namespace marlin::async
{

struct SupervisorStats;

/** Learner-side knobs, fixed for the run. */
struct LearnerConfig
{
    /** Updates between weight-snapshot publications. */
    std::size_t snapshotEvery = 1;
    /** Max records drained per ring per cycle, so a fast producer
     *  cannot starve the update cadence. */
    std::size_t drainChunk = 256;
    /** Rotating checkpoint directory; empty disables. */
    std::string checkpointDir;
    /** Updates between checkpoints (0 disables periodic saves; a
     *  final snapshot is still written on clean exit when the
     *  directory is set). */
    std::size_t checkpointEveryUpdates = 0;
};

/**
 * One learner thread over N actor rings. Per cycle: drain a bounded
 * chunk from each ring into the replay buffer (the PR-5 raw-pointer
 * path — allocation-free on warm buffers), run a trainer update when
 * enough insertions accumulated, publish weights, refresh ring
 * counters in the obs registry and the telemetry stream.
 *
 * Data hardening: every record is screened for NaN/Inf at the drain
 * point — the single funnel between N untrusted producers and the
 * replay buffer — and quarantined (popped, counted, never inserted)
 * rather than allowed to poison every future sampled batch. This
 * extends the PR-2 health-guard taxonomy one layer earlier: guards
 * screen the optimizer's inputs, quarantine screens the buffer's.
 *
 * Checkpointing: with a directory configured, the learner writes
 * rotating full-state snapshots (networks, optimizer, RNG streams,
 * replay buffers, episode progress) between updates — the only
 * point where trainer state is quiescent — plus a final one on
 * clean exit. Async resume is throughput-equivalent, not
 * bit-identical: the snapshot's episode progress is the contiguous
 * completed prefix, so episodes finished out of order past a gap
 * are re-run (see async_train_loop.hh).
 *
 * Thread contract: run() is the thread body; result accessors are
 * read after it joins; setters are called before it starts.
 */
class LearnerRunner
{
  public:
    LearnerRunner(core::CtdeTrainerBase &trainer,
                  replay::ReplayStore &store,
                  std::vector<replay::TransitionRing *> rings,
                  const replay::JointTransitionLayout &layout,
                  PolicySnapshot &snapshot, RunControl &control,
                  const core::TrainConfig &config,
                  LearnerConfig learner_config);

    /**
     * Concrete storage pointers for checkpointing (RunState needs
     * the typed sections, not the interface); either may be null.
     * Call before the thread starts.
     */
    void setCheckpointStorage(replay::MultiAgentBuffer *buffers_in,
                              replay::ShardedStore *sharded_in)
    {
        ckptBuffers = buffers_in;
        ckptSharded = sharded_in;
    }

    /**
     * Stream one telemetry record per @p every_steps drained
     * transitions. Learner-thread only (the writer is single-
     * threaded); call before the thread starts.
     */
    void setTelemetry(obs::TelemetryWriter *writer,
                      std::size_t every_steps);

    // Supervisor wiring; call before the thread starts.
    void setHeartbeat(base::Heartbeat *hb) { heartbeat = hb; }
    void setFaultInjector(base::FaultInjector *fi) { injector = fi; }
    /** Lets telemetry carry supervisor counters (schema v3) and
     *  quarantine feed the shared stats. */
    void setSupervisorStats(SupervisorStats *stats_in)
    {
        supStats = stats_in;
    }

    /** Thread body: drain and update until all actors retire. */
    void run();

    // Read after join.
    StepCount drainedSteps() const { return drained; }
    StepCount updateCalls() const { return updates; }
    std::size_t nonFiniteUpdates() const { return nonFinite; }
    bool halted() const { return _halted; }
    /** Records popped at drain but never inserted (NaN/Inf). */
    std::uint64_t quarantinedCount() const { return quarantined; }
    std::uint64_t checkpointsSaved() const { return checkpoints; }
    const profile::PhaseTimer &timer() const { return _timer; }
    const core::UpdateStats &lastStats() const { return stats; }
    bool haveStats() const { return _haveStats; }

  private:
    /** Drain up to drainChunk records from each ring. @return count
     *  of records consumed (inserted + quarantined). */
    std::size_t drainRings();

    /** True when any of the record's stride Reals is NaN/Inf. */
    bool recordPoisoned(const Real *rec) const;

    /** Push ring totals into the obs registry (delta counters). */
    void refreshMetrics();

    void maybeEmitTelemetry();

    /** Rotating full-state snapshot; no-op without a directory. */
    void maybeCheckpoint(bool force);

    core::CtdeTrainerBase &trainer;
    replay::ReplayStore &store;
    replay::MultiAgentBuffer *ckptBuffers = nullptr;
    replay::ShardedStore *ckptSharded = nullptr;
    std::vector<replay::TransitionRing *> rings;
    const replay::JointTransitionLayout &layout;
    PolicySnapshot &snapshot;
    RunControl &control;
    core::TrainConfig config;
    LearnerConfig learnerConfig;

    obs::TelemetryWriter *telemetry = nullptr;
    std::size_t telemetryEvery = 1;
    StepCount telemetryNextAt = 0;
    std::array<std::uint64_t, profile::numPhases> telemetryLastNs{};

    base::Heartbeat *heartbeat = nullptr;
    base::FaultInjector *injector = nullptr;
    SupervisorStats *supStats = nullptr;

    StepCount drained = 0;
    StepCount insertionsSinceUpdate = 0;
    StepCount updates = 0;
    std::size_t nonFinite = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t snapshotOrdinal = 0;
    std::uint64_t checkpoints = 0;
    bool _halted = false;
    core::UpdateStats stats;
    bool _haveStats = false;
    profile::PhaseTimer _timer;

    // Obs registry handles, resolved once (registration locks).
    obs::Counter &pushedCounter;
    obs::Counter &droppedCounter;
    obs::Counter &gapCounter;
    obs::Counter &quarantinedCounter;
    obs::Gauge &depthGauge;
    /** Push-to-drain age of every inserted record (µs). */
    obs::Histogram &transitHistogram;
    /** snapshot.version() minus the slowest actor's adopted
     *  version: how stale the worst actor's policy is, in
     *  publications. */
    obs::Gauge &stalenessGauge;
    // Last published totals, so counters receive deltas.
    std::uint64_t lastPushed = 0;
    std::uint64_t lastDropped = 0;
    std::uint64_t lastGaps = 0;
};

} // namespace marlin::async

#endif // MARLIN_ASYNC_LEARNER_RUNNER_HH
