#include "marlin/core/train_loop.hh"

#include <cstdlib>
#include <optional>

#include "marlin/base/alloc_guard.hh"
#include "marlin/base/logging.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::core
{

using profile::Phase;
using profile::ScopedPhase;

namespace
{

std::vector<replay::TransitionShape>
shapesFor(const env::Environment &environment,
          const TrainConfig &config)
{
    // Continuous control stores the 2D force instead of a one-hot.
    const std::size_t act_dim =
        config.actionMode == ActionMode::Continuous
            ? 2
            : environment.actionDim();
    std::vector<replay::TransitionShape> shapes;
    shapes.reserve(environment.numAgents());
    for (std::size_t i = 0; i < environment.numAgents(); ++i)
        shapes.push_back({environment.obsDim(i), act_dim});
    return shapes;
}

} // namespace

TrainLoop::TrainLoop(env::Environment &environment_in,
                     Trainer &trainer_in, TrainConfig config_in)
    : environment(environment_in), trainer(trainer_in),
      config(std::move(config_in))
{
    MARLIN_ASSERT(trainer.numAgents() == environment.numAgents(),
                  "trainer/environment agent count mismatch");
    // Shard/cold-dir flags imply the sharded backend even when the
    // caller left config.backend at a hot-tier default.
    const bool want_sharded =
        config.backend == SamplingBackend::Sharded ||
        config.replayShards > 1 || !config.replayColdDir.empty();
    if (want_sharded) {
        config.backend = SamplingBackend::Sharded;
        replay::ShardedStoreConfig sc;
        sc.shards = config.replayShards;
        sc.hotCapacity = config.replayHotCapacity;
        sc.coldDir = config.replayColdDir;
        sharded = std::make_unique<replay::ShardedStore>(
            shapesFor(environment, config), config.bufferCapacity,
            sc);
        active = sharded.get();
    } else {
        buffers = std::make_unique<replay::MultiAgentBuffer>(
            shapesFor(environment, config), config.bufferCapacity);
        active = buffers.get();
        if (config.backend == SamplingBackend::Interleaved) {
            store =
                std::make_unique<replay::InterleavedReplayStore>(
                    shapesFor(environment, config),
                    config.bufferCapacity);
            // Gathers run against the reorganized layout; the
            // per-agent rings stay authoritative for checkpoints.
            active = store.get();
        }
    }
}

void
TrainLoop::setCheckpointing(CheckpointOptions options)
{
    if (!options.dir.empty()) {
        MARLIN_ASSERT(
            dynamic_cast<CtdeTrainerBase *>(&trainer) != nullptr,
            "checkpointing requires a CtdeTrainerBase trainer");
        MARLIN_ASSERT(options.everyEpisodes > 0,
                      "checkpoint cadence must be at least 1");
    }
    ckptOptions = std::move(options);
}

void
TrainLoop::setFaultInjector(base::FaultInjector *injector_in)
{
    injector = injector_in;
}

void
TrainLoop::setTelemetry(obs::TelemetryWriter *writer,
                        std::size_t every_steps)
{
    telemetry = writer;
    telemetryEvery = every_steps > 0 ? every_steps : 1;
    telemetryLastNs.fill(0);
    telemetryHaveStats = false;
}

void
TrainLoop::maybeEmitTelemetry(const TrainResult &result)
{
    if (telemetry == nullptr ||
        progress.envSteps % telemetryEvery != 0)
        return;
    obs::StepRecord rec;
    rec.episode = progress.episodeIndex;
    rec.envStep = progress.envSteps;
    rec.updateCalls = progress.updateCalls;
    rec.phaseNs.reserve(profile::numPhases);
    for (std::size_t p = 0; p < profile::numPhases; ++p) {
        const auto phase = static_cast<Phase>(p);
        const std::uint64_t total = result.timer.nanoseconds(phase);
        rec.phaseNs.emplace_back(profile::phaseName(phase),
                                 total - telemetryLastNs[p]);
        telemetryLastNs[p] = total;
    }
    if (telemetryHaveStats) {
        rec.haveLosses = true;
        rec.criticLoss =
            static_cast<double>(telemetryLastStats.criticLoss);
        rec.actorLoss =
            static_cast<double>(telemetryLastStats.actorLoss);
        rec.meanAbsTd =
            static_cast<double>(telemetryLastStats.meanAbsTd);
        rec.criticGradNorm =
            static_cast<double>(telemetryLastStats.criticGradNorm);
        rec.actorGradNorm =
            static_cast<double>(telemetryLastStats.actorGradNorm);
    }
    telemetry->writeStep(rec);
}

RunState
TrainLoop::runState(CtdeTrainerBase *ctde)
{
    RunState state;
    state.trainer = ctde;
    state.buffers = buffers.get();
    state.store = store.get();
    state.sharded = sharded.get();
    state.environment = &environment;
    state.progress = &progress;
    return state;
}

TrainResult &
TrainLoop::finish(TrainResult &result)
{
    result.episodeRewards = progress.episodeRewards;
    result.envSteps = progress.envSteps;
    result.updateCalls = progress.updateCalls;
    const std::size_t done = result.episodeRewards.size();
    if (done > 0) {
        // Final score: mean over the last 10% (at least one episode).
        const std::size_t tail = std::max<std::size_t>(1, done / 10);
        Real total = 0;
        for (std::size_t e = done - tail; e < done; ++e)
            total += result.episodeRewards[e];
        result.finalScore = total / static_cast<Real>(tail);
    }
    if (telemetry != nullptr) {
        telemetry->writeSummary({
            {"episodes", static_cast<double>(done)},
            {"env_steps", static_cast<double>(result.envSteps)},
            {"update_calls",
             static_cast<double>(result.updateCalls)},
            {"final_score",
             static_cast<double>(result.finalScore)},
            {"nonfinite_updates",
             static_cast<double>(result.nonFiniteUpdates)},
            {"rollbacks", static_cast<double>(result.rollbacks)},
            {"killed", result.killed ? 1.0 : 0.0},
            {"halted", result.halted ? 1.0 : 0.0},
        });
    }
    return result;
}

TrainResult
TrainLoop::run(std::size_t episodes, const EpisodeCallback &callback)
{
    TrainResult result;
    const std::size_t n = environment.numAgents();
    const bool checkpointing = !ckptOptions.dir.empty();
    auto *ctde = dynamic_cast<CtdeTrainerBase *>(&trainer);

    if (config.healthPolicy == HealthGuardPolicy::Rollback &&
        !checkpointing) {
        fatal("HealthGuardPolicy::Rollback requires a checkpoint "
              "directory (TrainLoop::setCheckpointing)");
    }

    if (checkpointing && ckptOptions.resume) {
        const CkptResult resumed =
            resumeLatest(ckptOptions.dir, runState(ctde));
        if (resumed) {
            result.resumedFromEpisode =
                static_cast<std::size_t>(progress.episodeIndex);
            inform("resumed from '%s' at episode %llu",
                   resumed.path.c_str(),
                   static_cast<unsigned long long>(
                       progress.episodeIndex));
        } else if (resumed.error != CkptError::NotFound) {
            // Both generations exist but neither loads: refuse to
            // train on, or the rotation would overwrite the only
            // evidence of what went wrong.
            fatal("no usable checkpoint in '%s' (%s: %s)",
                  ckptOptions.dir.c_str(),
                  ckptErrorName(resumed.error),
                  resumed.detail.c_str());
        }
    }

    // Rollback budget for this run() call. Deliberately not part of
    // the serialized progress: a rollback restores pre-poisoning
    // state, so a resumed process fairly starts with a fresh budget.
    std::size_t rollbacks_left = config.healthMaxRollbacks;

    // MARLIN_ALLOC_GUARD=1 hardens the steady-state contract: the
    // first heap allocation inside a guarded step body aborts the
    // process (used by the Release CI leg). Default is Count mode,
    // which only feeds the alloc.steady_state_* gauges.
    const char *guard_env = std::getenv("MARLIN_ALLOC_GUARD");
    const base::AllocGuard::Mode guard_mode =
        (guard_env != nullptr && guard_env[0] == '1')
            ? base::AllocGuard::Mode::Forbid
            : base::AllocGuard::Mode::Count;
    // Gauge registration takes the registry lock; fetch the
    // references here, outside any guarded region.
    obs::Gauge &alloc_count_gauge =
        obs::Registry::instance().gauge("alloc.steady_state_count");
    obs::Gauge &alloc_bytes_gauge =
        obs::Registry::instance().gauge("alloc.steady_state_bytes");

    while (progress.episodeIndex < episodes) {
        const auto episode =
            static_cast<std::size_t>(progress.episodeIndex);
        environment.resetInto(obs);
        Real episode_reward = 0;
        bool rolled_back = false;

        for (std::size_t t = 0; t < config.maxEpisodeLength; ++t) {
            if (injector != nullptr && injector->onStep()) {
                // Simulated SIGKILL: abandon everything in memory.
                // On-disk checkpoints are whatever the last
                // completed rotation left behind.
                result.killed = true;
                return finish(result);
            }
            const bool continuous =
                config.actionMode == ActionMode::Continuous;

            // Steady state: this process has performed enough live
            // updates that every lazily-grown buffer is warm — at
            // least one full policy-delay cycle, since MATD3's actor
            // path first runs on update policyDelay and only then is
            // its scratch sized. Restored progress.updateCalls does
            // not count: a resumed process starts with cold scratch.
            const bool steady =
                liveUpdates >
                static_cast<StepCount>(config.policyDelay);
            std::optional<base::AllocGuard> guard;
            if (steady)
                guard.emplace(guard_mode);

            std::vector<int> &actions = actionScratch;
            std::vector<std::array<Real, 2>> &forces = forceScratch;
            {
                ScopedPhase sp(result.timer, Phase::ActionSelection);
                if (continuous) {
                    trainer.selectContinuousActionsInto(obs, episode,
                                                        forces);
                } else {
                    trainer.selectActionsInto(obs, episode, actions);
                }
            }

            env::StepResult &step = stepScratch;
            {
                ScopedPhase sp(result.timer, Phase::EnvStep);
                if (continuous) {
                    vecForceScratch.resize(n);
                    for (std::size_t i = 0; i < n; ++i)
                        vecForceScratch[i] = {forces[i][0],
                                              forces[i][1]};
                    environment.stepContinuousInto(vecForceScratch,
                                                   step);
                } else {
                    environment.stepInto(actions, step);
                }
            }
            ++progress.envSteps;

            onehotScratch.resize(n);
            std::vector<std::vector<Real>> &onehots = onehotScratch;
            for (std::size_t i = 0; i < n; ++i) {
                if (continuous) {
                    onehots[i].assign({forces[i][0], forces[i][1]});
                } else {
                    onehots[i].assign(environment.actionDim(),
                                      Real(0));
                    onehots[i][static_cast<std::size_t>(
                        actions[i])] = Real(1);
                }
            }
            {
                ScopedPhase sp(result.timer, Phase::BufferAdd);
                const BufferIndex slot = active->writeCursor();
                if (buffers) {
                    buffers->add(obs, onehots, step.rewards,
                                 step.observations, step.dones);
                } else {
                    sharded->append(obs, onehots, step.rewards,
                                    step.observations, step.dones);
                }
                trainer.onTransitionAdded(slot);
            }
            if (store) {
                ScopedPhase reorg(result.timer, Phase::LayoutReorg);
                store->append(obs, onehots, step.rewards,
                              step.observations, step.dones);
            }
            ++progress.insertionsSinceUpdate;

            for (Real r : step.rewards)
                episode_reward += r / static_cast<Real>(n);
            // Swap rather than move: both sides keep their heap
            // capacity, so the next stepInto reuses the buffers.
            std::swap(obs, step.observations);

            const bool warm =
                active->size() >= config.warmupTransitions &&
                active->size() >=
                    static_cast<BufferIndex>(config.batchSize);
            bool did_update = false;
            UpdateStats stats;
            if (warm && progress.insertionsSinceUpdate >=
                            config.updateEvery) {
                progress.insertionsSinceUpdate = 0;
                stats = trainer.update(*active, result.timer);
                ++progress.updateCalls;
                ++liveUpdates;
                did_update = true;
            }

            // The guarded region ends here: telemetry, the health
            // policy's rollback machinery and checkpointing are
            // cold-path observers, free to allocate.
            if (guard.has_value()) {
                ++result.steadyStateSteps;
                result.steadyStateAllocs += guard->allocations();
                result.steadyStateAllocBytes += guard->bytes();
                guard.reset();
                alloc_count_gauge.set(static_cast<double>(
                    result.steadyStateAllocs));
                alloc_bytes_gauge.set(static_cast<double>(
                    result.steadyStateAllocBytes));
            }

            if (did_update) {
                telemetryLastStats = stats;
                telemetryHaveStats = true;
                if (stats.nonFiniteCount > 0) {
                    result.nonFiniteUpdates += stats.nonFiniteCount;
                    switch (config.healthPolicy) {
                      case HealthGuardPolicy::Off:
                      case HealthGuardPolicy::SkipUpdate:
                        // Off applied the poisoned update anyway;
                        // SkipUpdate already dropped it inside the
                        // trainer. Either way the run continues.
                        break;
                      case HealthGuardPolicy::Halt:
                        warn("non-finite loss/gradient in update "
                             "%llu: halting",
                             static_cast<unsigned long long>(
                                 progress.updateCalls));
                        result.halted = true;
                        return finish(result);
                      case HealthGuardPolicy::Rollback: {
                        if (rollbacks_left == 0) {
                            warn("non-finite loss/gradient persists "
                                 "after %zu rollbacks: halting",
                                 config.healthMaxRollbacks);
                            result.halted = true;
                            return finish(result);
                        }
                        --rollbacks_left;
                        ++result.rollbacks;
                        const CkptResult restored = resumeLatest(
                            ckptOptions.dir, runState(ctde));
                        if (!restored) {
                            warn("rollback found no usable "
                                 "checkpoint (%s): halting",
                                 ckptErrorName(restored.error));
                            result.halted = true;
                            return finish(result);
                        }
                        warn("non-finite loss/gradient: rolled "
                             "back to '%s' (episode %llu)",
                             restored.path.c_str(),
                             static_cast<unsigned long long>(
                                 progress.episodeIndex));
                        rolled_back = true;
                        break;
                      }
                    }
                }
            }
            if (rolled_back)
                break;
            maybeEmitTelemetry(result);
        }

        if (rolled_back)
            continue; // Progress was reloaded; restart from there.

        progress.episodeRewards.push_back(episode_reward);
        ++progress.episodeIndex;
        if (callback)
            callback({episode, episode_reward, 0});

        if (checkpointing &&
            progress.episodeIndex % ckptOptions.everyEpisodes == 0) {
            const CkptResult saved = saveRotating(
                ckptOptions.dir, runState(ctde), injector);
            if (!saved) {
                warn("checkpoint at episode %llu failed (%s: %s); "
                     "training continues on the previous snapshot",
                     static_cast<unsigned long long>(
                         progress.episodeIndex),
                     ckptErrorName(saved.error),
                     saved.detail.c_str());
            }
        }
    }

    return finish(result);
}

} // namespace marlin::core
