#include "marlin/nn/activation.hh"

#include <cmath>

#include "marlin/base/logging.hh"
#include "marlin/numeric/kernels.hh"

namespace marlin::nn
{

Activation
activationFromString(const std::string &name)
{
    if (name == "relu")
        return Activation::ReLU;
    if (name == "tanh")
        return Activation::Tanh;
    if (name == "identity")
        return Activation::Identity;
    fatal("unknown activation '%s'", name.c_str());
}

const char *
activationName(Activation a)
{
    switch (a) {
      case Activation::Identity:
        return "identity";
      case Activation::ReLU:
        return "relu";
      case Activation::Tanh:
        return "tanh";
    }
    return "?";
}

void
ActivationLayer::forward(const Matrix &x, Matrix &y)
{
    y = x;
    switch (_kind) {
      case Activation::Identity:
        break;
      case Activation::ReLU:
        cached = x;
        numeric::kernels::active().reluForward(x.data(), y.data(),
                                               y.size());
        break;
      case Activation::Tanh:
        // Stays scalar: libm tanh has no lane-exact vector twin.
        for (std::size_t i = 0; i < y.size(); ++i)
            y.data()[i] = std::tanh(y.data()[i]);
        cached = y;
        break;
    }
}

void
ActivationLayer::backward(const Matrix &grad_y, Matrix &grad_x) const
{
    grad_x = grad_y;
    switch (_kind) {
      case Activation::Identity:
        break;
      case Activation::ReLU:
        MARLIN_ASSERT(cached.size() == grad_y.size(),
                      "ReLU backward without forward");
        numeric::kernels::active().reluBackward(
            cached.data(), grad_x.data(), grad_x.size());
        break;
      case Activation::Tanh:
        MARLIN_ASSERT(cached.size() == grad_y.size(),
                      "Tanh backward without forward");
        for (std::size_t i = 0; i < grad_x.size(); ++i) {
            const Real t = cached.data()[i];
            grad_x.data()[i] *= (Real(1) - t * t);
        }
        break;
    }
}

} // namespace marlin::nn
