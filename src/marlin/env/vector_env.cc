#include "marlin/env/vector_env.hh"

#include <algorithm>

#include "marlin/base/logging.hh"
#include "marlin/base/thread_pool.hh"

namespace marlin::env
{

namespace
{

// Lanes below this count step serially: dispatching the pool costs
// more than a handful of particle-physics ticks.
constexpr std::size_t parallelLaneThreshold = 4;

bool
useParallel(base::ThreadPool &pool, std::size_t lanes)
{
    return pool.numThreads() > 1 && lanes >= parallelLaneThreshold &&
           !base::ThreadPool::inWorker();
}

} // namespace

VectorEnvironment::VectorEnvironment(const EnvFactory &factory,
                                     std::size_t count)
{
    MARLIN_ASSERT(count >= 1, "vector env needs at least one lane");
    MARLIN_ASSERT(factory != nullptr, "vector env needs a factory");
    lanes.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        lanes.push_back(factory(i));
        MARLIN_ASSERT(lanes.back() != nullptr,
                      "factory returned a null environment");
    }
    const std::size_t agents = lanes.front()->numAgents();
    for (const auto &lane_env : lanes) {
        MARLIN_ASSERT(lane_env->numAgents() == agents,
                      "vector env lanes must be homogeneous");
        for (std::size_t a = 0; a < agents; ++a) {
            MARLIN_ASSERT(lane_env->obsDim(a) ==
                              lanes.front()->obsDim(a),
                          "vector env lanes must share obs shapes");
        }
    }
}

std::vector<std::vector<std::vector<Real>>>
VectorEnvironment::reset()
{
    // Each lane owns its Environment and RNG, and each writes only
    // its own slot of the preallocated result, so lanes fan out on
    // the pool with no synchronization and bit-identical outcomes
    // for any thread count.
    std::vector<std::vector<std::vector<Real>>> obs(lanes.size());
    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, lanes.size())) {
        for (std::size_t i = 0; i < lanes.size(); ++i)
            obs[i] = lanes[i]->reset();
        return obs;
    }
    pool.parallelFor(0, lanes.size(), 1,
                     [&](std::size_t i0, std::size_t i1) {
                         for (std::size_t i = i0; i < i1; ++i)
                             obs[i] = lanes[i]->reset();
                     });
    return obs;
}

std::vector<std::vector<Real>>
VectorEnvironment::resetLane(std::size_t i)
{
    MARLIN_ASSERT(i < lanes.size(), "lane index out of range");
    return lanes[i]->reset();
}

std::vector<StepResult>
VectorEnvironment::step(const std::vector<std::vector<int>> &actions)
{
    MARLIN_ASSERT(actions.size() == lanes.size(),
                  "one action vector per lane required");
    std::vector<StepResult> results(lanes.size());
    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, lanes.size())) {
        for (std::size_t i = 0; i < lanes.size(); ++i)
            results[i] = lanes[i]->step(actions[i]);
        return results;
    }
    pool.parallelFor(0, lanes.size(), 1,
                     [&](std::size_t i0, std::size_t i1) {
                         for (std::size_t i = i0; i < i1; ++i)
                             results[i] = lanes[i]->step(actions[i]);
                     });
    return results;
}

void
VectorEnvironment::initLayout(ObsBatch &out) const
{
    const std::size_t agents = lanes.front()->numAgents();
    out.agentOffsets.resize(agents + 1);
    std::size_t offset = 0;
    for (std::size_t a = 0; a < agents; ++a) {
        out.agentOffsets[a] = offset;
        offset += lanes.front()->obsDim(a);
    }
    out.agentOffsets[agents] = offset;
    out.laneStride = offset;
    out.data.resize(lanes.size() * offset);
}

void
VectorEnvironment::resetInto(ObsBatch &out)
{
    initLayout(out);
    const std::size_t agents = lanes.front()->numAgents();
    laneObsScratch.resize(lanes.size());
    // Each lane resets into its own retained scratch, then copies
    // into its disjoint slice of the flat batch — safe to fan out,
    // and the scratch keeps lane RNG draws identical to serial.
    const auto reset_lane = [&](std::size_t i) {
        lanes[i]->resetInto(laneObsScratch[i]);
        for (std::size_t a = 0; a < agents; ++a) {
            const std::vector<Real> &src = laneObsScratch[i][a];
            std::copy(src.begin(), src.end(), out.agentObs(i, a));
        }
    };
    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, lanes.size())) {
        for (std::size_t i = 0; i < lanes.size(); ++i)
            reset_lane(i);
        return;
    }
    pool.parallelFor(0, lanes.size(), 1,
                     [&](std::size_t i0, std::size_t i1) {
                         for (std::size_t i = i0; i < i1; ++i)
                             reset_lane(i);
                     });
}

void
VectorEnvironment::stepInto(
    const std::vector<std::vector<int>> &actions, StepBatch &out)
{
    MARLIN_ASSERT(actions.size() == lanes.size(),
                  "one action vector per lane required");
    initLayout(out.observations);
    const std::size_t agents = lanes.front()->numAgents();
    out.rewards.resize(lanes.size() * agents);
    out.dones.resize(lanes.size() * agents);
    laneStepScratch.resize(lanes.size());

    const auto step_lane = [&](std::size_t i) {
        StepResult &scratch = laneStepScratch[i];
        lanes[i]->stepInto(actions[i], scratch);
        for (std::size_t a = 0; a < agents; ++a) {
            const std::vector<Real> &src = scratch.observations[a];
            std::copy(src.begin(), src.end(),
                      out.observations.agentObs(i, a));
            out.rewards[i * agents + a] = scratch.rewards[a];
            out.dones[i * agents + a] =
                scratch.dones[a] ? std::uint8_t{1} : std::uint8_t{0};
        }
    };
    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, lanes.size())) {
        for (std::size_t i = 0; i < lanes.size(); ++i)
            step_lane(i);
        return;
    }
    pool.parallelFor(0, lanes.size(), 1,
                     [&](std::size_t i0, std::size_t i1) {
                         for (std::size_t i = i0; i < i1; ++i)
                             step_lane(i);
                     });
}

} // namespace marlin::env
