/**
 * @file
 * The phase taxonomy of the paper's characterization: the top level
 * splits end-to-end training into action selection / update all
 * trainers / other (Figure 2); update-all-trainers splits into
 * mini-batch sampling / target-Q calculation / Q loss & P loss
 * (Figure 3).
 */

#ifndef MARLIN_PROFILE_PHASE_HH
#define MARLIN_PROFILE_PHASE_HH

#include <array>
#include <cstddef>

namespace marlin::profile
{

/** Training phases instrumented by the train loop. */
enum class Phase : std::size_t
{
    ActionSelection = 0, ///< Actor forward + exploration.
    EnvStep,             ///< Physics + rewards ("other segments").
    Sampling,            ///< Mini-batch sampling (index plan + gather).
    TargetQ,             ///< Next actions + target critic forward.
    QPLoss,              ///< Critic/actor losses + backprop + Adam.
    BufferAdd,           ///< Replay insertion ("other segments").
    LayoutReorg,         ///< Data layout reshaping (Section IV-B2).
    NumPhases
};

inline constexpr std::size_t numPhases =
    static_cast<std::size_t>(Phase::NumPhases);

/** Printable phase name. */
constexpr const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::ActionSelection:
        return "action_selection";
      case Phase::EnvStep:
        return "env_step";
      case Phase::Sampling:
        return "mini_batch_sampling";
      case Phase::TargetQ:
        return "target_q";
      case Phase::QPLoss:
        return "q_p_loss";
      case Phase::BufferAdd:
        return "buffer_add";
      case Phase::LayoutReorg:
        return "layout_reorg";
      default:
        return "?";
    }
}

/** Phases composing the paper's "update all trainers" stage. */
inline constexpr std::array<Phase, 4> updateAllTrainersPhases = {
    Phase::Sampling, Phase::TargetQ, Phase::QPLoss, Phase::LayoutReorg};

} // namespace marlin::profile

#endif // MARLIN_PROFILE_PHASE_HH
