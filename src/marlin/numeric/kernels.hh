/**
 * @file
 * ISA-dispatched vector kernel layer for the training hot paths.
 *
 * Every dense inner loop the paper's characterization blames for
 * training time — GEMM row blocks, elementwise ops, Adam's
 * per-parameter update, soft target-network updates and the replay
 * gather copies — funnels through one table of function pointers
 * selected at startup: a portable scalar reference, and an AVX2+FMA
 * implementation entered only after cpuid confirms the hardware
 * supports it (the main binary stays baseline x86-64).
 *
 * Determinism contract, extending PR 1's thread-count guarantee:
 *  - For a fixed ISA, results are bit-identical across thread
 *    counts; callers partition work over disjoint outputs and every
 *    kernel processes each output element with the same IEEE op
 *    sequence regardless of partition.
 *  - The scalar table is the reproducibility reference: it performs
 *    exactly the pre-kernel-layer arithmetic (same ops, same
 *    order), so MARLIN_ISA=scalar reproduces historical numerics
 *    bit-for-bit.
 *  - The AVX2 table is lane-parallel only: each output element is
 *    computed by one SIMD lane running the identical mul/add/sqrt
 *    sequence as the scalar reference (the TU is built with
 *    -ffp-contract=off so mul+add never fuses), so scalar and AVX2
 *    results are bit-identical too. Order-dependent reductions
 *    (running sums, dot-product norms) stay scalar for this reason.
 *
 * Selection: best available ISA at startup, overridable with the
 * MARLIN_ISA=scalar|avx2 environment variable, the --isa CLI/bench
 * flag, or setIsa() from code.
 */

#ifndef MARLIN_NUMERIC_KERNELS_HH
#define MARLIN_NUMERIC_KERNELS_HH

#include <cstddef>
#include <optional>
#include <string>

#include "marlin/base/types.hh"

namespace marlin::numeric::kernels
{

/** Instruction sets a kernel table can be compiled for. */
enum class Isa { Scalar, Avx2 };

/** Per-step constants for the Adam update kernel. */
struct AdamParams
{
    Real beta1;
    Real beta2;
    /** 1 - beta1^t, the first-moment bias correction. */
    Real biasCorr1;
    /** 1 - beta2^t, the second-moment bias correction. */
    Real biasCorr2;
    Real lr;
    Real epsilon;
};

/**
 * The kernel table. All pointers are non-null in every table; sizes
 * of zero are no-ops. Pointer arguments must not alias unless a
 * kernel's contract says otherwise (in-place operands are explicit).
 */
struct KernelTable
{
    Isa isa;

    /** y[i] += a * x[i]. */
    void (*axpy)(Real a, const Real *x, Real *y, std::size_t n);

    /** y[i] += x[i]. */
    void (*add)(const Real *x, Real *y, std::size_t n);

    /** y[i] -= x[i]. */
    void (*sub)(const Real *x, Real *y, std::size_t n);

    /** y[i] *= a. */
    void (*scale)(Real a, Real *y, std::size_t n);

    /** y[i] = (y[i] < lo) ? lo : (hi < y[i]) ? hi : y[i]. */
    void (*clamp)(Real lo, Real hi, Real *y, std::size_t n);

    /** y[i] = (x[i] < 0) ? 0 : x[i]. Preserves NaN and -0. */
    void (*reluForward)(const Real *x, Real *y, std::size_t n);

    /** g[i] = (pre[i] <= 0) ? 0 : g[i]. */
    void (*reluBackward)(const Real *pre, Real *g, std::size_t n);

    /**
     * One Adam step over a parameter block:
     *   m[i] = beta1 * m[i] + (1 - beta1) * g[i]
     *   v[i] = beta2 * v[i] + (1 - beta2) * g[i] * g[i]
     *   w[i] -= lr * (m[i] / biasCorr1)
     *          / (sqrt(v[i] / biasCorr2) + epsilon)
     * exactly in that order per element.
     */
    void (*adamStep)(const AdamParams &p, const Real *g, Real *w,
                     Real *m, Real *v, std::size_t n);

    /** Polyak update: d[i] = tau * s[i] + (1 - tau) * d[i]. */
    void (*softUpdate)(Real tau, const Real *s, Real *d,
                       std::size_t n);

    /** d[i] = s[i] (gather/scatter copy loop). */
    void (*copy)(const Real *s, Real *d, std::size_t n);

    /**
     * Fused GEMM row block shared by all gemm variants:
     *   c[j] += sum_{t < kb} a[t * astride] * b[t * ldb + j]
     * for j < n, with the kb terms of each c[j] accumulated in
     * ascending t order (the bit-exactness invariant every caller
     * relies on). When skip_zeros, coefficients exactly equal to 0
     * contribute nothing — not even a 0 * x add — which both honours
     * the forward pass's one-hot/ReLU sparsity shortcut and keeps
     * -0/+0 bit patterns in c untouched, exactly like the scalar
     * reference.
     */
    void (*gemmBlock)(const Real *a, std::size_t astride,
                      const Real *b, std::size_t ldb, std::size_t kb,
                      Real *c, std::size_t n, bool skip_zeros);
};

/**
 * The active table. First use resolves it: MARLIN_ISA if set (fatal
 * on unknown names or ISAs the host can't run), else the best ISA
 * the binary has compiled in and the CPU supports.
 */
const KernelTable &active();

/** ISA of the active table. */
Isa activeIsa();

/** "scalar" or "avx2". */
const char *isaName(Isa isa);

/**
 * Whether @p isa can run here: compiled into this binary and
 * supported by the host CPU. Scalar is always available.
 */
bool isaAvailable(Isa isa);

/** Parse "scalar" / "avx2"; empty optional on anything else. */
std::optional<Isa> isaFromString(const std::string &name);

/**
 * Force the active table. fatal() if the ISA is unavailable. Not
 * synchronized against in-flight kernels — call at startup or
 * between training phases, like ThreadPool::setGlobalThreads().
 */
void setIsa(Isa isa);

/**
 * Route every kernel call through counting wrappers that bump
 * per-kernel invocation and element counters in the obs registry
 * ("kernels.<name>.calls" / "kernels.<name>.elems"; gemmBlock counts
 * multiply-accumulates). Off by default, and the off state is free:
 * the dispatched table *is* the real ISA table, so kernel calls carry
 * exactly zero instrumentation cost until the CLI or a bench enables
 * counting for a telemetry/trace run. Not synchronized against
 * in-flight kernels — same caveat as setIsa().
 */
void setCounting(bool enabled);

/** Whether the counting shim is currently installed. */
bool countingEnabled();

/** RAII ISA override for tests and benches comparing ISAs. */
class ScopedIsa
{
  public:
    explicit ScopedIsa(Isa isa) : previous(activeIsa())
    {
        setIsa(isa);
    }
    ~ScopedIsa() { setIsa(previous); }
    ScopedIsa(const ScopedIsa &) = delete;
    ScopedIsa &operator=(const ScopedIsa &) = delete;

  private:
    Isa previous;
};

} // namespace marlin::numeric::kernels

#endif // MARLIN_NUMERIC_KERNELS_HH
