/**
 * @file
 * Cooperative fleet example: MATD3 with information-prioritized
 * locality-aware sampling on cooperative navigation — the paper's
 * full optimization stack on its cooperative workload, including
 * the interleaved data-layout backend.
 *
 *   ./cooperative_fleet [agents] [episodes]
 */

#include <cstdio>
#include <cstdlib>

#include "marlin/marlin.hh"

using namespace marlin;

int
main(int argc, char **argv)
{
    const std::size_t agents =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
    const std::size_t episodes =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 800;

    auto environment =
        env::makeCooperativeNavigationEnv(agents, 31);

    core::TrainConfig config;
    config.batchSize = 128;
    config.bufferCapacity = 1 << 15;
    config.warmupTransitions = 256;
    config.updateEvery = 100;
    config.epsilonDecayEpisodes = episodes / 2;
    config.policyDelay = 2;
    // Sample from the reorganized key-value layout (Section IV-B2).
    config.backend = core::SamplingBackend::Interleaved;
    config.seed = 31;

    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));

    // Information-prioritized locality-aware sampling: PER picks
    // the references, the predictor sizes the neighbor runs.
    const BufferIndex capacity = config.bufferCapacity;
    core::Matd3Trainer trainer(
        dims, environment->actionDim(), config, [capacity] {
            replay::PerConfig per;
            per.capacity = capacity;
            per.betaAnneal = Real(1e-5);
            return std::make_unique<
                replay::InfoPrioritizedLocalitySampler>(per);
        });

    core::TrainLoop loop(*environment, trainer, config);
    std::printf("MATD3 + IP-locality sampling + interleaved layout, "
                "%zu agents, %zu episodes\n",
                agents, episodes);
    const std::size_t report_every =
        std::max<std::size_t>(1, episodes / 8);
    double window = 0;
    auto result =
        loop.run(episodes, [&](const core::EpisodeInfo &e) {
            window += e.meanReward;
            if ((e.episode + 1) % report_every == 0) {
                std::printf("  episode %5zu  mean reward %8.2f\n",
                            e.episode + 1, window / report_every);
                window = 0;
            }
        });

    std::printf("\nfinal score: %.2f over %llu updates\n",
                result.finalScore,
                static_cast<unsigned long long>(result.updateCalls));
    std::printf("%s\n",
                profile::formatUpdate(
                    profile::updateBreakdown(result.timer))
                    .c_str());
    std::printf("interleaved store mirrors %llu transitions (%s)\n",
                static_cast<unsigned long long>(
                    loop.interleavedStore()->size()),
                formatBytes(
                    loop.interleavedStore()->storageBytes())
                    .c_str());
    return 0;
}
