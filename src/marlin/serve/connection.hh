/**
 * @file
 * Per-connection state of the serving event loop: the frame
 * reassembly decoder and the pending-output buffer that absorbs
 * short writes. Both buffers retain capacity, so a long-lived
 * connection settles into zero per-request allocation.
 */

#ifndef MARLIN_SERVE_CONNECTION_HH
#define MARLIN_SERVE_CONNECTION_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "marlin/serve/protocol.hh"

namespace marlin::serve
{

/** One accepted client connection. */
struct Connection
{
    Connection(std::uint64_t id_in, int fd_in,
               std::size_t max_payload_bytes)
        : id(id_in), fd(fd_in),
          decoder(requestMagic, max_payload_bytes)
    {
    }

    /** Stable id (fds are recycled by the kernel, ids are not). */
    std::uint64_t id = 0;
    int fd = -1;

    /** Request reassembly across fragmented reads. */
    FrameDecoder decoder;

    /**
     * Encoded responses not yet accepted by the kernel. outOff
     * tracks the sent prefix after a short write.
     */
    std::vector<std::byte> outBuf;
    std::size_t outOff = 0;

    /**
     * Set on a framing violation: the error response is flushed,
     * then the connection closes (a poisoned length-prefixed
     * stream cannot be resynchronized).
     */
    bool closeAfterFlush = false;

    /** Requests answered on this connection (stats/tests). */
    std::uint64_t responses = 0;

    bool
    hasPendingOutput() const
    {
        return outOff < outBuf.size();
    }

    /** Drop the sent prefix once everything was written. */
    void
    compactOutput()
    {
        if (!hasPendingOutput()) {
            outBuf.clear();
            outOff = 0;
        }
    }
};

} // namespace marlin::serve

#endif // MARLIN_SERVE_CONNECTION_HH
