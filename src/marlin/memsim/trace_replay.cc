#include "marlin/memsim/trace_replay.hh"

namespace marlin::memsim
{

TraceReplayResult
replayTrace(CacheHierarchy &hierarchy,
            const replay::AccessTrace &trace, double frequency_hz)
{
    const std::uint64_t cycles_before = hierarchy.stats().cycles;
    for (const replay::MemAccess &a : trace.entries())
        hierarchy.access(a.addr, a.bytes);

    TraceReplayResult result;
    result.stats = hierarchy.stats();
    result.traceEntries = trace.size();
    result.bytes = trace.totalBytes();
    result.memorySeconds =
        static_cast<double>(result.stats.cycles - cycles_before) /
        frequency_hz;
    return result;
}

} // namespace marlin::memsim
