/**
 * @file
 * Flow-event id scheme linking one transition's actor-push span to
 * its learner-drain span in the Perfetto export.
 *
 * Sequence numbers are per-actor (each ring has its own producer
 * stream starting at 0), so the pair (actor, seq) uniquely names a
 * transition for the whole run. Packing: actor id in the top 24
 * bits + 1 (so a valid id is never 0 — 0 means "no flow"), seq in
 * the low 40 bits; a 40-bit per-actor sequence space covers ~10^12
 * transitions, far past any traceable run length.
 */

#ifndef MARLIN_ASYNC_FLOW_ID_HH
#define MARLIN_ASYNC_FLOW_ID_HH

#include <cstdint>

namespace marlin::async
{

/** Trace flow id of the transition (actor, seq). Never 0. */
inline std::uint64_t
transitionFlowId(std::size_t actor_id, std::uint64_t seq) noexcept
{
    return ((static_cast<std::uint64_t>(actor_id) + 1) << 40) |
           (seq & ((std::uint64_t{1} << 40) - 1));
}

} // namespace marlin::async

#endif // MARLIN_ASYNC_FLOW_ID_HH
