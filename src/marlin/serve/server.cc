#include "marlin/serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "marlin/base/instant.hh"
#include "marlin/base/logging.hh"
#include "marlin/obs/metrics.hh"
#include "marlin/obs/trace.hh"

namespace marlin::serve
{

namespace
{

obs::Counter &
counterOf(const char *name)
{
    return obs::Registry::instance().counter(name);
}

obs::Counter &
acceptedCounter()
{
    static obs::Counter &c = counterOf("serve.accepted");
    return c;
}

obs::Counter &
closedCounter()
{
    static obs::Counter &c = counterOf("serve.closed");
    return c;
}

obs::Counter &
eofCounter()
{
    static obs::Counter &c = counterOf("serve.eof");
    return c;
}

obs::Counter &
protocolErrorCounter()
{
    static obs::Counter &c = counterOf("serve.protocol_errors");
    return c;
}

obs::Counter &
responseCounter()
{
    static obs::Counter &c = counterOf("serve.responses");
    return c;
}

obs::Counter &
reloadCounter()
{
    static obs::Counter &c = counterOf("serve.reloads");
    return c;
}

obs::Counter &
bytesInCounter()
{
    static obs::Counter &c = counterOf("serve.bytes_in");
    return c;
}

obs::Counter &
bytesOutCounter()
{
    static obs::Counter &c = counterOf("serve.bytes_out");
    return c;
}

obs::Gauge &
connectionsGauge()
{
    static obs::Gauge &g =
        obs::Registry::instance().gauge("serve.connections");
    return g;
}

obs::Gauge &
qpsGauge()
{
    static obs::Gauge &g =
        obs::Registry::instance().gauge("serve.qps");
    return g;
}

obs::Histogram &
requestLatencyHistogram()
{
    static obs::Histogram &h = obs::Registry::instance().histogram(
        "serve.request.latency_us",
        {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
         100000});
    return h;
}

void
setNonBlocking(int fd)
{
    // accept4/SOCK_NONBLOCK covers the normal path; this is the
    // belt-and-braces fallback for platforms without accept4.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

Server::Server(ServePolicy &policy_in, ServeConfig config_in)
    : policy(policy_in), config(config_in),
      batcher(config.batchMax, config.batchDeadlineUs),
      poller(config.poller)
{
}

Server::~Server()
{
    for (auto &[id, conn] : connections)
        ::close(conn.fd);
    if (listenFd >= 0)
        ::close(listenFd);
}

bool
Server::start()
{
    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0) {
        warn("serve: socket: %s", std::strerror(errno));
        return false;
    }
    setNonBlocking(listenFd);
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(config.port);
    if (::bind(listenFd,
               reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        warn("serve: bind port %u: %s", config.port,
             std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    if (::listen(listenFd, config.backlog) != 0) {
        warn("serve: listen: %s", std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }

    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd,
                      reinterpret_cast<struct sockaddr *>(&bound),
                      &len) == 0) {
        boundPort = ntohs(bound.sin_port);
    }

    poller.add(listenFd);
    lastReloadCheckNs = base::nowNsSinceStart();
    windowStartNs = lastReloadCheckNs;
    return true;
}

const char *
Server::backendName() const
{
    return poller.backendName();
}

void
Server::setReloadHook(std::function<bool(bool)> hook)
{
    reloadHook = std::move(hook);
}

ServeStats
Server::stats() const
{
    ServeStats s = counters;
    s.activeConnections = connections.size();
    return s;
}

int
Server::waitTimeoutMs() const
{
    std::uint64_t cap_ms = 50;
    if (config.reloadPollMs > 0)
        cap_ms = std::min(cap_ms, config.reloadPollMs);
    if (!batcher.empty()) {
        // Truncation is deliberate: a sub-millisecond deadline
        // polls with timeout 0 until it expires, a bounded spin
        // that keeps tail latency at the configured microseconds
        // instead of the poller's millisecond floor.
        const std::uint64_t ns =
            batcher.nsUntilDeadline(base::nowNsSinceStart());
        cap_ms = std::min(cap_ms, ns / 1000000);
    }
    return static_cast<int>(cap_ms);
}

void
Server::run()
{
    MARLIN_ASSERT(listenFd >= 0, "Server::run before start()");
    while (!stopFlag.load(std::memory_order_acquire)) {
        poller.wait(events, waitTimeoutMs());

        for (const PollEvent &ev : events) {
            if (ev.fd == listenFd) {
                if (ev.readable)
                    acceptClients();
                continue;
            }
            // Re-resolve per action: an earlier event (or a batch
            // flush inside drainDecoder) may have closed this fd.
            auto it = byFd.find(ev.fd);
            if (it == byFd.end())
                continue;
            const std::uint64_t id = it->second;
            if (ev.closed) {
                closeConnection(id, true);
                continue;
            }
            if (ev.readable)
                handleReadable(connections.at(id));
            auto again = byFd.find(ev.fd);
            if (again == byFd.end() || again->second != id)
                continue;
            if (ev.writable)
                flushOutput(connections.at(id));
        }

        const std::uint64_t now = base::nowNsSinceStart();
        if (!batcher.empty() &&
            (batcher.full() || batcher.deadlineExpired(now))) {
            flushBatch();
        }
        maybeReload(now);
        publishGauges(now);
    }
}

void
Server::acceptClients()
{
    for (;;) {
        struct sockaddr_in peer{};
        socklen_t len = sizeof(peer);
        const int fd = ::accept(
            listenFd, reinterpret_cast<struct sockaddr *>(&peer),
            &len);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            warn("serve: accept: %s", std::strerror(errno));
            return;
        }
        setNonBlocking(fd);
        const int one = 1;
        // Batched responses are small; Nagle would add a spurious
        // ~40ms to every under-MSS reply.
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        const std::uint64_t id = nextConnId++;
        connections.emplace(
            id, Connection(id, fd, config.maxPayloadBytes));
        byFd[fd] = id;
        poller.add(fd);
        ++counters.accepted;
        acceptedCounter().add();
        debugLog("serve: accepted connection %llu (fd %d)",
                 static_cast<unsigned long long>(id), fd);
    }
}

void
Server::handleReadable(Connection &conn)
{
    char buf[16384];
    for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            bytesInCounter().add(static_cast<std::uint64_t>(n));
            conn.decoder.feed(buf, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof(buf))
                break;
            continue;
        }
        if (n == 0) {
            ++counters.eofs;
            eofCounter().add();
            closeConnection(conn.id, true);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeConnection(conn.id, false);
        return;
    }
    drainDecoder(conn);
}

void
Server::drainDecoder(Connection &conn)
{
    const std::uint64_t id = conn.id;
    RequestView req;
    for (;;) {
        const FrameDecoder::Result r = conn.decoder.next(req);
        if (r == FrameDecoder::Result::NeedMore)
            return;
        if (FrameDecoder::isError(r)) {
            ++counters.protocolErrors;
            protocolErrorCounter().add();
            debugLog("serve: connection %llu poisoned (%s)",
                     static_cast<unsigned long long>(id),
                     FrameDecoder::resultName(r));
            encodeResponse(conn.outBuf, Status::BadFrame, nullptr,
                           0);
            conn.closeAfterFlush = true;
            flushOutput(conn);
            return;
        }
        const std::uint64_t now = base::nowNsSinceStart();
        if (req.agentId >= policy.numAgents()) {
            encodeResponse(conn.outBuf, Status::BadAgent, nullptr,
                           0);
            flushOutput(conn);
        } else if (req.obsCount() !=
                   policy.obsDim(req.agentId)) {
            encodeResponse(conn.outBuf, Status::BadObsDim, nullptr,
                           0);
            flushOutput(conn);
        } else {
            batcher.add(id, req.agentId, req.payload,
                        req.obsCount(), now);
            if (batcher.full())
                flushBatch();
        }
        // An in-band error reply (or a flushed batch) may have hit
        // a dead socket and closed the connection under us.
        auto it = connections.find(id);
        if (it == connections.end())
            return;
    }
}

void
Server::flushBatch()
{
    const std::uint64_t now = base::nowNsSinceStart();
    batcher.flush(
        policy,
        [this](std::uint64_t conn_id, const Real *actions,
               std::size_t count, std::uint64_t enqueue_ns,
               std::uint64_t trace_id) {
            auto it = connections.find(conn_id);
            if (it == connections.end())
                return; // Client left while its request waited.
            Connection &conn = it->second;
            const std::uint64_t write_start =
                base::nowNsSinceStart();
            encodeResponse(conn.outBuf, Status::Ok, actions,
                           count);
            ++conn.responses;
            ++counters.responses;
            responseCounter().add();
            requestLatencyHistogram().observe(
                static_cast<double>(base::nowNsSinceStart() -
                                    enqueue_ns) /
                1000.0);
            if (trace_id != 0) {
                // Flow in: closes the arrow the batcher opened at
                // enqueue, so one request reads accept → enqueue →
                // infer → write in the trace.
                obs::recordFlowSpan(
                    "serve_write", "serve", write_start,
                    base::nowNsSinceStart() - write_start,
                    trace_id, obs::FlowDir::In);
            }
            flushOutput(conn);
        },
        now);
    ++counters.batches;
}

void
Server::flushOutput(Connection &conn)
{
    while (conn.hasPendingOutput()) {
        const ssize_t n = ::send(
            conn.fd, conn.outBuf.data() + conn.outOff,
            conn.outBuf.size() - conn.outOff, MSG_NOSIGNAL);
        if (n > 0) {
            bytesOutCounter().add(static_cast<std::uint64_t>(n));
            conn.outOff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Kernel buffer full: finish later on EPOLLOUT.
            poller.setWriteInterest(conn.fd, true);
            return;
        }
        if (n < 0 && errno == EINTR)
            continue;
        closeConnection(conn.id, false);
        return;
    }
    conn.compactOutput();
    poller.setWriteInterest(conn.fd, false);
    if (conn.closeAfterFlush)
        closeConnection(conn.id, true);
}

void
Server::closeConnection(std::uint64_t id, bool expected)
{
    auto it = connections.find(id);
    if (it == connections.end())
        return;
    const int fd = it->second.fd;
    poller.remove(fd);
    ::close(fd);
    byFd.erase(fd);
    connections.erase(it);
    ++counters.closed;
    closedCounter().add();
    if (!expected)
        warn("serve: connection %llu closed on socket error",
             static_cast<unsigned long long>(id));
}

void
Server::maybeReload(std::uint64_t now_ns)
{
    const bool requested =
        reloadFlag.exchange(false, std::memory_order_acq_rel);
    const bool poll_due =
        config.reloadPollMs > 0 &&
        now_ns - lastReloadCheckNs >=
            config.reloadPollMs * 1000000ull;
    if (!requested && !poll_due)
        return;
    lastReloadCheckNs = now_ns;
    if (!reloadHook)
        return;
    if (reloadHook(requested)) {
        ++counters.reloads;
        reloadCounter().add();
        inform("serve: weights reloaded (version %llu, %zu "
               "connection(s) live)",
               static_cast<unsigned long long>(policy.version()),
               connections.size());
    }
}

void
Server::publishGauges(std::uint64_t now_ns)
{
    connectionsGauge().set(
        static_cast<double>(connections.size()));
    const std::uint64_t elapsed = now_ns - windowStartNs;
    if (elapsed < 1000000000ull)
        return;
    const std::uint64_t served =
        counters.responses - windowResponses;
    qpsGauge().set(static_cast<double>(served) * 1e9 /
                   static_cast<double>(elapsed));
    windowStartNs = now_ns;
    windowResponses = counters.responses;
}

namespace
{
std::atomic<Server *> g_sighup_server{nullptr};

void
sighupHandler(int)
{
    Server *s = g_sighup_server.load(std::memory_order_acquire);
    if (s != nullptr)
        s->requestReload();
}
} // namespace

void
installSighupReload(Server *server)
{
    g_sighup_server.store(server, std::memory_order_release);
    struct sigaction sa{};
    sa.sa_handler = server != nullptr ? sighupHandler : SIG_DFL;
    sa.sa_flags = SA_RESTART;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGHUP, &sa, nullptr);
}

} // namespace marlin::serve
