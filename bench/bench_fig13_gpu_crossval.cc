/**
 * @file
 * Figure 13: mini-batch sampling (MBS) and total training time (TT)
 * savings on an i7-9700K paired with a GTX 1070, MADDPG
 * predator-prey.
 *
 * Paper reference: MBS savings 25.2-39.2%; TT savings only
 * 2.9-13.3% — smaller than the CPU-only platform (Figure 12)
 * because per-op PCIe transfers and kernel launches inflate the
 * network phases, shrinking the sampling share of the total.
 */

#include "crossval_common.hh"

int
main(int argc, char **argv)
{
    using namespace marlin::bench;
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig13_gpu_crossval");
    banner("Figure 13: cross-validation on i7-9700K + GTX 1070 "
           "(simulated)");
    printCrossval("i7-9700K + GTX 1070", true);
    std::printf("\npaper shape: same MBS savings as Figure 12, but "
                "TT savings are smaller\n(2.9-13.3%%) than the "
                "CPU-only platform at every agent count.\n");
    return 0;
}
