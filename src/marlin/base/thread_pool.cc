#include "marlin/base/thread_pool.hh"

#include <cstdlib>
#include <memory>

#include "marlin/base/instant.hh"
#include "marlin/base/logging.hh"

namespace marlin::base
{

namespace
{

/** Set while the thread executes chunks of a pool dispatch. */
thread_local bool t_inWorker = false;

std::atomic<ThreadPool::TaskHook> g_taskHook{nullptr};

/** Requested size for the global pool; 0 = resolve from env/hw. */
std::size_t g_requestedThreads = 0;

std::mutex g_globalMutex;
std::unique_ptr<ThreadPool> g_globalPool;

std::size_t
resolveThreads(std::size_t requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("MARLIN_THREADS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<std::size_t>(n);
        warn("ignoring malformed MARLIN_THREADS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : _threads(threads > 0 ? threads : 1)
{
    // Worker 0 is whichever thread calls parallelFor; only the
    // surplus becomes OS threads, so a 1-thread pool spawns nothing.
    workers.reserve(_threads - 1);
    for (std::size_t i = 0; i + 1 < _threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wakeWorkers.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::runChunks(Job &j)
{
    const bool was_worker = t_inWorker;
    t_inWorker = true;
    while (true) {
        const std::size_t chunk =
            j.nextChunk.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= j.chunks)
            break;
        const std::size_t c0 = j.begin + chunk * j.grain;
        std::size_t c1 = c0 + j.grain;
        if (c1 > j.end)
            c1 = j.end; // Tail chunk.
        const TaskHook hook =
            g_taskHook.load(std::memory_order_relaxed);
        const std::uint64_t start_ns =
            hook != nullptr ? nowNsSinceStart() : 0;
        try {
            j.fn(j.ctx, c0, c1);
        } catch (...) {
            std::lock_guard<std::mutex> lock(j.errorMutex);
            if (!j.error)
                j.error = std::current_exception();
        }
        if (hook != nullptr)
            hook(start_ns, nowNsSinceStart() - start_ns);
        j.pendingChunks.fetch_sub(1, std::memory_order_acq_rel);
    }
    t_inWorker = was_worker;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    while (true) {
        Job *myjob = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wakeWorkers.wait(lock, [&] {
                return stopping ||
                       (job != nullptr && generation != seen);
            });
            if (stopping)
                return;
            seen = generation;
            // Registering under the lock pins the Job: parallelFor
            // only retires it once activeWorkers drains back to
            // zero, so a straggler can never touch a dead Job.
            myjob = job;
            ++myjob->activeWorkers;
        }
        runChunks(*myjob);
        {
            std::lock_guard<std::mutex> lock(mutex);
            --myjob->activeWorkers;
        }
        jobDone.notify_all();
    }
}

void
ThreadPool::parallelForRaw(std::size_t begin, std::size_t end,
                           std::size_t grain, RawRangeFn fn,
                           void *ctx)
{
    if (begin >= end)
        return;
    const std::size_t range = end - begin;
    if (grain == 0)
        grain = 1;

    // Inline paths. Nested calls from a worker are rejected as
    // parallel dispatches: the pool's threads are busy running the
    // outer job and queueing behind them would deadlock, so the
    // nested range runs serially right here. Single-thread pools and
    // sub-grain ranges take the same trivial path.
    if (_threads == 1 || range <= grain || t_inWorker) {
        fn(ctx, begin, end);
        return;
    }

    // Static partition: chunk size is a pure function of (range,
    // grain, threads). Bit-identical results do not hinge on which
    // worker runs which chunk — outputs are disjoint per index —
    // only on every index seeing the same per-index arithmetic,
    // which a contiguous partition guarantees.
    const std::size_t max_chunks =
        std::min(_threads, (range + grain - 1) / grain);
    const std::size_t per_chunk =
        ((range + max_chunks - 1) / max_chunks + grain - 1) / grain *
        grain;
    const std::size_t chunks = (range + per_chunk - 1) / per_chunk;

    Job j;
    j.fn = fn;
    j.ctx = ctx;
    j.begin = begin;
    j.end = end;
    j.grain = per_chunk;
    j.chunks = chunks;
    j.pendingChunks.store(chunks, std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> lock(mutex);
        job = &j;
        ++generation;
    }
    wakeWorkers.notify_all();

    // The caller is worker 0: it chews chunks alongside the pool.
    runChunks(j);

    {
        std::unique_lock<std::mutex> lock(mutex);
        jobDone.wait(lock, [&] {
            return j.pendingChunks.load(
                       std::memory_order_acquire) == 0 &&
                   j.activeWorkers == 0;
        });
        job = nullptr;
    }

    if (j.error)
        std::rethrow_exception(j.error);
}

bool
ThreadPool::inWorker()
{
    return t_inWorker;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_globalMutex);
    if (!g_globalPool) {
        g_globalPool = std::make_unique<ThreadPool>(
            resolveThreads(g_requestedThreads));
    }
    return *g_globalPool;
}

void
ThreadPool::setGlobalThreads(std::size_t threads)
{
    std::lock_guard<std::mutex> lock(g_globalMutex);
    g_requestedThreads = threads;
    const std::size_t want = resolveThreads(threads);
    if (g_globalPool && g_globalPool->numThreads() == want)
        return;
    g_globalPool.reset(); // Join the old workers before respawning.
    g_globalPool = std::make_unique<ThreadPool>(want);
}

void
ThreadPool::setTaskHook(TaskHook hook) noexcept
{
    g_taskHook.store(hook, std::memory_order_relaxed);
}

std::size_t
ThreadPool::globalThreads()
{
    std::lock_guard<std::mutex> lock(g_globalMutex);
    if (g_globalPool)
        return g_globalPool->numThreads();
    return resolveThreads(g_requestedThreads);
}

} // namespace marlin::base
