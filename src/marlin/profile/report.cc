#include "marlin/profile/report.hh"

#include "marlin/base/string_utils.hh"

namespace marlin::profile
{

namespace
{

double
pct(double part, double whole)
{
    return whole > 0 ? 100.0 * part / whole : 0.0;
}

} // namespace

TopLevelBreakdown
topLevelBreakdown(const PhaseTimer &timer)
{
    TopLevelBreakdown b;
    b.totalSeconds = timer.totalSeconds();
    const double update = timer.updateAllTrainersSeconds();
    const double action = timer.seconds(Phase::ActionSelection);
    const double other = b.totalSeconds - update - action;
    b.actionSelectionPct = pct(action, b.totalSeconds);
    b.updateAllTrainersPct = pct(update, b.totalSeconds);
    b.otherPct = pct(other, b.totalSeconds);
    return b;
}

UpdateBreakdown
updateBreakdown(const PhaseTimer &timer)
{
    UpdateBreakdown b;
    b.totalSeconds = timer.updateAllTrainersSeconds();
    b.samplingPct = pct(timer.seconds(Phase::Sampling), b.totalSeconds);
    b.targetQPct = pct(timer.seconds(Phase::TargetQ), b.totalSeconds);
    b.qpLossPct = pct(timer.seconds(Phase::QPLoss), b.totalSeconds);
    b.layoutReorgPct =
        pct(timer.seconds(Phase::LayoutReorg), b.totalSeconds);
    return b;
}

std::string
formatTopLevel(const TopLevelBreakdown &b)
{
    return csprintf("total %.2fs | action_selection %.1f%% | "
                    "update_all_trainers %.1f%% | other %.1f%%",
                    b.totalSeconds, b.actionSelectionPct,
                    b.updateAllTrainersPct, b.otherPct);
}

std::string
formatUpdate(const UpdateBreakdown &b)
{
    return csprintf("update %.2fs | sampling %.1f%% | target_q %.1f%% "
                    "| q_p_loss %.1f%% | layout_reorg %.1f%%",
                    b.totalSeconds, b.samplingPct, b.targetQPct,
                    b.qpLossPct, b.layoutReorgPct);
}

std::string
formatPhaseTable(const PhaseTimer &timer)
{
    std::string out =
        csprintf("%-22s %12s %12s\n", "phase", "seconds", "count");
    for (std::size_t i = 0; i < numPhases; ++i) {
        const Phase p = static_cast<Phase>(i);
        out += csprintf("%-22s %12.4f %12llu\n", phaseName(p),
                        timer.seconds(p),
                        static_cast<unsigned long long>(
                            timer.count(p)));
    }
    return out;
}

std::string
formatPhaseCsv(const PhaseTimer &timer)
{
    std::string out = "phase,seconds,count\n";
    for (std::size_t i = 0; i < numPhases; ++i) {
        const Phase p = static_cast<Phase>(i);
        out += csprintf("%s,%.9f,%llu\n", phaseName(p),
                        timer.seconds(p),
                        static_cast<unsigned long long>(
                            timer.count(p)));
    }
    return out;
}

} // namespace marlin::profile
