/**
 * @file
 * Unit and property tests for marlin/replay: ring buffers, the
 * gather loop, and the four sampling strategies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "marlin/replay/gather.hh"
#include "marlin/replay/info_prioritized_sampler.hh"
#include "marlin/replay/locality_sampler.hh"
#include "marlin/replay/prioritized_sampler.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin::replay
{
namespace
{

/** Write a recognizable transition t: obs filled with t, reward t. */
void
addMarked(ReplayBuffer &buf, int t)
{
    const auto &shape = buf.shape();
    std::vector<Real> obs(shape.obsDim, static_cast<Real>(t));
    std::vector<Real> act(shape.actDim, Real(0));
    act[static_cast<std::size_t>(t) % shape.actDim] = Real(1);
    std::vector<Real> next(shape.obsDim, static_cast<Real>(t) + 0.5f);
    buf.add(obs, act, static_cast<Real>(t), next, t % 7 == 0);
}

TEST(ReplayBuffer, StartsEmpty)
{
    ReplayBuffer buf({4, 5}, 16);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.capacity(), 16u);
}

TEST(ReplayBuffer, AddAndView)
{
    ReplayBuffer buf({4, 5}, 16);
    addMarked(buf, 3);
    EXPECT_EQ(buf.size(), 1u);
    auto view = buf.view(0);
    EXPECT_EQ(view.obs[0], Real(3));
    EXPECT_EQ(view.reward, Real(3));
    EXPECT_EQ(view.nextObs[0], Real(3.5));
    EXPECT_EQ(view.done, Real(0));
}

TEST(ReplayBuffer, RingWraparoundOverwritesOldest)
{
    ReplayBuffer buf({2, 5}, 4);
    for (int t = 0; t < 6; ++t)
        addMarked(buf, t);
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.position(), 2u);
    // Slots 0,1 now hold t=4,5; slots 2,3 hold t=2,3.
    EXPECT_EQ(buf.view(0).reward, Real(4));
    EXPECT_EQ(buf.view(1).reward, Real(5));
    EXPECT_EQ(buf.view(2).reward, Real(2));
    EXPECT_EQ(buf.view(3).reward, Real(3));
}

TEST(ReplayBuffer, DoneFlagRoundTrips)
{
    ReplayBuffer buf({2, 5}, 8);
    addMarked(buf, 0); // 0 % 7 == 0 -> done.
    addMarked(buf, 1);
    EXPECT_EQ(buf.view(0).done, Real(1));
    EXPECT_EQ(buf.view(1).done, Real(0));
}

TEST(ReplayBuffer, StorageBytesAccounts)
{
    ReplayBuffer buf({4, 5}, 10);
    // (2*4 + 5 + 2) * 10 floats.
    EXPECT_EQ(buf.storageBytes(), (2 * 4 + 5 + 2) * 10 * sizeof(Real));
}

TEST(MultiAgentBuffer, SynchronizedAdds)
{
    MultiAgentBuffer buf({{3, 5}, {4, 5}}, 8);
    EXPECT_EQ(buf.numAgents(), 2u);
    std::vector<std::vector<Real>> obs = {{1, 1, 1}, {2, 2, 2, 2}};
    std::vector<std::vector<Real>> act = {{1, 0, 0, 0, 0},
                                          {0, 1, 0, 0, 0}};
    std::vector<Real> rew = {1, 2};
    std::vector<std::vector<Real>> next = {{3, 3, 3}, {4, 4, 4, 4}};
    std::vector<bool> done = {false, true};
    buf.add(obs, act, rew, next, done);
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.agent(0).view(0).reward, Real(1));
    EXPECT_EQ(buf.agent(1).view(0).reward, Real(2));
    EXPECT_EQ(buf.agent(1).view(0).done, Real(1));
}

TEST(Gather, CopiesCorrectRows)
{
    ReplayBuffer buf({3, 5}, 32);
    for (int t = 0; t < 20; ++t)
        addMarked(buf, t);
    IndexPlan plan;
    plan.indices = {0, 5, 19, 5};
    AgentBatch batch;
    gatherAgentBatch(buf, plan, batch);
    EXPECT_EQ(batch.obs.rows(), 4u);
    EXPECT_EQ(batch.obs(0, 0), Real(0));
    EXPECT_EQ(batch.obs(1, 0), Real(5));
    EXPECT_EQ(batch.obs(2, 2), Real(19));
    EXPECT_EQ(batch.rewards(3, 0), Real(5));
    EXPECT_EQ(batch.nextObs(1, 0), Real(5.5));
}

TEST(Gather, TraceRecordsThreeEntriesPerRow)
{
    ReplayBuffer buf({3, 5}, 32);
    for (int t = 0; t < 8; ++t)
        addMarked(buf, t);
    IndexPlan plan;
    plan.indices = {1, 2, 3};
    AgentBatch batch;
    AccessTrace trace;
    gatherAgentBatch(buf, plan, batch, &trace);
    // obs + act + nextObs per row.
    EXPECT_EQ(trace.size(), 9u);
    EXPECT_EQ(trace.totalBytes(),
              3 * (3 + 5 + 3) * sizeof(Real));
}

TEST(Gather, AllAgents)
{
    MultiAgentBuffer buf({{2, 5}, {3, 5}, {4, 5}}, 16);
    for (int t = 0; t < 10; ++t) {
        std::vector<std::vector<Real>> obs = {
            {Real(t), 0}, {Real(t), 0, 0}, {Real(t), 0, 0, 0}};
        std::vector<std::vector<Real>> act(
            3, std::vector<Real>{1, 0, 0, 0, 0});
        std::vector<Real> rew = {Real(t), Real(t * 2), Real(t * 3)};
        std::vector<std::vector<Real>> next = obs;
        std::vector<bool> done(3, false);
        buf.add(obs, act, rew, next, done);
    }
    IndexPlan plan;
    plan.indices = {7, 3};
    std::vector<AgentBatch> batches;
    gatherAllAgents(buf, plan, batches);
    ASSERT_EQ(batches.size(), 3u);
    EXPECT_EQ(batches[0].obs.cols(), 2u);
    EXPECT_EQ(batches[2].obs.cols(), 4u);
    EXPECT_EQ(batches[1].rewards(0, 0), Real(14));
    EXPECT_EQ(batches[2].rewards(1, 0), Real(9));
}

// --- Samplers ------------------------------------------------------

TEST(UniformSampler, IndicesInRangeAndCovering)
{
    UniformSampler sampler;
    Rng rng(1);
    auto plan = sampler.plan(1000, 4096, rng);
    EXPECT_EQ(plan.batchSize(), 4096u);
    EXPECT_TRUE(plan.weights.empty());
    std::set<BufferIndex> seen;
    for (auto i : plan.indices) {
        EXPECT_LT(i, 1000u);
        seen.insert(i);
    }
    // 4096 draws over 1000 slots should cover most of the buffer.
    EXPECT_GT(seen.size(), 900u);
}

TEST(UniformSampler, ApproximatelyUniform)
{
    UniformSampler sampler;
    Rng rng(2);
    std::vector<int> counts(64, 0);
    for (int rep = 0; rep < 100; ++rep) {
        auto plan = sampler.plan(64, 640, rng);
        for (auto i : plan.indices)
            ++counts[i];
    }
    // Expected 1000 per slot; chi-squared 63 dof, 99.9% ~ 103.4.
    double chi2 = 0;
    for (int c : counts) {
        const double d = c - 1000.0;
        chi2 += d * d / 1000.0;
    }
    EXPECT_LT(chi2, 103.4);
}

class LocalityParams
    : public ::testing::TestWithParam<std::pair<std::size_t,
                                                std::size_t>>
{
};

TEST_P(LocalityParams, RunsAreContiguous)
{
    const auto [neighbors, refs] = GetParam();
    LocalityAwareSampler sampler({neighbors, refs});
    Rng rng(3);
    const std::size_t batch = neighbors * refs;
    auto plan = sampler.plan(100000, batch, rng);
    EXPECT_EQ(plan.batchSize(), batch);
    // Every aligned block of `neighbors` must be consecutive.
    for (std::size_t b = 0; b < batch; b += neighbors) {
        for (std::size_t k = 1; k < neighbors; ++k) {
            EXPECT_EQ(plan.indices[b + k], plan.indices[b] + k)
                << "run starting at " << b;
        }
    }
}

TEST_P(LocalityParams, AnchorsSpreadAcrossBuffer)
{
    const auto [neighbors, refs] = GetParam();
    LocalityAwareSampler sampler({neighbors, refs});
    Rng rng(4);
    const std::size_t batch = neighbors * refs;
    std::set<BufferIndex> anchors;
    for (int rep = 0; rep < 50; ++rep) {
        auto plan = sampler.plan(1 << 20, batch, rng);
        for (std::size_t b = 0; b < batch; b += neighbors)
            anchors.insert(plan.indices[b]);
    }
    // Random anchors over 1M slots should essentially never repeat.
    EXPECT_GT(anchors.size(), 45u * refs);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSettings, LocalityParams,
    ::testing::Values(std::make_pair(16, 64),
                      std::make_pair(64, 16),
                      std::make_pair(4, 8)));

TEST(LocalitySampler, IndicesStayValidNearBufferEnd)
{
    LocalityAwareSampler sampler({64, 16});
    Rng rng(5);
    auto plan = sampler.plan(70, 1024, rng); // Buffer barely > run.
    for (auto i : plan.indices)
        EXPECT_LT(i, 70u);
}

TEST(LocalitySampler, SmallBufferClampsRun)
{
    LocalityAwareSampler sampler({64, 16});
    Rng rng(6);
    auto plan = sampler.plan(8, 32, rng); // Buffer smaller than run.
    EXPECT_EQ(plan.batchSize(), 32u);
    for (auto i : plan.indices)
        EXPECT_LT(i, 8u);
}

TEST(PrioritizedSampler, NewTransitionsGetMaxPriority)
{
    PerConfig cfg;
    cfg.capacity = 64;
    PrioritizedSampler sampler(cfg);
    sampler.onAdd(0);
    EXPECT_GT(sampler.tree().priorityOf(0), 0.0);
    EXPECT_EQ(sampler.tree().priorityOf(1), 0.0);
}

TEST(PrioritizedSampler, SamplesProportionallyToPriority)
{
    PerConfig cfg;
    cfg.capacity = 4;
    cfg.alpha = Real(1);
    PrioritizedSampler sampler(cfg);
    for (BufferIndex i = 0; i < 4; ++i)
        sampler.onAdd(i);
    // Give slot 2 ten times the TD error of the others.
    sampler.updatePriorities({0, 1, 2, 3},
                             {Real(0.1), Real(0.1), Real(1.0),
                              Real(0.1)});
    Rng rng(7);
    std::array<int, 4> counts{};
    for (int rep = 0; rep < 200; ++rep) {
        auto plan = sampler.plan(4, 64, rng);
        for (auto i : plan.indices)
            ++counts[i];
    }
    // Slot 2 holds ~1.0/1.3 of the mass.
    const double total = 200 * 64;
    EXPECT_NEAR(counts[2] / total, 1.0 / 1.3, 0.05);
    EXPECT_NEAR(counts[0] / total, 0.1 / 1.3, 0.03);
}

TEST(PrioritizedSampler, WeightsNormalizedToMaxOne)
{
    PerConfig cfg;
    cfg.capacity = 128;
    PrioritizedSampler sampler(cfg);
    for (BufferIndex i = 0; i < 128; ++i)
        sampler.onAdd(i);
    std::vector<BufferIndex> ids(128);
    std::vector<Real> tds(128);
    Rng noise(8);
    for (BufferIndex i = 0; i < 128; ++i) {
        ids[i] = i;
        tds[i] = static_cast<Real>(noise.uniform(0.01, 2.0));
    }
    sampler.updatePriorities(ids, tds);
    Rng rng(9);
    auto plan = sampler.plan(128, 256, rng);
    ASSERT_EQ(plan.weights.size(), 256u);
    Real max_w = 0;
    for (Real w : plan.weights) {
        EXPECT_GT(w, Real(0));
        EXPECT_LE(w, Real(1) + Real(1e-5));
        max_w = std::max(max_w, w);
    }
    EXPECT_NEAR(max_w, 1.0, 1e-5);
}

TEST(PrioritizedSampler, BetaAnneals)
{
    PerConfig cfg;
    cfg.capacity = 16;
    cfg.beta = Real(0.4);
    cfg.betaAnneal = Real(0.1);
    PrioritizedSampler sampler(cfg);
    for (BufferIndex i = 0; i < 16; ++i)
        sampler.onAdd(i);
    Rng rng(10);
    for (int i = 0; i < 10; ++i)
        sampler.plan(16, 8, rng);
    EXPECT_NEAR(sampler.currentBeta(), 1.0, 1e-5);
}

TEST(NeighborPredictor, ThresholdsFollowPaper)
{
    NeighborPredictorConfig cfg;
    EXPECT_EQ(predictNeighbors(Real(0.0), cfg), 1u);
    EXPECT_EQ(predictNeighbors(Real(0.32), cfg), 1u);
    EXPECT_EQ(predictNeighbors(Real(0.33), cfg), 2u);
    EXPECT_EQ(predictNeighbors(Real(0.65), cfg), 2u);
    EXPECT_EQ(predictNeighbors(Real(0.66), cfg), 4u);
    EXPECT_EQ(predictNeighbors(Real(1.0), cfg), 4u);
}

TEST(InfoPrioritizedSampler, FillsExactBatch)
{
    PerConfig cfg;
    cfg.capacity = 1 << 12;
    InfoPrioritizedLocalitySampler sampler(cfg);
    for (BufferIndex i = 0; i < (1 << 12); ++i)
        sampler.onAdd(i);
    Rng rng(11);
    auto plan = sampler.plan(1 << 12, 1024, rng);
    EXPECT_EQ(plan.batchSize(), 1024u);
    EXPECT_EQ(plan.weights.size(), 1024u);
    EXPECT_EQ(plan.priorityIds.size(), 1024u);
    for (auto i : plan.indices)
        EXPECT_LT(i, 1u << 12);
}

TEST(InfoPrioritizedSampler, HighPriorityReferencesExpandRuns)
{
    PerConfig cfg;
    cfg.capacity = 256;
    cfg.alpha = Real(1);
    InfoPrioritizedLocalitySampler sampler(cfg);
    for (BufferIndex i = 0; i < 256; ++i)
        sampler.onAdd(i);
    // One dominant transition: its normalized priority is 1 -> runs
    // of 4 anchored at it should appear.
    std::vector<BufferIndex> ids(256);
    std::vector<Real> tds(256, Real(0.01));
    for (BufferIndex i = 0; i < 256; ++i)
        ids[i] = i;
    tds[100] = Real(10);
    sampler.updatePriorities(ids, tds);

    Rng rng(12);
    auto plan = sampler.plan(256, 64, rng);
    int runs_at_100 = 0;
    for (std::size_t b = 0; b + 3 < plan.indices.size(); ++b) {
        if (plan.indices[b] == 100 && plan.indices[b + 1] == 101 &&
            plan.indices[b + 2] == 102 && plan.indices[b + 3] == 103)
            ++runs_at_100;
    }
    EXPECT_GT(runs_at_100, 0);
}

TEST(InfoPrioritizedSampler, TdWritebackTargetsReference)
{
    PerConfig cfg;
    cfg.capacity = 64;
    InfoPrioritizedLocalitySampler sampler(cfg);
    for (BufferIndex i = 0; i < 64; ++i)
        sampler.onAdd(i);
    Rng rng(13);
    auto plan = sampler.plan(64, 16, rng);
    // All rows of a run share the reference's priority id.
    for (std::size_t b = 0; b < plan.indices.size(); ++b)
        EXPECT_LT(plan.priorityIds[b], 64u);
    // Write back and ensure the tree was updated without throwing.
    std::vector<Real> tds(plan.priorityIds.size(), Real(0.5));
    sampler.updatePriorities(plan.priorityIds, tds);
}

} // namespace
} // namespace marlin::replay
