#include "marlin/base/cpu.hh"

namespace marlin::base
{

namespace
{

bool
detectAvx2()
{
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

} // namespace

bool
cpuSupportsAvx2()
{
    // Magic-static: cpuid runs once, first caller wins, thread-safe.
    static const bool supported = detectAvx2();
    return supported;
}

const char *
cpuVectorFeatures()
{
    return cpuSupportsAvx2() ? "avx2+fma" : "baseline";
}

} // namespace marlin::base
