#!/usr/bin/env python3
"""Perf-regression gate: diff bench JSON against checked-in baselines.

Two bench formats are understood, keyed by shape:

  * google-benchmark --benchmark_out JSON ("benchmarks" array):
    every non-errored run contributes its real_time reading
    (lower is better);
  * marlin_loadgen reports ("runs" array): every connection-count
    sweep point contributes qps (higher is better) plus p50_us and
    p99_us (lower is better).

Baselines live as verbatim copies of past bench JSON under
bench/baselines/, keyed by file basename. The comparison is
ratio-based with a generous default tolerance (2.0x), because CI
runners are shared and noisy: the gate exists to catch
order-of-magnitude regressions (an accidental O(n^2), a lost
vectorization, a serialization point), not 10% drift. Metrics
present on only one side are reported but never fail the gate, so
adding a bench doesn't require same-commit baselines.

Usage:
  bench_compare.py FILE... [--baselines DIR] [--tolerance X]
                           [--out BENCH.json]
  bench_compare.py FILE... --update [--baselines DIR]

--update copies the given files over their baselines (the
"regenerate baselines" recipe in EXPERIMENTS.md) instead of
comparing. --out writes a machine-readable comparison record for
the CI artifact trail.
"""

import argparse
import json
import math
import os
import shutil
import sys


def fail(msg: str) -> None:
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(1)


def extract_metrics(doc, path: str):
    """-> {metric key: (value, direction)}; direction is 'lower' or
    'higher' (better)."""
    metrics = {}
    if isinstance(doc.get("benchmarks"), list):
        for run in doc["benchmarks"]:
            if run.get("error_occurred"):
                continue  # skipped variant (e.g. no AVX2 on runner)
            name, value = run.get("name"), run.get("real_time")
            if isinstance(name, str) and isinstance(
                    value, (int, float)) and math.isfinite(value):
                metrics[f"{name}/real_time"] = (value, "lower")
        return metrics
    if isinstance(doc.get("runs"), list):
        for run in doc["runs"]:
            conns = run.get("connections")
            key = f"conns={conns}"
            for field, direction in (("qps", "higher"),
                                     ("p50_us", "lower"),
                                     ("p99_us", "lower")):
                value = run.get(field)
                if isinstance(value, (int, float)) and math.isfinite(
                        value) and value > 0:
                    metrics[f"{key}/{field}"] = (value, direction)
        return metrics
    fail(f"{path}: neither a google-benchmark file ('benchmarks') "
         "nor a loadgen report ('runs')")


def load(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("files", nargs="+",
                        help="current bench JSON files")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of checked-in baseline JSON")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="fail when a metric is worse than "
                             "baseline by more than this ratio")
    parser.add_argument("--out", default="",
                        help="write the comparison record here")
    parser.add_argument("--update", action="store_true",
                        help="adopt the given files as the new "
                             "baselines instead of comparing")
    args = parser.parse_args()

    if args.tolerance <= 1.0:
        fail("--tolerance must be > 1.0")

    if args.update:
        os.makedirs(args.baselines, exist_ok=True)
        for path in args.files:
            extract_metrics(load(path), path)  # format sanity
            dest = os.path.join(args.baselines,
                                os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"baseline updated: {dest}")
        return

    results = []
    worst = 1.0
    failed = False
    for path in args.files:
        base_path = os.path.join(args.baselines,
                                 os.path.basename(path))
        current = extract_metrics(load(path), path)
        if not os.path.exists(base_path):
            print(f"note: no baseline for {os.path.basename(path)} "
                  f"({len(current)} metric(s) unchecked); run "
                  f"--update to adopt one")
            for key, (value, direction) in sorted(current.items()):
                results.append({"file": os.path.basename(path),
                                "metric": key, "current": value,
                                "direction": direction,
                                "status": "no-baseline"})
            continue
        baseline = extract_metrics(load(base_path), base_path)
        for key, (value, direction) in sorted(current.items()):
            entry = {"file": os.path.basename(path), "metric": key,
                     "current": value, "direction": direction}
            if key not in baseline:
                entry["status"] = "new"
                results.append(entry)
                continue
            base_value = baseline[key][0]
            entry["baseline"] = base_value
            # Normalize so ratio > 1 always means "worse".
            ratio = (value / base_value if direction == "lower"
                     else base_value / value)
            entry["worse_by"] = ratio
            worst = max(worst, ratio)
            if ratio > args.tolerance:
                entry["status"] = "fail"
                failed = True
                print(f"FAIL {path} {key}: {value:g} vs baseline "
                      f"{base_value:g} ({ratio:.2f}x worse, "
                      f"tolerance {args.tolerance:g}x)")
            else:
                entry["status"] = "ok"
            results.append(entry)
        for key in sorted(set(baseline) - set(current)):
            results.append({"file": os.path.basename(path),
                            "metric": key,
                            "baseline": baseline[key][0],
                            "status": "removed"})

    checked = sum(1 for r in results if "worse_by" in r)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump({"record": "bench_compare",
                       "tolerance": args.tolerance,
                       "checked": checked,
                       "worst_ratio": worst,
                       "status": "fail" if failed else "pass",
                       "results": results}, f, indent=1)
            f.write("\n")

    if failed:
        fail(f"perf regression beyond {args.tolerance:g}x tolerance")
    print(f"ok: {checked} metric(s) within {args.tolerance:g}x of "
          f"baseline (worst {worst:.2f}x)")


if __name__ == "__main__":
    main()
