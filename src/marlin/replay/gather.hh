/**
 * @file
 * The shared mini-batch gather loop (paper Figure 5): turn an index
 * plan into dense batch matrices by reading each agent's replay
 * buffer. All samplers funnel through this code so their only
 * difference is the index pattern they feed it.
 */

#ifndef MARLIN_REPLAY_GATHER_HH
#define MARLIN_REPLAY_GATHER_HH

#include <vector>

#include "marlin/numeric/matrix.hh"
#include "marlin/replay/access_trace.hh"
#include "marlin/replay/replay_buffer.hh"
#include "marlin/replay/sampler.hh"

namespace marlin::replay
{

using numeric::Matrix;

/** Dense mini-batch for one agent (rows = batch entries). */
struct AgentBatch
{
    Matrix obs;     ///< (batch, obsDim)
    Matrix actions; ///< (batch, actDim)
    Matrix rewards; ///< (batch, 1)
    Matrix nextObs; ///< (batch, obsDim)
    Matrix dones;   ///< (batch, 1)

    /** Allocate for @p batch rows of @p shape. */
    void resize(std::size_t batch, const TransitionShape &shape);
};

/**
 * Gather the plan's rows from a single agent's buffer.
 *
 * @param buffer Source replay buffer.
 * @param plan Index plan (all indices must be < buffer.size()).
 * @param out Destination batch (resized as needed).
 * @param trace Optional access recorder for memsim replay.
 */
void gatherAgentBatch(const ReplayBuffer &buffer, const IndexPlan &plan,
                      AgentBatch &out, AccessTrace *trace = nullptr);

/**
 * Gather the plan from every agent's buffer — the O(N * B) loop each
 * of the N trainers executes in the baseline layout, making the full
 * sampling phase O(N^2 * B) per update.
 *
 * @param buffers All agents' replay storage.
 * @param plan Common indices array shared by all agents.
 * @param out One AgentBatch per agent (resized as needed).
 * @param trace Optional access recorder.
 */
void gatherAllAgents(const MultiAgentBuffer &buffers,
                     const IndexPlan &plan,
                     std::vector<AgentBatch> &out,
                     AccessTrace *trace = nullptr);

} // namespace marlin::replay

#endif // MARLIN_REPLAY_GATHER_HH
