#include "marlin/env/physical_deception.hh"

#include <algorithm>
#include <limits>

#include "marlin/base/logging.hh"
#include "marlin/base/string_utils.hh"

namespace marlin::env
{

PhysicalDeceptionScenario::PhysicalDeceptionScenario(
    PhysicalDeceptionConfig config)
    : _config(config)
{
    MARLIN_ASSERT(_config.numGoodAgents >= 1,
                  "physical deception needs a good team");
    if (_config.numLandmarks == 0)
        _config.numLandmarks = _config.numGoodAgents;
}

void
PhysicalDeceptionScenario::makeWorld(World &world)
{
    world.agents.clear();
    world.landmarks.clear();
    world.agents.reserve(1 + _config.numGoodAgents);
    world.landmarks.reserve(_config.numLandmarks);

    Agent adversary;
    adversary.name = "adversary_0";
    adversary.adversary = true;
    adversary.movable = true;
    adversary.collide = false;
    adversary.size = Real(0.075);
    adversary.accel = Real(3);
    world.agents.push_back(adversary);

    for (std::size_t i = 0; i < _config.numGoodAgents; ++i) {
        Agent a;
        a.name = csprintf("good_%zu", i);
        a.movable = true;
        a.collide = false;
        a.size = Real(0.05);
        a.accel = Real(3);
        world.agents.push_back(a);
    }
    for (std::size_t i = 0; i < _config.numLandmarks; ++i) {
        Entity lm;
        lm.name = csprintf("landmark_%zu", i);
        lm.size = Real(0.08);
        lm.movable = false;
        lm.collide = false;
        world.landmarks.push_back(lm);
    }
}

void
PhysicalDeceptionScenario::resetWorld(World &world, Rng &rng)
{
    for (Agent &a : world.agents) {
        a.pos = {static_cast<Real>(rng.uniform(-1.0, 1.0)),
                 static_cast<Real>(rng.uniform(-1.0, 1.0))};
        a.vel = {};
        a.actionForce = {};
    }
    for (Entity &lm : world.landmarks) {
        lm.pos = {static_cast<Real>(rng.uniform(-0.9, 0.9)),
                  static_cast<Real>(rng.uniform(-0.9, 0.9))};
        lm.vel = {};
    }
    goal = static_cast<std::size_t>(
        rng.randint(world.landmarks.size()));
}

std::size_t
PhysicalDeceptionScenario::learnableAgents(const World &world) const
{
    return 1 + _config.numGoodAgents;
}

void
PhysicalDeceptionScenario::observationInto(const World &world,
                                           std::size_t i,
                                           Real *out) const
{
    // Good agents: goal rel pos, landmark rel pos, other agents rel
    // pos. The adversary sees the same minus the goal (it must
    // infer the goal from the good team's behaviour).
    const Agent &self = world.agents[i];
    if (i != 0) {
        const Entity &g = world.landmarks[goal];
        *out++ = g.pos.x - self.pos.x;
        *out++ = g.pos.y - self.pos.y;
    }
    for (const Entity &lm : world.landmarks) {
        *out++ = lm.pos.x - self.pos.x;
        *out++ = lm.pos.y - self.pos.y;
    }
    for (std::size_t j = 0; j < world.agents.size(); ++j) {
        if (j == i)
            continue;
        *out++ = world.agents[j].pos.x - self.pos.x;
        *out++ = world.agents[j].pos.y - self.pos.y;
    }
}

std::size_t
PhysicalDeceptionScenario::observationDim(std::size_t i) const
{
    const std::size_t total = 1 + _config.numGoodAgents;
    const std::size_t base =
        2 * _config.numLandmarks + 2 * (total - 1);
    return i == 0 ? base : base + 2;
}

Real
PhysicalDeceptionScenario::reward(const World &world,
                                  std::size_t i) const
{
    const Entity &g = world.landmarks[goal];
    const Real adv_dist = distance(world.agents[0].pos, g.pos);
    Real best_good = std::numeric_limits<Real>::max();
    for (std::size_t j = 1; j < world.agents.size(); ++j)
        best_good = std::min(best_good,
                             distance(world.agents[j].pos, g.pos));
    if (i == 0) {
        // Adversary: wants to sit on the goal.
        return -adv_dist;
    }
    // Good team (shared): cover the goal, keep the adversary away.
    return adv_dist - best_good;
}

} // namespace marlin::env
