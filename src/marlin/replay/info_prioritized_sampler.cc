#include "marlin/replay/info_prioritized_sampler.hh"

#include <algorithm>
#include <cmath>

#include "marlin/base/logging.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

std::size_t
predictNeighbors(Real normalized_weight,
                 const NeighborPredictorConfig &config)
{
    if (normalized_weight < config.thresholdLow)
        return config.neighborsLow;
    if (normalized_weight < config.thresholdHigh)
        return config.neighborsMid;
    return config.neighborsHigh;
}

InfoPrioritizedLocalitySampler::InfoPrioritizedLocalitySampler(
    PerConfig per_config, NeighborPredictorConfig predictor)
    : PrioritizedSampler(per_config), _predictor(predictor)
{
    MARLIN_ASSERT(_predictor.thresholdLow <= _predictor.thresholdHigh,
                  "predictor thresholds must be ordered");
    MARLIN_ASSERT(_predictor.neighborsLow >= 1 &&
                      _predictor.neighborsMid >= 1 &&
                      _predictor.neighborsHigh >= 1,
                  "neighbor counts must be >= 1");
}

void
InfoPrioritizedLocalitySampler::planInto(BufferIndex buffer_size,
                                         std::size_t batch, Rng &rng,
                                         IndexPlan &out)
{
    MARLIN_ASSERT(buffer_size > 0, "sampling from an empty buffer");
    MARLIN_ASSERT(_tree.total() > 0.0,
                  "plan before any onAdd/updatePriorities");
    // references vs run_indices_total exposes the predictor's mean
    // predicted run length, the knob the paper's IPLS design tunes.
    static obs::Counter &plans =
        obs::Registry::instance().counter("replay.ipls.plans");
    static obs::Counter &references =
        obs::Registry::instance().counter("replay.ipls.references");
    static obs::Counter &run_indices =
        obs::Registry::instance().counter(
            "replay.ipls.run_indices_total");
    plans.add();
    out.clear();
    out.indices.reserve(batch);
    out.weights.reserve(batch);
    out.priorityIds.reserve(batch);

    const double total = _tree.total();
    const double n = static_cast<double>(buffer_size);
    // Stratify over the worst case (every reference expands to one
    // neighbor) and stop once the batch is filled.
    const double segment = total / static_cast<double>(batch);

    double max_w = 0.0;
    std::vector<double> &raw = rawWeights;
    raw.clear();
    raw.reserve(batch);
    std::size_t stratum = 0;
    while (out.indices.size() < batch) {
        const double prefix =
            (static_cast<double>(stratum % batch) + rng.uniform()) *
            segment;
        ++stratum;
        const BufferIndex leaf =
            _tree.find(std::min(prefix, total * (1.0 - 1e-12)));
        const double p = _tree.priorityOf(leaf) / total;
        const double w =
            std::pow(1.0 / (n * std::max(p, 1e-12)),
                     static_cast<double>(beta));

        // Normalize the *priority* (not the IS weight) to [0, 1] to
        // drive the predictor: a reference close to the current max
        // priority is information-rich and earns a longer run.
        const Real norm_priority = static_cast<Real>(
            _tree.priorityOf(leaf) /
            std::max(_tree.maxPriority(), 1e-12));
        std::size_t run = predictNeighbors(norm_priority, _predictor);
        run = std::min<std::size_t>(run, batch - out.indices.size());
        references.add();
        run_indices.add(run);

        // Keep the run inside the valid region so it stays
        // contiguous in memory.
        BufferIndex anchor = leaf;
        if (anchor + run > buffer_size)
            anchor = buffer_size - std::min<BufferIndex>(run,
                                                         buffer_size);
        for (std::size_t k = 0; k < run; ++k) {
            out.indices.push_back(anchor + k);
            out.priorityIds.push_back(leaf);
            raw.push_back(w);
            max_w = std::max(max_w, w);
        }
    }

    const double inv = max_w > 0.0 ? 1.0 / max_w : 1.0;
    out.weights.resize(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
        out.weights[i] = static_cast<Real>(raw[i] * inv);

    if (_config.betaAnneal > Real(0))
        beta = std::min(Real(1), beta + _config.betaAnneal);
}

} // namespace marlin::replay
