#!/usr/bin/env python3
"""Validate a Prometheus text-format scrape (GET /metrics output).

Checks the exposition contract MARLin's renderer promises (text
format 0.0.4, the subset every Prometheus-compatible scraper parses):

  * every non-comment line is `name[{labels}] value` with a legal
    metric name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a parseable value;
  * every sample series is preceded by its `# TYPE` comment and the
    type is counter, gauge or histogram;
  * counters and gauges are single samples; counters are >= 0;
  * histograms expose `name_bucket{le="..."}` series with ascending
    bounds and monotonically non-decreasing cumulative counts, ending
    in le="+Inf", plus `name_sum` and `name_count` where _count
    equals the +Inf bucket;
  * optionally (--require NAME / --require-nonzero NAME) a named
    series exists (and is > 0), so CI can assert a live scrape saw
    real traffic, e.g. --require-nonzero serve_requests.

Usage: check_prom_text.py FILE [--require NAME ...]
                               [--require-nonzero NAME ...]

Pass `-` as FILE to read stdin (curl ... | check_prom_text.py -).
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")


def fail(msg: str) -> None:
    print(f"check_prom_text: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        fail(f"{where}: unparseable value {text!r}")


def base_name(series: str, types: dict) -> str:
    """Series name -> declared family. A _bucket/_sum/_count suffix
    only marks a histogram series when the stripped name is in fact
    a declared histogram — a plain counter may legitimately end in
    "_count" (e.g. alloc_steady_state_count)."""
    if series in types:
        return series
    for suffix in ("_bucket", "_sum", "_count"):
        if series.endswith(suffix):
            family = series[: -len(suffix)]
            if types.get(family) == "histogram":
                return family
    return series


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("file", help="scrape body, or - for stdin")
    parser.add_argument("--require", action="append", default=[],
                        help="fail unless this series is present")
    parser.add_argument("--require-nonzero", action="append",
                        default=[],
                        help="fail unless this series is present "
                             "and > 0")
    args = parser.parse_args()

    if args.file == "-":
        body = sys.stdin.read()
    else:
        try:
            with open(args.file, encoding="utf-8") as f:
                body = f.read()
        except OSError as e:
            fail(f"cannot read {args.file}: {e}")
    if not body.strip():
        fail("scrape body is empty")

    types = {}          # family -> declared type
    samples = {}        # series name (with suffix) -> last value
    histograms = {}     # family -> list of (bound, cumulative count)
    declared_before = set()

    for lineno, line in enumerate(body.splitlines(), 1):
        where = f"line {lineno}"
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                family, mtype = parts[2], parts[3] if len(
                    parts) > 3 else ""
                if not NAME_RE.match(family):
                    fail(f"{where}: illegal family name {family!r}")
                if mtype not in ("counter", "gauge", "histogram"):
                    fail(f"{where}: unknown type {mtype!r}")
                if family in types:
                    fail(f"{where}: duplicate TYPE for {family!r}")
                types[family] = mtype
                declared_before.add(family)
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            fail(f"{where}: not a sample line: {line!r}")
        series = m.group("name")
        value = parse_value(m.group("value"), where)
        family = base_name(series, types)
        if family not in declared_before:
            fail(f"{where}: series {series!r} has no preceding "
                 f"# TYPE {family}")
        mtype = types[family]

        if mtype == "histogram" and series == f"{family}_bucket":
            labels = m.group("labels") or ""
            lm = re.match(r'^le="([^"]+)"$', labels)
            if lm is None:
                fail(f"{where}: bucket series without an le label")
            bound = parse_value(lm.group(1), where)
            histograms.setdefault(family, []).append((bound, value))
        else:
            if m.group("labels") is not None:
                fail(f"{where}: unexpected labels on {series!r}")
            if series in samples:
                fail(f"{where}: duplicate series {series!r}")
            samples[series] = value
            if mtype == "counter" and value < 0:
                fail(f"{where}: counter {series!r} is negative")

    for family, mtype in types.items():
        if mtype in ("counter", "gauge"):
            if family not in samples:
                fail(f"family {family!r} declared but never sampled")
            continue
        buckets = histograms.get(family)
        if not buckets:
            fail(f"histogram {family!r} has no _bucket series")
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            fail(f"histogram {family!r} bounds are not ascending")
        if bounds[-1] != math.inf:
            fail(f"histogram {family!r} does not end in le=\"+Inf\"")
        counts = [c for _, c in buckets]
        if counts != sorted(counts):
            fail(f"histogram {family!r} cumulative counts decrease")
        for suffix in ("_sum", "_count"):
            if f"{family}{suffix}" not in samples:
                fail(f"histogram {family!r} lacks {suffix}")
        if samples[f"{family}_count"] != counts[-1]:
            fail(f"histogram {family!r}: _count "
                 f"{samples[f'{family}_count']} != +Inf bucket "
                 f"{counts[-1]}")

    for name in args.require + args.require_nonzero:
        if name not in samples and name not in histograms:
            fail(f"required series {name!r} is missing")
    for name in args.require_nonzero:
        value = samples.get(
            name, samples.get(f"{name}_count", 0))
        if not value > 0:
            fail(f"required series {name!r} is not > 0 "
                 f"(got {value})")

    print(f"ok: {len(types)} famil{'y' if len(types) == 1 else 'ies'}"
          f" ({sum(1 for t in types.values() if t == 'histogram')} "
          f"histogram(s)), {len(samples)} single sample(s)")


if __name__ == "__main__":
    main()
