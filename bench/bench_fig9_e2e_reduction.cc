/**
 * @file
 * Figure 9: end-to-end training-time reduction from cache
 * locality-aware sampling for MADDPG on both tasks, 3-24 agents,
 * n16/r64 and n64/r16.
 *
 * Paper reference (total-time reduction %):
 *   PP:  n16r64 7.8/6.1/7.6/19.1 and n64r16 8.2/6.5/8.6/20.5
 *   CN:  n16r64 11.1/10.9/7.5/12.1 and n64r16 12.1/11.9/9.5/16.6
 * The headline: gains grow with the number of agents because the
 * sampling share of the total grows (Figure 2/6).
 */

#include "hybrid_model.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

double
samplingSeconds(replay::Sampler &sampler,
                const replay::MultiAgentBuffer &buffers,
                std::size_t batch, int reps)
{
    Rng rng(13);
    std::vector<replay::AgentBatch> batches;
    // Warm-up pass.
    for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
        auto plan = sampler.plan(buffers.size(), batch, rng);
        replay::gatherAllAgents(buffers, plan, batches);
    }
    profile::Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
            auto plan = sampler.plan(buffers.size(), batch, rng);
            replay::gatherAllAgents(buffers, plan, batches);
        }
    }
    return sw.elapsedSeconds() / reps;
}

void
runTask(Task task)
{
    std::printf("\nMADDPG / %s\n", taskName(task));
    std::printf("%-8s %12s %14s %14s\n", "agents", "total(s)",
                "n16,r64(%)", "n64,r16(%)");
    const BufferIndex capacity = sweepCapacity(task, 24);
    for (std::size_t n : {3, 6, 12, 24}) {
        EstimateContext ctx;
        auto est = estimatePhases(Algo::Maddpg, task, n,
                                  memsim::makeRtx3090(), ctx,
                                  capacity);
        Schedule sched;
        const double total_base = endToEndSeconds(est, sched);

        // Re-measure the sampling phase under the two locality
        // settings against the same buffers.
        auto shapes = taskShapes(task, n);
        replay::MultiAgentBuffer buffers(shapes, capacity);
        Rng fill_rng(n * 3 + 1);
        fillSynthetic(buffers, capacity, fill_rng);
        const int reps = n >= 12 ? 2 : 4;

        replay::LocalityAwareSampler loc16({16, 64});
        replay::LocalityAwareSampler loc64({64, 16});
        PhaseEstimate est16 = est;
        est16.sampling =
            samplingSeconds(loc16, buffers, ctx.batch, reps);
        PhaseEstimate est64 = est;
        est64.sampling =
            samplingSeconds(loc64, buffers, ctx.batch, reps);

        std::printf("%-8zu %12.0f %14.1f %14.1f\n", n, total_base,
                    pctReduction(total_base,
                                 endToEndSeconds(est16, sched)),
                    pctReduction(total_base,
                                 endToEndSeconds(est64, sched)));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig9_e2e_reduction");
    banner("Figure 9: end-to-end training-time reduction from "
           "cache-aware sampling");
    runTask(Task::PredatorPrey);
    runTask(Task::CooperativeNavigation);
    std::printf("\npaper shape: reductions grow with the agent "
                "count (8.2%% at 3 agents\n-> 20.5%% at 24 for PP) "
                "because sampling's share of the total grows.\n");
    return 0;
}
