/**
 * @file
 * Sampling-strategy playground: build a large replay buffer, run
 * every sampler the paper studies over it, and report wall-clock
 * gather time alongside the trace-driven cache-model counters —
 * the core experiment of the paper in ~100 lines of user code.
 *
 *   ./sampling_playground [agents] [log2_capacity]
 */

#include <cstdio>
#include <cstdlib>

#include "marlin/marlin.hh"

using namespace marlin;

namespace
{

void
report(const char *label, replay::Sampler &sampler,
       const replay::MultiAgentBuffer &buffers)
{
    Rng rng(101);
    std::vector<replay::AgentBatch> batches;
    const std::size_t batch = 1024;

    // Wall clock over a few full update-all-trainers gathers.
    const int reps = 3;
    for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
        auto plan = sampler.plan(buffers.size(), batch, rng);
        replay::gatherAllAgents(buffers, plan, batches);
    }
    profile::Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
            auto plan = sampler.plan(buffers.size(), batch, rng);
            replay::gatherAllAgents(buffers, plan, batches);
        }
    }
    const double ms = sw.elapsedSeconds() / reps * 1e3;

    // Simulated counters for one update's trace.
    replay::AccessTrace trace;
    for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
        auto plan = sampler.plan(buffers.size(), batch, rng);
        replay::gatherAllAgents(buffers, plan, batches, &trace);
    }
    auto preset =
        memsim::makePlatform(memsim::PlatformId::Threadripper3975WX);
    memsim::CacheHierarchy hierarchy(preset.hierarchy);
    auto replayed =
        memsim::replayTrace(hierarchy, trace, preset.frequencyHz);

    std::printf("%-22s %10.2f %12llu %12llu %12llu\n", label, ms,
                static_cast<unsigned long long>(
                    replayed.stats.l1.misses),
                static_cast<unsigned long long>(
                    replayed.stats.l3.misses),
                static_cast<unsigned long long>(
                    replayed.stats.tlb.misses));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t agents =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
    const std::size_t log2_cap =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
    const BufferIndex capacity = BufferIndex{1} << log2_cap;

    // Predator-prey transition shapes for this agent count.
    env::PredatorPreyConfig pp;
    pp.numPredators = agents;
    env::PredatorPreyScenario scenario(pp);
    std::vector<replay::TransitionShape> shapes;
    for (std::size_t i = 0; i < agents; ++i)
        shapes.push_back({scenario.observationDim(i), 5});

    replay::MultiAgentBuffer buffers(shapes, capacity);
    std::printf("filling %zu-agent replay buffers, %llu entries "
                "(%s)...\n",
                agents, static_cast<unsigned long long>(capacity),
                formatBytes(buffers.storageBytes()).c_str());
    Rng rng(1);
    {
        // Synthetic fill — contents don't matter for the memory
        // behaviour, volume does.
        std::vector<std::vector<Real>> obs(agents), act(agents),
            next(agents);
        std::vector<Real> rew(agents);
        std::vector<bool> done(agents, false);
        for (std::size_t a = 0; a < agents; ++a) {
            obs[a].resize(shapes[a].obsDim);
            next[a].resize(shapes[a].obsDim);
            act[a].assign(5, Real(0));
        }
        for (BufferIndex t = 0; t < capacity; ++t) {
            for (std::size_t a = 0; a < agents; ++a) {
                for (auto &v : obs[a])
                    v = rng.uniformf();
                next[a] = obs[a];
                act[a][rng.randint(5)] = Real(1);
                rew[a] = rng.uniformf();
            }
            buffers.add(obs, act, rew, next, done);
        }
    }

    std::printf("\n%-22s %10s %12s %12s %12s\n", "sampler",
                "gather(ms)", "l1 misses", "llc misses",
                "dtlb misses");

    replay::UniformSampler uniform;
    report("uniform (baseline)", uniform, buffers);

    replay::LocalityAwareSampler n16({16, 64});
    report("locality n16 r64", n16, buffers);

    replay::LocalityAwareSampler n64({64, 16});
    report("locality n64 r16", n64, buffers);

    replay::PerConfig per_cfg;
    per_cfg.capacity = capacity;
    replay::PrioritizedSampler per(per_cfg);
    replay::InfoPrioritizedLocalitySampler ip(per_cfg);
    {
        // Seed both priority trees with a realistic TD spread.
        std::vector<BufferIndex> ids(capacity);
        std::vector<Real> tds(capacity);
        Rng prio(2);
        for (BufferIndex i = 0; i < capacity; ++i) {
            ids[i] = i;
            tds[i] = prio.uniformf();
        }
        per.updatePriorities(ids, tds);
        ip.updatePriorities(ids, tds);
    }
    report("per (proportional)", per, buffers);
    report("info-prioritized", ip, buffers);

    std::printf("\nlower misses <=> prefetcher-friendly index "
                "plans; this is the paper's\nFigure 7 mechanism "
                "made observable.\n");
    return 0;
}
