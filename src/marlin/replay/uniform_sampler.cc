#include "marlin/replay/uniform_sampler.hh"

#include "marlin/base/logging.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

IndexPlan
UniformSampler::plan(BufferIndex buffer_size, std::size_t batch,
                     Rng &rng)
{
    MARLIN_ASSERT(buffer_size > 0, "sampling from an empty buffer");
    static obs::Counter &plans =
        obs::Registry::instance().counter("replay.uniform.plans");
    plans.add();
    IndexPlan out;
    out.indices = rng.sampleIndices(buffer_size, batch);
    return out;
}

} // namespace marlin::replay
