#include "marlin/env/cooperative_navigation.hh"

#include <algorithm>
#include <limits>

#include "marlin/base/logging.hh"
#include "marlin/base/string_utils.hh"

namespace marlin::env
{

CooperativeNavigationScenario::CooperativeNavigationScenario(
    CooperativeNavigationConfig config)
    : _config(config)
{
    MARLIN_ASSERT(_config.numAgents >= 1,
                  "cooperative navigation needs at least one agent");
    if (_config.numLandmarks == 0)
        _config.numLandmarks = _config.numAgents;
}

void
CooperativeNavigationScenario::makeWorld(World &world)
{
    world.agents.clear();
    world.landmarks.clear();
    world.agents.reserve(_config.numAgents);
    world.landmarks.reserve(_config.numLandmarks);
    for (std::size_t i = 0; i < _config.numAgents; ++i) {
        Agent a;
        a.name = csprintf("agent_%zu", i);
        a.movable = true;
        a.collide = true;
        a.size = Real(0.15);
        a.accel = Real(3);
        world.agents.push_back(a);
    }
    for (std::size_t i = 0; i < _config.numLandmarks; ++i) {
        Entity lm;
        lm.name = csprintf("landmark_%zu", i);
        lm.size = Real(0.05);
        lm.movable = false;
        lm.collide = false;
        world.landmarks.push_back(lm);
    }
}

void
CooperativeNavigationScenario::resetWorld(World &world, Rng &rng)
{
    for (Agent &a : world.agents) {
        a.pos = {static_cast<Real>(rng.uniform(-1.0, 1.0)),
                 static_cast<Real>(rng.uniform(-1.0, 1.0))};
        a.vel = {};
        a.actionForce = {};
    }
    for (Entity &lm : world.landmarks) {
        lm.pos = {static_cast<Real>(rng.uniform(-1.0, 1.0)),
                  static_cast<Real>(rng.uniform(-1.0, 1.0))};
        lm.vel = {};
    }
}

std::size_t
CooperativeNavigationScenario::learnableAgents(const World &world) const
{
    return _config.numAgents;
}

void
CooperativeNavigationScenario::observationInto(const World &world,
                                               std::size_t i,
                                               Real *out) const
{
    // Layout (MPE simple_spread): self vel(2), self pos(2),
    // landmark rel pos(2L), other agent rel pos(2*(N-1)),
    // communication channels (2*(N-1), zeros — agents don't emit).
    const Agent &self = world.agents[i];
    *out++ = self.vel.x;
    *out++ = self.vel.y;
    *out++ = self.pos.x;
    *out++ = self.pos.y;
    for (const Entity &lm : world.landmarks) {
        *out++ = lm.pos.x - self.pos.x;
        *out++ = lm.pos.y - self.pos.y;
    }
    for (std::size_t j = 0; j < world.agents.size(); ++j) {
        if (j == i)
            continue;
        *out++ = world.agents[j].pos.x - self.pos.x;
        *out++ = world.agents[j].pos.y - self.pos.y;
    }
    // Communication slots (silent in this task, kept for parity with
    // the reference observation size).
    for (std::size_t j = 0; j + 1 < world.agents.size(); ++j) {
        *out++ = 0;
        *out++ = 0;
    }
}

std::size_t
CooperativeNavigationScenario::observationDim(std::size_t i) const
{
    return 4 + 2 * _config.numLandmarks +
           4 * (_config.numAgents - 1);
}

Real
CooperativeNavigationScenario::reward(const World &world,
                                      std::size_t i) const
{
    // Shared coverage term: negative sum over landmarks of the
    // nearest-agent distance; plus a local collision penalty.
    Real r = 0;
    for (const Entity &lm : world.landmarks) {
        Real min_dist = std::numeric_limits<Real>::max();
        for (const Agent &a : world.agents)
            min_dist = std::min(min_dist, distance(a.pos, lm.pos));
        r -= min_dist;
    }
    const Agent &self = world.agents[i];
    for (std::size_t j = 0; j < world.agents.size(); ++j) {
        if (j == i)
            continue;
        if (World::isCollision(self, world.agents[j]))
            r -= _config.collisionPenalty;
    }
    return r;
}

} // namespace marlin::env
