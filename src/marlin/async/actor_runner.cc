#include "marlin/async/actor_runner.hh"

#include "marlin/base/logging.hh"

namespace marlin::async
{

using profile::Phase;
using profile::ScopedPhase;

ActorRunner::ActorRunner(
    ActorConfig config_in,
    std::vector<std::unique_ptr<env::Environment>> envs_in,
    std::unique_ptr<core::CtdeTrainerBase> policy_in,
    replay::TransitionRing &ring_in,
    const replay::JointTransitionLayout &layout_in,
    PolicySnapshot &snapshot_in, RunControl &control_in)
    : config(config_in), envs(std::move(envs_in)),
      policy(std::move(policy_in)), ring(ring_in), layout(layout_in),
      snapshot(snapshot_in), control(control_in)
{
    MARLIN_ASSERT(!envs.empty(), "actor needs at least one lane");
    lanes.resize(envs.size());
    for (std::size_t i = 0; i < envs.size(); ++i)
        lanes[i].env = envs[i].get();
}

bool
ActorRunner::claimEpisode(Lane &lane)
{
    const std::uint64_t e = control.episodesClaimed.fetch_add(
        1, std::memory_order_relaxed);
    if (e >= control.episodeTarget)
    {
        // Over-claiming past the target is harmless: each actor
        // stops claiming after its first miss, and completed-episode
        // accounting goes by recorded rewards, not this counter.
        lane.active = false;
        return false;
    }
    // Episode boundary: the natural point to pick up new weights —
    // mid-episode swaps would mix two policies in one trajectory.
    if (snapshot.refresh(*policy, seenVersion))
        ++refreshes;
    lane.episode = e;
    lane.t = 0;
    lane.reward = 0;
    lane.env->resetInto(lane.obs);
    lane.active = true;
    return true;
}

void
ActorRunner::stepLane(Lane &lane)
{
    const std::size_t n = lane.env->numAgents();
    const bool continuous =
        config.actionMode == core::ActionMode::Continuous;
    const auto episode = static_cast<std::size_t>(lane.episode);

    {
        ScopedPhase sp(_timer, Phase::ActionSelection);
        if (continuous)
        {
            policy->selectContinuousActionsInto(lane.obs, episode,
                                                forceScratch);
        }
        else
        {
            policy->selectActionsInto(lane.obs, episode,
                                      actionScratch);
        }
    }

    env::StepResult &step = stepScratch;
    {
        ScopedPhase sp(_timer, Phase::EnvStep);
        if (continuous)
        {
            vecForceScratch.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                vecForceScratch[i] = {forceScratch[i][0],
                                      forceScratch[i][1]};
            lane.env->stepContinuousInto(vecForceScratch, step);
        }
        else
        {
            lane.env->stepInto(actionScratch, step);
        }
    }
    ++steps;

    onehotScratch.resize(n);
    for (std::size_t i = 0; i < n; ++i)
    {
        if (continuous)
        {
            onehotScratch[i].assign(
                {forceScratch[i][0], forceScratch[i][1]});
        }
        else
        {
            onehotScratch[i].assign(lane.env->actionDim(), Real(0));
            onehotScratch[i][static_cast<std::size_t>(
                actionScratch[i])] = Real(1);
        }
    }

    {
        ScopedPhase sp(_timer, Phase::BufferAdd);
        // Every generated transition consumes a sequence number;
        // a full ring drops the record but not the number, which is
        // exactly what the consumer's gap accounting measures.
        Real *rec = ring.tryBeginPush(nextSeq++);
        if (rec != nullptr)
        {
            replay::packRecord(rec, layout, lane.obs, onehotScratch,
                               step.rewards, step.observations,
                               step.dones);
            ring.commitPush();
        }
        if (++sincePublish >= config.publishBatch)
        {
            ring.publish();
            sincePublish = 0;
        }
    }

    for (const Real r : step.rewards)
        lane.reward += r / static_cast<Real>(n);
    std::swap(lane.obs, step.observations);

    if (++lane.t >= config.maxEpisodeLength)
    {
        // Flush so the learner sees the full episode before its
        // reward is reported.
        ring.publish();
        sincePublish = 0;
        control.recordEpisode(lane.episode, lane.reward);
        lane.active = false;
    }
}

void
ActorRunner::run()
{
    bool exhausted = false;
    while (!control.stop.load(std::memory_order_acquire))
    {
        bool anyActive = false;
        for (Lane &lane : lanes)
        {
            if (!lane.active && !exhausted)
                exhausted = !claimEpisode(lane);
            if (lane.active)
            {
                stepLane(lane);
                anyActive = true;
            }
        }
        if (!anyActive)
            break;
    }
    // Whatever is staged must reach the learner before this actor
    // reports itself retired (the learner's exit check relies on
    // "activeActors == 0 implies everything is published").
    ring.publish();
    control.activeActors.fetch_sub(1, std::memory_order_release);
}

} // namespace marlin::async
