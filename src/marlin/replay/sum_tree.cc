#include "marlin/replay/sum_tree.hh"

#include <algorithm>
#include <limits>

#include "marlin/base/logging.hh"
#include "marlin/base/serialize.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

SumTree::SumTree(BufferIndex capacity) : _capacity(capacity)
{
    MARLIN_ASSERT(capacity > 0, "sum tree capacity must be > 0");
    leafCount = 1;
    while (leafCount < capacity)
        leafCount <<= 1;
    nodes.assign(2 * leafCount, 0.0);
}

double
SumTree::priorityOf(BufferIndex idx) const
{
    MARLIN_ASSERT(idx < _capacity, "sum tree index out of range");
    return nodes[leafCount + idx];
}

double
SumTree::minPriority() const
{
    double best = std::numeric_limits<double>::max();
    bool found = false;
    for (BufferIndex i = 0; i < _capacity; ++i) {
        const double p = nodes[leafCount + i];
        if (p > 0.0) {
            best = std::min(best, p);
            found = true;
        }
    }
    return found ? best : 0.0;
}

void
SumTree::set(BufferIndex idx, double priority)
{
    MARLIN_ASSERT(idx < _capacity, "sum tree index out of range");
    MARLIN_ASSERT(priority >= 0.0, "priorities must be non-negative");
    BufferIndex node = leafCount + idx;
    const double delta = priority - nodes[node];
    nodes[node] = priority;
    _maxPriority = std::max(_maxPriority, priority);
    while (node > 1) {
        node >>= 1;
        nodes[node] += delta;
    }
}

BufferIndex
SumTree::find(double prefix) const
{
    MARLIN_ASSERT(total() > 0.0, "sampling from an empty sum tree");
    // The paper attributes prioritized sampling's cost to these
    // pointer-chasing descents; the counters expose the traffic
    // (depth is log2(leafCount), so depth_total/finds recovers the
    // effective tree height a run paid for).
    static obs::Counter &finds =
        obs::Registry::instance().counter("replay.sumtree.finds");
    static obs::Counter &depth_total =
        obs::Registry::instance().counter(
            "replay.sumtree.depth_total");
    finds.add();
    if (prefix < 0.0)
        prefix = 0.0;
    BufferIndex node = 1;
    std::uint64_t depth = 0;
    while (node < leafCount) {
        const BufferIndex left = 2 * node;
        if (prefix < nodes[left]) {
            node = left;
        } else {
            prefix -= nodes[left];
            node = left + 1;
        }
        ++depth;
    }
    depth_total.add(depth);
    BufferIndex leaf = node - leafCount;
    // Guard against floating-point drift landing on a zero-priority
    // padding leaf.
    if (leaf >= _capacity)
        leaf = _capacity - 1;
    return leaf;
}

void
SumTree::clear()
{
    std::fill(nodes.begin(), nodes.end(), 0.0);
    _maxPriority = 1.0;
}

void
SumTree::saveState(std::ostream &os) const
{
    writePod<std::uint64_t>(os, _capacity);
    writePod<double>(os, _maxPriority);
    writeVector(os, nodes);
}

void
SumTree::loadState(std::istream &is)
{
    const auto capacity = readPod<std::uint64_t>(is);
    if (capacity != _capacity) {
        fatal("sum tree checkpoint capacity %llu does not match %llu",
              static_cast<unsigned long long>(capacity),
              static_cast<unsigned long long>(_capacity));
    }
    _maxPriority = readPod<double>(is);
    std::vector<double> loaded = readVector<double>(is);
    if (loaded.size() != nodes.size()) {
        fatal("sum tree checkpoint has %zu nodes, tree has %zu",
              loaded.size(), nodes.size());
    }
    nodes = std::move(loaded);
}

} // namespace marlin::replay
