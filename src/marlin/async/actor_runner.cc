#include "marlin/async/actor_runner.hh"

#include <chrono>
#include <limits>
#include <thread>

#include "marlin/async/flow_id.hh"
#include "marlin/base/logging.hh"
#include "marlin/base/string_utils.hh"
#include "marlin/obs/trace.hh"

namespace marlin::async
{

using profile::Phase;
using profile::ScopedPhase;

ActorRunner::ActorRunner(
    ActorConfig config_in,
    std::vector<std::unique_ptr<env::Environment>> envs_in,
    std::unique_ptr<core::CtdeTrainerBase> policy_in,
    replay::TransitionRing &ring_in,
    const replay::JointTransitionLayout &layout_in,
    PolicySnapshot &snapshot_in, RunControl &control_in)
    : config(config_in), envs(std::move(envs_in)),
      policy(std::move(policy_in)), ring(ring_in), layout(layout_in),
      snapshot(snapshot_in), control(control_in)
{
    MARLIN_ASSERT(!envs.empty(), "actor needs at least one lane");
    lanes.resize(envs.size());
    for (std::size_t i = 0; i < envs.size(); ++i)
        lanes[i].env = envs[i].get();
}

bool
ActorRunner::claimEpisode(Lane &lane)
{
    std::uint64_t e = 0;
    if (!control.claim(e))
    {
        lane.active = false;
        return false;
    }
    // Episode boundary: the natural point to pick up new weights —
    // mid-episode swaps would mix two policies in one trajectory.
    if (snapshot.refresh(*policy, seenVersion))
        ++refreshes;
    snapshot.noteAdopted(config.actorId, seenVersion);
    lane.episode = e;
    lane.t = 0;
    lane.reward = 0;
    lane.env->resetInto(lane.obs);
    lane.active = true;
    return true;
}

void
ActorRunner::stepLane(Lane &lane)
{
    bool poisonRecord = false;
    if (injector != nullptr)
    {
        const base::ActorFaultAction fault =
            injector->onActorStep(config.actorId, steps + 1);
        if (fault.stallMs > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fault.stallMs));
        poisonRecord = fault.corrupt;
        if (fault.kill)
            throw base::InjectedFault(csprintf(
                "chaos: kill actor %zu at local step %llu",
                config.actorId,
                static_cast<unsigned long long>(steps + 1)));
    }

    const std::size_t n = lane.env->numAgents();
    const bool continuous =
        config.actionMode == core::ActionMode::Continuous;
    const auto episode = static_cast<std::size_t>(lane.episode);

    {
        ScopedPhase sp(_timer, Phase::ActionSelection);
        if (continuous)
        {
            policy->selectContinuousActionsInto(lane.obs, episode,
                                                forceScratch);
        }
        else
        {
            policy->selectActionsInto(lane.obs, episode,
                                      actionScratch);
        }
    }

    env::StepResult &step = stepScratch;
    {
        ScopedPhase sp(_timer, Phase::EnvStep);
        if (continuous)
        {
            vecForceScratch.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                vecForceScratch[i] = {forceScratch[i][0],
                                      forceScratch[i][1]};
            lane.env->stepContinuousInto(vecForceScratch, step);
        }
        else
        {
            lane.env->stepInto(actionScratch, step);
        }
    }
    ++steps;

    onehotScratch.resize(n);
    for (std::size_t i = 0; i < n; ++i)
    {
        if (continuous)
        {
            onehotScratch[i].assign(
                {forceScratch[i][0], forceScratch[i][1]});
        }
        else
        {
            onehotScratch[i].assign(lane.env->actionDim(), Real(0));
            onehotScratch[i][static_cast<std::size_t>(
                actionScratch[i])] = Real(1);
        }
    }

    {
        ScopedPhase sp(_timer, Phase::BufferAdd);
        // Flow tracing is gated on the active ring so the untraced
        // path pays no extra clock reads.
        obs::TraceRing *tr = obs::TraceRing::active();
        const std::uint64_t pushStartNs =
            tr != nullptr ? base::nowNsSinceStart() : 0;
        // Every generated transition consumes a sequence number;
        // a full ring drops the record but not the number, which is
        // exactly what the consumer's gap accounting measures.
        const std::uint64_t seq = nextSeq++;
        Real *rec = ring.tryBeginPush(seq);
        if (rec != nullptr)
        {
            replay::packRecord(rec, layout, lane.obs, onehotScratch,
                               step.rewards, step.observations,
                               step.dones);
            if (poisonRecord)
            {
                // Chaos: a corrupted sensor/reward pipeline. The
                // learner's quarantine must catch this at drain.
                rec[layout.agents[0].reward] =
                    std::numeric_limits<Real>::quiet_NaN();
            }
            ring.commitPush();
            if (tr != nullptr)
            {
                // Flow out: the learner's drain span of this exact
                // record carries the matching id (see flowId()).
                tr->record("actor_push", "async", pushStartNs,
                           base::nowNsSinceStart() - pushStartNs,
                           transitionFlowId(config.actorId, seq),
                           obs::FlowDir::Out);
            }
        }
        if (++sincePublish >= config.publishBatch)
        {
            ring.publish();
            sincePublish = 0;
        }
    }

    for (const Real r : step.rewards)
        lane.reward += r / static_cast<Real>(n);
    std::swap(lane.obs, step.observations);

    if (++lane.t >= config.maxEpisodeLength)
    {
        // Flush so the learner sees the full episode before its
        // reward is reported.
        ring.publish();
        sincePublish = 0;
        control.recordEpisode(lane.episode, lane.reward);
        lane.active = false;
    }
}

void
ActorRunner::run()
{
    while (!control.stop.load(std::memory_order_acquire) &&
           !abortFlag.load(std::memory_order_acquire))
    {
        if (heartbeat != nullptr)
            heartbeat->beat();
        bool anyActive = false;
        for (Lane &lane : lanes)
        {
            if (!lane.active)
                claimEpisode(lane);
            if (lane.active)
            {
                stepLane(lane);
                anyActive = true;
            }
        }
        if (!anyActive)
        {
            if (control.done())
                break;
            // Every index is claimed but the run is not done: a
            // faulted peer may return episodes to the reclaim pool,
            // so stay available instead of retiring early.
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        }
    }
    abandonActiveEpisodes();
    // Whatever is staged must reach the learner before this actor
    // reports itself retired (the learner's exit check relies on
    // "activeActors == 0 implies everything is published").
    ring.publish();
    retireOnce();
}

void
ActorRunner::abandonActiveEpisodes()
{
    for (Lane &lane : lanes)
    {
        if (!lane.active)
            continue;
        control.reclaim(lane.episode);
        lane.active = false;
    }
}

} // namespace marlin::async
