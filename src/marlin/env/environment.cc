#include "marlin/env/environment.hh"

#include <algorithm>

#include "marlin/base/logging.hh"
#include "marlin/env/cooperative_navigation.hh"
#include "marlin/env/predator_prey.hh"

namespace marlin::env
{

Environment::Environment(std::unique_ptr<Scenario> scenario,
                         std::uint64_t seed, WorldConfig world_config)
    : _scenario(std::move(scenario)), _world(world_config), rng(seed)
{
    MARLIN_ASSERT(_scenario != nullptr, "Environment needs a scenario");
    _scenario->makeWorld(_world);
    _numAgents = _scenario->learnableAgents(_world);
    MARLIN_ASSERT(_numAgents > 0 &&
                      _numAgents <= _world.numAgents(),
                  "scenario reported an invalid learnable agent count");
}

std::size_t
Environment::obsDim(std::size_t i) const
{
    MARLIN_ASSERT(i < _numAgents, "obsDim index out of range");
    return _scenario->observationDim(i);
}

void
Environment::resetInto(std::vector<std::vector<Real>> &obs)
{
    _scenario->resetWorld(_world, rng);
    gatherObservationsInto(obs);
}

void
Environment::stepInto(const std::vector<int> &actions,
                      StepResult &result)
{
    MARLIN_ASSERT(actions.size() == _numAgents,
                  "one action per learnable agent required");

    for (std::size_t i = 0; i < _world.numAgents(); ++i) {
        Agent &a = _world.agents[i];
        int action;
        if (i < _numAgents) {
            action = actions[i];
            MARLIN_ASSERT(action >= 0 && action < numDiscreteActions,
                          "discrete action out of range");
        } else {
            action = a.scripted
                         ? _scenario->scriptedAction(_world, i, rng)
                         : 0;
        }
        a.actionForce = discreteActionDirection(action);
    }

    _world.step();

    gatherObservationsInto(result.observations);
    result.rewards.resize(_numAgents);
    result.dones.assign(_numAgents, false);
    for (std::size_t i = 0; i < _numAgents; ++i)
        result.rewards[i] = _scenario->reward(_world, i);
}

void
Environment::stepContinuousInto(const std::vector<Vec2> &forces,
                                StepResult &result)
{
    MARLIN_ASSERT(forces.size() == _numAgents,
                  "one force per learnable agent required");

    for (std::size_t i = 0; i < _world.numAgents(); ++i) {
        Agent &a = _world.agents[i];
        if (i < _numAgents) {
            a.actionForce = {std::clamp(forces[i].x, Real(-1),
                                        Real(1)),
                             std::clamp(forces[i].y, Real(-1),
                                        Real(1))};
        } else {
            const int action =
                a.scripted ? _scenario->scriptedAction(_world, i, rng)
                           : 0;
            a.actionForce = discreteActionDirection(action);
        }
    }

    _world.step();

    gatherObservationsInto(result.observations);
    result.rewards.resize(_numAgents);
    result.dones.assign(_numAgents, false);
    for (std::size_t i = 0; i < _numAgents; ++i)
        result.rewards[i] = _scenario->reward(_world, i);
}

void
Environment::gatherObservationsInto(
    std::vector<std::vector<Real>> &obs) const
{
    obs.resize(_numAgents);
    for (std::size_t i = 0; i < _numAgents; ++i) {
        obs[i].resize(_scenario->observationDim(i));
        _scenario->observationInto(_world, i, obs[i].data());
    }
}

std::unique_ptr<Environment>
makePredatorPreyEnv(std::size_t num_agents, std::uint64_t seed)
{
    PredatorPreyConfig config;
    config.numPredators = num_agents;
    return std::make_unique<Environment>(
        std::make_unique<PredatorPreyScenario>(config), seed);
}

std::unique_ptr<Environment>
makeCooperativeNavigationEnv(std::size_t num_agents, std::uint64_t seed)
{
    CooperativeNavigationConfig config;
    config.numAgents = num_agents;
    return std::make_unique<Environment>(
        std::make_unique<CooperativeNavigationScenario>(config), seed);
}

} // namespace marlin::env
