/**
 * @file
 * Lightweight named statistics registry (gem5-stats inspired):
 * scalar counters and streaming distributions keyed by name, used by
 * trainers and benches to report non-timing metrics.
 */

#ifndef MARLIN_PROFILE_STATS_HH
#define MARLIN_PROFILE_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace marlin::profile
{

/** Streaming mean/min/max/stddev accumulator. */
class Distribution
{
  public:
    void sample(double value);

    std::uint64_t count() const { return n; }
    double mean() const { return n ? total / static_cast<double>(n) : 0; }
    double min() const { return n ? _min : 0; }
    double max() const { return n ? _max : 0; }
    double variance() const;
    double stddev() const;

    void reset();

  private:
    std::uint64_t n = 0;
    double total = 0;
    double sumSq = 0;
    double _min = 0;
    double _max = 0;
};

/** Name -> counter/distribution registry. */
class StatsRegistry
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Counter value (0 if absent). */
    std::uint64_t counter(const std::string &name) const;

    /** Record @p value into distribution @p name. */
    void sample(const std::string &name, double value);

    /** Distribution accessor (empty distribution if absent). */
    const Distribution &dist(const std::string &name) const;

    /** Sorted counter names. */
    std::vector<std::string> counterNames() const;

    /** Sorted distribution names. */
    std::vector<std::string> distNames() const;

    /** Render all stats as "name value" lines. */
    std::string dump() const;

    void reset();

  private:
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, Distribution> dists;
};

} // namespace marlin::profile

#endif // MARLIN_PROFILE_STATS_HH
