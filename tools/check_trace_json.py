#!/usr/bin/env python3
"""Validate a MARLin trace export (--trace output) as Chrome/Perfetto
trace_event JSON.

Checks the properties a trace viewer needs and the accounting MARLin
promises:

  * the document parses and carries a non-empty "traceEvents" array;
  * every event is a complete span ("ph":"X") with string name/cat,
    numeric non-negative ts/dur (microseconds) and integer pid/tid;
  * "otherData" reports capacity, storedEvents and droppedEvents, and
    storedEvents matches the array length — the overflow contract is
    that truncation is counted, never silent;
  * flow-linked spans ("bind_id" + exactly one of flow_out/flow_in)
    are well formed: bind_id is a non-zero hex string and the two
    directions never share one event;
  * optionally (--require-phases) at least one event from each named
    category is present, so CI can assert the training phases,
    thread-pool chunks or checkpoint writes actually landed;
  * optionally (--require-flow) at least one flow pair exists and
    every flow-in id has a matching flow-out id, so a viewer can
    draw the cross-thread arrow (e.g. actor push -> learner drain).

Usage: check_trace_json.py FILE [--require-cat CAT ...]
                                [--require-flow]
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("file")
    parser.add_argument("--require-cat", action="append", default=[],
                        help="fail unless >=1 event has this category")
    parser.add_argument("--allow-empty", action="store_true",
                        help="accept a trace with zero events (e.g. a "
                             "kernel micro-bench records no spans)")
    parser.add_argument("--require-flow", action="store_true",
                        help="fail unless >=1 flow_out/flow_in pair "
                             "links two spans by bind_id")
    args = parser.parse_args()

    try:
        with open(args.file, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.file}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{args.file} has no traceEvents array")
    if not events and not args.allow_empty:
        fail(f"{args.file} has zero trace events")

    cats = set()
    flow_out_ids = set()
    flow_in_ids = set()
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if e.get("ph") != "X":
            fail(f"{where}: expected complete span ph 'X', "
                 f"got {e.get('ph')!r}")
        for key in ("name", "cat"):
            if not isinstance(e.get(key), str) or not e[key]:
                fail(f"{where}: missing or empty {key!r}")
        for key in ("ts", "dur"):
            v = e.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{where}: {key!r} is not a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                fail(f"{where}: {key!r} is not an integer")
        cats.add(e["cat"])

        is_out = e.get("flow_out") is True
        is_in = e.get("flow_in") is True
        if "bind_id" in e or is_out or is_in:
            bind = e.get("bind_id")
            if not isinstance(bind, str) or not bind.startswith("0x"):
                fail(f"{where}: bind_id {bind!r} is not a hex string")
            try:
                flow_id = int(bind, 16)
            except ValueError:
                fail(f"{where}: bind_id {bind!r} does not parse")
            if flow_id == 0:
                fail(f"{where}: flow id 0 is reserved for 'none'")
            if is_out == is_in:
                fail(f"{where}: flow span must set exactly one of "
                     "flow_out/flow_in")
            (flow_out_ids if is_out else flow_in_ids).add(flow_id)

    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("missing otherData accounting block")
    for key in ("capacity", "storedEvents", "droppedEvents"):
        v = other.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"otherData.{key} is not a non-negative integer")
    if other["storedEvents"] != len(events):
        fail(f"otherData.storedEvents {other['storedEvents']} != "
             f"{len(events)} events in the array")
    if other["storedEvents"] > other["capacity"]:
        fail("storedEvents exceeds capacity")

    for cat in args.require_cat:
        if cat not in cats:
            fail(f"no event with category {cat!r} "
                 f"(saw: {sorted(cats)})")

    paired = flow_in_ids & flow_out_ids
    if args.require_flow:
        # The ring is a window: an out span may have aged out before
        # its in span landed, but a drain arrow with no visible source
        # inside the same export is a linking bug.
        unmatched = flow_in_ids - flow_out_ids
        if unmatched and other["droppedEvents"] == 0:
            fail(f"{len(unmatched)} flow-in id(s) with no matching "
                 f"flow-out (e.g. {sorted(unmatched)[:3]})")
        if not paired:
            fail("no flow_out/flow_in pair links two spans")

    print(f"ok: {len(events)} event(s), "
          f"{other['droppedEvents']} dropped, "
          f"{len(paired)} flow pair(s), categories: "
          f"{', '.join(sorted(cats))}")


if __name__ == "__main__":
    main()
