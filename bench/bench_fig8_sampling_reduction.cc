/**
 * @file
 * Figure 8: mini-batch sampling phase training-time reduction from
 * intra-agent cache locality-aware sampling, MADDPG, Predator-Prey
 * and Cooperative Navigation, 3-24 agents, for the paper's two
 * settings (neighbors=16/refs=64 and neighbors=64/refs=16).
 *
 * Paper reference values (% sampling-time reduction vs baseline):
 *   PP:  n16r64 35.8/34.9/35.0/35.6 and n64r16 37.5/37.2/37.2/37.2
 *        for 3/6/12/24 agents (approx. from Fig. 8)
 *   CN:  n16r64 28.4/33.2/31.0/30.7 and n64r16 32.9/32.8/33.4/33.8
 */

#include "common.hh"

#include "marlin/profile/timer.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

/** One update's sampling phase: N trainer plans x N-agent gathers. */
double
sampleUpdateSeconds(replay::Sampler &sampler,
                    const replay::MultiAgentBuffer &buffers,
                    std::size_t batch, Rng &rng, int reps)
{
    std::vector<replay::AgentBatch> batches;
    profile::Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t trainer = 0;
             trainer < buffers.numAgents(); ++trainer) {
            auto plan = sampler.plan(buffers.size(), batch, rng);
            replay::gatherAllAgents(buffers, plan, batches);
        }
    }
    return sw.elapsedSeconds() / reps;
}

void
runTask(Task task)
{
    std::printf("\n%s (MADDPG)\n", taskName(task));
    std::printf("%-8s %10s %14s %14s %14s\n", "agents", "capacity",
                "baseline(ms)", "n16,r64(%)", "n64,r16(%)");
    for (std::size_t n : {3, 6, 12, 24}) {
        auto shapes = taskShapes(task, n);
        const BufferIndex capacity =
            scaledCapacity(shapes, 768ull << 20);
        replay::MultiAgentBuffer buffers(shapes, capacity);
        Rng fill_rng(n);
        fillSynthetic(buffers, capacity, fill_rng);

        const std::size_t batch = 1024;
        const int reps = n >= 12 ? 2 : 4;
        Rng rng(7);

        replay::UniformSampler uniform;
        replay::LocalityAwareSampler loc16({16, 64});
        replay::LocalityAwareSampler loc64({64, 16});

        // Warm the allocator/caches once, then measure.
        sampleUpdateSeconds(uniform, buffers, batch, rng, 1);
        const double base =
            sampleUpdateSeconds(uniform, buffers, batch, rng, reps);
        const double t16 =
            sampleUpdateSeconds(loc16, buffers, batch, rng, reps);
        const double t64 =
            sampleUpdateSeconds(loc64, buffers, batch, rng, reps);

        std::printf("%-8zu %10llu %14.2f %14.1f %14.1f\n", n,
                    static_cast<unsigned long long>(capacity),
                    base * 1e3, pctReduction(base, t16),
                    pctReduction(base, t64));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig8_sampling_reduction");
    banner("Figure 8: sampling-phase reduction from cache "
           "locality-aware sampling");
    std::printf("batch=1024; buffer scaled to fit memory (paper: "
                "1e6 entries)\n");
    runTask(Task::PredatorPrey);
    runTask(Task::CooperativeNavigation);
    std::printf("\npaper shape: 28-38%% reduction across all agent "
                "counts;\nn64r16 (max locality) >= n16r64 (more "
                "randomness)\n");
    return 0;
}
