/**
 * @file
 * Intra-agent cache locality-aware sampling (paper Section IV-A,
 * Algorithm 1): pick a few random reference points, then take runs
 * of neighboring transitions so the gather's address stream is
 * sequential and the hardware prefetcher can follow it.
 *
 * The paper evaluates two settings: 16 reference points x 64
 * neighbors (max locality) and 64 reference points x 16 neighbors
 * (more randomness).
 */

#ifndef MARLIN_REPLAY_LOCALITY_SAMPLER_HH
#define MARLIN_REPLAY_LOCALITY_SAMPLER_HH

#include "marlin/replay/sampler.hh"

namespace marlin::replay
{

/** Reference-point / neighbor-run configuration. */
struct LocalityConfig
{
    /** Contiguous transitions taken per reference point. */
    std::size_t neighbors = 16;
    /**
     * Reference points per batch; 0 = derive as batch / neighbors.
     */
    std::size_t referencePoints = 0;
};

/**
 * Locality-aware sampler: the batch is the concatenation of
 * `referencePoints` runs of `neighbors` consecutive indices, each
 * run anchored at a uniformly drawn reference point (clamped so the
 * run stays inside the valid region and remains contiguous in
 * memory).
 */
class LocalityAwareSampler : public Sampler
{
  public:
    explicit LocalityAwareSampler(LocalityConfig config = {});

    std::string name() const override;

    void planInto(BufferIndex buffer_size, std::size_t batch,
                  Rng &rng, IndexPlan &out) override;

    const LocalityConfig &config() const { return _config; }

  private:
    LocalityConfig _config;
    bool warnedMismatch = false;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_LOCALITY_SAMPLER_HH
