/**
 * @file
 * Tests for the vectorized environment wrapper.
 */

#include <gtest/gtest.h>

#include "marlin/base/alloc_guard.hh"
#include "marlin/base/thread_pool.hh"
#include "marlin/env/vector_env.hh"

namespace marlin::env
{
namespace
{

EnvFactory
cnFactory(std::size_t agents)
{
    return [agents](std::size_t lane) {
        return makeCooperativeNavigationEnv(agents, 100 + lane);
    };
}

TEST(VectorEnv, ConstructionAndShapes)
{
    VectorEnvironment vec(cnFactory(3), 4);
    EXPECT_EQ(vec.numLanes(), 4u);
    EXPECT_EQ(vec.numAgents(), 3u);
    auto obs = vec.reset();
    ASSERT_EQ(obs.size(), 4u);
    ASSERT_EQ(obs[0].size(), 3u);
    EXPECT_EQ(obs[0][0].size(), 18u);
}

TEST(VectorEnv, LanesAreDecorrelated)
{
    VectorEnvironment vec(cnFactory(3), 2);
    auto obs = vec.reset();
    EXPECT_NE(obs[0][0], obs[1][0]);
}

TEST(VectorEnv, StepAllLanes)
{
    VectorEnvironment vec(cnFactory(3), 3);
    vec.reset();
    std::vector<std::vector<int>> actions(3,
                                          std::vector<int>{1, 2, 3});
    auto results = vec.step(actions);
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        EXPECT_EQ(r.rewards.size(), 3u);
        for (Real reward : r.rewards)
            EXPECT_TRUE(std::isfinite(reward));
    }
}

TEST(VectorEnv, ResetLaneOnlyTouchesThatLane)
{
    VectorEnvironment vec(cnFactory(3), 2);
    vec.reset();
    std::vector<std::vector<int>> actions(2,
                                          std::vector<int>{1, 1, 1});
    vec.step(actions);
    const Vec2 lane1_pos = vec.lane(1).world().agents[0].pos;
    vec.resetLane(0);
    EXPECT_EQ(vec.lane(1).world().agents[0].pos, lane1_pos);
}

TEST(VectorEnv, LaneSeedsReproduce)
{
    VectorEnvironment a(cnFactory(3), 2);
    VectorEnvironment b(cnFactory(3), 2);
    auto oa = a.reset();
    auto ob = b.reset();
    EXPECT_EQ(oa[0][0], ob[0][0]);
    EXPECT_EQ(oa[1][2], ob[1][2]);
}

TEST(VectorEnv, SingleLaneDegeneratesToPlainEnv)
{
    VectorEnvironment vec(cnFactory(3), 1);
    auto direct = makeCooperativeNavigationEnv(3, 100);
    auto vec_obs = vec.reset();
    auto direct_obs = direct->reset();
    EXPECT_EQ(vec_obs[0], direct_obs);
}

TEST(VectorEnv, ParallelSteppingBitIdenticalToSerial)
{
    // Enough lanes to cross the parallel threshold. Each lane owns
    // its env and RNG, so a 4-thread pool must reproduce the
    // 1-thread trajectories exactly.
    constexpr std::size_t lanes = 8;
    auto rollout = [&](std::size_t threads) {
        base::ThreadPool::setGlobalThreads(threads);
        VectorEnvironment vec(cnFactory(3), lanes);
        auto obs = vec.reset();
        std::vector<StepResult> last;
        std::vector<std::vector<int>> actions(
            lanes, std::vector<int>{0, 0, 0});
        for (int t = 0; t < 20; ++t) {
            for (std::size_t l = 0; l < lanes; ++l)
                for (std::size_t a = 0; a < 3; ++a)
                    actions[l][a] =
                        static_cast<int>((t + l + a) % 5);
            last = vec.step(actions);
        }
        base::ThreadPool::setGlobalThreads(0);
        return last;
    };
    const auto serial = rollout(1);
    const auto parallel = rollout(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t l = 0; l < lanes; ++l) {
        EXPECT_EQ(serial[l].observations, parallel[l].observations);
        EXPECT_EQ(serial[l].rewards, parallel[l].rewards);
        EXPECT_EQ(serial[l].dones, parallel[l].dones);
    }
}

TEST(VectorEnv, FlatBatchMatchesNestedApi)
{
    // Two vec-envs built from the same factory draw identical RNG
    // streams, so the flat batch must hold exactly the numbers the
    // nested API returns, at the computed offsets.
    VectorEnvironment nested(cnFactory(3), 3);
    VectorEnvironment flat(cnFactory(3), 3);

    auto obs = nested.reset();
    ObsBatch batch;
    flat.resetInto(batch);
    ASSERT_EQ(batch.numLanes(), 3u);
    ASSERT_EQ(batch.agentOffsets.size(), 4u);
    EXPECT_EQ(batch.laneStride, 3 * 18u);
    for (std::size_t l = 0; l < 3; ++l) {
        for (std::size_t a = 0; a < 3; ++a) {
            ASSERT_EQ(batch.agentDim(a), obs[l][a].size());
            const Real *p = batch.agentObs(l, a);
            for (std::size_t d = 0; d < obs[l][a].size(); ++d)
                EXPECT_EQ(p[d], obs[l][a][d]) << l << " " << a;
        }
    }

    std::vector<std::vector<int>> actions(3,
                                          std::vector<int>{1, 2, 3});
    auto results = nested.step(actions);
    StepBatch step;
    flat.stepInto(actions, step);
    for (std::size_t l = 0; l < 3; ++l) {
        for (std::size_t a = 0; a < 3; ++a) {
            EXPECT_EQ(step.reward(l, a, 3), results[l].rewards[a]);
            EXPECT_EQ(step.dones[l * 3 + a] != 0,
                      results[l].dones[a]);
            const Real *p = step.observations.agentObs(l, a);
            for (std::size_t d = 0;
                 d < results[l].observations[a].size(); ++d)
                EXPECT_EQ(p[d], results[l].observations[a][d]);
        }
    }
}

TEST(VectorEnv, WarmFlatBatchStepIsAllocationFree)
{
    VectorEnvironment vec(cnFactory(3), 3);
    ObsBatch obs;
    StepBatch step;
    std::vector<std::vector<int>> actions(3,
                                          std::vector<int>{1, 2, 3});
    // Warm-up: first calls size every scratch buffer.
    vec.resetInto(obs);
    vec.stepInto(actions, step);

    base::AllocGuard guard;
    vec.stepInto(actions, step);
    vec.resetInto(obs);
    EXPECT_EQ(guard.allocations(), 0u)
        << guard.allocations() << " allocations ("
        << guard.bytes() << " bytes) in warm flat-batch calls";
}

} // namespace
} // namespace marlin::env
