/**
 * @file
 * Bounded lock-free SPSC ring of joint multi-agent transitions: the
 * conveyor belt between one async actor thread (producer) and the
 * learner thread (consumer).
 *
 * Each record is one environment step flattened to a fixed stride of
 * Reals — per agent: obs, action, reward, next obs, done — laid out
 * by JointTransitionLayout so records never wrap (slot = record).
 * Producers stamp every *generated* transition with a monotonically
 * increasing sequence number; when the ring is full the record is
 * dropped (the producer never blocks the rollout) but its sequence
 * number is still consumed, so the consumer sees a gap and the loss
 * is accounted, never silent:
 *
 *   pushed + dropped == sequence numbers issued
 *   seqGaps         == transitions the consumer observed missing
 *
 * The drain side (drainRecordInto) appends a record to every agent's
 * replay buffer through the raw-pointer add path, preserving the
 * zero-allocation steady state of the training loop.
 */

#ifndef MARLIN_REPLAY_TRANSITION_RING_HH
#define MARLIN_REPLAY_TRANSITION_RING_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "marlin/base/spsc_ring.hh"
#include "marlin/replay/replay_buffer.hh"
#include "marlin/replay/transition.hh"

namespace marlin::replay
{

/**
 * Flat layout of one joint transition record. Per agent, in agent
 * order: [obs | action | reward | next obs | done], all as Reals
 * (done is 0/1). stride is the total Real count of one record.
 */
struct JointTransitionLayout
{
    struct AgentBlock
    {
        std::size_t obs = 0;     ///< Offset of the observation.
        std::size_t act = 0;     ///< Offset of the action block.
        std::size_t reward = 0;  ///< Offset of the scalar reward.
        std::size_t nextObs = 0; ///< Offset of the next observation.
        std::size_t done = 0;    ///< Offset of the 0/1 done flag.
        std::size_t obsDim = 0;
        std::size_t actDim = 0;
    };

    std::vector<AgentBlock> agents;
    std::size_t stride = 0;

    static JointTransitionLayout
    fromShapes(const std::vector<TransitionShape> &shapes);
};

/**
 * Pack one joint transition into @p dst (stride Reals). Inputs use
 * the training loop's native per-agent shapes, so actors feed their
 * existing scratch buffers straight in.
 */
void packRecord(Real *dst, const JointTransitionLayout &layout,
                const std::vector<std::vector<Real>> &obs,
                const std::vector<std::vector<Real>> &actions,
                const std::vector<Real> &rewards,
                const std::vector<std::vector<Real>> &next_obs,
                const std::vector<bool> &dones);

/**
 * Append the record at @p rec to every agent's buffer via the
 * raw-pointer add path. Allocation-free on warm buffers; keeps the
 * per-agent rings advancing in lock-step like MultiAgentBuffer::add.
 */
void drainRecordInto(MultiAgentBuffer &buffers,
                     const JointTransitionLayout &layout,
                     const Real *rec);

/**
 * The SPSC transition ring. Exactly one producer thread and one
 * consumer thread; counters are readable from any thread (relaxed).
 *
 * Successor-producer takeover: "one producer thread" means one at a
 * time, not one forever. When a producer thread dies mid-batch, the
 * supervisor — after joining the dead thread, which is the
 * happens-before edge covering all its plain writes (staged count,
 * record payloads, seqs) — may call publish() to flush what the
 * dead producer committed but never published, and a restarted
 * producer thread (whose spawn is ordered after the join) continues
 * pushing where the old one stopped. Records the dead producer
 * began (tryBeginPush) but never committed are simply overwritten
 * by the successor's next push: commitPush is what stages a record,
 * so an uncommitted claim leaks nothing and loses only its sequence
 * number — which the gap accounting reports, never silently.
 */
class TransitionRing
{
  public:
    /**
     * @param stride Reals per record (layout.stride).
     * @param capacity_hint Records held; rounded up to a power of
     *        two.
     */
    TransitionRing(std::size_t stride, std::size_t capacity_hint);

    std::size_t capacity() const { return idx.capacity(); }
    std::size_t stride() const { return _stride; }

    /**
     * Producer: claim the next record slot for sequence number
     * @p seq. Returns the slot's stride-sized Real area to fill, or
     * nullptr when the ring is full — the record is then counted as
     * dropped and @p seq must NOT be reused for the next transition
     * (the skipped number is what the consumer's gap accounting
     * detects).
     */
    Real *tryBeginPush(std::uint64_t seq) noexcept;

    /** Producer: stage the record claimed by tryBeginPush. */
    void commitPush() noexcept;

    /**
     * Producer: make every staged record visible to the consumer
     * with one release store (batched publish). Safe to call with
     * nothing staged.
     */
    void publish() noexcept;

    /**
     * Consumer: the oldest unconsumed record, or nullptr when the
     * ring is empty. @p seq (optional) receives its sequence
     * number; @p push_ns (optional) its push-time stamp from the
     * shared base/instant.hh timebase, so the drain side can
     * attribute transit latency (now - push_ns) across the actor →
     * learner boundary. The pointer stays valid until pop().
     */
    const Real *front(std::uint64_t *seq = nullptr,
                      std::uint64_t *push_ns = nullptr) noexcept;

    /** Consumer: retire the front record and account seq gaps. */
    void pop() noexcept;

    // Accounting, readable from any thread.
    std::uint64_t
    pushedCount() const noexcept
    {
        return pushed.load(std::memory_order_relaxed);
    }
    std::uint64_t
    droppedCount() const noexcept
    {
        return dropped.load(std::memory_order_relaxed);
    }
    std::uint64_t
    poppedCount() const noexcept
    {
        return popped.load(std::memory_order_relaxed);
    }
    /** Transitions the consumer observed missing (sum of gaps). */
    std::uint64_t
    seqGapCount() const noexcept
    {
        return seqGaps.load(std::memory_order_relaxed);
    }
    /** Records published but not yet consumed (approximate). */
    std::size_t depth() const noexcept { return idx.size(); }

  private:
    base::SpscIndexRing idx;
    std::size_t _stride;
    std::vector<Real> data;           ///< capacity * stride Reals.
    std::vector<std::uint64_t> seqs;  ///< Per-slot sequence number.
    /** Per-slot push-time stamp (ns since process start), written
     *  at claim time like seqs and published by the same release
     *  store. */
    std::vector<std::uint64_t> pushNs;
    std::size_t staged = 0;           ///< Producer: unpublished.

    std::atomic<std::uint64_t> pushed{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> popped{0};
    std::atomic<std::uint64_t> seqGaps{0};
    /** Consumer: next expected sequence number (first pop seeds). */
    std::uint64_t expectedSeq = 0;
    bool haveExpected = false;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_TRANSITION_RING_HH
