/**
 * @file
 * Tests for the Physical Deception (mixed) scenario.
 */

#include <gtest/gtest.h>

#include <set>

#include "marlin/env/environment.hh"
#include "marlin/env/physical_deception.hh"

namespace marlin::env
{
namespace
{

TEST(PhysicalDeception, RosterLayout)
{
    PhysicalDeceptionConfig cfg;
    cfg.numGoodAgents = 2;
    PhysicalDeceptionScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);
    EXPECT_EQ(w.numAgents(), 3u); // 1 adversary + 2 good.
    EXPECT_EQ(w.numLandmarks(), 2u);
    EXPECT_TRUE(w.agents[0].adversary);
    EXPECT_FALSE(w.agents[1].adversary);
    EXPECT_EQ(scenario.learnableAgents(w), 3u);
}

TEST(PhysicalDeception, AdversaryIsBlindToGoal)
{
    PhysicalDeceptionConfig cfg;
    cfg.numGoodAgents = 2;
    PhysicalDeceptionScenario scenario(cfg);
    // Good agents see the goal: +2 dims over the adversary.
    EXPECT_EQ(scenario.observationDim(1),
              scenario.observationDim(0) + 2);

    World w;
    scenario.makeWorld(w);
    Rng rng(1);
    scenario.resetWorld(w, rng);
    EXPECT_EQ(scenario.observation(w, 0).size(),
              scenario.observationDim(0));
    EXPECT_EQ(scenario.observation(w, 1).size(),
              scenario.observationDim(1));

    // The good agent's first two entries are the goal-relative
    // position; moving the goal landmark must change them but leave
    // the adversary's observation untouched.
    auto adv_before = scenario.observation(w, 0);
    auto good_before = scenario.observation(w, 1);
    // Move only the goal landmark; the adversary's view of that
    // landmark also shifts, so compare the *goal channel* only.
    const std::size_t goal = scenario.goalIndex();
    w.landmarks[goal].pos += Vec2{0.5f, 0};
    auto good_after = scenario.observation(w, 1);
    EXPECT_NE(good_before[0], good_after[0]);
    (void)adv_before;
}

TEST(PhysicalDeception, RewardsAreZeroSumInDistanceTerm)
{
    PhysicalDeceptionScenario scenario{PhysicalDeceptionConfig{}};
    World w;
    scenario.makeWorld(w);
    Rng rng(2);
    scenario.resetWorld(w, rng);

    // Good team on the goal, adversary far: good reward positive,
    // adversary strongly negative.
    const std::size_t goal = scenario.goalIndex();
    w.agents[1].pos = w.landmarks[goal].pos;
    w.agents[0].pos = {5, 5};
    EXPECT_GT(scenario.reward(w, 1), Real(0));
    EXPECT_LT(scenario.reward(w, 0), Real(-1));

    // Adversary on the goal: its reward ~0 (best case).
    w.agents[0].pos = w.landmarks[goal].pos;
    EXPECT_NEAR(scenario.reward(w, 0), 0.0, 1e-5);
}

TEST(PhysicalDeception, SharedRewardAcrossGoodTeam)
{
    PhysicalDeceptionConfig cfg;
    cfg.numGoodAgents = 3;
    PhysicalDeceptionScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);
    Rng rng(3);
    scenario.resetWorld(w, rng);
    EXPECT_EQ(scenario.reward(w, 1), scenario.reward(w, 2));
    EXPECT_EQ(scenario.reward(w, 2), scenario.reward(w, 3));
}

TEST(PhysicalDeception, GoalVariesAcrossResets)
{
    PhysicalDeceptionConfig cfg;
    cfg.numGoodAgents = 3; // 3 landmarks.
    PhysicalDeceptionScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);
    Rng rng(4);
    std::set<std::size_t> goals;
    for (int i = 0; i < 40; ++i) {
        scenario.resetWorld(w, rng);
        goals.insert(scenario.goalIndex());
    }
    EXPECT_GT(goals.size(), 1u);
}

TEST(PhysicalDeception, RunsInsideEnvironment)
{
    auto environment = std::make_unique<Environment>(
        std::make_unique<PhysicalDeceptionScenario>(
            PhysicalDeceptionConfig{}),
        9);
    auto obs = environment->reset();
    EXPECT_EQ(obs.size(), 3u);
    auto step = environment->step({1, 2, 3});
    EXPECT_EQ(step.rewards.size(), 3u);
    for (Real r : step.rewards)
        EXPECT_TRUE(std::isfinite(r));
}

} // namespace
} // namespace marlin::env
