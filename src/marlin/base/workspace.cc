#include "marlin/base/workspace.hh"

namespace marlin::base
{

std::vector<Real> &
Workspace::scratch(std::size_t slot, std::size_t n)
{
    if (pool.size() <= slot)
        pool.resize(slot + 1);
    std::vector<Real> &buffer = pool[slot];
    if (buffer.size() < n)
        buffer.resize(n);
    return buffer;
}

std::size_t
Workspace::footprintElements() const
{
    std::size_t total = 0;
    for (const auto &buffer : pool)
        total += buffer.capacity();
    return total;
}

Workspace &
Workspace::threadLocal()
{
    static thread_local Workspace workspace;
    return workspace;
}

} // namespace marlin::base
