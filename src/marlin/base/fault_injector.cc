#include "marlin/base/fault_injector.hh"

#include <cstdio>

#include "marlin/base/logging.hh"

namespace marlin::base
{

StepCount
FaultInjector::armKillAtRandomStep(StepCount lo, StepCount hi)
{
    MARLIN_ASSERT(lo <= hi, "kill-step range must satisfy lo <= hi");
    const StepCount step = lo + rng.randint(hi - lo + 1);
    armKillAtStep(step);
    return step;
}

bool
FaultInjector::onStep()
{
    ++steps;
    return killArmed && steps >= killStep;
}

bool
FaultInjector::onWrite()
{
    ++writes;
    if (writeDead)
        return false;
    if (failArmed && writes >= failWrite) {
        writeDead = true;
        return false;
    }
    return true;
}

bool
corruptFileByte(const std::string &path, std::uint64_t offset,
                unsigned char mask)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (f == nullptr)
        return false;
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
        std::fclose(f);
        return false;
    }
    int byte = std::fgetc(f);
    if (byte == EOF) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, static_cast<long>(offset), SEEK_SET);
    const unsigned char corrupted =
        static_cast<unsigned char>(byte) ^ mask;
    std::fputc(corrupted, f);
    std::fclose(f);
    return true;
}

FailpointStreambuf::int_type
FailpointStreambuf::overflow(int_type ch)
{
    if (injector != nullptr && !injector->onWrite())
        return traits_type::eof();
    if (traits_type::eq_int_type(ch, traits_type::eof()))
        return traits_type::not_eof(ch);
    return inner->sputc(traits_type::to_char_type(ch));
}

std::streamsize
FailpointStreambuf::xsputn(const char *s, std::streamsize n)
{
    if (injector != nullptr && !injector->onWrite())
        return 0;
    return inner->sputn(s, n);
}

int
FailpointStreambuf::sync()
{
    return inner->pubsync();
}

} // namespace marlin::base
