/**
 * @file
 * Vectorized environment: K independent copies of a scenario
 * stepped together, amortizing per-call overhead during data
 * collection (the pattern WarpDrive-style systems scale up; here it
 * is the CPU building block for filling replay buffers quickly).
 */

#ifndef MARLIN_ENV_VECTOR_ENV_HH
#define MARLIN_ENV_VECTOR_ENV_HH

#include <functional>
#include <memory>
#include <vector>

#include "marlin/env/environment.hh"

namespace marlin::env
{

/** Builds one environment instance for lane @p lane. */
using EnvFactory =
    std::function<std::unique_ptr<Environment>(std::size_t lane)>;

/**
 * A batch of homogeneous environments. All lanes share the same
 * agent count and observation shapes (checked at construction).
 */
class VectorEnvironment
{
  public:
    /**
     * @param factory Called with lane indices 0..count-1; seed each
     *        lane differently inside the factory for decorrelated
     *        rollouts.
     * @param count Number of lanes (>= 1).
     */
    VectorEnvironment(const EnvFactory &factory, std::size_t count);

    std::size_t numLanes() const { return lanes.size(); }
    std::size_t numAgents() const { return lanes.front()->numAgents(); }

    Environment &lane(std::size_t i) { return *lanes[i]; }
    const Environment &lane(std::size_t i) const { return *lanes[i]; }

    /** Reset every lane; returns observations[lane][agent]. */
    std::vector<std::vector<std::vector<Real>>> reset();

    /** Reset one lane only (episode boundary). */
    std::vector<std::vector<Real>> resetLane(std::size_t i);

    /**
     * Step every lane with actions[lane][agent].
     * @return One StepResult per lane.
     */
    std::vector<StepResult>
    step(const std::vector<std::vector<int>> &actions);

  private:
    std::vector<std::unique_ptr<Environment>> lanes;
};

} // namespace marlin::env

#endif // MARLIN_ENV_VECTOR_ENV_HH
