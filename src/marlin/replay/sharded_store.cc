#include "marlin/replay/sharded_store.hh"

#include <cstring>

#include "marlin/base/serialize.hh"
#include "marlin/numeric/kernels.hh"
#include "marlin/obs/metrics.hh"
#include "marlin/replay/gather.hh"

namespace marlin::replay
{

namespace
{

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::size_t
log2OfPow2(std::size_t v)
{
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < v)
        ++bits;
    return bits;
}

obs::Counter &
faultedCounter()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("replay.cold.faulted");
    return c;
}

/** Non-fatal readPod: false on a short read. */
template <typename T>
bool
tryReadPod(std::istream &is, T &out)
{
    is.read(reinterpret_cast<char *>(&out), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

ShardedStore::ShardedStore(std::vector<TransitionShape> shapes_in,
                           BufferIndex capacity,
                           ShardedStoreConfig config)
    : shapes(std::move(shapes_in)),
      _layout(JointTransitionLayout::fromShapes(shapes)),
      _capacity(capacity), coldDir(config.coldDir)
{
    MARLIN_ASSERT(!shapes.empty(), "sharded store needs agents");
    MARLIN_ASSERT(capacity > 0, "sharded store capacity must be > 0");
    if (!isPowerOfTwo(config.shards))
        fatal("replay shard count %zu is not a power of two",
              config.shards);
    if (_capacity % config.shards != 0)
        fatal("replay capacity %zu is not divisible by %zu shards",
              static_cast<std::size_t>(_capacity), config.shards);

    hotCap = config.hotCapacity == 0 ? _capacity : config.hotCapacity;
    if (hotCap > _capacity)
        fatal("replay hot capacity %zu exceeds capacity %zu",
              static_cast<std::size_t>(hotCap),
              static_cast<std::size_t>(_capacity));
    if (hotCap % config.shards != 0)
        fatal("replay hot capacity %zu is not divisible by %zu "
              "shards",
              static_cast<std::size_t>(hotCap), config.shards);
    if (hotCap < _capacity && coldDir.empty())
        fatal("replay hot capacity %zu < capacity %zu requires "
              "--replay-cold-dir",
              static_cast<std::size_t>(hotCap),
              static_cast<std::size_t>(_capacity));
    if (hotCap == _capacity)
        coldDir.clear(); // All-hot: the cold tier would never spill.

    shardBits = log2OfPow2(config.shards);
    shardSlots = _capacity >> shardBits;
    hotSlots = hotCap >> shardBits;
    MARLIN_ASSERT(hotSlots > 0, "hot tier needs >= 1 slot per shard");

    shards_.resize(config.shards);
    for (std::size_t s = 0; s < config.shards; ++s) {
        Shard &sh = shards_[s];
        sh.hot.resize(static_cast<std::size_t>(hotSlots) *
                      _layout.stride);
        if (!coldDir.empty())
            sh.cold = std::make_unique<MmapColdTier>(
                coldDir, s, config.shards, _layout.stride,
                shardSlots, config.segmentSlots);
    }

    packScratch.resize(_layout.stride);
    coldStage.resize(_layout.stride);

    static obs::Gauge &shard_count =
        obs::Registry::instance().gauge("replay.shard.count");
    static obs::Gauge &hot_capacity =
        obs::Registry::instance().gauge("replay.shard.hot_capacity");
    shard_count.set(static_cast<std::int64_t>(config.shards));
    hot_capacity.set(static_cast<std::int64_t>(hotCap));
}

void
ShardedStore::append(const std::vector<std::vector<Real>> &obs,
                     const std::vector<std::vector<Real>> &actions,
                     const std::vector<Real> &rewards,
                     const std::vector<std::vector<Real>> &next_obs,
                     const std::vector<bool> &dones)
{
    MARLIN_ASSERT(obs.size() == shapes.size(),
                  "per-agent vectors must match agent count");
    packRecord(packScratch.data(), _layout, obs, actions, rewards,
               next_obs, dones);
    appendRecord(_layout, packScratch.data());
}

void
ShardedStore::appendRecord(const JointTransitionLayout &layout,
                           const Real *rec)
{
    MARLIN_ASSERT(layout.stride == _layout.stride,
                  "drain layout does not match store layout");
    static obs::Counter &appends =
        obs::Registry::instance().counter("replay.shard.appends");

    const BufferIndex l = _appended % _capacity;
    const std::size_t s = l & (shards_.size() - 1);
    Shard &sh = shards_[s];
    const BufferIndex j = l >> shardBits; // Shard-local slot.
    const BufferIndex h = j % hotSlots;   // Hot ring slot.

    // Write-behind spill: the record this hot slot still holds was
    // appended hotSlots shard-appends ago and is leaving the hot
    // window now; park it at its shard-local cold slot before the
    // overwrite. Readers shadow stale cold copies with hot ones, so
    // spilling before the hot write keeps every slot readable.
    if (sh.cold && sh.appended >= hotSlots) {
        const BufferIndex evict =
            (j + shardSlots - hotSlots) % shardSlots;
        sh.cold->writeRecord(evict,
                             sh.hot.data() +
                                 static_cast<std::size_t>(h) *
                                     _layout.stride);
    }

    std::memcpy(sh.hot.data() +
                    static_cast<std::size_t>(h) * _layout.stride,
                rec, _layout.stride * sizeof(Real));
    ++sh.appended;
    ++_appended;
    appends.add();
}

bool
ShardedStore::isHot(BufferIndex slot) const
{
    const std::size_t s = slot & (shards_.size() - 1);
    const Shard &sh = shards_[s];
    if (!sh.cold)
        return true;
    const BufferIndex j = slot >> shardBits;
    const BufferIndex jpos = sh.appended % shardSlots;
    const BufferIndex age =
        (jpos + shardSlots - 1 - j) % shardSlots;
    const BufferIndex resident =
        sh.appended < hotSlots ? sh.appended : hotSlots;
    return age < resident;
}

const Real *
ShardedStore::recordAt(BufferIndex slot, bool *cold_hit) const
{
    const std::size_t s = slot & (shards_.size() - 1);
    const Shard &sh = shards_[s];
    const BufferIndex j = slot >> shardBits;
    if (isHot(slot)) {
        *cold_hit = false;
        return sh.hot.data() +
               static_cast<std::size_t>(j % hotSlots) *
                   _layout.stride;
    }
    *cold_hit = true;
    faultedCounter().add();
    return sh.cold->readRecord(j);
}

void
ShardedStore::scatterRecord(const Real *rec, std::size_t row,
                            std::vector<AgentBatch> &out,
                            AccessTrace *trace) const
{
    (void)trace;
    const numeric::kernels::KernelTable &kt =
        numeric::kernels::active();
    for (std::size_t a = 0; a < shapes.size(); ++a) {
        const JointTransitionLayout::AgentBlock &blk =
            _layout.agents[a];
        AgentBatch &dst = out[a];
        kt.copy(rec + blk.obs, dst.obs.row(row), blk.obsDim);
        kt.copy(rec + blk.act, dst.actions.row(row), blk.actDim);
        dst.rewards(row, 0) = rec[blk.reward];
        kt.copy(rec + blk.nextObs, dst.nextObs.row(row), blk.obsDim);
        dst.dones(row, 0) = rec[blk.done];
    }
}

void
ShardedStore::gatherAgent(std::size_t agent, const IndexPlan &plan,
                          AgentBatch &out, AccessTrace *trace) const
{
    MARLIN_ASSERT(agent < shapes.size(), "agent out of range");
    const TransitionShape &shape = shapes[agent];
    const JointTransitionLayout::AgentBlock &blk =
        _layout.agents[agent];
    const std::size_t batch = plan.batchSize();
    out.resize(batch, shape);

    static obs::Counter &rows = obs::Registry::instance().counter(
        "replay.shard.gather_records");
    static obs::Counter &bytes = obs::Registry::instance().counter(
        "replay.shard.gather_bytes");
    rows.add(batch);
    bytes.add(batch * shape.flatSize() * sizeof(Real));

    const numeric::kernels::KernelTable &kt =
        numeric::kernels::active();
    for (std::size_t b = 0; b < batch; ++b) {
        const BufferIndex idx = plan.indices[b];
        MARLIN_ASSERT(idx < size(),
                      "gather index beyond valid transitions");
        bool cold_hit = false;
        const Real *rec = recordAt(idx, &cold_hit);
        if (MARLIN_UNLIKELY(trace != nullptr))
            trace->record(rec + blk.obs,
                          shape.flatSize() * sizeof(Real));
        if (MARLIN_UNLIKELY(cold_hit)) {
            // Stage the faulted record through the retained slot so
            // the field copies read RAM, not the mapped page.
            std::memcpy(coldStage.data(), rec,
                        _layout.stride * sizeof(Real));
            rec = coldStage.data();
        }
        kt.copy(rec + blk.obs, out.obs.row(b), blk.obsDim);
        kt.copy(rec + blk.act, out.actions.row(b), blk.actDim);
        out.rewards(b, 0) = rec[blk.reward];
        kt.copy(rec + blk.nextObs, out.nextObs.row(b), blk.obsDim);
        out.dones(b, 0) = rec[blk.done];
    }
}

void
ShardedStore::gatherAll(const IndexPlan &plan,
                        std::vector<AgentBatch> &out,
                        AccessTrace *trace) const
{
    const std::size_t n = shapes.size();
    const std::size_t batch = plan.batchSize();
    out.resize(n);
    for (std::size_t a = 0; a < n; ++a)
        out[a].resize(batch, shapes[a]);

    static obs::Counter &recs = obs::Registry::instance().counter(
        "replay.shard.gather_records");
    static obs::Counter &bytes = obs::Registry::instance().counter(
        "replay.shard.gather_bytes");
    recs.add(batch);
    bytes.add(batch * _layout.stride * sizeof(Real));

    for (std::size_t b = 0; b < batch; ++b) {
        const BufferIndex idx = plan.indices[b];
        MARLIN_ASSERT(idx < size(),
                      "gather index beyond valid transitions");
        bool cold_hit = false;
        const Real *rec = recordAt(idx, &cold_hit);
        if (MARLIN_UNLIKELY(trace != nullptr))
            trace->record(rec, _layout.stride * sizeof(Real));
        if (MARLIN_UNLIKELY(cold_hit)) {
            std::memcpy(coldStage.data(), rec,
                        _layout.stride * sizeof(Real));
            rec = coldStage.data();
        }
        scatterRecord(rec, b, out, trace);
    }
}

std::size_t
ShardedStore::storageBytes() const
{
    std::size_t total = 0;
    for (const Shard &sh : shards_) {
        total += sh.hot.size() * sizeof(Real);
        if (sh.cold)
            total += sh.cold->storageBytes();
    }
    return total;
}

void
ShardedStore::flushCold() const
{
    for (const Shard &sh : shards_)
        if (sh.cold)
            sh.cold->flush();
}

void
ShardedStore::dropColdPageCache() const
{
    for (const Shard &sh : shards_)
        if (sh.cold)
            sh.cold->dropPageCache();
}

void
ShardedStore::saveState(std::ostream &os) const
{
    // Make the on-disk segments consistent with the manifest the
    // checkpoint references before writing that manifest.
    flushCold();

    writePod<std::uint64_t>(os, shapes.size());
    for (const TransitionShape &s : shapes) {
        writePod<std::uint64_t>(os, s.obsDim);
        writePod<std::uint64_t>(os, s.actDim);
    }
    writePod<std::uint64_t>(os, _capacity);
    writePod<std::uint64_t>(os, hotCap);
    writePod<std::uint64_t>(os, shards_.size());
    writePod<std::uint64_t>(os, _appended);
    writePod<std::uint8_t>(os, coldDir.empty() ? 0 : 1);
    for (const Shard &sh : shards_) {
        writePod<std::uint64_t>(os, sh.appended);
        const BufferIndex valid =
            sh.appended < hotSlots ? sh.appended : hotSlots;
        os.write(reinterpret_cast<const char *>(sh.hot.data()),
                 static_cast<std::streamsize>(
                     static_cast<std::size_t>(valid) *
                     _layout.stride * sizeof(Real)));
        if (sh.cold) {
            writePod<std::uint64_t>(os, sh.cold->spilledCount());
            writeVector<std::uint64_t>(os, sh.cold->segmentRecords());
        }
    }
}

StoreLoadResult
ShardedStore::loadState(std::istream &is)
{
    // Geometry gate: reject before mutating anything.
    std::uint64_t agents = 0;
    if (!tryReadPod(is, agents))
        return StoreLoadResult::fail(StoreLoadError::Truncated,
                                     "sharded header truncated");
    if (agents != shapes.size())
        return StoreLoadResult::fail(StoreLoadError::ShapeMismatch,
                                     "agent count mismatch");
    for (const TransitionShape &s : shapes) {
        std::uint64_t obs_dim = 0, act_dim = 0;
        if (!tryReadPod(is, obs_dim) || !tryReadPod(is, act_dim))
            return StoreLoadResult::fail(StoreLoadError::Truncated,
                                         "sharded header truncated");
        if (obs_dim != s.obsDim || act_dim != s.actDim)
            return StoreLoadResult::fail(
                StoreLoadError::ShapeMismatch,
                "agent shape mismatch");
    }
    std::uint64_t capacity = 0, hot = 0, shard_count = 0,
                  appended = 0;
    std::uint8_t cold = 0;
    if (!tryReadPod(is, capacity) || !tryReadPod(is, hot) ||
        !tryReadPod(is, shard_count) || !tryReadPod(is, appended) ||
        !tryReadPod(is, cold))
        return StoreLoadResult::fail(StoreLoadError::Truncated,
                                     "sharded header truncated");
    if (capacity != _capacity || hot != hotCap ||
        shard_count != shards_.size() ||
        (cold != 0) != !coldDir.empty())
        return StoreLoadResult::fail(StoreLoadError::ShapeMismatch,
                                     "sharded geometry mismatch");

    // Stage the whole payload before touching any member: a
    // truncation anywhere below must leave the store's previous
    // contents intact (the StoreLoadResult contract).
    struct StagedShard
    {
        std::uint64_t appended = 0;
        std::vector<Real> hot;
        std::uint64_t spilled = 0;
        std::vector<std::uint64_t> segRecords;
    };
    std::vector<StagedShard> staged(shards_.size());
    for (StagedShard &st : staged) {
        if (!tryReadPod(is, st.appended))
            return StoreLoadResult::fail(StoreLoadError::Truncated,
                                         "shard record truncated");
        const BufferIndex valid =
            st.appended < hotSlots
                ? static_cast<BufferIndex>(st.appended)
                : hotSlots;
        st.hot.resize(static_cast<std::size_t>(valid) *
                      _layout.stride);
        is.read(reinterpret_cast<char *>(st.hot.data()),
                static_cast<std::streamsize>(st.hot.size() *
                                             sizeof(Real)));
        if (!is)
            return StoreLoadResult::fail(StoreLoadError::Truncated,
                                         "hot tier truncated");
        if (!coldDir.empty()) {
            if (!tryReadPod(is, st.spilled))
                return StoreLoadResult::fail(
                    StoreLoadError::Truncated,
                    "cold manifest truncated");
            std::uint64_t seg_count = 0;
            if (!tryReadPod(is, seg_count))
                return StoreLoadResult::fail(
                    StoreLoadError::Truncated,
                    "cold manifest truncated");
            const std::int64_t left = remainingBytes(is);
            if (left >= 0 &&
                seg_count > static_cast<std::uint64_t>(left) /
                                sizeof(std::uint64_t))
                return StoreLoadResult::fail(
                    StoreLoadError::Truncated,
                    "cold manifest truncated");
            st.segRecords.resize(seg_count);
            is.read(reinterpret_cast<char *>(st.segRecords.data()),
                    static_cast<std::streamsize>(
                        seg_count * sizeof(std::uint64_t)));
            if (!is)
                return StoreLoadResult::fail(
                    StoreLoadError::Truncated,
                    "cold manifest truncated");
        }
    }

    // Validate every shard's cold manifest before committing any:
    // validateManifest adopts nothing, so a mismatch here still
    // leaves the full store untouched.
    for (std::size_t s = 0; s < shards_.size(); ++s)
        if (shards_[s].cold) {
            const StoreLoadResult cold_result =
                shards_[s].cold->validateManifest(
                    staged[s].segRecords);
            if (!cold_result)
                return cold_result;
        }

    // Commit: nothing below can fail.
    _appended = appended;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard &sh = shards_[s];
        StagedShard &st = staged[s];
        sh.appended = st.appended;
        if (!st.hot.empty())
            std::memcpy(sh.hot.data(), st.hot.data(),
                        st.hot.size() * sizeof(Real));
        if (sh.cold)
            sh.cold->adoptManifest(st.spilled, st.segRecords);
    }
    return StoreLoadResult::ok();
}

} // namespace marlin::replay
