/**
 * @file
 * Versioned actor-weight snapshots: how learner updates reach the
 * rollout threads.
 *
 * The learner publishes the current actor parameters of every agent
 * into a flat buffer under a mutex and bumps an atomic version;
 * actors poll the version (one relaxed-ish atomic load, no lock) at
 * episode boundaries and only take the mutex when there is something
 * new to copy. Actors therefore run on a slightly stale policy
 * between refreshes — the standard async actor-learner trade the
 * README's determinism caveats spell out.
 */

#ifndef MARLIN_ASYNC_POLICY_SNAPSHOT_HH
#define MARLIN_ASYNC_POLICY_SNAPSHOT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "marlin/base/types.hh"

namespace marlin::core
{
class CtdeTrainerBase;
}

namespace marlin::async
{

/** Mutex-guarded flat copy of every agent's actor parameters. */
class PolicySnapshot
{
  public:
    /**
     * Learner: overwrite the snapshot with @p source's current actor
     * weights (every agent) and advance the version.
     */
    void publish(core::CtdeTrainerBase &source);

    /**
     * Actor: if the snapshot is newer than @p seen_version, copy it
     * into @p policy's actors and advance @p seen_version. Returns
     * true when weights were refreshed. @p policy must have the same
     * architecture as the publishing trainer.
     */
    bool refresh(core::CtdeTrainerBase &policy,
                 std::uint64_t &seen_version);

    /** Publications so far (0 = nothing published yet). */
    std::uint64_t
    version() const noexcept
    {
        return ver.load(std::memory_order_acquire);
    }

  private:
    std::mutex mutex;
    std::atomic<std::uint64_t> ver{0};
    /** Per agent: actor params flattened in layer order. */
    std::vector<std::vector<Real>> flat;
};

} // namespace marlin::async

#endif // MARLIN_ASYNC_POLICY_SNAPSHOT_HH
