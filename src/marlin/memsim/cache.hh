/**
 * @file
 * Single-level set-associative cache model with LRU replacement.
 * Trace-driven: it models hit/miss behaviour (not contents), which
 * is all the paper's counter-style results need.
 */

#ifndef MARLIN_MEMSIM_CACHE_HH
#define MARLIN_MEMSIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "marlin/base/logging.hh"

namespace marlin::memsim
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;
};

/** Hit/miss accounting for one cache level. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t prefetchFills = 0;
    std::uint64_t prefetchHits = 0; ///< Demand hits on prefetched lines.
    std::uint64_t evictions = 0;

    std::uint64_t accesses() const { return hits + misses; }

    double
    missRate() const
    {
        const std::uint64_t a = accesses();
        return a ? static_cast<double>(misses) /
                       static_cast<double>(a)
                 : 0.0;
    }
};

/**
 * Set-associative LRU cache. Addresses are byte addresses; the
 * model tracks one tag per line.
 */
class CacheModel
{
  public:
    explicit CacheModel(CacheConfig config);

    const CacheConfig &config() const { return _config; }
    const CacheStats &stats() const { return _stats; }
    std::uint64_t numSets() const { return sets; }

    /**
     * Demand access to byte address @p addr. Updates LRU and
     * stats.
     * @return true on hit.
     */
    bool access(std::uint64_t addr);

    /** Fill a line without demand accounting (prefetch). */
    void prefetchFill(std::uint64_t addr);

    /** Line-presence probe with no state change. */
    bool contains(std::uint64_t addr) const;

    /** Drop all lines and zero the stats. */
    void reset();

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool prefetched = false;
    };

    CacheConfig _config;
    CacheStats _stats;
    std::uint64_t sets;
    std::uint64_t useClock = 0;
    std::vector<Line> lines; ///< sets x ways, row-major.

    std::uint64_t
    setOf(std::uint64_t addr) const
    {
        return (addr / _config.lineBytes) % sets;
    }

    std::uint64_t
    tagOf(std::uint64_t addr) const
    {
        return (addr / _config.lineBytes) / sets;
    }

    /** Find the line for addr, or the LRU victim; fills on miss. */
    Line *lookup(std::uint64_t addr, bool &hit);
};

} // namespace marlin::memsim

#endif // MARLIN_MEMSIM_CACHE_HH
