/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: environment
 * and trainer factories, synthetic buffer filling, capacity scaling,
 * and paper-style table printing.
 *
 * The paper's runs use a 1e6-entry replay buffer and 60,000-episode
 * training on a 32-core Threadripper + RTX 3090. The benches run
 * the same code paths at reduced scale (entries, episodes) chosen to
 * fit one CPU core and the container's memory, and they print the
 * scale factors they apply. The claims being reproduced are shapes
 * and ratios, which stabilize at these scales.
 */

#ifndef MARLIN_BENCH_COMMON_HH
#define MARLIN_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "marlin/marlin.hh"
#include "marlin/version.hh"

namespace marlin::bench
{

/** The two paper workloads. */
enum class Algo { Maddpg, Matd3 };

/** The two paper tasks. */
enum class Task { PredatorPrey, CooperativeNavigation };

inline const char *
algoName(Algo a)
{
    return a == Algo::Maddpg ? "MADDPG" : "MATD3";
}

inline const char *
taskName(Task t)
{
    return t == Task::PredatorPrey ? "predator-prey"
                                   : "cooperative-navigation";
}

inline std::unique_ptr<env::Environment>
makeEnvironment(Task task, std::size_t agents, std::uint64_t seed)
{
    return task == Task::PredatorPrey
               ? env::makePredatorPreyEnv(agents, seed)
               : env::makeCooperativeNavigationEnv(agents, seed);
}

inline std::vector<std::size_t>
obsDims(const env::Environment &environment)
{
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment.numAgents(); ++i)
        dims.push_back(environment.obsDim(i));
    return dims;
}

/** Observation dims for a task without building the environment. */
inline std::vector<std::size_t>
taskObsDims(Task task, std::size_t agents)
{
    if (task == Task::PredatorPrey) {
        env::PredatorPreyConfig cfg;
        cfg.numPredators = agents;
        env::PredatorPreyScenario scenario(cfg);
        std::vector<std::size_t> dims;
        for (std::size_t i = 0; i < agents; ++i)
            dims.push_back(scenario.observationDim(i));
        return dims;
    }
    env::CooperativeNavigationConfig cfg;
    cfg.numAgents = agents;
    env::CooperativeNavigationScenario scenario(cfg);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < agents; ++i)
        dims.push_back(scenario.observationDim(i));
    return dims;
}

inline std::unique_ptr<core::CtdeTrainerBase>
makeTrainer(Algo algo, std::vector<std::size_t> dims,
            std::size_t act_dim, core::TrainConfig config,
            core::SamplerFactory factory)
{
    if (algo == Algo::Maddpg) {
        return std::make_unique<core::MaddpgTrainer>(
            std::move(dims), act_dim, std::move(config),
            std::move(factory));
    }
    return std::make_unique<core::Matd3Trainer>(
        std::move(dims), act_dim, std::move(config),
        std::move(factory));
}

inline core::SamplerFactory
uniformFactory()
{
    return [] { return std::make_unique<replay::UniformSampler>(); };
}

inline core::SamplerFactory
localityFactory(std::size_t neighbors, std::size_t refs)
{
    return [=] {
        return std::make_unique<replay::LocalityAwareSampler>(
            replay::LocalityConfig{neighbors, refs});
    };
}

inline core::SamplerFactory
perFactory(BufferIndex capacity)
{
    return [=] {
        replay::PerConfig cfg;
        cfg.capacity = capacity;
        return std::make_unique<replay::PrioritizedSampler>(cfg);
    };
}

inline core::SamplerFactory
infoPrioritizedFactory(BufferIndex capacity)
{
    return [=] {
        replay::PerConfig cfg;
        cfg.capacity = capacity;
        return std::make_unique<
            replay::InfoPrioritizedLocalitySampler>(cfg);
    };
}

/** Transition shapes for (task, agents) with a given action dim. */
inline std::vector<replay::TransitionShape>
taskShapes(Task task, std::size_t agents, std::size_t act_dim = 5)
{
    std::vector<replay::TransitionShape> shapes;
    for (std::size_t d : taskObsDims(task, agents))
        shapes.push_back({d, act_dim});
    return shapes;
}

/**
 * Largest power-of-two capacity <= 1e6 whose total storage for the
 * given shapes fits @p budget_bytes. Prints nothing; callers report
 * the chosen scale.
 */
inline BufferIndex
scaledCapacity(const std::vector<replay::TransitionShape> &shapes,
               std::size_t budget_bytes = 2ull << 30)
{
    std::size_t bytes_per_entry = 0;
    for (const auto &s : shapes)
        bytes_per_entry += s.flatSize() * sizeof(Real);
    BufferIndex capacity = 1 << 20; // Paper: 1e6 ~ 2^20.
    while (capacity > 1024 &&
           capacity * bytes_per_entry > budget_bytes) {
        capacity >>= 1;
    }
    return capacity;
}

/**
 * Fill every agent's buffer (and optionally the interleaved store)
 * with synthetic random transitions up to @p count entries. Used by
 * sampling-phase benches where environment dynamics are irrelevant
 * but buffer volume is.
 */
inline void
fillSynthetic(replay::MultiAgentBuffer &buffers, BufferIndex count,
              Rng &rng,
              replay::InterleavedReplayStore *store = nullptr)
{
    const std::size_t n = buffers.numAgents();
    std::vector<std::vector<Real>> obs(n), act(n), next(n);
    std::vector<Real> rew(n);
    std::vector<bool> done(n, false);
    for (std::size_t a = 0; a < n; ++a) {
        const auto &shape = buffers.agent(a).shape();
        obs[a].resize(shape.obsDim);
        next[a].resize(shape.obsDim);
        act[a].assign(shape.actDim, Real(0));
    }
    for (BufferIndex t = 0; t < count; ++t) {
        for (std::size_t a = 0; a < n; ++a) {
            for (auto &v : obs[a])
                v = rng.uniformf();
            for (auto &v : next[a])
                v = rng.uniformf();
            std::fill(act[a].begin(), act[a].end(), Real(0));
            act[a][rng.randint(act[a].size())] = Real(1);
            rew[a] = rng.uniformf();
        }
        buffers.add(obs, act, rew, next, done);
        if (store)
            store->append(obs, act, rew, next, done);
    }
}

/**
 * Configure the global thread pool for a bench binary: honors a
 * --threads N / --threads=N argument, falling back to MARLIN_THREADS
 * and then hardware concurrency. Returns the effective count.
 * Call before banner() so the JSON header records the right value.
 *
 * Consumes the --threads arguments (compacting argv and decrementing
 * argc) so binaries with their own flag parsers — notably
 * google-benchmark, which rejects flags it doesn't know — never see
 * them.
 */
inline std::size_t
initThreads(int &argc, char **argv)
{
    long requested = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
            requested = std::strtol(argv[++i], nullptr, 10);
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            requested = std::strtol(arg + 10, nullptr, 10);
        } else {
            argv[out++] = argv[i];
        }
    }
    for (int i = out; i < argc; ++i)
        argv[i] = nullptr;
    argc = out;
    base::ThreadPool::setGlobalThreads(
        requested > 0 ? static_cast<std::size_t>(requested) : 0);
    const std::size_t effective = base::ThreadPool::globalThreads();
    std::printf("threads: %zu\n", effective);
    return effective;
}

/**
 * Configure the kernel ISA for a bench binary: honors an
 * --isa NAME / --isa=NAME argument (auto, scalar or avx2) and
 * consumes it from argv the same way initThreads() consumes
 * --threads. "auto" (the default) keeps the startup resolution:
 * MARLIN_ISA if set, else the best ISA the hardware supports.
 * Returns the active ISA's name. Call before banner() so the JSON
 * header records the right value.
 */
inline const char *
initIsa(int &argc, char **argv)
{
    std::string requested;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--isa") == 0 && i + 1 < argc) {
            requested = argv[++i];
        } else if (std::strncmp(arg, "--isa=", 6) == 0) {
            requested = arg + 6;
        } else {
            argv[out++] = argv[i];
        }
    }
    for (int i = out; i < argc; ++i)
        argv[i] = nullptr;
    argc = out;
    if (!requested.empty() && requested != "auto") {
        const auto isa = numeric::kernels::isaFromString(requested);
        if (!isa.has_value())
            fatal("--isa '%s' is not 'auto', 'scalar' or 'avx2'",
                  requested.c_str());
        numeric::kernels::setIsa(*isa);
    }
    const char *name =
        numeric::kernels::isaName(numeric::kernels::activeIsa());
    std::printf("isa: %s\n", name);
    return name;
}

/**
 * Actor count recorded in every bench JSON header. 1 (the lockstep
 * loop) unless initActors() saw --actors or MARLIN_ACTORS.
 */
inline std::size_t &
bannerActors()
{
    static std::size_t actors = 1;
    return actors;
}

/**
 * Resolve the rollout actor count for a bench binary: honors an
 * --actors N / --actors=N argument, falling back to the
 * MARLIN_ACTORS env var and then 1 (the synchronous lockstep loop).
 * Consumes the argument from argv the same way initThreads()
 * consumes --threads. Call before banner() so the JSON header
 * records the right value.
 */
inline std::size_t
initActors(int &argc, char **argv)
{
    long requested = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--actors") == 0 && i + 1 < argc) {
            requested = std::strtol(argv[++i], nullptr, 10);
        } else if (std::strncmp(arg, "--actors=", 9) == 0) {
            requested = std::strtol(arg + 9, nullptr, 10);
        } else {
            argv[out++] = argv[i];
        }
    }
    for (int i = out; i < argc; ++i)
        argv[i] = nullptr;
    argc = out;
    if (requested <= 0) {
        const char *env = std::getenv("MARLIN_ACTORS");
        if (env != nullptr)
            requested = std::strtol(env, nullptr, 10);
    }
    bannerActors() =
        requested > 0 ? static_cast<std::size_t>(requested) : 1;
    std::printf("actors: %zu\n", bannerActors());
    return bannerActors();
}

/**
 * Configure log verbosity for a bench binary: honors a
 * --log-level NAME / --log-level=NAME argument (silent, fatal,
 * warn, inform or debug) and consumes it from argv the same way
 * initThreads() consumes --threads, so google-benchmark's flag
 * parser never sees it. Returns the effective level.
 */
inline LogLevel
initLogLevel(int &argc, char **argv)
{
    std::string requested;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--log-level") == 0 && i + 1 < argc) {
            requested = argv[++i];
        } else if (std::strncmp(arg, "--log-level=", 12) == 0) {
            requested = arg + 12;
        } else {
            argv[out++] = argv[i];
        }
    }
    for (int i = out; i < argc; ++i)
        argv[i] = nullptr;
    argc = out;
    if (!requested.empty())
        setLogLevel(parseLogLevel(requested));
    return logLevel();
}

/**
 * Print a separator + bench header, plus a machine-readable JSON
 * header line recording the bench name, the thread count, the
 * rollout actor count and the kernel ISA the run used — every bench
 * emits this so downstream tooling can never misattribute numbers
 * across parallelism, actor-count or ISA settings.
 */
inline void
banner(const char *title)
{
    std::printf("\n=== %s ===\n", title);
    std::printf("{\"bench\": \"%s\", \"threads\": %zu, "
                "\"actors\": %zu, \"isa\": \"%s\", "
                "\"commit\": \"%s\"}\n",
                title, base::ThreadPool::globalThreads(),
                bannerActors(),
                numeric::kernels::isaName(
                    numeric::kernels::activeIsa()),
                marlin::gitCommit);
}

/** Percentage change from baseline to optimized wall-clock. */
inline double
pctReduction(double baseline, double optimized)
{
    return baseline > 0 ? 100.0 * (baseline - optimized) / baseline
                        : 0.0;
}

/**
 * One-line observability hookup for bench binaries: consumes
 * --telemetry PATH, --telemetry-every N, --trace PATH and
 * --trace-capacity N from argv (same compaction convention as
 * initThreads(), so google-benchmark never sees them). When either
 * sink is requested it turns on kernel invocation counting and, for
 * --trace, installs the process-wide trace ring; destruction writes
 * the closing telemetry summary (a final merged metrics snapshot)
 * and exports the trace, reporting — never hiding — dropped events.
 *
 *   int main(int argc, char **argv) {
 *       ...initThreads/initIsa...
 *       bench::ObsSession obs(argc, argv, "bench_foo");
 *
 * With no flags given, construction is free apart from the argv scan
 * and the bench runs exactly as before.
 */
class ObsSession
{
  public:
    ObsSession(int &argc, char **argv, const char *bench)
    {
        std::string every = "1";
        std::string capacity = "262144";
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (!consume(argc, argv, i, "--telemetry",
                         telemetryPath) &&
                !consume(argc, argv, i, "--telemetry-every",
                         every) &&
                !consume(argc, argv, i, "--trace", tracePath) &&
                !consume(argc, argv, i, "--trace-capacity",
                         capacity)) {
                argv[out++] = argv[i];
            }
        }
        for (int i = out; i < argc; ++i)
            argv[i] = nullptr;
        argc = out;

        if (!telemetryPath.empty() || !tracePath.empty())
            numeric::kernels::setCounting(true);
        if (!tracePath.empty()) {
            obs::TraceRing::enable(static_cast<std::size_t>(
                std::strtoull(capacity.c_str(), nullptr, 10)));
        }
        if (!telemetryPath.empty()) {
            everySteps = static_cast<std::size_t>(
                std::strtoull(every.c_str(), nullptr, 10));
            if (everySteps == 0)
                everySteps = 1;
            writer = std::make_unique<obs::TelemetryWriter>(
                telemetryPath,
                std::vector<std::pair<std::string, std::string>>{
                    {"tool", bench},
                    {"threads",
                     std::to_string(
                         base::ThreadPool::globalThreads())},
                    {"isa", numeric::kernels::isaName(
                                numeric::kernels::activeIsa())},
                });
            if (!writer->ok())
                fatal("cannot open --telemetry path '%s'",
                      telemetryPath.c_str());
        }
    }

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

    ~ObsSession()
    {
        if (writer)
            writer->writeSummary(results);
        if (!tracePath.empty()) {
            const obs::TraceRing *ring = obs::TraceRing::active();
            std::string error;
            if (!obs::exportTrace(tracePath, &error)) {
                warn("trace export to '%s' failed: %s",
                     tracePath.c_str(), error.c_str());
                return;
            }
            inform("trace: %zu event(s) -> '%s' (%llu dropped)",
                   ring != nullptr ? ring->size() : std::size_t(0),
                   tracePath.c_str(),
                   static_cast<unsigned long long>(
                       ring != nullptr ? ring->dropped() : 0));
        }
    }

    /** Writer for benches that drive a TrainLoop; null otherwise. */
    obs::TelemetryWriter *telemetry() { return writer.get(); }

    /** Cadence requested via --telemetry-every (default 1). */
    std::size_t telemetryEvery() const { return everySteps; }

    /** Add a (key, value) to the closing summary record. */
    void
    addResult(const std::string &key, double value)
    {
        results.emplace_back(key, value);
    }

  private:
    /** Consume "--flag VALUE" / "--flag=VALUE" at argv[i]. */
    static bool
    consume(int argc, char **argv, int &i, const char *flag,
            std::string &value)
    {
        const std::size_t len = std::strlen(flag);
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
            value = argv[++i];
            return true;
        }
        if (std::strncmp(argv[i], flag, len) == 0 &&
            argv[i][len] == '=') {
            value = argv[i] + len + 1;
            return true;
        }
        return false;
    }

    std::string telemetryPath;
    std::string tracePath;
    std::size_t everySteps = 1;
    std::unique_ptr<obs::TelemetryWriter> writer;
    std::vector<std::pair<std::string, double>> results;
};

} // namespace marlin::bench

#endif // MARLIN_BENCH_COMMON_HH
