/**
 * @file
 * Closed-loop load generator for the serving front end: N
 * concurrent connections each issue back-to-back requests and the
 * tool reports the latency distribution (p50/p99 plus a full
 * cumulative histogram) and sustained QPS per connection count.
 *
 *   ./marlin_loadgen --port 7777 --task cn --agents 3 \
 *       --connections 1,4 --requests 2000 --json loadgen.json
 *
 * The JSON report is the serve-smoke CI contract, validated by
 * tools/check_latency_json.py: every run records its connection
 * count, request/response/error totals, dropped connections (a
 * request cycle that died mid-connection — the hot-reload drill
 * asserts this stays zero), duration, QPS, exact p50/p99 and the
 * cumulative "le" histogram.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "marlin/base/args.hh"
#include "marlin/base/instant.hh"
#include "marlin/base/random.hh"
#include "marlin/env/physical_deception.hh"
#include "marlin/marlin.hh"
#include "marlin/version.hh"

using namespace marlin;

namespace
{

/** Shared with the serve.request.latency_us histogram bounds. */
const std::vector<double> kLatencyBucketsUs = {
    50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
    100000};

std::unique_ptr<env::Environment>
buildEnvironment(const std::string &task, std::size_t agents,
                 std::uint64_t seed)
{
    if (task == "pp")
        return env::makePredatorPreyEnv(agents, seed);
    if (task == "cn")
        return env::makeCooperativeNavigationEnv(agents, seed);
    if (task == "pd") {
        env::PhysicalDeceptionConfig cfg;
        cfg.numGoodAgents = agents > 1 ? agents - 1 : 1;
        return std::make_unique<env::Environment>(
            std::make_unique<env::PhysicalDeceptionScenario>(cfg),
            seed);
    }
    fatal("unknown task '%s' (expected pp, cn or pd)", task.c_str());
}

/** Outcome of one connection's closed request loop. */
struct WorkerResult
{
    std::vector<std::uint64_t> latenciesUs;
    std::uint64_t responses = 0;
    std::uint64_t errors = 0;
    /** 1 when the connection died before finishing its quota. */
    std::uint64_t dropped = 0;
};

/** Aggregated numbers for one connection count. */
struct RunResult
{
    std::size_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t errors = 0;
    std::uint64_t dropped = 0;
    double durationS = 0;
    double qps = 0;
    std::uint64_t p50Us = 0;
    std::uint64_t p99Us = 0;
    /** Cumulative counts per kLatencyBucketsUs bound, then +Inf. */
    std::vector<std::uint64_t> hist;
    /** Server-side serve.* counters/gauges scraped from /metrics
     *  after this run (empty when --metrics-scrape is off). */
    std::vector<std::pair<std::string, double>> serverMetrics;
};

/**
 * One-shot GET /metrics over a fresh TCP connection; returns the
 * response body, or empty on any failure (scraping is best-effort
 * instrumentation, never a load-test failure).
 */
std::string
scrapeMetricsText(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const char request[] =
        "GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n";
    if (::send(fd, request, sizeof(request) - 1, 0) !=
        static_cast<ssize_t>(sizeof(request) - 1)) {
        ::close(fd);
        return {};
    }
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    const std::size_t split = response.find("\r\n\r\n");
    if (split == std::string::npos)
        return {};
    return response.substr(split + 4);
}

/**
 * Pull single-sample `serve_*` series (counters and gauges — lines
 * without labels) out of a Prometheus text body.
 */
std::vector<std::pair<std::string, double>>
parseServeMetrics(const std::string &body)
{
    std::vector<std::pair<std::string, double>> out;
    for (const std::string &line : tokenize(body, '\n')) {
        if (line.rfind("serve_", 0) != 0)
            continue;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos)
            continue;
        const std::string name = line.substr(0, space);
        if (name.find('{') != std::string::npos)
            continue; // histogram bucket series
        out.emplace_back(
            name, std::strtod(line.c_str() + space + 1, nullptr));
    }
    return out;
}

void
runWorker(const std::string &host, std::uint16_t port,
          int retry_ms, const std::vector<std::size_t> &dims,
          std::uint64_t requests, std::uint64_t seed,
          WorkerResult &out)
{
    serve::BlockingClient client;
    if (!client.connect(host, port, retry_ms)) {
        out.dropped = 1;
        return;
    }
    Rng rng(seed);
    std::vector<Real> obs;
    std::vector<Real> actions;
    out.latenciesUs.reserve(requests);
    for (std::uint64_t i = 0; i < requests; ++i) {
        const auto agent =
            static_cast<std::uint16_t>(i % dims.size());
        obs.resize(dims[agent]);
        for (auto &v : obs)
            v = rng.uniformf();
        serve::Status status = serve::Status::Ok;
        const std::uint64_t begin = base::nowNsSinceStart();
        if (!client.request(agent, obs.data(), obs.size(), actions,
                            status)) {
            out.dropped = 1;
            return;
        }
        const std::uint64_t end = base::nowNsSinceStart();
        ++out.responses;
        if (status != serve::Status::Ok)
            ++out.errors;
        out.latenciesUs.push_back((end - begin) / 1000);
    }
}

std::uint64_t
percentile(const std::vector<std::uint64_t> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

RunResult
runOnce(const std::string &host, std::uint16_t port, int retry_ms,
        const std::vector<std::size_t> &dims,
        std::size_t connections, std::uint64_t requests,
        std::uint64_t seed)
{
    std::vector<WorkerResult> results(connections);
    std::vector<std::thread> workers;
    workers.reserve(connections);
    const std::uint64_t begin = base::nowNsSinceStart();
    for (std::size_t c = 0; c < connections; ++c) {
        workers.emplace_back([&, c] {
            runWorker(host, port, retry_ms, dims, requests,
                      seed + c, results[c]);
        });
    }
    for (auto &w : workers)
        w.join();
    const std::uint64_t end = base::nowNsSinceStart();

    RunResult run;
    run.connections = connections;
    run.requests = requests * connections;
    std::vector<std::uint64_t> all;
    for (const auto &r : results) {
        run.responses += r.responses;
        run.errors += r.errors;
        run.dropped += r.dropped;
        all.insert(all.end(), r.latenciesUs.begin(),
                   r.latenciesUs.end());
    }
    std::sort(all.begin(), all.end());
    run.durationS =
        static_cast<double>(end - begin) / 1e9;
    run.qps = run.durationS > 0
                  ? static_cast<double>(run.responses) /
                        run.durationS
                  : 0;
    run.p50Us = percentile(all, 0.50);
    run.p99Us = percentile(all, 0.99);
    run.hist.assign(kLatencyBucketsUs.size() + 1, 0);
    for (const std::uint64_t us : all) {
        for (std::size_t b = 0; b < kLatencyBucketsUs.size(); ++b) {
            if (static_cast<double>(us) <= kLatencyBucketsUs[b])
                ++run.hist[b];
        }
        ++run.hist.back();
    }
    return run;
}

void
writeJson(const std::string &path,
          const std::vector<RunResult> &runs)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write --json path '%s'", path.c_str());
    std::fprintf(f,
                 "{\n  \"bench\": \"marlin_loadgen\",\n"
                 "  \"commit\": \"%s\",\n  \"runs\": [\n",
                 marlin::gitCommit);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunResult &r = runs[i];
        std::fprintf(
            f,
            "    {\"connections\": %zu, \"requests\": %llu, "
            "\"responses\": %llu, \"errors\": %llu, "
            "\"dropped_connections\": %llu, "
            "\"duration_s\": %.6f, \"qps\": %.1f, "
            "\"p50_us\": %llu, \"p99_us\": %llu,\n"
            "     \"latency_hist\": [",
            r.connections,
            static_cast<unsigned long long>(r.requests),
            static_cast<unsigned long long>(r.responses),
            static_cast<unsigned long long>(r.errors),
            static_cast<unsigned long long>(r.dropped),
            r.durationS, r.qps,
            static_cast<unsigned long long>(r.p50Us),
            static_cast<unsigned long long>(r.p99Us));
        for (std::size_t b = 0; b < r.hist.size(); ++b) {
            if (b + 1 < r.hist.size()) {
                std::fprintf(
                    f, "{\"le_us\": %.0f, \"count\": %llu}, ",
                    kLatencyBucketsUs[b],
                    static_cast<unsigned long long>(r.hist[b]));
            } else {
                std::fprintf(
                    f, "{\"le_us\": \"+Inf\", \"count\": %llu}",
                    static_cast<unsigned long long>(r.hist[b]));
            }
        }
        std::fprintf(f, "]");
        if (!r.serverMetrics.empty()) {
            std::fprintf(f, ",\n     \"server_metrics\": {");
            for (std::size_t m = 0; m < r.serverMetrics.size();
                 ++m) {
                std::fprintf(f, "%s\"%s\": %.17g",
                             m > 0 ? ", " : "",
                             r.serverMetrics[m].first.c_str(),
                             r.serverMetrics[m].second);
            }
            std::fprintf(f, "}");
        }
        std::fprintf(f, "}%s\n", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("marlin_loadgen");
    args.addOption("host", "127.0.0.1", "server address");
    args.addOption("port", "0", "server port (or --port-file)");
    args.addOption("port-file", "",
                   "read the port from this file (written by "
                   "marlin_serve --port-file)");
    args.addOption("task", "cn",
                   "task the server is configured for: pp, cn or "
                   "pd (fixes the observation dims)");
    args.addOption("agents", "3", "number of served agents");
    args.addOption("connections", "1,4",
                   "comma-separated connection counts; each count "
                   "is one measured run");
    args.addOption("requests", "2000",
                   "requests per connection per run");
    args.addOption("connect-retry-ms", "5000",
                   "keep retrying the initial connect for up to "
                   "this long (covers the server-start race)");
    args.addOption("json", "",
                   "write the bench-style latency report here");
    args.addOption("metrics-scrape", "0",
                   "scrape GET /metrics from the target's metrics "
                   "port after each sweep point and embed the "
                   "serve_* series in the JSON report (0 disables)");
    args.addOption("metrics-port-file", "",
                   "read the metrics port from this file (written "
                   "by marlin_serve --metrics-port-file)");
    args.addOption("seed", "7", "observation RNG seed");
    args.addOption("log-level", "inform",
                   "silent, fatal, warn, inform or debug");
    args.parse(argc, argv);

    setLogLevel(parseLogLevel(args.get("log-level")));

    std::uint16_t port =
        static_cast<std::uint16_t>(args.getInt("port"));
    if (!args.get("port-file").empty()) {
        std::FILE *f =
            std::fopen(args.get("port-file").c_str(), "r");
        if (f == nullptr)
            fatal("cannot read --port-file '%s'",
                  args.get("port-file").c_str());
        unsigned parsed = 0;
        if (std::fscanf(f, "%u", &parsed) != 1)
            fatal("--port-file '%s' does not hold a port",
                  args.get("port-file").c_str());
        std::fclose(f);
        port = static_cast<std::uint16_t>(parsed);
    }
    if (port == 0)
        fatal("need --port or --port-file");

    std::uint16_t metricsPort = static_cast<std::uint16_t>(
        args.getInt("metrics-scrape"));
    if (!args.get("metrics-port-file").empty()) {
        std::FILE *f = std::fopen(
            args.get("metrics-port-file").c_str(), "r");
        if (f == nullptr)
            fatal("cannot read --metrics-port-file '%s'",
                  args.get("metrics-port-file").c_str());
        unsigned parsed = 0;
        if (std::fscanf(f, "%u", &parsed) != 1)
            fatal("--metrics-port-file '%s' does not hold a port",
                  args.get("metrics-port-file").c_str());
        std::fclose(f);
        metricsPort = static_cast<std::uint16_t>(parsed);
    }

    const auto agents =
        static_cast<std::size_t>(args.getInt("agents"));
    auto environment = buildEnvironment(
        args.get("task"), agents,
        static_cast<std::uint64_t>(args.getInt("seed")));
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));

    std::vector<std::size_t> counts;
    for (const std::string &tok :
         tokenize(args.get("connections"), ',')) {
        const long n = std::strtol(tok.c_str(), nullptr, 10);
        if (n <= 0)
            fatal("--connections entry '%s' is not a positive "
                  "count",
                  tok.c_str());
        counts.push_back(static_cast<std::size_t>(n));
    }
    if (counts.empty())
        fatal("--connections is empty");

    const auto requests =
        static_cast<std::uint64_t>(args.getInt("requests"));
    const int retry_ms = args.getInt("connect-retry-ms");

    std::printf("loadgen -> %s:%u, %zu run(s), %llu requests per "
                "connection\n",
                args.get("host").c_str(),
                static_cast<unsigned>(port), counts.size(),
                static_cast<unsigned long long>(requests));

    std::vector<RunResult> runs;
    bool failed = false;
    for (const std::size_t connections : counts) {
        RunResult run = runOnce(
            args.get("host"), port, retry_ms, dims, connections,
            requests,
            static_cast<std::uint64_t>(args.getInt("seed")));
        std::printf("  conns %3zu: qps %9.1f  p50 %6llu us  "
                    "p99 %6llu us  errors %llu  dropped %llu\n",
                    run.connections, run.qps,
                    static_cast<unsigned long long>(run.p50Us),
                    static_cast<unsigned long long>(run.p99Us),
                    static_cast<unsigned long long>(run.errors),
                    static_cast<unsigned long long>(run.dropped));
        if (run.dropped > 0 || run.errors > 0)
            failed = true;
        if (metricsPort != 0) {
            // One scrape per sweep point: the server-side view of
            // the load this run just applied.
            run.serverMetrics = parseServeMetrics(scrapeMetricsText(
                args.get("host"), metricsPort));
            if (run.serverMetrics.empty())
                warn("metrics scrape from %s:%u returned no serve_* "
                     "series",
                     args.get("host").c_str(),
                     static_cast<unsigned>(metricsPort));
        }
        runs.push_back(std::move(run));
    }

    if (!args.get("json").empty())
        writeJson(args.get("json"), runs);

    if (failed) {
        warn("run saw errors or dropped connections");
        return 1;
    }
    return 0;
}
