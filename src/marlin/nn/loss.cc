#include "marlin/nn/loss.hh"

#include <cmath>

#include "marlin/base/logging.hh"

namespace marlin::nn
{

Real
mseLoss(const Matrix &pred, const Matrix &target, Matrix &grad)
{
    MARLIN_ASSERT(pred.rows() == target.rows() &&
                      pred.cols() == target.cols(),
                  "mse shape mismatch");
    grad.resize(pred.rows(), pred.cols());
    const std::size_t n = pred.size();
    double loss = 0.0;
    const Real inv = Real(2) / static_cast<Real>(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Real diff = pred.data()[i] - target.data()[i];
        loss += static_cast<double>(diff) * diff;
        grad.data()[i] = inv * diff;
    }
    return static_cast<Real>(loss / static_cast<double>(n));
}

Real
weightedMseLoss(const Matrix &pred, const Matrix &target,
                const std::vector<Real> &weights, Matrix &grad)
{
    MARLIN_ASSERT(pred.rows() == target.rows() &&
                      pred.cols() == target.cols(),
                  "weighted mse shape mismatch");
    MARLIN_ASSERT(weights.size() == pred.rows(),
                  "one importance weight per batch row required");
    grad.resize(pred.rows(), pred.cols());
    const std::size_t n = pred.size();
    double loss = 0.0;
    const Real inv = Real(2) / static_cast<Real>(n);
    for (std::size_t r = 0; r < pred.rows(); ++r) {
        const Real w = weights[r];
        for (std::size_t c = 0; c < pred.cols(); ++c) {
            const Real diff = pred(r, c) - target(r, c);
            loss += static_cast<double>(w) * diff * diff;
            grad(r, c) = inv * w * diff;
        }
    }
    return static_cast<Real>(loss / static_cast<double>(n));
}

Real
policyLoss(const Matrix &q, Matrix &grad)
{
    grad.resize(q.rows(), q.cols());
    const std::size_t n = q.size();
    MARLIN_ASSERT(n > 0, "policy loss over empty batch");
    double total = 0.0;
    const Real g = Real(-1) / static_cast<Real>(n);
    for (std::size_t i = 0; i < n; ++i) {
        total += q.data()[i];
        grad.data()[i] = g;
    }
    return static_cast<Real>(-total / static_cast<double>(n));
}

std::vector<Real>
absTdError(const Matrix &pred, const Matrix &target)
{
    std::vector<Real> out;
    absTdErrorInto(pred, target, out);
    return out;
}

void
absTdErrorInto(const Matrix &pred, const Matrix &target,
               std::vector<Real> &out)
{
    MARLIN_ASSERT(pred.cols() == 1 && target.cols() == 1,
                  "TD error expects column vectors");
    MARLIN_ASSERT(pred.rows() == target.rows(), "TD error row mismatch");
    out.resize(pred.rows());
    for (std::size_t r = 0; r < pred.rows(); ++r)
        out[r] = std::abs(pred(r, 0) - target(r, 0));
}

} // namespace marlin::nn
