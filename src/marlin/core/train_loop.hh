/**
 * @file
 * End-to-end training loop with the paper's phase structure:
 * action selection -> environment step -> replay insertion ->
 * (periodically) update all trainers.
 */

#ifndef MARLIN_CORE_TRAIN_LOOP_HH
#define MARLIN_CORE_TRAIN_LOOP_HH

#include <functional>
#include <memory>

#include "marlin/core/trainer.hh"
#include "marlin/env/environment.hh"

namespace marlin::core
{

/** Outcome of a training run. */
struct TrainResult
{
    /** Mean (over agents) episode return, one entry per episode. */
    std::vector<Real> episodeRewards;
    /** Accumulated phase timings for the whole run. */
    profile::PhaseTimer timer;
    StepCount envSteps = 0;
    StepCount updateCalls = 0;
    /** Mean reward over the final 10% of episodes. */
    Real finalScore = 0;
};

/** Per-episode progress callback. */
struct EpisodeInfo
{
    std::size_t episode = 0;
    Real meanReward = 0;
    Real epsilonUnused = 0;
};

using EpisodeCallback = std::function<void(const EpisodeInfo &)>;

/**
 * Owns the replay storage and drives the environment/trainer pair.
 *
 * With SamplingBackend::Interleaved the loop also maintains the
 * reorganized key-value store next to the per-agent buffers,
 * charging its maintenance to the LayoutReorg phase.
 */
class TrainLoop
{
  public:
    /**
     * @param environment Environment to train in (not owned).
     * @param trainer MADDPG/MATD3 trainer (not owned).
     * @param config Must match the trainer's config.
     */
    TrainLoop(env::Environment &environment, Trainer &trainer,
              TrainConfig config);

    /** Train for @p episodes episodes. */
    TrainResult run(std::size_t episodes,
                    const EpisodeCallback &callback = nullptr);

    const replay::MultiAgentBuffer &buffer() const { return buffers; }

    /** Null unless the interleaved backend is active. */
    const replay::InterleavedReplayStore *
    interleavedStore() const
    {
        return store.get();
    }

  private:
    env::Environment &environment;
    Trainer &trainer;
    TrainConfig config;
    replay::MultiAgentBuffer buffers;
    std::unique_ptr<replay::InterleavedReplayStore> store;
    StepCount insertionsSinceUpdate = 0;

    /** One-hot encode a discrete action. */
    std::vector<Real> oneHotAction(int action) const;
};

} // namespace marlin::core

#endif // MARLIN_CORE_TRAIN_LOOP_HH
