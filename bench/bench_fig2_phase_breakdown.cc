/**
 * @file
 * Figure 2: end-to-end training-time percentage breakdown (action
 * selection / update all trainers / other segments) for MADDPG and
 * MATD3 on Predator-Prey and Cooperative Navigation, 3-24 agents.
 *
 * Paper reference (update-all-trainers share): grows from ~34-40%
 * at 3 agents to ~76-80% at 24 agents; action selection shrinks
 * from ~60% to ~20%.
 */

#include "hybrid_model.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

void
runConfig(Algo algo, Task task)
{
    std::printf("\n%s / %s\n", algoName(algo), taskName(task));
    std::printf("%-8s %12s %12s %12s\n", "agents", "action(%)",
                "update(%)", "other(%)");
    const BufferIndex capacity = sweepCapacity(task, 24);
    for (std::size_t n : {3, 6, 12, 24}) {
        EstimateContext ctx;
        auto est = estimatePhases(algo, task, n,
                                  memsim::makeRtx3090(), ctx,
                                  capacity);
        const auto split = topSplit(est, Schedule{});
        std::printf("%-8zu %12.1f %12.1f %12.1f\n", n,
                    split.actionPct, split.updatePct,
                    split.otherPct);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig2_phase_breakdown");
    banner("Figure 2: end-to-end phase breakdown");
    runConfig(Algo::Maddpg, Task::PredatorPrey);
    runConfig(Algo::Maddpg, Task::CooperativeNavigation);
    runConfig(Algo::Matd3, Task::PredatorPrey);
    runConfig(Algo::Matd3, Task::CooperativeNavigation);
    std::printf("\npaper shape: update-all-trainers share grows "
                "monotonically with agents\n(36%%->76%% PP, "
                "27%%->73%% CN) while action selection shrinks.\n");
    return 0;
}
