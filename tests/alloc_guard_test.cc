/**
 * @file
 * Tests for the zero-allocation steady-state contract: AllocGuard
 * accounting itself, the Workspace scratch pool, and the end-to-end
 * claim that a warm TrainLoop step performs no heap allocation under
 * every shipped sampler.
 */

#include <gtest/gtest.h>

#include <memory>

#include "marlin/marlin.hh"

namespace marlin
{
namespace
{

TEST(AllocGuard, HookIsInstalled)
{
    // Linking this test pulls in the replacement operator new/delete
    // from the AllocGuard TU; the contract tests below are
    // meaningless if it is not live.
    EXPECT_TRUE(base::AllocGuard::hooked());
}

TEST(AllocGuard, CountsAllocationsAndBytes)
{
    base::AllocGuard guard;
    EXPECT_EQ(guard.allocations(), 0u);
    EXPECT_EQ(guard.bytes(), 0u);

    auto p = std::make_unique<char[]>(1024);
    EXPECT_GE(guard.allocations(), 1u);
    EXPECT_GE(guard.bytes(), 1024u);
}

TEST(AllocGuard, ReportsDeltaSinceOwnConstruction)
{
    base::AllocGuard outer;
    auto a = std::make_unique<int>(1);
    const std::uint64_t before_inner = outer.allocations();

    base::AllocGuard inner;
    EXPECT_EQ(inner.allocations(), 0u);
    auto b = std::make_unique<int>(2);
    EXPECT_GE(inner.allocations(), 1u);
    // The outer guard sees everything the inner one sees.
    EXPECT_GE(outer.allocations(), before_inner + inner.allocations());
}

TEST(AllocGuard, NestedScopesKeepCountingAfterInnerExits)
{
    base::AllocGuard outer;
    {
        base::AllocGuard inner;
        auto p = std::make_unique<int>(3);
        EXPECT_GE(inner.allocations(), 1u);
    }
    // Inner guard destruction must not disable accounting while the
    // outer guard is still alive.
    const std::uint64_t before = outer.allocations();
    auto q = std::make_unique<int>(4);
    EXPECT_GT(outer.allocations(), before);
}

TEST(AllocGuard, QuietScopeReportsZero)
{
    // Touch the thread-local workspace first so its lazy
    // construction is not charged to the guard.
    base::Workspace::threadLocal().scratch(base::wsGemmNTPack, 16);
    base::AllocGuard guard;
    base::Workspace::threadLocal().scratch(base::wsGemmNTPack, 16);
    EXPECT_EQ(guard.allocations(), 0u);
    EXPECT_EQ(guard.bytes(), 0u);
}

TEST(Workspace, RetainsCapacityAcrossShrinkingRequests)
{
    base::Workspace ws;
    std::vector<Real> &big = ws.scratch(0, 4096);
    ASSERT_GE(big.size(), 4096u);
    Real *data = big.data();

    base::AllocGuard guard;
    std::vector<Real> &again = ws.scratch(0, 1024);
    EXPECT_EQ(again.data(), data);
    EXPECT_EQ(guard.allocations(), 0u);
}

// --- end-to-end steady-state contract ------------------------------

std::vector<std::size_t>
dimsOf(const env::Environment &environment)
{
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment.numAgents(); ++i)
        dims.push_back(environment.obsDim(i));
    return dims;
}

core::TrainConfig
steadyConfig()
{
    core::TrainConfig c;
    c.batchSize = 32;
    c.bufferCapacity = 4096;
    c.warmupTransitions = 64;
    c.updateEvery = 20;
    c.hiddenDims = {32, 32};
    c.seed = 19;
    return c;
}

/**
 * Train long enough to pass warm-up plus one policy-delay cycle,
 * then assert that every steady-state step ran without touching the
 * heap. @p episodes must give at least a few dozen steady steps.
 */
void
expectZeroAllocSteadyState(const core::SamplerFactory &factory,
                           const char *label,
                           core::SamplingBackend backend =
                               core::SamplingBackend::PerAgent)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 91);
    auto config = steadyConfig();
    config.backend = backend;
    core::MaddpgTrainer trainer(dimsOf(*environment),
                                environment->actionDim(), config,
                                factory);
    core::TrainLoop loop(*environment, trainer, config);
    const auto result = loop.run(30);

    ASSERT_GT(result.updateCalls, config.policyDelay) << label;
    ASSERT_GT(result.steadyStateSteps, 50u) << label;
    EXPECT_EQ(result.steadyStateAllocs, 0u)
        << label << ": " << result.steadyStateAllocs
        << " allocations (" << result.steadyStateAllocBytes
        << " bytes) across " << result.steadyStateSteps
        << " steady-state steps";
}

TEST(SteadyState, UniformSamplerStepIsAllocationFree)
{
    expectZeroAllocSteadyState(
        [] { return std::make_unique<replay::UniformSampler>(); },
        "uniform");
}

TEST(SteadyState, PrioritizedSamplerStepIsAllocationFree)
{
    expectZeroAllocSteadyState(
        [] {
            replay::PerConfig per;
            per.capacity = 4096;
            return std::make_unique<replay::PrioritizedSampler>(per);
        },
        "prioritized");
}

TEST(SteadyState, RankSamplerStepIsAllocationFree)
{
    expectZeroAllocSteadyState(
        [] {
            replay::PerConfig per;
            per.capacity = 4096;
            return std::make_unique<replay::RankBasedSampler>(per);
        },
        "rank");
}

TEST(SteadyState, LocalitySamplerStepIsAllocationFree)
{
    expectZeroAllocSteadyState(
        [] {
            return std::make_unique<replay::LocalityAwareSampler>(
                replay::LocalityConfig{8, 4});
        },
        "locality");
}

TEST(SteadyState, Matd3StepIsAllocationFree)
{
    // MATD3 exercises the twin-critic and delayed-actor paths; its
    // actor scratch only warms after update policyDelay, which the
    // steady-state predicate accounts for.
    auto environment = env::makeCooperativeNavigationEnv(3, 92);
    auto config = steadyConfig();
    core::Matd3Trainer trainer(
        dimsOf(*environment), environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });
    core::TrainLoop loop(*environment, trainer, config);
    const auto result = loop.run(30);

    ASSERT_GT(result.steadyStateSteps, 50u);
    EXPECT_EQ(result.steadyStateAllocs, 0u)
        << result.steadyStateAllocs << " allocations across "
        << result.steadyStateSteps << " steady-state steps";
}

TEST(SteadyState, ContinuousActionStepIsAllocationFree)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 93);
    auto config = steadyConfig();
    config.actionMode = core::ActionMode::Continuous;
    // Continuous control: actors emit a 2D force, so actDim is 2.
    core::MaddpgTrainer trainer(
        dimsOf(*environment), 2, config,
        [] { return std::make_unique<replay::UniformSampler>(); });
    core::TrainLoop loop(*environment, trainer, config);
    const auto result = loop.run(30);

    ASSERT_GT(result.steadyStateSteps, 50u);
    EXPECT_EQ(result.steadyStateAllocs, 0u)
        << result.steadyStateAllocs << " allocations across "
        << result.steadyStateSteps << " steady-state steps";
}

} // namespace
} // namespace marlin
