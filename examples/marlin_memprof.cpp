/**
 * @file
 * perf-style memory profiler for the sampling phase: pick a task,
 * agent count, sampler and platform, and get wall-clock plus the
 * trace-driven hierarchy counters — the tool-ified version of the
 * paper's characterization methodology.
 *
 *   ./marlin_memprof --task pp --agents 12 --sampler locality \
 *       --neighbors 64 --platform threadripper --updates 4
 */

#include <cstdio>

#include "marlin/base/args.hh"
#include "marlin/env/cooperative_navigation.hh"
#include "marlin/env/predator_prey.hh"
#include "marlin/marlin.hh"
#include "marlin/replay/rank_sampler.hh"

using namespace marlin;

namespace
{

std::vector<replay::TransitionShape>
shapesFor(const std::string &task, std::size_t agents)
{
    std::vector<replay::TransitionShape> shapes;
    if (task == "pp") {
        env::PredatorPreyConfig cfg;
        cfg.numPredators = agents;
        env::PredatorPreyScenario scenario(cfg);
        for (std::size_t i = 0; i < agents; ++i)
            shapes.push_back({scenario.observationDim(i), 5});
    } else if (task == "cn") {
        env::CooperativeNavigationConfig cfg;
        cfg.numAgents = agents;
        env::CooperativeNavigationScenario scenario(cfg);
        for (std::size_t i = 0; i < agents; ++i)
            shapes.push_back({scenario.observationDim(i), 5});
    } else {
        fatal("unknown task '%s' (pp or cn)", task.c_str());
    }
    return shapes;
}

std::unique_ptr<replay::Sampler>
makeSampler(const std::string &name, std::size_t neighbors,
            BufferIndex capacity, Rng &prio_rng)
{
    if (name == "uniform")
        return std::make_unique<replay::UniformSampler>();
    if (name == "locality") {
        return std::make_unique<replay::LocalityAwareSampler>(
            replay::LocalityConfig{neighbors, 0});
    }
    replay::PerConfig cfg;
    cfg.capacity = capacity;
    std::unique_ptr<replay::Sampler> sampler;
    if (name == "per") {
        sampler = std::make_unique<replay::PrioritizedSampler>(cfg);
    } else if (name == "per-rank") {
        sampler = std::make_unique<replay::RankBasedSampler>(cfg);
    } else if (name == "ip") {
        sampler = std::make_unique<
            replay::InfoPrioritizedLocalitySampler>(cfg);
    } else {
        fatal("unknown sampler '%s'", name.c_str());
    }
    // Seed priorities with a plausible TD spread.
    std::vector<BufferIndex> ids(capacity);
    std::vector<Real> tds(capacity);
    for (BufferIndex i = 0; i < capacity; ++i) {
        ids[i] = i;
        tds[i] = prio_rng.uniformf() + Real(0.01);
    }
    sampler->updatePriorities(ids, tds);
    return sampler;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("marlin_memprof");
    args.addOption("task", "pp", "pp or cn");
    args.addOption("agents", "6", "trained agents");
    args.addOption("sampler", "uniform",
                   "uniform, locality, per, per-rank or ip");
    args.addOption("neighbors", "16", "locality run length");
    args.addOption("batch", "1024", "mini-batch size");
    args.addOption("log2-capacity", "16",
                   "replay entries = 2^this per agent");
    args.addOption("updates", "2", "updates to trace");
    args.addOption("platform", "threadripper",
                   "threadripper or i7-9700k");
    args.parse(argc, argv);

    const auto agents =
        static_cast<std::size_t>(args.getInt("agents"));
    const auto batch = static_cast<std::size_t>(args.getInt("batch"));
    const BufferIndex capacity =
        BufferIndex{1} << args.getInt("log2-capacity");
    const int updates = static_cast<int>(args.getInt("updates"));

    auto shapes = shapesFor(args.get("task"), agents);
    replay::MultiAgentBuffer buffers(shapes, capacity);
    std::printf("filling %zu x %llu-entry buffers (%s)...\n", agents,
                static_cast<unsigned long long>(capacity),
                formatBytes(buffers.storageBytes()).c_str());
    {
        Rng rng(1);
        std::vector<std::vector<Real>> obs(agents), act(agents),
            next(agents);
        std::vector<Real> rew(agents);
        std::vector<bool> done(agents, false);
        for (std::size_t a = 0; a < agents; ++a) {
            obs[a].resize(shapes[a].obsDim);
            next[a].resize(shapes[a].obsDim);
            act[a].assign(5, Real(0));
        }
        for (BufferIndex t = 0; t < capacity; ++t) {
            for (std::size_t a = 0; a < agents; ++a) {
                for (auto &v : obs[a])
                    v = rng.uniformf();
                next[a] = obs[a];
                rew[a] = rng.uniformf();
            }
            buffers.add(obs, act, rew, next, done);
        }
    }

    Rng prio_rng(2);
    auto sampler = makeSampler(
        args.get("sampler"),
        static_cast<std::size_t>(args.getInt("neighbors")), capacity,
        prio_rng);

    // Wall clock.
    Rng rng(3);
    std::vector<replay::AgentBatch> batches;
    for (std::size_t t = 0; t < agents; ++t) {
        auto plan = sampler->plan(buffers.size(), batch, rng);
        replay::gatherAllAgents(buffers, plan, batches);
    }
    profile::Stopwatch sw;
    for (int u = 0; u < updates; ++u) {
        for (std::size_t t = 0; t < agents; ++t) {
            auto plan = sampler->plan(buffers.size(), batch, rng);
            replay::gatherAllAgents(buffers, plan, batches);
        }
    }
    const double wall_ms = sw.elapsedSeconds() / updates * 1e3;

    // Simulated counters.
    replay::AccessTrace trace;
    for (int u = 0; u < updates; ++u) {
        for (std::size_t t = 0; t < agents; ++t) {
            auto plan = sampler->plan(buffers.size(), batch, rng);
            replay::gatherAllAgents(buffers, plan, batches, &trace);
        }
    }
    auto preset = memsim::makePlatform(
        memsim::platformFromString(args.get("platform")));
    memsim::CacheHierarchy hierarchy(preset.hierarchy);
    auto replayed =
        memsim::replayTrace(hierarchy, trace, preset.frequencyHz);
    const auto &s = replayed.stats;

    std::printf("\nsampler %s, %s, %zu agents, batch %zu, platform "
                "%s\n",
                sampler->name().c_str(), args.get("task").c_str(),
                agents, batch, preset.name.c_str());
    std::printf("%-28s %14.3f ms/update\n", "wall clock (this host)",
                wall_ms);
    std::printf("%-28s %14.3f ms/update (modeled)\n",
                "memory time", replayed.memorySeconds / updates * 1e3);
    auto per_update = [&](std::uint64_t v) {
        return static_cast<double>(v) / updates;
    };
    std::printf("%-28s %14.0f\n", "line reads",
                per_update(s.lineAccesses));
    std::printf("%-28s %14.0f  (%.2f%% of reads)\n", "L1d misses",
                per_update(s.l1.misses), 100.0 * s.l1.missRate());
    std::printf("%-28s %14.0f\n", "L2 misses",
                per_update(s.l2.misses));
    std::printf("%-28s %14.0f  (perf: LLC misses)\n", "L3 misses",
                per_update(s.l3.misses));
    std::printf("%-28s %14.0f  (%.2f%%)\n", "dTLB misses",
                per_update(s.tlb.misses), 100.0 * s.tlb.missRate());
    std::printf("%-28s %14.0f\n", "prefetches issued",
                per_update(s.prefetcher.issued));
    std::printf("%-28s %14.0f\n", "prefetch hits",
                per_update(s.l1.prefetchHits));
    return 0;
}
