/**
 * @file
 * The policy-serving front end: a single-threaded TCP server that
 * multiplexes many client connections over epoll (poll fallback),
 * coalesces their requests in a MicroBatcher, answers each batch
 * with one zero-alloc actor forward per agent, and hot-swaps the
 * served weights on SIGHUP or a reload-poll tick without dropping
 * a single connection.
 *
 * Threading model: everything — accept, read, decode, batch,
 * inference, write, reload — runs on the one thread inside run().
 * stop() and requestReload() are the only cross-thread entry
 * points; both are a single atomic store the loop observes on its
 * next service turn. Single-threading is what makes the hot weight
 * swap trivially safe: a reload happens between two batch flushes,
 * so no in-flight forward can observe a half-copied network.
 */

#ifndef MARLIN_SERVE_SERVER_HH
#define MARLIN_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "marlin/serve/batcher.hh"
#include "marlin/serve/connection.hh"
#include "marlin/serve/policy.hh"
#include "marlin/serve/poller.hh"

namespace marlin::serve
{

/** Knobs of a serving front end. */
struct ServeConfig
{
    /** TCP port; 0 binds an ephemeral port (see Server::port). */
    std::uint16_t port = 0;
    /** listen(2) backlog. */
    int backlog = 64;
    /** Flush a batch as soon as this many requests are queued. */
    std::size_t batchMax = 32;
    /** Flush when the oldest request has waited this long. */
    std::uint64_t batchDeadlineUs = 200;
    /**
     * Check the reload hook every this many ms even without a
     * SIGHUP (0 = reload only on SIGHUP / requestReload).
     */
    std::uint64_t reloadPollMs = 0;
    /** Reject request frames with larger payloads. */
    std::size_t maxPayloadBytes = 1 << 20;
    /** Readiness backend. */
    PollerKind poller = PollerKind::Auto;
};

/** Point-in-time server statistics (single snapshot, not atomic). */
struct ServeStats
{
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t eofs = 0;
    std::uint64_t protocolErrors = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t reloads = 0;
    std::uint64_t batches = 0;
    std::size_t activeConnections = 0;
};

/** Single-threaded epoll/poll policy server. */
class Server
{
  public:
    Server(ServePolicy &policy, ServeConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind + listen on config.port (loopback-and-any: INADDR_ANY).
     * Returns false with a warning on failure. Must be called
     * before run().
     */
    bool start();

    /** The bound port (the kernel's pick when config.port was 0). */
    std::uint16_t port() const { return boundPort; }

    /** Readiness backend actually in use ("epoll" or "poll"). */
    const char *backendName() const;

    /**
     * Serve until stop(). Installs nothing; signal handlers are the
     * binary's business (wire SIGHUP to requestReload()).
     */
    void run();

    /** Ask the loop to exit; safe from any thread/signal handler. */
    void
    stop()
    {
        stopFlag.store(true, std::memory_order_release);
    }

    /**
     * Ask the loop to invoke the reload hook at the next service
     * turn; safe from any thread and from signal handlers (one
     * atomic store, the SIGHUP path).
     */
    void
    requestReload()
    {
        reloadFlag.store(true, std::memory_order_release);
    }

    /**
     * Hook invoked on the server thread between batches when a
     * reload was requested (or every reloadPollMs). @p forced is
     * true for SIGHUP / requestReload() — reload unconditionally —
     * and false for a poll tick, where the hook may skip when the
     * checkpoint on disk is unchanged. Return true when new
     * weights were actually swapped in; the server counts it as a
     * completed reload.
     */
    void setReloadHook(std::function<bool(bool forced)> hook);

    ServeStats stats() const;

  private:
    void acceptClients();
    void handleReadable(Connection &conn);
    void drainDecoder(Connection &conn);
    void flushBatch();
    void flushOutput(Connection &conn);
    void closeConnection(std::uint64_t id, bool expected);
    void maybeReload(std::uint64_t now_ns);
    void publishGauges(std::uint64_t now_ns);
    int waitTimeoutMs() const;

    ServePolicy &policy;
    ServeConfig config;
    MicroBatcher batcher;
    Poller poller;

    int listenFd = -1;
    std::uint16_t boundPort = 0;
    std::uint64_t nextConnId = 1;
    std::map<std::uint64_t, Connection> connections;
    /** fd -> connection id for event dispatch. */
    std::map<int, std::uint64_t> byFd;
    std::vector<PollEvent> events;
    /** Connections to close after the current service turn. */
    std::vector<std::uint64_t> doomed;

    std::atomic<bool> stopFlag{false};
    std::atomic<bool> reloadFlag{false};
    std::function<bool(bool forced)> reloadHook;
    std::uint64_t lastReloadCheckNs = 0;

    // QPS window for the serve.qps gauge.
    std::uint64_t windowStartNs = 0;
    std::uint64_t windowResponses = 0;

    ServeStats counters;
};

/**
 * Install a SIGHUP handler that calls requestReload() on @p server
 * (process-wide; the last installed server wins). Passing nullptr
 * restores SIG_DFL.
 */
void installSighupReload(Server *server);

} // namespace marlin::serve

#endif // MARLIN_SERVE_SERVER_HH
