/**
 * @file
 * Shared run coordination for the async actor-learner runtime.
 */

#ifndef MARLIN_ASYNC_RUN_CONTROL_HH
#define MARLIN_ASYNC_RUN_CONTROL_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "marlin/base/types.hh"

namespace marlin::async
{

/**
 * The one piece of state every async thread shares. Actors claim
 * global episode indices with a fetch_add on episodesClaimed (the
 * claimed index drives the epsilon decay schedule, so exploration
 * anneals over global progress exactly like the lockstep loop);
 * when the counter passes episodeTarget an actor retires and
 * decrements activeActors. The learner exits once every actor has
 * retired and the rings are drained. stop is the cooperative
 * emergency brake (health-guard halt).
 */
struct RunControl
{
    std::atomic<std::uint64_t> episodesClaimed{0};
    std::uint64_t episodeTarget = 0;
    std::atomic<std::size_t> activeActors{0};
    std::atomic<bool> stop{false};

    /** Completed episodes as (global episode index, mean reward). */
    std::mutex rewardMutex;
    std::vector<std::pair<std::uint64_t, Real>> episodeRewards;

    /** Actor side: record a finished episode's mean reward. */
    void
    recordEpisode(std::uint64_t index, Real mean_reward)
    {
        const std::lock_guard<std::mutex> lock(rewardMutex);
        episodeRewards.emplace_back(index, mean_reward);
    }
};

} // namespace marlin::async

#endif // MARLIN_ASYNC_RUN_CONTROL_HH
