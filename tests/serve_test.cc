/**
 * @file
 * Serving front end tests: wire-protocol framing under arbitrary
 * fragmentation and corruption, micro-batcher grouping semantics,
 * loopback server behavior (correct actions, in-band semantic
 * errors, per-connection isolation of framing violations) and hot
 * checkpoint reload.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "marlin/base/instant.hh"
#include "marlin/core/checkpoint.hh"
#include "marlin/core/maddpg.hh"
#include "marlin/env/cooperative_navigation.hh"
#include "marlin/replay/uniform_sampler.hh"
#include "marlin/serve/client.hh"
#include "marlin/serve/reload.hh"
#include "marlin/serve/server.hh"

namespace
{

using namespace marlin;

constexpr std::size_t kAgents = 3;

std::unique_ptr<core::CtdeTrainerBase>
makeTrainer(std::uint64_t seed)
{
    auto environment =
        env::makeCooperativeNavigationEnv(kAgents, seed);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    core::TrainConfig config;
    config.hiddenDims = {16, 16};
    config.seed = seed;
    return std::make_unique<core::MaddpgTrainer>(
        dims, environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });
}

std::vector<Real>
randomObs(std::size_t n, Rng &rng)
{
    std::vector<Real> obs(n);
    for (auto &v : obs)
        v = rng.uniformf();
    return obs;
}

/** Expected actions: the policy's own batched forward, one row. */
std::vector<Real>
localForward(serve::ServePolicy &policy, std::size_t agent,
             const std::vector<Real> &obs)
{
    numeric::Matrix x(1, obs.size(), obs);
    numeric::Matrix y;
    policy.forward(agent, x, y);
    return std::vector<Real>(y.data(), y.data() + y.cols());
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "marlin_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// ---------------------------------------------------------------
// Protocol framing
// ---------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTrip)
{
    std::vector<std::byte> wire;
    const std::vector<Real> obs = {0.25f, -1.5f, 3.0f};
    serve::encodeRequest(wire, 7, obs.data(), obs.size());
    ASSERT_EQ(wire.size(),
              serve::headerBytes + obs.size() * sizeof(Real));

    serve::FrameDecoder decoder(serve::requestMagic, 1 << 20);
    decoder.feed(wire.data(), wire.size());
    serve::RequestView view;
    ASSERT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::Frame);
    EXPECT_EQ(view.agentId, 7);
    ASSERT_EQ(view.obsCount(), obs.size());
    std::vector<Real> decoded(view.obsCount());
    view.copyObs(decoded.data());
    EXPECT_EQ(decoded, obs);
    EXPECT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::NeedMore);
    EXPECT_EQ(decoder.pendingBytes(), 0u);
}

TEST(ServeProtocol, ResponseRoundTrip)
{
    std::vector<std::byte> wire;
    const std::vector<Real> actions = {1.0f, 0.0f};
    serve::encodeResponse(wire, serve::Status::Ok, actions.data(),
                          actions.size());

    serve::FrameDecoder decoder(serve::responseMagic, 1 << 20);
    decoder.feed(wire.data(), wire.size());
    serve::ResponseView view;
    ASSERT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::Frame);
    EXPECT_EQ(view.status, serve::Status::Ok);
    ASSERT_EQ(view.actionCount(), actions.size());
    std::vector<Real> decoded(view.actionCount());
    view.copyActions(decoded.data());
    EXPECT_EQ(decoded, actions);
}

TEST(ServeProtocol, ErrorResponseCarriesNoPayload)
{
    std::vector<std::byte> wire;
    serve::encodeResponse(wire, serve::Status::BadAgent, nullptr, 0);
    serve::FrameDecoder decoder(serve::responseMagic, 1 << 20);
    decoder.feed(wire.data(), wire.size());
    serve::ResponseView view;
    ASSERT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::Frame);
    EXPECT_EQ(view.status, serve::Status::BadAgent);
    EXPECT_EQ(view.actionCount(), 0u);
}

TEST(ServeProtocol, FragmentedByteAtATime)
{
    std::vector<std::byte> wire;
    const std::vector<Real> obs = {1.0f, 2.0f, 3.0f, 4.0f};
    serve::encodeRequest(wire, 2, obs.data(), obs.size());

    serve::FrameDecoder decoder(serve::requestMagic, 1 << 20);
    serve::RequestView view;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        decoder.feed(&wire[i], 1);
        ASSERT_EQ(decoder.next(view),
                  serve::FrameDecoder::Result::NeedMore)
            << "byte " << i;
    }
    decoder.feed(&wire[wire.size() - 1], 1);
    ASSERT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::Frame);
    EXPECT_EQ(view.agentId, 2);
    EXPECT_EQ(view.obsCount(), obs.size());
}

TEST(ServeProtocol, CoalescedFramesPeelInOrder)
{
    std::vector<std::byte> wire;
    const std::vector<Real> obs = {0.5f};
    for (std::uint16_t agent = 0; agent < 3; ++agent)
        serve::encodeRequest(wire, agent, obs.data(), obs.size());
    // Plus the first half of a fourth frame.
    std::vector<std::byte> partial;
    serve::encodeRequest(partial, 9, obs.data(), obs.size());
    wire.insert(wire.end(), partial.begin(),
                partial.begin() + partial.size() / 2);

    serve::FrameDecoder decoder(serve::requestMagic, 1 << 20);
    decoder.feed(wire.data(), wire.size());
    serve::RequestView view;
    for (std::uint16_t agent = 0; agent < 3; ++agent) {
        ASSERT_EQ(decoder.next(view),
                  serve::FrameDecoder::Result::Frame);
        EXPECT_EQ(view.agentId, agent);
    }
    ASSERT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::NeedMore);
    decoder.feed(partial.data() + partial.size() / 2,
                 partial.size() - partial.size() / 2);
    ASSERT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::Frame);
    EXPECT_EQ(view.agentId, 9);
}

TEST(ServeProtocol, TruncatedHeaderNeedsMore)
{
    std::vector<std::byte> wire;
    const Real obs = 1.0f;
    serve::encodeRequest(wire, 0, &obs, 1);
    serve::FrameDecoder decoder(serve::requestMagic, 1 << 20);
    decoder.feed(wire.data(), serve::headerBytes - 3);
    serve::RequestView view;
    EXPECT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::NeedMore);
    EXPECT_EQ(decoder.pendingBytes(), serve::headerBytes - 3);
}

TEST(ServeProtocol, BadMagicPoisonsTheStream)
{
    std::vector<std::byte> wire;
    const Real obs = 1.0f;
    serve::encodeRequest(wire, 0, &obs, 1);
    wire[0] = std::byte{0xff};

    serve::FrameDecoder decoder(serve::requestMagic, 1 << 20);
    decoder.feed(wire.data(), wire.size());
    serve::RequestView view;
    ASSERT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::BadMagic);
    EXPECT_TRUE(serve::FrameDecoder::isError(
        serve::FrameDecoder::Result::BadMagic));

    // A valid frame fed afterwards cannot resurrect the stream.
    std::vector<std::byte> good;
    serve::encodeRequest(good, 1, &obs, 1);
    decoder.feed(good.data(), good.size());
    EXPECT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::BadMagic);

    decoder.reset();
    decoder.feed(good.data(), good.size());
    EXPECT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::Frame);
}

TEST(ServeProtocol, BadVersionRejected)
{
    std::vector<std::byte> wire;
    const Real obs = 1.0f;
    serve::encodeRequest(wire, 0, &obs, 1);
    wire[4] = std::byte{0x7f}; // Version 0x7f01 != 1.

    serve::FrameDecoder decoder(serve::requestMagic, 1 << 20);
    decoder.feed(wire.data(), wire.size());
    serve::RequestView view;
    EXPECT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::BadVersion);
}

TEST(ServeProtocol, OversizedLengthPrefixRejected)
{
    std::vector<std::byte> wire;
    const std::vector<Real> obs(8, 1.0f);
    serve::encodeRequest(wire, 0, obs.data(), obs.size());

    // A decoder capped below the frame's payload refuses it from
    // the header alone: no amount of feeding unlocks it.
    serve::FrameDecoder decoder(serve::requestMagic, 16);
    decoder.feed(wire.data(), wire.size());
    serve::RequestView view;
    EXPECT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::Oversized);
}

TEST(ServeProtocol, NonFloatMultipleLengthRejected)
{
    std::vector<std::byte> wire;
    const Real obs = 1.0f;
    serve::encodeRequest(wire, 0, &obs, 1);
    wire[8] = std::byte{3}; // Payload length 3: not float-aligned.

    serve::FrameDecoder decoder(serve::requestMagic, 1 << 20);
    decoder.feed(wire.data(), wire.size());
    serve::RequestView view;
    EXPECT_EQ(decoder.next(view),
              serve::FrameDecoder::Result::BadLength);
}

// ---------------------------------------------------------------
// Micro-batcher
// ---------------------------------------------------------------

TEST(ServeBatcher, GroupsByAgentAndPreservesArrivalOrder)
{
    auto trainer = makeTrainer(5);
    serve::ServePolicy policy;
    policy.adoptFrom(*trainer);

    serve::MicroBatcher batcher(8, 1000);
    Rng rng(3);
    // Interleaved agents: the flush groups rows per agent but must
    // answer in arrival order.
    const std::vector<std::uint16_t> agents = {1, 0, 2, 1, 0};
    std::vector<std::vector<Real>> observations;
    for (std::size_t i = 0; i < agents.size(); ++i) {
        observations.push_back(
            randomObs(policy.obsDim(agents[i]), rng));
        batcher.add(100 + i, agents[i], observations[i].data(),
                    observations[i].size(), 0);
    }
    EXPECT_EQ(batcher.size(), agents.size());

    std::vector<std::uint64_t> order;
    std::vector<std::vector<Real>> answers;
    batcher.flush(
        policy,
        [&](std::uint64_t conn_id, const Real *actions,
            std::size_t count, std::uint64_t, std::uint64_t) {
            order.push_back(conn_id);
            answers.emplace_back(actions, actions + count);
        },
        0);
    EXPECT_TRUE(batcher.empty());

    ASSERT_EQ(order.size(), agents.size());
    for (std::size_t i = 0; i < agents.size(); ++i) {
        EXPECT_EQ(order[i], 100 + i);
        const auto expected =
            localForward(policy, agents[i], observations[i]);
        ASSERT_EQ(answers[i].size(), expected.size());
        for (std::size_t k = 0; k < expected.size(); ++k)
            EXPECT_FLOAT_EQ(answers[i][k], expected[k]) << i;
    }
}

TEST(ServeBatcher, DeadlineAndWatermark)
{
    serve::MicroBatcher batcher(2, 100);
    EXPECT_FALSE(batcher.deadlineExpired(0));

    const Real obs = 1.0f;
    batcher.add(1, 0, &obs, 1, 1000);
    EXPECT_FALSE(batcher.full());
    EXPECT_FALSE(batcher.deadlineExpired(1000));
    EXPECT_TRUE(batcher.deadlineExpired(1000 + 100'000));
    EXPECT_EQ(batcher.nsUntilDeadline(1000), 100'000u);

    batcher.add(2, 0, &obs, 1, 2000);
    EXPECT_TRUE(batcher.full());
}

// ---------------------------------------------------------------
// Loopback server
// ---------------------------------------------------------------

/** A live loopback server on an ephemeral port. */
struct ServerRig
{
    explicit ServerRig(serve::ServeConfig config = {},
                       std::uint64_t seed = 5)
    {
        trainer = makeTrainer(seed);
        policy.adoptFrom(*trainer);
        config.port = 0;
        server = std::make_unique<serve::Server>(policy, config);
        EXPECT_TRUE(server->start());
        loop = std::thread([this] { server->run(); });
    }

    ~ServerRig()
    {
        server->stop();
        loop.join();
    }

    serve::BlockingClient
    connect()
    {
        serve::BlockingClient client;
        EXPECT_TRUE(
            client.connect("127.0.0.1", server->port(), 2000));
        return client;
    }

    std::unique_ptr<core::CtdeTrainerBase> trainer;
    serve::ServePolicy policy;
    std::unique_ptr<serve::Server> server;
    std::thread loop;
};

TEST(ServeServer, RoundTripMatchesLocalForward)
{
    ServerRig rig;
    auto client = rig.connect();

    Rng rng(9);
    std::vector<Real> actions;
    serve::Status status = serve::Status::Ok;
    for (std::uint16_t agent = 0; agent < kAgents; ++agent) {
        const auto obs = randomObs(rig.policy.obsDim(agent), rng);
        ASSERT_TRUE(client.request(agent, obs.data(), obs.size(),
                                   actions, status));
        EXPECT_EQ(status, serve::Status::Ok);
        const auto expected =
            localForward(rig.policy, agent, obs);
        ASSERT_EQ(actions.size(), expected.size());
        for (std::size_t k = 0; k < expected.size(); ++k)
            EXPECT_FLOAT_EQ(actions[k], expected[k]);
    }
}

TEST(ServeServer, SemanticErrorsAnsweredInBand)
{
    ServerRig rig;
    auto client = rig.connect();

    Rng rng(11);
    std::vector<Real> actions;
    serve::Status status = serve::Status::Ok;

    // Unknown agent: answered, connection stays up.
    const auto obs = randomObs(rig.policy.obsDim(0), rng);
    ASSERT_TRUE(client.request(63, obs.data(), obs.size(), actions,
                               status));
    EXPECT_EQ(status, serve::Status::BadAgent);
    EXPECT_TRUE(actions.empty());

    // Wrong observation width: same.
    ASSERT_TRUE(client.request(0, obs.data(), obs.size() - 1,
                               actions, status));
    EXPECT_EQ(status, serve::Status::BadObsDim);

    // The connection still serves valid requests afterwards.
    ASSERT_TRUE(client.request(0, obs.data(), obs.size(), actions,
                               status));
    EXPECT_EQ(status, serve::Status::Ok);
    EXPECT_EQ(actions.size(), rig.policy.actDim());
}

TEST(ServeServer, FramingViolationClosesOnlyThatConnection)
{
    ServerRig rig;
    auto good = rig.connect();
    auto bad = rig.connect();

    // Poison the bad client's stream with a wrong magic.
    std::vector<std::byte> garbage(serve::headerBytes + 4,
                                   std::byte{0xab});
    ASSERT_TRUE(bad.sendRaw(garbage.data(), garbage.size()));

    // The server answers BadFrame, then closes: the next read hits
    // EOF, surfaced as a failed response cycle.
    std::vector<Real> actions;
    serve::Status status = serve::Status::Ok;
    ASSERT_TRUE(bad.recvResponse(actions, status));
    EXPECT_EQ(status, serve::Status::BadFrame);
    EXPECT_FALSE(bad.recvResponse(actions, status));

    // The good client never notices.
    Rng rng(13);
    const auto obs = randomObs(rig.policy.obsDim(1), rng);
    ASSERT_TRUE(good.request(1, obs.data(), obs.size(), actions,
                             status));
    EXPECT_EQ(status, serve::Status::Ok);

    const serve::ServeStats stats = rig.server->stats();
    EXPECT_EQ(stats.protocolErrors, 1u);
}

TEST(ServeServer, ManyClientsBatchedConcurrently)
{
    serve::ServeConfig config;
    config.batchMax = 8;
    config.batchDeadlineUs = 100;
    ServerRig rig(config);

    constexpr std::size_t kClients = 4;
    constexpr std::size_t kRequests = 50;
    std::vector<std::thread> threads;
    std::vector<int> failures(kClients, 0);
    for (std::size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            serve::BlockingClient client;
            if (!client.connect("127.0.0.1", rig.server->port(),
                                2000)) {
                failures[c] = 1;
                return;
            }
            Rng rng(100 + c);
            std::vector<Real> actions;
            serve::Status status = serve::Status::Ok;
            for (std::size_t i = 0; i < kRequests; ++i) {
                const auto agent =
                    static_cast<std::uint16_t>(i % kAgents);
                const auto obs =
                    randomObs(rig.policy.obsDim(agent), rng);
                if (!client.request(agent, obs.data(), obs.size(),
                                    actions, status) ||
                    status != serve::Status::Ok ||
                    actions.size() != rig.policy.actDim()) {
                    failures[c] = 1;
                    return;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (std::size_t c = 0; c < kClients; ++c)
        EXPECT_EQ(failures[c], 0) << "client " << c;

    const serve::ServeStats stats = rig.server->stats();
    EXPECT_EQ(stats.responses, kClients * kRequests);
    EXPECT_EQ(stats.protocolErrors, 0u);
    // Coalescing happened at least once: fewer flushes than
    // requests would be flaky to assert tightly, but the batch
    // count can never exceed the response count.
    EXPECT_LE(stats.batches, stats.responses);
}

TEST(ServeServer, HotReloadSwapsWeightsWithoutDroppingConnections)
{
    ServerRig rig;
    auto fresh = makeTrainer(99); // Different seed, same shapes.
    int hook_calls = 0;
    rig.server->setReloadHook([&](bool forced) {
        EXPECT_TRUE(forced);
        ++hook_calls;
        rig.policy.adoptFrom(*fresh);
        return true;
    });

    auto client = rig.connect();
    Rng rng(21);
    const auto obs = randomObs(rig.policy.obsDim(0), rng);
    std::vector<Real> actions;
    serve::Status status = serve::Status::Ok;
    ASSERT_TRUE(client.request(0, obs.data(), obs.size(), actions,
                               status));
    const std::vector<Real> before = actions;

    rig.server->requestReload();
    // The same connection keeps serving across the swap; the swap
    // lands before the response to a later request.
    serve::ServePolicy expected;
    expected.adoptFrom(*fresh);
    const auto want = localForward(expected, 0, obs);
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(client.request(0, obs.data(), obs.size(),
                                   actions, status));
        ASSERT_EQ(status, serve::Status::Ok);
        if (actions == want)
            break;
    }
    EXPECT_EQ(actions, want);
    EXPECT_NE(actions, before);
    EXPECT_EQ(hook_calls, 1);
    EXPECT_EQ(rig.server->stats().reloads, 1u);
    EXPECT_EQ(rig.server->stats().eofs, 0u);
}

TEST(ServeServer, PollBackendServes)
{
    serve::ServeConfig config;
    config.poller = serve::PollerKind::Poll;
    ServerRig rig(config);
    EXPECT_STREQ(rig.server->backendName(), "poll");

    auto client = rig.connect();
    Rng rng(31);
    const auto obs = randomObs(rig.policy.obsDim(0), rng);
    std::vector<Real> actions;
    serve::Status status = serve::Status::Ok;
    ASSERT_TRUE(client.request(0, obs.data(), obs.size(), actions,
                               status));
    EXPECT_EQ(status, serve::Status::Ok);
}

// ---------------------------------------------------------------
// Checkpoint reload
// ---------------------------------------------------------------

TEST(ServeReload, LoadNowRestoresCheckpointedWeights)
{
    const std::string dir = freshDir("serve_reload_load");
    auto trained = makeTrainer(42);
    core::RunState save;
    save.trainer = trained.get();
    ASSERT_TRUE(core::saveRotating(dir, save));

    // A differently seeded shell: loadNow must overwrite it.
    auto shell = makeTrainer(43);
    serve::ServePolicy policy;
    serve::CheckpointReloader reloader(dir, *shell, policy);
    ASSERT_TRUE(reloader.loadNow());
    EXPECT_EQ(policy.version(), 1u);

    serve::ServePolicy expected;
    expected.adoptFrom(*trained);
    Rng rng(1);
    const auto obs = randomObs(expected.obsDim(0), rng);
    EXPECT_EQ(localForward(policy, 0, obs),
              localForward(expected, 0, obs));
}

TEST(ServeReload, PollTickSkipsUnchangedAndPicksUpRotation)
{
    const std::string dir = freshDir("serve_reload_poll");
    auto first = makeTrainer(42);
    core::RunState save;
    save.trainer = first.get();
    ASSERT_TRUE(core::saveRotating(dir, save));

    auto shell = makeTrainer(43);
    serve::ServePolicy policy;
    serve::CheckpointReloader reloader(dir, *shell, policy);
    ASSERT_TRUE(reloader.loadNow());

    // Unchanged rotation: an unforced tick is a no-op.
    EXPECT_FALSE(reloader.maybeReload(false));
    EXPECT_EQ(reloader.reloads(), 0u);

    // A new rotation lands; the next tick picks it up.
    auto second = makeTrainer(77);
    save.trainer = second.get();
    ASSERT_TRUE(core::saveRotating(dir, save));
    EXPECT_TRUE(reloader.maybeReload(false));
    EXPECT_EQ(reloader.reloads(), 1u);

    serve::ServePolicy expected;
    expected.adoptFrom(*second);
    Rng rng(2);
    const auto obs = randomObs(expected.obsDim(0), rng);
    EXPECT_EQ(localForward(policy, 0, obs),
              localForward(expected, 0, obs));
}

TEST(ServeReload, FailedReloadKeepsCurrentWeights)
{
    const std::string dir = freshDir("serve_reload_fail");
    auto trained = makeTrainer(42);
    core::RunState save;
    save.trainer = trained.get();
    ASSERT_TRUE(core::saveRotating(dir, save));

    auto shell = makeTrainer(43);
    serve::ServePolicy policy;
    serve::CheckpointReloader reloader(dir, *shell, policy);
    ASSERT_TRUE(reloader.loadNow());

    serve::ServePolicy expected;
    expected.adoptFrom(*trained);

    // Corrupt both generations; a forced reload fails and the
    // served weights stay what they were.
    for (const auto &path :
         {core::latestCheckpointPath(dir),
          core::previousCheckpointPath(dir)}) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "not a checkpoint";
    }
    EXPECT_FALSE(reloader.maybeReload(true));
    EXPECT_EQ(reloader.reloads(), 0u);

    Rng rng(3);
    const auto obs = randomObs(expected.obsDim(0), rng);
    EXPECT_EQ(localForward(policy, 0, obs),
              localForward(expected, 0, obs));
}

} // namespace
