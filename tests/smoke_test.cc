/**
 * @file
 * End-to-end smoke test: a short MADDPG run on each environment
 * must complete, produce finite rewards, and exercise every phase.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "marlin/marlin.hh"

namespace marlin
{
namespace
{

core::TrainConfig
smokeConfig()
{
    core::TrainConfig c;
    c.batchSize = 32;
    c.bufferCapacity = 4096;
    c.warmupTransitions = 64;
    c.updateEvery = 25;
    c.hiddenDims = {16, 16};
    c.seed = 5;
    return c;
}

TEST(Smoke, MaddpgPredatorPreyRuns)
{
    auto environment = env::makePredatorPreyEnv(3, 1);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));

    auto config = smokeConfig();
    core::MaddpgTrainer trainer(dims, environment->actionDim(), config,
                                [] {
                                    return std::make_unique<
                                        replay::UniformSampler>();
                                });
    core::TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(20);

    EXPECT_EQ(result.episodeRewards.size(), 20u);
    EXPECT_GT(result.updateCalls, 0u);
    for (Real r : result.episodeRewards)
        EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(result.timer.seconds(profile::Phase::Sampling), 0.0);
    EXPECT_GT(result.timer.seconds(profile::Phase::TargetQ), 0.0);
    EXPECT_GT(result.timer.seconds(profile::Phase::QPLoss), 0.0);
}

TEST(Smoke, Matd3CooperativeNavigationRuns)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 2);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));

    auto config = smokeConfig();
    core::Matd3Trainer trainer(dims, environment->actionDim(), config,
                               [] {
                                   return std::make_unique<
                                       replay::UniformSampler>();
                               });
    core::TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(20);

    EXPECT_EQ(result.episodeRewards.size(), 20u);
    EXPECT_GT(result.updateCalls, 0u);
    for (Real r : result.episodeRewards)
        EXPECT_TRUE(std::isfinite(r));
}

} // namespace
} // namespace marlin
