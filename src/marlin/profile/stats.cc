#include "marlin/profile/stats.hh"

#include <algorithm>
#include <cmath>

#include "marlin/base/string_utils.hh"

namespace marlin::profile
{

void
Distribution::sample(double value)
{
    if (n == 0) {
        _min = value;
        _max = value;
    } else {
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }
    ++n;
    total += value;
    sumSq += value * value;
}

double
Distribution::variance() const
{
    if (n < 2)
        return 0;
    const double m = mean();
    const double var =
        (sumSq - static_cast<double>(n) * m * m) /
        static_cast<double>(n - 1);
    return var > 0 ? var : 0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

void
Distribution::reset()
{
    *this = Distribution{};
}

void
StatsRegistry::inc(const std::string &name, std::uint64_t delta)
{
    counters[name] += delta;
}

std::uint64_t
StatsRegistry::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

void
StatsRegistry::sample(const std::string &name, double value)
{
    dists[name].sample(value);
}

const Distribution &
StatsRegistry::dist(const std::string &name) const
{
    static const Distribution empty;
    auto it = dists.find(name);
    return it == dists.end() ? empty : it->second;
}

std::vector<std::string>
StatsRegistry::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters.size());
    for (const auto &[name, value] : counters)
        names.push_back(name);
    return names;
}

std::vector<std::string>
StatsRegistry::distNames() const
{
    std::vector<std::string> names;
    names.reserve(dists.size());
    for (const auto &[name, value] : dists)
        names.push_back(name);
    return names;
}

std::string
StatsRegistry::dump() const
{
    std::string out;
    for (const auto &[name, value] : counters)
        out += csprintf("%-40s %20llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    for (const auto &[name, d] : dists) {
        out += csprintf("%-40s mean=%.4g min=%.4g max=%.4g sd=%.4g "
                        "n=%llu\n",
                        name.c_str(), d.mean(), d.min(), d.max(),
                        d.stddev(),
                        static_cast<unsigned long long>(d.count()));
    }
    return out;
}

void
StatsRegistry::reset()
{
    counters.clear();
    dists.clear();
}

} // namespace marlin::profile
