/**
 * @file
 * Vectorized environment: K independent copies of a scenario
 * stepped together, amortizing per-call overhead during data
 * collection (the pattern WarpDrive-style systems scale up; here it
 * is the CPU building block for filling replay buffers quickly).
 */

#ifndef MARLIN_ENV_VECTOR_ENV_HH
#define MARLIN_ENV_VECTOR_ENV_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "marlin/env/environment.hh"

namespace marlin::env
{

/** Builds one environment instance for lane @p lane. */
using EnvFactory =
    std::function<std::unique_ptr<Environment>(std::size_t lane)>;

/**
 * Flat batch-major observation storage for a vectorized rollout:
 * one contiguous allocation holding [lane][agent][dim], so a K-lane
 * batch is a single cache-friendly streaming write instead of
 * K * numAgents separate heap vectors. Lane blocks are laneStride
 * elements apart and agent a's slice starts at agentOffsets[a]
 * within its lane block, which also makes each lane's region
 * disjoint — parallel lane stepping writes without synchronization.
 */
struct ObsBatch
{
    /** numLanes() * laneStride elements, lane-major. */
    std::vector<Real> data;
    /**
     * Offset of agent a's observation inside a lane block; has
     * numAgents + 1 entries, the last equal to laneStride.
     */
    std::vector<std::size_t> agentOffsets;
    /** Elements per lane block (sum of per-agent obs dims). */
    std::size_t laneStride = 0;

    std::size_t numLanes() const
    {
        return laneStride == 0 ? 0 : data.size() / laneStride;
    }

    std::size_t agentDim(std::size_t agent) const
    {
        return agentOffsets[agent + 1] - agentOffsets[agent];
    }

    /** Pointer to agent @p agent's observation in lane @p lane. */
    Real *agentObs(std::size_t lane, std::size_t agent)
    {
        return data.data() + lane * laneStride + agentOffsets[agent];
    }
    const Real *agentObs(std::size_t lane, std::size_t agent) const
    {
        return data.data() + lane * laneStride + agentOffsets[agent];
    }
};

/**
 * Flat step output for all lanes: observations plus lane-major
 * [lane][agent] rewards and done flags. Dones are bytes, not
 * vector<bool>, so concurrent lanes never share a word.
 */
struct StepBatch
{
    ObsBatch observations;
    std::vector<Real> rewards;
    std::vector<std::uint8_t> dones;

    Real reward(std::size_t lane, std::size_t agent,
                std::size_t num_agents) const
    {
        return rewards[lane * num_agents + agent];
    }
};

/**
 * A batch of homogeneous environments. All lanes share the same
 * agent count and observation shapes (checked at construction).
 */
class VectorEnvironment
{
  public:
    /**
     * @param factory Called with lane indices 0..count-1; seed each
     *        lane differently inside the factory for decorrelated
     *        rollouts.
     * @param count Number of lanes (>= 1).
     */
    VectorEnvironment(const EnvFactory &factory, std::size_t count);

    std::size_t numLanes() const { return lanes.size(); }
    std::size_t numAgents() const { return lanes.front()->numAgents(); }

    Environment &lane(std::size_t i) { return *lanes[i]; }
    const Environment &lane(std::size_t i) const { return *lanes[i]; }

    /** Reset every lane; returns observations[lane][agent]. */
    std::vector<std::vector<std::vector<Real>>> reset();

    /** Reset one lane only (episode boundary). */
    std::vector<std::vector<Real>> resetLane(std::size_t i);

    /**
     * Step every lane with actions[lane][agent].
     * @return One StepResult per lane.
     */
    std::vector<StepResult>
    step(const std::vector<std::vector<int>> &actions);

    /**
     * Reset every lane into a flat batch-major buffer. A warm call
     * (same @p out reused across calls) performs no heap allocation:
     * the layout is computed once and the data block is overwritten
     * in place.
     */
    void resetInto(ObsBatch &out);

    /**
     * Step every lane into a flat batch. Lanes write disjoint slices
     * of @p out, so the parallel path needs no synchronization and
     * matches the serial path bit-for-bit. Warm calls are
     * allocation-free.
     */
    void stepInto(const std::vector<std::vector<int>> &actions,
                  StepBatch &out);

  private:
    std::vector<std::unique_ptr<Environment>> lanes;
    /** Per-lane StepResult scratch for stepInto (index = lane). */
    std::vector<StepResult> laneStepScratch;
    /** Per-lane observation scratch for resetInto. */
    std::vector<std::vector<std::vector<Real>>> laneObsScratch;

    /** Size @p out's layout and data for this env's shapes. */
    void initLayout(ObsBatch &out) const;
};

} // namespace marlin::env

#endif // MARLIN_ENV_VECTOR_ENV_HH
