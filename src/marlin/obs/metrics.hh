/**
 * @file
 * Always-on metrics registry: counters, gauges and fixed-bucket
 * histograms registered by name.
 *
 * Design constraints, in priority order:
 *
 *  1. Hot-path writes are lock-free and wait-free: a Counter::add is
 *     one relaxed fetch_add on a cache-line-padded per-thread shard,
 *     so replay gathers, kernel shims and health guards can count
 *     unconditionally without perturbing the deterministic training
 *     path (metrics never feed back into any computation).
 *  2. Reads merge the shards, so value() is exact once the writers
 *     have quiesced (e.g. after a parallelFor barrier) and merely
 *     approximate while they run — fine for telemetry.
 *  3. Registration is cold and locked. Instrumentation sites cache
 *     the returned reference in a function-local static, so the name
 *     lookup happens once per site per process.
 *
 * Typical instrumentation site:
 *
 *   static obs::Counter &bytes =
 *       obs::Registry::instance().counter("replay.gather.bytes");
 *   bytes.add(row_bytes);
 */

#ifndef MARLIN_OBS_METRICS_HH
#define MARLIN_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace marlin::obs
{

/** Shards per metric; writers hash their thread tag into one. */
inline constexpr std::size_t metricShards = 16;

/** Monotonically increasing event/volume count. */
class Counter
{
  public:
    /** Add @p n. Lock-free; callable from any thread. */
    void
    add(std::uint64_t n = 1) noexcept
    {
        shards[shardIndex()].v.fetch_add(n,
                                         std::memory_order_relaxed);
    }

    /** Sum over all shards. */
    std::uint64_t
    value() const noexcept
    {
        std::uint64_t total = 0;
        for (const Shard &s : shards)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    const std::string &name() const { return _name; }

    /** Zero all shards (tests / per-run deltas only). */
    void
    reset() noexcept
    {
        for (Shard &s : shards)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    explicit Counter(std::string name) : _name(std::move(name)) {}

    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> v{0};
    };

    static std::size_t shardIndex() noexcept;

    std::string _name;
    std::array<Shard, metricShards> shards{};
};

/** Latest-value metric (replay fill level, active ISA, ...). */
class Gauge
{
  public:
    void
    set(double v) noexcept
    {
        _v.store(v, std::memory_order_relaxed);
    }

    double
    value() const noexcept
    {
        return _v.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return _name; }

    void reset() noexcept { set(0.0); }

  private:
    friend class Registry;
    explicit Gauge(std::string name) : _name(std::move(name)) {}

    std::string _name;
    std::atomic<double> _v{0.0};
};

/**
 * Fixed-bucket histogram with Prometheus "le" semantics: bucket i
 * counts observations v <= upperBound(i); one implicit overflow
 * bucket catches everything above the last bound. Bucket counts are
 * plain relaxed atomics (histograms sit on warm paths, not the
 * kernel-call hot path).
 */
class Histogram
{
  public:
    void observe(double v) noexcept;

    /** Explicit bounds + the overflow bucket. */
    std::size_t numBuckets() const { return counts.size(); }

    /** Upper bound of bucket @p i; +inf for the overflow bucket. */
    double bucketUpperBound(std::size_t i) const;

    std::uint64_t
    bucketCount(std::size_t i) const noexcept
    {
        return counts[i].load(std::memory_order_relaxed);
    }

    std::uint64_t totalCount() const noexcept;

    /**
     * Estimated @p q quantile (0 < q <= 1) with linear
     * interpolation inside the landing bucket, Prometheus
     * histogram_quantile style. Observations in the overflow
     * bucket clamp to the last finite bound; an empty histogram
     * reports 0. Approximate while writers run, like every read.
     */
    double quantile(double q) const noexcept;

    /** Sum of all observed values (CAS loop; exact when quiesced). */
    double
    sum() const noexcept
    {
        return _sum.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return _name; }

    void reset() noexcept;

  private:
    friend class Registry;
    Histogram(std::string name, std::vector<double> bounds);

    std::string _name;
    std::vector<double> bounds; ///< Ascending upper bounds.
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> _sum{0.0};
};

/** One metric's merged state, for telemetry/export. */
struct MetricSample
{
    enum class Kind { Counter, Gauge, Histogram };

    std::string name;
    Kind kind = Kind::Counter;
    /** Counter value or histogram total count. */
    std::uint64_t count = 0;
    /** Gauge value or histogram sum. */
    double value = 0.0;
    /** Histogram only: (upper bound, count) per bucket. */
    std::vector<std::pair<double, std::uint64_t>> buckets;
};

/**
 * Process-wide name -> metric table. References returned by the
 * lookup methods stay valid for the process lifetime; re-registering
 * a name returns the existing metric (fatal on kind mismatch).
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /**
     * @param bounds Ascending bucket upper bounds; required on first
     *        registration, ignored (may be empty) afterwards.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds = {});

    /** Merged view of every registered metric, sorted by name. */
    std::vector<MetricSample> snapshot() const;

    /** Zero every metric (tests and per-run deltas). */
    void resetAll();

  private:
    Registry() = default;

    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

} // namespace marlin::obs

#endif // MARLIN_OBS_METRICS_HH
