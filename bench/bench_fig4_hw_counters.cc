/**
 * @file
 * Figure 4: growth rate of hardware-counter style metrics for the
 * update-all-trainers phase as agents double (3->6, 6->12, 12->24),
 * averaged over MADDPG-style uniform sampling on PP and CN, plus
 * the Section VI-A cache-miss reductions from locality sampling.
 *
 * The paper reads perf counters on a Threadripper 3975WX; we replay
 * the gather address traces through the trace-driven model of that
 * platform (set-associative L1/L2/L3, stream prefetcher, dTLB).
 *   - "memory reads" stands in for the instructions counter (the
 *     sampling phase is load-dominated, so the trends track).
 *   - cache misses = LLC (L3) demand misses, as in perf's
 *     cache-misses event. dTLB load misses map directly.
 *   - iTLB and branch misses are not modeled (no instruction-side
 *     simulation); the paper's growth there mirrors dTLB's.
 *
 * Paper reference: instructions grow 3-4x, cache misses 2.5-4.5x,
 * dTLB load misses 3-4x per agent doubling; locality-aware sampling
 * cuts cache misses by 16.1/21.8/25/29% at 3/6/12/24 agents (PP,
 * n16r64).
 */

#include "common.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

struct CounterSample
{
    double reads = 0;     ///< line-granular demand reads
    double l1Misses = 0;
    double llcMisses = 0;
    double tlbMisses = 0;
};

/**
 * Replay @p updates sampling phases through a fresh hierarchy and
 * return per-update counters.
 */
CounterSample
measure(Task task, std::size_t agents, replay::Sampler &sampler,
        BufferIndex capacity, int updates)
{
    auto shapes = taskShapes(task, agents);
    replay::MultiAgentBuffer buffers(shapes, capacity);
    Rng fill_rng(agents);
    fillSynthetic(buffers, capacity, fill_rng);

    auto preset =
        memsim::makePlatform(memsim::PlatformId::Threadripper3975WX);
    memsim::CacheHierarchy hierarchy(preset.hierarchy);
    Rng rng(17);
    std::vector<replay::AgentBatch> batches;

    for (int u = 0; u < updates; ++u) {
        replay::AccessTrace trace;
        for (std::size_t trainer = 0; trainer < agents; ++trainer) {
            auto plan = sampler.plan(buffers.size(), 1024, rng);
            replay::gatherAllAgents(buffers, plan, batches, &trace);
        }
        memsim::replayTrace(hierarchy, trace, preset.frequencyHz);
    }

    auto stats = hierarchy.stats();
    CounterSample s;
    s.reads = static_cast<double>(stats.lineAccesses) / updates;
    s.l1Misses = static_cast<double>(stats.l1.misses) / updates;
    s.llcMisses = static_cast<double>(stats.l3.misses) / updates;
    s.tlbMisses = static_cast<double>(stats.tlb.misses) / updates;
    return s;
}

void
growthTable(Task task, BufferIndex capacity)
{
    std::printf("\n%s (uniform sampling, capacity %llu)\n",
                taskName(task),
                static_cast<unsigned long long>(capacity));
    std::printf("%-10s %14s %14s %14s %14s\n", "agents",
                "mem reads", "l1 misses", "llc misses",
                "dtlb misses");
    CounterSample prev{};
    for (std::size_t n : {3, 6, 12, 24}) {
        replay::UniformSampler sampler;
        auto s = measure(task, n, sampler, capacity, 2);
        std::printf("%-10zu %14.3g %14.3g %14.3g %14.3g\n", n,
                    s.reads, s.l1Misses, s.llcMisses, s.tlbMisses);
        if (prev.reads > 0) {
            std::printf("%-10s %13.2fx %13.2fx %13.2fx %13.2fx\n",
                        "  growth", s.reads / prev.reads,
                        s.l1Misses / prev.l1Misses,
                        s.llcMisses / prev.llcMisses,
                        s.tlbMisses / prev.tlbMisses);
        }
        prev = s;
    }
}

void
missReductionTable(Task task, BufferIndex capacity)
{
    std::printf("\ncache-miss reduction from locality sampling "
                "(n16,r64), %s\n",
                taskName(task));
    std::printf("%-10s %16s %16s\n", "agents", "l1 miss red(%)",
                "llc miss red(%)");
    for (std::size_t n : {3, 6, 12, 24}) {
        replay::UniformSampler uniform;
        replay::LocalityAwareSampler locality({16, 64});
        auto base = measure(task, n, uniform, capacity, 2);
        auto opt = measure(task, n, locality, capacity, 2);
        std::printf("%-10zu %16.1f %16.1f\n", n,
                    pctReduction(base.l1Misses, opt.l1Misses),
                    pctReduction(base.llcMisses, opt.llcMisses));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig4_hw_counters");
    banner("Figure 4: hardware-counter growth under agent doubling "
           "(trace-driven model)");
    // Fixed capacity across the sweep, as in the paper's 1e6-entry
    // buffer; 2^16 keeps even the 3-agent working set well past L3.
    const BufferIndex capacity = 1 << 16;
    growthTable(Task::PredatorPrey, capacity);
    growthTable(Task::CooperativeNavigation, capacity);
    std::printf("\npaper shape: instructions 3-4x, cache misses "
                "2.5-4.5x, dTLB misses 3-4x\nper doubling "
                "(iTLB/branch not modeled - instruction side).\n");

    missReductionTable(Task::PredatorPrey, capacity);
    std::printf("\npaper reference: 16.1/21.8/25/29%% cache-miss "
                "reduction at 3/6/12/24 agents.\n");
    return 0;
}
