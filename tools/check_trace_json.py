#!/usr/bin/env python3
"""Validate a MARLin trace export (--trace output) as Chrome/Perfetto
trace_event JSON.

Checks the properties a trace viewer needs and the accounting MARLin
promises:

  * the document parses and carries a non-empty "traceEvents" array;
  * every event is a complete span ("ph":"X") with string name/cat,
    numeric non-negative ts/dur (microseconds) and integer pid/tid;
  * "otherData" reports capacity, storedEvents and droppedEvents, and
    storedEvents matches the array length — the overflow contract is
    that truncation is counted, never silent;
  * optionally (--require-phases) at least one event from each named
    category is present, so CI can assert the training phases,
    thread-pool chunks or checkpoint writes actually landed.

Usage: check_trace_json.py FILE [--require-cat CAT ...]
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("file")
    parser.add_argument("--require-cat", action="append", default=[],
                        help="fail unless >=1 event has this category")
    parser.add_argument("--allow-empty", action="store_true",
                        help="accept a trace with zero events (e.g. a "
                             "kernel micro-bench records no spans)")
    args = parser.parse_args()

    try:
        with open(args.file, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.file}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{args.file} has no traceEvents array")
    if not events and not args.allow_empty:
        fail(f"{args.file} has zero trace events")

    cats = set()
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if e.get("ph") != "X":
            fail(f"{where}: expected complete span ph 'X', "
                 f"got {e.get('ph')!r}")
        for key in ("name", "cat"):
            if not isinstance(e.get(key), str) or not e[key]:
                fail(f"{where}: missing or empty {key!r}")
        for key in ("ts", "dur"):
            v = e.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{where}: {key!r} is not a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                fail(f"{where}: {key!r} is not an integer")
        cats.add(e["cat"])

    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("missing otherData accounting block")
    for key in ("capacity", "storedEvents", "droppedEvents"):
        v = other.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"otherData.{key} is not a non-negative integer")
    if other["storedEvents"] != len(events):
        fail(f"otherData.storedEvents {other['storedEvents']} != "
             f"{len(events)} events in the array")
    if other["storedEvents"] > other["capacity"]:
        fail("storedEvents exceeds capacity")

    for cat in args.require_cat:
        if cat not in cats:
            fail(f"no event with category {cat!r} "
                 f"(saw: {sorted(cats)})")

    print(f"ok: {len(events)} event(s), "
          f"{other['droppedEvents']} dropped, categories: "
          f"{', '.join(sorted(cats))}")


if __name__ == "__main__":
    main()
