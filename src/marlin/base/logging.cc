#include "marlin/base/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "marlin/base/instant.hh"
#include "marlin/base/string_utils.hh"

namespace marlin
{

namespace
{

LogLevel global_level = LogLevel::Inform;

void
emit(const char *tag, const char *fmt, va_list args)
{
    std::string msg = vcsprintf(fmt, args);
    if (global_level >= LogLevel::Debug) {
        // At Debug verbosity every line carries seconds since the
        // shared process epoch and the compact thread tag — the same
        // timebase and tids the trace exporter stamps on spans, so
        // log lines correlate with trace slices directly.
        std::fprintf(stderr, "[%12.6f T%02u] %s: %s\n",
                     static_cast<double>(base::nowNsSinceStart()) /
                         1e9,
                     base::currentThreadTag(), tag, msg.c_str());
    } else {
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (global_level < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (global_level < LogLevel::Inform)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (global_level < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug", fmt, args);
    va_end(args);
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "silent")
        return LogLevel::Silent;
    if (name == "fatal")
        return LogLevel::Fatal;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "inform")
        return LogLevel::Inform;
    if (name == "debug")
        return LogLevel::Debug;
    fatal("unknown log level '%s' (expected silent, fatal, warn, "
          "inform or debug)",
          name.c_str());
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Silent: return "silent";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Warn: return "warn";
      case LogLevel::Inform: return "inform";
      case LogLevel::Debug: return "debug";
    }
    return "unknown";
}

} // namespace marlin
