/**
 * @file
 * Optional recording of the memory touches a gather performs, later
 * replayed through the memsim cache hierarchy to regenerate the
 * paper's hardware-counter style results (Figure 4) without perf.
 */

#ifndef MARLIN_REPLAY_ACCESS_TRACE_HH
#define MARLIN_REPLAY_ACCESS_TRACE_HH

#include <cstdint>
#include <vector>

#include "marlin/base/compiler.hh"

namespace marlin::replay
{

/** One contiguous memory read issued by a gather. */
struct MemAccess
{
    std::uintptr_t addr = 0;
    std::uint32_t bytes = 0;
};

/**
 * Append-only access recorder. The gather hot path carries a
 * nullable pointer to one of these; a null pointer costs a single
 * predictable branch per block.
 */
class AccessTrace
{
  public:
    /** Record a read of @p bytes at @p p. */
    MARLIN_ALWAYS_INLINE void
    record(const void *p, std::size_t bytes)
    {
        accesses.push_back(
            {reinterpret_cast<std::uintptr_t>(p),
             static_cast<std::uint32_t>(bytes)});
    }

    const std::vector<MemAccess> &entries() const { return accesses; }
    std::size_t size() const { return accesses.size(); }

    /** Total bytes across all recorded accesses. */
    std::uint64_t totalBytes() const;

    void clear() { accesses.clear(); }
    void reserve(std::size_t n) { accesses.reserve(n); }

  private:
    std::vector<MemAccess> accesses;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_ACCESS_TRACE_HH
