/**
 * @file
 * Figure 6: MADDPG Predator-Prey scalability from 3 to 48 agents —
 * total (extrapolated) training seconds and the phase shares.
 *
 * Paper reference: totals [3366s, 8505s, 23406s, 82769s, 302825s]
 * for N = 3/6/12/24/48; update-all-trainers share 34->87%.
 */

#include "hybrid_model.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig6_scalability");
    banner("Figure 6: MADDPG predator-prey scalability to 48 agents");
    const double paper_totals[] = {3366, 8505, 23406, 82769, 302825};
    const double paper_update_pct[] = {34, 46, 61, 76, 87};

    std::printf("%-8s %13s %13s %11s %11s %10s %10s\n", "agents",
                "model(s)", "paper(s)", "update(%)", "paper(%)",
                "action(%)", "other(%)");
    std::size_t row = 0;
    const BufferIndex capacity =
        sweepCapacity(Task::PredatorPrey, 48, 640);
    for (std::size_t n : {3, 6, 12, 24, 48}) {
        EstimateContext ctx;
        auto est = estimatePhases(Algo::Maddpg, Task::PredatorPrey, n,
                                  memsim::makeRtx3090(), ctx,
                                  capacity);
        Schedule sched;
        const auto split = topSplit(est, sched);
        std::printf("%-8zu %13.0f %13.0f %11.1f %11.0f %10.1f "
                    "%10.1f\n",
                    n, endToEndSeconds(est, sched),
                    paper_totals[row], split.updatePct,
                    paper_update_pct[row], split.actionPct,
                    split.otherPct);
        ++row;
    }
    std::printf("\npaper shape: exponential total-time growth; the "
                "update-all-trainers\nshare expands from ~34%% at 3 "
                "agents to ~87%% at 48 agents.\n");
    return 0;
}
