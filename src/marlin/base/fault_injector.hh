/**
 * @file
 * Deterministic fault injection for crash-safety testing.
 *
 * Long MARL runs die in exactly three interesting ways: the process
 * is killed mid-step, a checkpoint write fails partway through, or
 * bytes of a checkpoint rot on disk. FaultInjector reproduces all
 * three on demand, seeded so a failing test replays bit-identically:
 *
 *  - kill-at-step-N: the training loop polls onStep() once per
 *    environment step and abandons the run when the armed step is
 *    reached (equivalent to SIGKILL as far as on-disk state goes);
 *  - fail-the-Kth-write: FailpointStreambuf wraps a checkpoint
 *    stream and fails write K and everything after it, like a disk
 *    going away mid-checkpoint;
 *  - corrupt-byte-M: corruptFileByte() flips bits of a file in
 *    place, exercising the CRC detection and latest->previous
 *    fallback paths.
 */

#ifndef MARLIN_BASE_FAULT_INJECTOR_HH
#define MARLIN_BASE_FAULT_INJECTOR_HH

#include <streambuf>
#include <string>

#include "marlin/base/random.hh"

namespace marlin::base
{

/** Seeded, reproducible source of injected faults. */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 0) : rng(seed) {}

    /** Arm a simulated kill at absolute environment step @p step. */
    void
    armKillAtStep(StepCount step)
    {
        killStep = step;
        killArmed = true;
    }

    /**
     * Arm a kill at a step drawn uniformly from [lo, hi] using the
     * injector's own seeded stream.
     * @return The chosen step, for test logging.
     */
    StepCount armKillAtRandomStep(StepCount lo, StepCount hi);

    /**
     * Training-loop hook, called once per environment step.
     * @return true exactly when the armed kill step is reached (the
     *         caller must then abandon the run without cleanup).
     */
    bool onStep();

    /** Steps observed so far (survives disarm). */
    StepCount stepsObserved() const { return steps; }

    /** Arm a failure of the @p kth stream write (1-based). */
    void
    armFailAtWrite(std::uint64_t kth)
    {
        failWrite = kth;
        failArmed = true;
    }

    /**
     * Stream-wrapper hook, called before every buffered write.
     * @return false when the write (and, sticky, every later one)
     *         must fail.
     */
    bool onWrite();

    std::uint64_t writesObserved() const { return writes; }

    /** Disarm all pending faults (counters keep running). */
    void
    disarm()
    {
        killArmed = false;
        failArmed = false;
    }

  private:
    Rng rng;
    StepCount killStep = 0;
    bool killArmed = false;
    StepCount steps = 0;
    std::uint64_t failWrite = 0;
    bool failArmed = false;
    bool writeDead = false;
    std::uint64_t writes = 0;
};

/**
 * XOR one byte of @p path at @p offset with @p mask in place.
 * @return false when the file cannot be opened or is too short.
 */
bool corruptFileByte(const std::string &path, std::uint64_t offset,
                     unsigned char mask = 0xff);

/**
 * streambuf decorator that consults a FaultInjector before every
 * write. After the armed write fails the buffer stays dead, so the
 * wrapped stream's badbit reports the failure to the checkpoint
 * writer exactly like a real ENOSPC/EIO would.
 */
class FailpointStreambuf : public std::streambuf
{
  public:
    /**
     * @param inner_buf Destination buffer (not owned).
     * @param injector Fault source (not owned; may be null = passthrough).
     */
    FailpointStreambuf(std::streambuf *inner_buf,
                       FaultInjector *injector_in)
        : inner(inner_buf), injector(injector_in)
    {
    }

  protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char *s, std::streamsize n) override;
    int sync() override;

  private:
    std::streambuf *inner;
    FaultInjector *injector;
};

} // namespace marlin::base

#endif // MARLIN_BASE_FAULT_INJECTOR_HH
