/**
 * @file
 * The 2D particle world: double-integrator agents with soft contact
 * forces, matching the dynamics of OpenAI's multiagent-particle-envs.
 */

#ifndef MARLIN_ENV_WORLD_HH
#define MARLIN_ENV_WORLD_HH

#include <vector>

#include "marlin/env/entity.hh"

namespace marlin::env
{

/** Integration and contact parameters (MPE defaults). */
struct WorldConfig
{
    Real dt = Real(0.1);
    Real damping = Real(0.25);
    Real contactForce = Real(100);
    Real contactMargin = Real(0.001);
};

/**
 * Container for all entities plus the physics step.
 *
 * Agents apply action forces; colliding entity pairs exchange a soft
 * penetration-based repulsion; velocities are damped, capped at each
 * agent's maxSpeed, and integrated explicitly.
 */
class World
{
  public:
    explicit World(WorldConfig config = {}) : _config(config) {}

    const WorldConfig &config() const { return _config; }

    std::vector<Agent> agents;
    std::vector<Entity> landmarks;

    std::size_t numAgents() const { return agents.size(); }
    std::size_t numLandmarks() const { return landmarks.size(); }

    /** Advance the physics by one dt using current action forces. */
    void step();

    /**
     * True when entities @p a and @p b overlap (distance below the
     * sum of radii) and both are collidable.
     */
    static bool isCollision(const Entity &a, const Entity &b);

    /**
     * Soft contact force exerted on @p a by @p b
     * (equal and opposite on b).
     */
    Vec2 contactForceOn(const Entity &a, const Entity &b) const;

  private:
    WorldConfig _config;
    /**
     * Per-step net-force accumulator, retained across steps so the
     * physics step performs no heap allocation once warm.
     */
    std::vector<Vec2> forces;
};

} // namespace marlin::env

#endif // MARLIN_ENV_WORLD_HH
