/**
 * @file
 * Replay of gather access traces through the cache hierarchy — the
 * bridge between the replay samplers and the Figure-4 style
 * hardware-counter results.
 */

#ifndef MARLIN_MEMSIM_TRACE_REPLAY_HH
#define MARLIN_MEMSIM_TRACE_REPLAY_HH

#include "marlin/memsim/hierarchy.hh"
#include "marlin/replay/access_trace.hh"

namespace marlin::memsim
{

/** Counter summary of one trace replay. */
struct TraceReplayResult
{
    HierarchyStats stats;
    std::uint64_t traceEntries = 0;
    std::uint64_t bytes = 0;
    /** Estimated memory-subsystem seconds at the given frequency. */
    double memorySeconds = 0;
};

/**
 * Feed every access of @p trace through @p hierarchy (which keeps
 * its warm state across calls so multi-iteration traces model
 * steady-state reuse).
 *
 * @param frequency_hz Converts cycle counts into memorySeconds.
 */
TraceReplayResult replayTrace(CacheHierarchy &hierarchy,
                              const replay::AccessTrace &trace,
                              double frequency_hz = 3.5e9);

} // namespace marlin::memsim

#endif // MARLIN_MEMSIM_TRACE_REPLAY_HH
