/**
 * @file
 * Figure 12: mini-batch sampling (MBS) and total training time (TT)
 * savings on an Intel i7-9700K, CPU only, MADDPG predator-prey.
 *
 * Paper reference: MBS savings 33.9-38.4%, TT savings 9.9-18.5%
 * (growing with agents); the CPU-only platform out-gains the
 * GPU-equipped one (Figure 13) because no PCIe/launch overhead
 * dilutes the sampling share.
 */

#include "crossval_common.hh"

int
main(int argc, char **argv)
{
    using namespace marlin::bench;
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig12_cpu_crossval");
    banner("Figure 12: cross-validation on i7-9700K (CPU only, "
           "simulated)");
    printCrossval("i7-9700K (CPU only)", false);
    std::printf("\npaper shape: MBS savings ~34-38%% flat; TT "
                "savings grow 9.9%% -> 18.5%%\nwith the agent "
                "count.\n");
    return 0;
}
