/**
 * @file
 * Round-trip latency of the policy-serving front end over loopback
 * TCP: one closed-loop client against a live Server, swept over the
 * micro-batcher's deadline (0, 200 and 1000 us). The deadline
 * trades per-request latency for batching opportunity — with one
 * client there is nothing to coalesce, so this bench isolates the
 * front end's fixed cost (framing, epoll turn, batch bookkeeping,
 * one-row forward) and the price of a nonzero deadline.
 *
 *   ./bench_serve_latency [--benchmark_filter=...]
 *
 * Reports requests_per_s; the multi-connection throughput picture
 * comes from marlin_loadgen, which this bench does not duplicate.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "common.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

constexpr std::size_t kAgents = 3;

/** A live loopback server plus the trainer shell behind it. */
struct ServerFixture
{
    explicit ServerFixture(std::uint64_t deadline_us)
    {
        core::TrainConfig config;
        config.seed = 11;
        trainer = makeTrainer(
            Algo::Maddpg,
            taskObsDims(Task::CooperativeNavigation, kAgents), 5,
            config, uniformFactory());
        policy.adoptFrom(*trainer);

        serve::ServeConfig scfg;
        scfg.port = 0;
        scfg.batchDeadlineUs = deadline_us;
        server = std::make_unique<serve::Server>(policy, scfg);
        if (!server->start())
            fatal("bench server failed to bind");
        loop = std::thread([this] { server->run(); });
    }

    ~ServerFixture()
    {
        server->stop();
        loop.join();
    }

    std::unique_ptr<core::CtdeTrainerBase> trainer;
    serve::ServePolicy policy;
    std::unique_ptr<serve::Server> server;
    std::thread loop;
};

void
runServeRoundTrip(benchmark::State &state, std::uint64_t deadline_us)
{
    ServerFixture fixture(deadline_us);
    serve::BlockingClient client;
    if (!client.connect("127.0.0.1", fixture.server->port(), 2000))
        fatal("bench client failed to connect");

    Rng rng(17);
    const std::size_t obs_dim = fixture.policy.obsDim(0);
    std::vector<Real> obs(obs_dim);
    std::vector<Real> actions;
    serve::Status status = serve::Status::Ok;
    std::uint64_t requests = 0;
    for (auto _ : state)
    {
        for (auto &v : obs)
            v = rng.uniformf();
        if (!client.request(0, obs.data(), obs.size(), actions,
                            status) ||
            status != serve::Status::Ok) {
            state.SkipWithError("request failed");
            break;
        }
        benchmark::DoNotOptimize(actions.data());
        ++requests;
    }
    state.counters["requests_per_s"] = benchmark::Counter(
        static_cast<double>(requests), benchmark::Counter::kIsRate);
}

} // namespace

int
main(int argc, char **argv)
{
    marlin::bench::initThreads(argc, argv);
    marlin::bench::initIsa(argc, argv);
    marlin::bench::initLogLevel(argc, argv);
    marlin::bench::ObsSession obs(argc, argv,
                                  "bench_serve_latency");
    marlin::bench::banner("serve_latency");

    for (const std::uint64_t deadline_us : {0, 200, 1000})
    {
        const std::string name =
            "BM_ServeRoundTrip/deadline_us:" +
            std::to_string(deadline_us);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [deadline_us](benchmark::State &state) {
                runServeRoundTrip(state, deadline_us);
            })
            ->Unit(benchmark::kMicrosecond)
            ->UseRealTime();
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
