/**
 * @file
 * Transition data layout reorganization (paper Section IV-B2): a
 * key-value view of the replay data where the key is the timestep
 * index and the value holds *all* agents' transition records
 * back-to-back. One pass over the mini-batch indices then fetches
 * every agent's data — O(m) record lookups instead of the baseline
 * O(N*m) — at the cost of an upfront reshaping pass.
 */

#ifndef MARLIN_REPLAY_INTERLEAVED_STORE_HH
#define MARLIN_REPLAY_INTERLEAVED_STORE_HH

#include <iosfwd>
#include <vector>

#include "marlin/replay/gather.hh"
#include "marlin/replay/replay_store.hh"

namespace marlin::replay
{

/**
 * Interleaved (agent-major within record) replay storage.
 *
 * Record layout for timestep t:
 *   [agent0: obs | act | reward | nextObs | done]
 *   [agent1: obs | act | reward | nextObs | done] ...
 *
 * Records are fixed stride, so record(t) is one address computation
 * and the whole joint transition is a single contiguous read.
 */
class InterleavedReplayStore : public ReplayStore
{
  public:
    /** Layout for the given per-agent shapes and ring capacity. */
    InterleavedReplayStore(std::vector<TransitionShape> shapes,
                           BufferIndex capacity);

    const char *backendName() const override { return "interleaved"; }
    std::size_t numAgents() const override { return shapes.size(); }
    BufferIndex capacity() const override { return _capacity; }
    BufferIndex size() const override { return _size; }
    BufferIndex writeCursor() const override { return pos; }

    const TransitionShape &
    agentShape(std::size_t agent) const override
    {
        return shapes[agent];
    }

    /** Scalars per joint record (sum of per-agent flat sizes). */
    std::size_t recordSize() const { return stride; }

    /** Bytes of the backing store. */
    std::size_t
    storageBytes() const override
    {
        return data.size() * sizeof(Real);
    }

    /**
     * Rebuild the store from per-agent buffers — the data reshaping
     * pass whose cost Figure 14 charges against the layout's gather
     * savings.
     */
    void rebuildFrom(const MultiAgentBuffer &buffers);

    /**
     * Append one joint transition directly (native maintenance mode:
     * pay interleaving cost at insert time instead of reshaping).
     */
    void append(const std::vector<std::vector<Real>> &obs,
                const std::vector<std::vector<Real>> &actions,
                const std::vector<Real> &rewards,
                const std::vector<std::vector<Real>> &next_obs,
                const std::vector<bool> &dones) override;

    /**
     * Append one packed joint record. JointTransitionLayout uses the
     * exact record layout of this store (same field order, same
     * agent bases), so the drain path is a single memcpy.
     */
    void appendRecord(const JointTransitionLayout &layout,
                      const Real *rec) override;

    /**
     * Gather the plan for all agents in a single loop over indices.
     *
     * @param plan Common indices array.
     * @param out One AgentBatch per agent.
     * @param trace Optional access recorder.
     */
    void gatherAllAgents(const IndexPlan &plan,
                         std::vector<AgentBatch> &out,
                         AccessTrace *trace = nullptr) const;

    void gatherAgent(std::size_t agent, const IndexPlan &plan,
                     AgentBatch &out,
                     AccessTrace *trace = nullptr) const override;

    void
    gatherAll(const IndexPlan &plan, std::vector<AgentBatch> &out,
              AccessTrace *trace = nullptr) const override
    {
        gatherAllAgents(plan, out, trace);
    }

    /** Start address of record @p t (valid while the store lives). */
    const Real *record(BufferIndex t) const { return data.data() + t * stride; }

    /** Serialize cursors + the valid record region [0, size). */
    void saveState(std::ostream &os) const override;

    /** Restore state written by saveState on a matching layout. */
    StoreLoadResult loadState(std::istream &is) override;

  private:
    /** Per-agent scalar offsets inside one record. */
    struct AgentLayout
    {
        std::size_t base = 0;    ///< Record-relative scalar offset.
        std::size_t obsDim = 0;
        std::size_t actDim = 0;
    };

    std::vector<TransitionShape> shapes;
    std::vector<AgentLayout> layouts;
    BufferIndex _capacity;
    BufferIndex _size = 0;
    BufferIndex pos = 0;
    std::size_t stride = 0;
    std::vector<Real> data;

    void writeRecord(BufferIndex slot,
                     const std::vector<std::vector<Real>> &obs,
                     const std::vector<std::vector<Real>> &actions,
                     const std::vector<Real> &rewards,
                     const std::vector<std::vector<Real>> &next_obs,
                     const std::vector<bool> &dones);
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_INTERLEAVED_STORE_HH
