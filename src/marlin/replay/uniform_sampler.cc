#include "marlin/replay/uniform_sampler.hh"

#include "marlin/base/logging.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

void
UniformSampler::planInto(BufferIndex buffer_size, std::size_t batch,
                         Rng &rng, IndexPlan &out)
{
    MARLIN_ASSERT(buffer_size > 0, "sampling from an empty buffer");
    static obs::Counter &plans =
        obs::Registry::instance().counter("replay.uniform.plans");
    plans.add();
    out.clear();
    rng.sampleIndicesInto(buffer_size, batch, out.indices);
}

} // namespace marlin::replay
