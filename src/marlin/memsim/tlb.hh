/**
 * @file
 * Data TLB model (set-associative LRU over 4 KiB pages), backing
 * the dTLB-load-miss trend of the paper's Figure 4.
 */

#ifndef MARLIN_MEMSIM_TLB_HH
#define MARLIN_MEMSIM_TLB_HH

#include <cstdint>
#include <vector>

namespace marlin::memsim
{

/** TLB geometry. */
struct TlbConfig
{
    /** Total entries (paper platform: 3072 4K pages). */
    std::uint32_t entries = 3072;
    /** Associativity; entries/ways must be a power of two. */
    std::uint32_t ways = 12;
    std::uint32_t pageBytes = 4096;
};

/** TLB accounting. */
struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }

    double
    missRate() const
    {
        const std::uint64_t a = accesses();
        return a ? static_cast<double>(misses) /
                       static_cast<double>(a)
                 : 0.0;
    }
};

/** Set-associative LRU TLB (O(ways) per access). */
class TlbModel
{
  public:
    explicit TlbModel(TlbConfig config = {});

    const TlbConfig &config() const { return _config; }
    const TlbStats &stats() const { return _stats; }

    /** Translate the page containing @p addr. @return true on hit. */
    bool access(std::uint64_t addr);

    void reset();

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    TlbConfig _config;
    TlbStats _stats;
    std::uint64_t sets;
    std::uint64_t useClock = 0;
    std::vector<Entry> table; ///< sets x ways.
};

} // namespace marlin::memsim

#endif // MARLIN_MEMSIM_TLB_HH
