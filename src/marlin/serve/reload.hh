/**
 * @file
 * Hot checkpoint reload for the serving tier: watches the PR-2
 * latest/previous rotation of a training run and swaps freshly
 * trained actor weights into a live ServePolicy.
 *
 * The reloader runs entirely on the server thread (it is the
 * Server's reload hook), so the swap happens between two batch
 * flushes and never races an in-flight forward. A failed load —
 * torn rotation, CRC mismatch, shape change — is an ordinary
 * recoverable outcome: the server keeps answering with the weights
 * it already has and the failure is logged and counted.
 */

#ifndef MARLIN_SERVE_RELOAD_HH
#define MARLIN_SERVE_RELOAD_HH

#include <cstdint>
#include <string>

#include "marlin/core/checkpoint.hh"
#include "marlin/serve/policy.hh"

namespace marlin::serve
{

/** Reload hook bridging checkpoint dir -> trainer -> ServePolicy. */
class CheckpointReloader
{
  public:
    /**
     * @param dir Checkpoint directory with the latest/previous
     *        rotation.
     * @param trainer Architecture-matched trainer the checkpoint
     *        restores into (its actors are then copied out).
     * @param policy Live serving snapshot to swap.
     */
    CheckpointReloader(std::string dir,
                       core::CtdeTrainerBase &trainer,
                       ServePolicy &policy);

    /**
     * Initial load: resume latest (falling back to previous) and
     * adopt the actors. Returns the load outcome so the binary can
     * decide whether a missing checkpoint is fatal.
     */
    core::CkptResult loadNow();

    /**
     * Server reload hook. @p forced (SIGHUP) reloads
     * unconditionally; a poll tick reloads only when latest.ckpt
     * changed identity (mtime/size/inode) since the last load.
     * Returns true when new weights were swapped in.
     */
    bool maybeReload(bool forced);

    /** Completed reloads (not counting the initial load). */
    std::uint64_t reloads() const { return count; }

  private:
    struct FileIdentity
    {
        std::int64_t mtimeSec = 0;
        std::int64_t mtimeNsec = 0;
        std::uint64_t size = 0;
        std::uint64_t inode = 0;
        bool operator==(const FileIdentity &) const = default;
    };

    bool statLatest(FileIdentity &out) const;

    std::string dir;
    core::CtdeTrainerBase &trainer;
    ServePolicy &policy;
    FileIdentity loadedIdentity;
    std::uint64_t count = 0;
};

} // namespace marlin::serve

#endif // MARLIN_SERVE_RELOAD_HH
