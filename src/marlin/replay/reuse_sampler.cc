#include "marlin/replay/reuse_sampler.hh"

#include <algorithm>
#include <cmath>

#include "marlin/base/logging.hh"
#include "marlin/base/serialize.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

ReuseSampler::ReuseSampler(PerConfig per_config,
                           ReuseConfig reuse_config)
    : PrioritizedSampler(per_config), _reuse(reuse_config)
{
    MARLIN_ASSERT(_reuse.reuseWindow >= 1,
                  "reuse window must be >= 1");
    MARLIN_ASSERT(_reuse.runLength >= 1,
                  "locality run length must be >= 1");
}

void
ReuseSampler::drawFresh(BufferIndex buffer_size, std::size_t batch,
                        Rng &rng)
{
    static obs::Counter &draws =
        obs::Registry::instance().counter("replay.accmer.draws");
    static obs::Counter &references =
        obs::Registry::instance().counter(
            "replay.accmer.references");
    draws.add();

    cached.clear();
    cached.indices.reserve(batch);
    cached.weights.reserve(batch);
    cached.priorityIds.reserve(batch);

    const double total = _tree.total();
    const double n = static_cast<double>(buffer_size);
    // Every reference expands into up to runLength indices, so the
    // loop below draws exactly ceil(batch/runLength) references; the
    // strata must tile the priority mass over THAT count. Stratifying
    // over batch would leave everything past the first refs/batch of
    // the cumulative mass unsampleable.
    const std::size_t refs =
        (batch + _reuse.runLength - 1) / _reuse.runLength;
    const double segment = total / static_cast<double>(refs);

    double max_w = 0.0;
    std::vector<double> &raw = rawWeights;
    raw.clear();
    raw.reserve(batch);
    std::size_t stratum = 0;
    cachedLimit = 0;
    while (cached.indices.size() < batch) {
        // Stratified reference draw from the priority mass, exactly
        // the PER discipline; the run expansion below is what makes
        // the gather locality-dense (AccMER's fusion).
        const double prefix =
            (static_cast<double>(stratum % refs) + rng.uniform()) *
            segment;
        ++stratum;
        const BufferIndex leaf =
            _tree.find(std::min(prefix, total * (1.0 - 1e-12)));
        const double p = _tree.priorityOf(leaf) / total;
        const double w =
            std::pow(1.0 / (n * std::max(p, 1e-12)),
                     static_cast<double>(beta));
        references.add();

        std::size_t run = std::min<std::size_t>(
            _reuse.runLength, batch - cached.indices.size());
        // Clamp the run into the valid region so it stays
        // contiguous in memory.
        BufferIndex anchor = leaf;
        if (anchor + run > buffer_size)
            anchor = buffer_size -
                     std::min<BufferIndex>(run, buffer_size);
        for (std::size_t k = 0; k < run; ++k) {
            cached.indices.push_back(anchor + k);
            cached.priorityIds.push_back(leaf);
            raw.push_back(w);
            max_w = std::max(max_w, w);
        }
        cachedLimit =
            std::max<BufferIndex>(cachedLimit, anchor + run);
    }

    const double inv = max_w > 0.0 ? 1.0 / max_w : 1.0;
    cached.weights.resize(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
        cached.weights[i] = static_cast<Real>(raw[i] * inv);

    if (_config.betaAnneal > Real(0))
        beta = std::min(Real(1), beta + _config.betaAnneal);
}

void
ReuseSampler::planInto(BufferIndex buffer_size, std::size_t batch,
                       Rng &rng, IndexPlan &out)
{
    MARLIN_ASSERT(buffer_size > 0, "sampling from an empty buffer");
    MARLIN_ASSERT(_tree.total() > 0.0,
                  "accmer plan before any onAdd/updatePriorities");
    static obs::Counter &plans =
        obs::Registry::instance().counter("replay.accmer.plans");
    static obs::Counter &reuses =
        obs::Registry::instance().counter("replay.accmer.reuses");
    plans.add();

    const bool cache_usable = planAge > 0 &&
                              planAge < _reuse.reuseWindow &&
                              cached.indices.size() == batch &&
                              cachedLimit <= buffer_size;
    if (!cache_usable) {
        drawFresh(buffer_size, batch, rng);
        planAge = 0;
    } else {
        // Reused plans consume no RNG: the stream advances only on
        // fresh draws, so resume points inside a reuse window stay
        // bit-identical.
        reuses.add();
    }
    ++planAge;

    out.indices = cached.indices;
    out.weights = cached.weights;
    out.priorityIds = cached.priorityIds;
}

void
ReuseSampler::saveState(std::ostream &os) const
{
    PrioritizedSampler::saveState(os);
    writePod<std::uint64_t>(os, planAge);
    writePod<std::uint64_t>(os, cachedLimit);
    writeVector<BufferIndex>(os, cached.indices);
    writeVector<Real>(os, cached.weights);
    writeVector<BufferIndex>(os, cached.priorityIds);
}

void
ReuseSampler::loadState(std::istream &is)
{
    PrioritizedSampler::loadState(is);
    planAge = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    cachedLimit =
        static_cast<BufferIndex>(readPod<std::uint64_t>(is));
    cached.indices = readVector<BufferIndex>(is);
    cached.weights = readVector<Real>(is);
    cached.priorityIds = readVector<BufferIndex>(is);
}

} // namespace marlin::replay
