/**
 * @file
 * Figure 14: mini-batch sampling-phase change from transition data
 * layout reorganization (Section IV-B2), MADDPG, PP and CN, 3-24
 * agents — including the data-reshaping cost — plus the
 * "inter-agent sampling only" speedups the paper quotes
 * (1.36x-9.55x PP, 1.18x-7.03x CN for 3-24 agents).
 *
 * Accounting matches the paper's: the reorganized path must pay,
 * per update, for reshaping the sampled transition window into the
 * key-value record layout before the N trainers gather from it;
 * the baseline path is the per-agent O(N^2 B) gather.
 *
 * Paper reference (sampling-phase change, reshaping included):
 *   PP: -63.8% / -19.7% / +4.8% / +25.8% for 3/6/12/24 agents
 *   CN: -37.1% / -10.35% / +9.3% / +15.23%
 */

#include <cstring>

#include "common.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

/** Baseline: per trainer, gather the plan from all N buffers. */
double
baselineSeconds(const replay::MultiAgentBuffer &buffers,
                replay::Sampler &sampler, int reps)
{
    Rng rng(3);
    std::vector<replay::AgentBatch> batches;
    for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
        auto plan = sampler.plan(buffers.size(), 1024, rng);
        replay::gatherAllAgents(buffers, plan, batches);
    }
    profile::Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
            auto plan = sampler.plan(buffers.size(), 1024, rng);
            replay::gatherAllAgents(buffers, plan, batches);
        }
    }
    return sw.elapsedSeconds() / reps;
}

/**
 * Reorganized path (Section IV-B2): the replay data lives in the
 * interleaved key-value store, maintained by appending each new
 * joint transition (the per-update reshaping cost: updateEvery
 * records); each trainer then gathers its mini-batch with a single
 * O(B) loop whose every lookup reads one contiguous record instead
 * of 3N scattered rows.
 */
struct ReorgTimes
{
    double reshape = 0; ///< Record maintenance per update.
    double gather = 0;  ///< N trainers' O(B) gathers per update.
};

ReorgTimes
reorgSeconds(const replay::MultiAgentBuffer &buffers,
             replay::InterleavedReplayStore &store,
             replay::Sampler &sampler, int reps,
             std::size_t update_every = 100)
{
    const std::size_t n = buffers.numAgents();
    std::vector<replay::TransitionShape> shapes;
    for (std::size_t a = 0; a < n; ++a)
        shapes.push_back(buffers.agent(a).shape());

    Rng rng(3);
    ReorgTimes times;
    std::vector<replay::AgentBatch> batches;

    // Reshaping cost: the interleaving work for the update_every
    // transitions inserted between two updates.
    {
        std::vector<std::vector<Real>> obs(n), act(n), next(n);
        std::vector<Real> rew(n);
        std::vector<bool> done(n, false);
        for (std::size_t a = 0; a < n; ++a) {
            obs[a].assign(shapes[a].obsDim, Real(0.5));
            next[a].assign(shapes[a].obsDim, Real(0.25));
            act[a].assign(shapes[a].actDim, Real(0));
            act[a][0] = Real(1);
        }
        profile::Stopwatch sw;
        for (int rep = 0; rep < reps; ++rep)
            for (std::size_t k = 0; k < update_every; ++k)
                store.append(obs, act, rew, next, done);
        times.reshape = sw.elapsedSeconds() / reps;
    }

    // Gathers: one plan per trainer, O(B) record reads each.
    for (std::size_t t = 0; t < n; ++t) { // Warm-up pass.
        auto plan = sampler.plan(store.size(), 1024, rng);
        store.gatherAllAgents(plan, batches);
    }
    profile::Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t t = 0; t < n; ++t) {
            auto plan = sampler.plan(store.size(), 1024, rng);
            store.gatherAllAgents(plan, batches);
        }
    }
    times.gather = sw.elapsedSeconds() / reps;
    return times;
}

void
runTask(Task task)
{
    std::printf("\nMADDPG / %s\n", taskName(task));
    std::printf("%-8s %12s %12s %12s %14s %16s\n", "agents",
                "base(ms)", "reshape(ms)", "gather(ms)",
                "change(%)", "gather-only(x)");
    for (std::size_t n : {3, 6, 12, 24}) {
        auto shapes = taskShapes(task, n);
        // Both layouts live side by side, so split the budget.
        const BufferIndex capacity =
            scaledCapacity(shapes, 320ull << 20);
        replay::MultiAgentBuffer buffers(shapes, capacity);
        replay::InterleavedReplayStore store(shapes, capacity);
        Rng fill_rng(n);
        fillSynthetic(buffers, capacity, fill_rng, &store);

        replay::UniformSampler sampler;
        const int reps = n >= 12 ? 2 : 4;
        const double base = baselineSeconds(buffers, sampler, reps);
        const auto reorg = reorgSeconds(buffers, store, sampler,
                                        reps);
        const double total = reorg.reshape + reorg.gather;

        std::printf("%-8zu %12.2f %12.2f %12.2f %+14.1f %15.2fx\n",
                    n, base * 1e3, reorg.reshape * 1e3,
                    reorg.gather * 1e3, pctReduction(base, total),
                    base / reorg.gather);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig14_layout_reorg");
    banner("Figure 14: transition data layout reorganization");
    runTask(Task::PredatorPrey);
    runTask(Task::CooperativeNavigation);
    std::printf(
        "\nchange(%%) charges the per-update reshaping cost "
        "(negative = slowdown);\ngather-only(x) is the inter-agent "
        "sampling speedup excluding reshaping.\npaper shape: "
        "slowdown at 3-6 agents turning into a speedup by 12-24\n"
        "(PP: -63.8%% -> +25.8%%); gather-only speedup rises "
        "1.36x -> 9.55x (PP).\n");
    return 0;
}
