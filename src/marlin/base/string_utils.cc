#include "marlin/base/string_utils.hh"

#include <cstdio>

namespace marlin
{

std::string
vcsprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return {};
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

std::vector<std::string>
tokenize(const std::string &s, char delim)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(delim, start);
        if (end == std::string::npos)
            end = s.size();
        if (end > start)
            fields.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return fields;
}

std::string
formatBytes(std::size_t bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    int unit = 0;
    while (value >= 1024.0 && unit < 4) {
        value /= 1024.0;
        ++unit;
    }
    if (unit == 0)
        return csprintf("%zu B", bytes);
    return csprintf("%.2f %s", value, units[unit]);
}

} // namespace marlin
