#include "marlin/base/serialize.hh"

namespace marlin
{

std::int64_t
remainingBytes(std::istream &is)
{
    const std::istream::pos_type here = is.tellg();
    if (here == std::istream::pos_type(-1))
        return -1;
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(here);
    if (end == std::istream::pos_type(-1))
        return -1;
    return static_cast<std::int64_t>(end - here);
}

void
checkLengthPrefix(std::istream &is, std::uint64_t count,
                  std::size_t elem_size, const char *what)
{
    // Reject count * elem_size overflow outright: no honest writer
    // produces a length the address space cannot hold.
    if (elem_size != 0 &&
        count > static_cast<std::uint64_t>(-1) / elem_size) {
        fatal("corrupt checkpoint: %s length prefix %llu overflows",
              what, static_cast<unsigned long long>(count));
    }
    const std::int64_t remaining = remainingBytes(is);
    if (remaining < 0)
        return; // Non-seekable stream: no cheap upper bound exists.
    const std::uint64_t need = count * elem_size;
    if (need > static_cast<std::uint64_t>(remaining)) {
        fatal("corrupt checkpoint: %s length prefix %llu needs %llu "
              "bytes but only %lld remain",
              what, static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(need),
              static_cast<long long>(remaining));
    }
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<std::uint64_t>(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    const auto len = readPod<std::uint64_t>(is);
    checkLengthPrefix(is, len, 1, "string");
    std::string s(len, '\0');
    is.read(s.data(), static_cast<std::streamsize>(len));
    if (!is)
        fatal("checkpoint truncated while reading string of %llu",
              static_cast<unsigned long long>(len));
    return s;
}

void
writeRngState(std::ostream &os, const RngState &state)
{
    for (std::uint64_t word : state.s)
        writePod<std::uint64_t>(os, word);
    writePod<std::uint8_t>(os, state.haveSpare ? 1 : 0);
    writePod<double>(os, state.spare);
}

RngState
readRngState(std::istream &is)
{
    RngState state;
    for (auto &word : state.s)
        word = readPod<std::uint64_t>(is);
    state.haveSpare = readPod<std::uint8_t>(is) != 0;
    state.spare = readPod<double>(is);
    return state;
}

void
writeHeader(std::ostream &os, std::uint32_t magic,
            std::uint32_t version)
{
    writePod(os, magic);
    writePod(os, version);
}

std::uint32_t
readHeader(std::istream &is, std::uint32_t magic,
           std::uint32_t max_version)
{
    const auto file_magic = readPod<std::uint32_t>(is);
    if (file_magic != magic)
        fatal("bad checkpoint magic 0x%08x (expected 0x%08x)",
              file_magic, magic);
    const auto version = readPod<std::uint32_t>(is);
    if (version > max_version)
        fatal("checkpoint version %u is newer than supported %u",
              version, max_version);
    return version;
}

} // namespace marlin
