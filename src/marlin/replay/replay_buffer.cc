#include "marlin/replay/replay_buffer.hh"

#include <cstring>
#include <string>

#include "marlin/base/serialize.hh"
#include "marlin/replay/gather.hh"
#include "marlin/replay/transition_ring.hh"

namespace marlin::replay
{

namespace
{

/** Write the first @p count elements of @p data (no length prefix). */
void
writeRegion(std::ostream &os, const std::vector<Real> &data,
            std::size_t count)
{
    os.write(reinterpret_cast<const char *>(data.data()),
             static_cast<std::streamsize>(count * sizeof(Real)));
}

/** Read @p count elements into the front of @p data. */
void
readRegion(std::istream &is, std::vector<Real> &data,
           std::size_t count)
{
    MARLIN_ASSERT(count <= data.size(),
                  "checkpoint region exceeds buffer storage");
    is.read(reinterpret_cast<char *>(data.data()),
            static_cast<std::streamsize>(count * sizeof(Real)));
    if (!is)
        fatal("checkpoint truncated while reading replay region of "
              "%zu scalars",
              count);
}

/** Non-fatal readPod: false on a short read. */
template <typename T>
bool
tryReadPod(std::istream &is, T &out)
{
    is.read(reinterpret_cast<char *>(&out), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

ReplayBuffer::ReplayBuffer(TransitionShape shape, BufferIndex capacity)
    : _shape(shape), _capacity(capacity)
{
    MARLIN_ASSERT(capacity > 0, "replay buffer capacity must be > 0");
    MARLIN_ASSERT(shape.obsDim > 0 && shape.actDim > 0,
                  "replay buffer needs nonzero obs/act dims");
    obsData.resize(capacity * shape.obsDim);
    actData.resize(capacity * shape.actDim);
    rewData.resize(capacity);
    nextObsData.resize(capacity * shape.obsDim);
    doneData.resize(capacity);
}

void
ReplayBuffer::add(const Real *obs, const Real *action, Real reward,
                  const Real *next_obs, bool done)
{
    std::memcpy(obsData.data() + pos * _shape.obsDim, obs,
                _shape.obsDim * sizeof(Real));
    std::memcpy(actData.data() + pos * _shape.actDim, action,
                _shape.actDim * sizeof(Real));
    rewData[pos] = reward;
    std::memcpy(nextObsData.data() + pos * _shape.obsDim, next_obs,
                _shape.obsDim * sizeof(Real));
    doneData[pos] = done ? Real(1) : Real(0);

    pos = (pos + 1) % _capacity;
    if (_size < _capacity)
        ++_size;
}

void
ReplayBuffer::add(const std::vector<Real> &obs,
                  const std::vector<Real> &action, Real reward,
                  const std::vector<Real> &next_obs, bool done)
{
    MARLIN_ASSERT(obs.size() == _shape.obsDim &&
                      next_obs.size() == _shape.obsDim,
                  "observation size mismatch on add");
    MARLIN_ASSERT(action.size() == _shape.actDim,
                  "action size mismatch on add");
    add(obs.data(), action.data(), reward, next_obs.data(), done);
}

TransitionView
ReplayBuffer::view(BufferIndex idx) const
{
    MARLIN_ASSERT(idx < _size, "transition index out of range");
    return {obsRow(idx), actRow(idx), rewData[idx], nextObsRow(idx),
            doneData[idx]};
}

std::size_t
ReplayBuffer::storageBytes() const
{
    return (obsData.size() + actData.size() + rewData.size() +
            nextObsData.size() + doneData.size()) *
           sizeof(Real);
}

MultiAgentBuffer::MultiAgentBuffer(std::vector<TransitionShape> shapes,
                                   BufferIndex capacity)
    : _capacity(capacity)
{
    MARLIN_ASSERT(!shapes.empty(),
                  "MultiAgentBuffer needs at least one agent");
    buffers.reserve(shapes.size());
    for (const TransitionShape &s : shapes)
        buffers.emplace_back(s, capacity);
}

BufferIndex
MultiAgentBuffer::size() const
{
    return buffers.front().size();
}

void
MultiAgentBuffer::append(const std::vector<std::vector<Real>> &obs,
                         const std::vector<std::vector<Real>> &actions,
                         const std::vector<Real> &rewards,
                         const std::vector<std::vector<Real>> &next_obs,
                         const std::vector<bool> &dones)
{
    const std::size_t n = buffers.size();
    MARLIN_ASSERT(obs.size() == n && actions.size() == n &&
                      rewards.size() == n && next_obs.size() == n &&
                      dones.size() == n,
                  "per-agent vectors must match agent count");
    for (std::size_t i = 0; i < n; ++i) {
        buffers[i].add(obs[i], actions[i], rewards[i], next_obs[i],
                       dones[i]);
    }
}

void
MultiAgentBuffer::appendRecord(const JointTransitionLayout &layout,
                               const Real *rec)
{
    MARLIN_ASSERT(layout.agents.size() == buffers.size(),
                  "drain layout does not match agent count");
    for (std::size_t i = 0; i < buffers.size(); ++i) {
        const JointTransitionLayout::AgentBlock &b =
            layout.agents[i];
        buffers[i].add(rec + b.obs, rec + b.act, rec[b.reward],
                       rec + b.nextObs, rec[b.done] != Real(0));
    }
}

void
MultiAgentBuffer::gatherAgent(std::size_t agent,
                              const IndexPlan &plan, AgentBatch &out,
                              AccessTrace *trace) const
{
    gatherAgentBatch(buffers[agent], plan, out, trace);
}

void
MultiAgentBuffer::gatherAll(const IndexPlan &plan,
                            std::vector<AgentBatch> &out,
                            AccessTrace *trace) const
{
    gatherAllAgents(*this, plan, out, trace);
}

std::size_t
MultiAgentBuffer::storageBytes() const
{
    std::size_t total = 0;
    for (const ReplayBuffer &b : buffers)
        total += b.storageBytes();
    return total;
}

void
ReplayBuffer::saveState(std::ostream &os) const
{
    writePod<std::uint64_t>(os, _shape.obsDim);
    writePod<std::uint64_t>(os, _shape.actDim);
    writePod<std::uint64_t>(os, _capacity);
    writePod<std::uint64_t>(os, _size);
    writePod<std::uint64_t>(os, pos);
    // Valid transitions always occupy slots [0, size): the ring
    // cursor wraps only once every slot has been written.
    writeRegion(os, obsData, _size * _shape.obsDim);
    writeRegion(os, actData, _size * _shape.actDim);
    writeRegion(os, rewData, _size);
    writeRegion(os, nextObsData, _size * _shape.obsDim);
    writeRegion(os, doneData, _size);
}

StoreLoadResult
ReplayBuffer::loadState(std::istream &is)
{
    // Geometry gate: shape AND capacity must match the constructed
    // buffer before any data region is read. Capacity in particular
    // used to slip through to downstream shape checks; a buffer
    // restored at the wrong capacity would corrupt ring arithmetic
    // even when every serialized slot happens to fit.
    std::uint64_t obs_dim = 0, act_dim = 0, capacity = 0;
    if (!tryReadPod(is, obs_dim) || !tryReadPod(is, act_dim) ||
        !tryReadPod(is, capacity))
        return StoreLoadResult::fail(
            StoreLoadError::Truncated,
            "replay buffer header truncated");
    if (obs_dim != _shape.obsDim || act_dim != _shape.actDim)
        return StoreLoadResult::fail(
            StoreLoadError::ShapeMismatch,
            "replay checkpoint shape (" + std::to_string(obs_dim) +
                ", " + std::to_string(act_dim) +
                ") does not match buffer (" +
                std::to_string(_shape.obsDim) + ", " +
                std::to_string(_shape.actDim) + ")");
    if (capacity != _capacity)
        return StoreLoadResult::fail(
            StoreLoadError::ShapeMismatch,
            "replay checkpoint capacity " +
                std::to_string(capacity) +
                " does not match buffer capacity " +
                std::to_string(_capacity));
    std::uint64_t size = 0, cursor = 0;
    if (!tryReadPod(is, size) || !tryReadPod(is, cursor))
        return StoreLoadResult::fail(
            StoreLoadError::Truncated,
            "replay buffer cursors truncated");
    if (size > _capacity || cursor >= _capacity)
        return StoreLoadResult::fail(
            StoreLoadError::ShapeMismatch,
            "replay checkpoint cursors (size " +
                std::to_string(size) + ", pos " +
                std::to_string(cursor) + ") exceed capacity " +
                std::to_string(_capacity));
    _size = size;
    pos = cursor;
    readRegion(is, obsData, _size * _shape.obsDim);
    readRegion(is, actData, _size * _shape.actDim);
    readRegion(is, rewData, _size);
    readRegion(is, nextObsData, _size * _shape.obsDim);
    readRegion(is, doneData, _size);
    return StoreLoadResult::ok();
}

void
MultiAgentBuffer::saveState(std::ostream &os) const
{
    writePod<std::uint64_t>(os, buffers.size());
    for (const ReplayBuffer &b : buffers)
        b.saveState(os);
}

StoreLoadResult
MultiAgentBuffer::loadState(std::istream &is)
{
    std::uint64_t count = 0;
    if (!tryReadPod(is, count))
        return StoreLoadResult::fail(
            StoreLoadError::Truncated,
            "replay checkpoint agent count truncated");
    if (count != buffers.size())
        return StoreLoadResult::fail(
            StoreLoadError::ShapeMismatch,
            "replay checkpoint has " + std::to_string(count) +
                " agents, buffer set has " +
                std::to_string(buffers.size()));
    for (ReplayBuffer &b : buffers) {
        const StoreLoadResult result = b.loadState(is);
        if (!result)
            return result;
    }
    return StoreLoadResult::ok();
}

} // namespace marlin::replay
