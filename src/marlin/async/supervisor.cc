#include "marlin/async/supervisor.hh"

#include <chrono>
#include <thread>

#include "marlin/base/logging.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::async
{

Supervisor::Supervisor(SupervisorConfig config_in,
                       RunControl &control_in,
                       base::FaultInjector *injector_in)
    : config(config_in), control(control_in), injector(injector_in)
{
    if (config.degradeAfterMs == 0)
        config.degradeAfterMs = 4 * config.watchdogDeadlineMs;
    if (config.pollMs == 0)
        config.pollMs = 1;
}

void
Supervisor::addActor(std::string name, ActorRunner *runner,
                     replay::TransitionRing *ring)
{
    auto slot = std::make_unique<ActorSlot>();
    slot->name = std::move(name);
    slot->runner = runner;
    slot->ring = ring;
    slot->backoffMs =
        config.restartBackoffMs > 0 ? config.restartBackoffMs : 1;
    runner->setHeartbeat(&slot->heartbeat);
    if (injector != nullptr)
        runner->setFaultInjector(injector);
    actors.push_back(std::move(slot));
}

void
Supervisor::setLearner(std::string name, LearnerRunner *runner)
{
    learnerName = std::move(name);
    learner = runner;
    learner->setHeartbeat(&learnerHeartbeat);
    learner->setSupervisorStats(&_stats);
    if (injector != nullptr)
        learner->setFaultInjector(injector);
}

void
Supervisor::start()
{
    MARLIN_ASSERT(learner != nullptr,
                  "supervisor needs a learner before start()");
    learnerThread = std::make_unique<base::WorkerThread>(
        learnerName, [this] { learner->run(); });
    for (auto &slot : actors)
    {
        // Seed the heartbeat so a slow thread spawn does not read
        // as a stall.
        slot->heartbeat.beat();
        slot->thread = std::make_unique<base::WorkerThread>(
            slot->name, [runner = slot->runner] { runner->run(); });
    }
}

void
Supervisor::handleActorExit(ActorSlot &slot)
{
    slot.thread->join();
    if (!slot.thread->failed())
    {
        // Clean exit: the runner retired itself on its way out.
        slot.settled = true;
        return;
    }

    warn("supervisor: actor %s died: %s", slot.name.c_str(),
         slot.thread->errorMessage().c_str());
    // The join is the happens-before edge that makes it safe to
    // touch the dead producer's state from here: return its
    // in-flight episode claims and flush what it staged but never
    // published, so the learner drains every committed record.
    slot.runner->abandonActiveEpisodes();
    slot.ring->publish();

    const bool runOver = control.done() ||
                         control.stop.load(std::memory_order_acquire);
    if (!runOver && slot.restarts < config.maxRestarts)
    {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(slot.backoffMs));
        slot.backoffMs *= 2;
        ++slot.restarts;
        _stats.restarts.fetch_add(1, std::memory_order_relaxed);
        slot.heartbeat.beat();
        inform("supervisor: restarting actor %s (attempt %zu/%zu)",
               slot.name.c_str(), slot.restarts,
               config.maxRestarts);
        slot.thread = std::make_unique<base::WorkerThread>(
            slot.name, [runner = slot.runner] { runner->run(); });
        return;
    }

    // Restart budget exhausted (or the run is over anyway):
    // degrade — the fleet continues with one fewer actor and the
    // reclaim pool routes this actor's episodes to healthy peers.
    if (!runOver)
    {
        slot.degraded = true;
        ++degradedActors;
        _stats.degradations.fetch_add(1, std::memory_order_relaxed);
        warn("supervisor: actor %s degraded after %zu restarts",
             slot.name.c_str(), slot.restarts);
    }
    slot.runner->retireOnce();
    slot.settled = true;
}

void
Supervisor::checkActorStall(ActorSlot &slot)
{
    if (config.watchdogDeadlineMs == 0 ||
        slot.heartbeat.lastBeatNs() == 0)
        return;
    const std::uint64_t sinceMs =
        slot.heartbeat.nsSinceBeat() / 1000000;
    if (sinceMs <= config.watchdogDeadlineMs)
    {
        slot.tripped = false; // Recovered; re-arm the trip latch.
        return;
    }
    if (!slot.tripped)
    {
        slot.tripped = true;
        _stats.watchdogTrips.fetch_add(1, std::memory_order_relaxed);
        warn("supervisor: watchdog trip — actor %s silent for "
             "%llu ms (deadline %llu ms)",
             slot.name.c_str(),
             static_cast<unsigned long long>(sinceMs),
             static_cast<unsigned long long>(
                 config.watchdogDeadlineMs));
    }
    if (!slot.degraded && sinceMs > config.degradeAfterMs)
    {
        // Cannot restart a thread that never exits, and its lanes
        // are off-limits while it lives: abort + force-retire. The
        // actor abandons its episodes itself when (if) it wakes.
        slot.degraded = true;
        ++degradedActors;
        _stats.degradations.fetch_add(1, std::memory_order_relaxed);
        warn("supervisor: degrading stalled actor %s (silent for "
             "%llu ms)",
             slot.name.c_str(),
             static_cast<unsigned long long>(sinceMs));
        slot.runner->requestAbort();
        slot.runner->retireOnce();
    }
}

void
Supervisor::superviseUntilDone()
{
    while (true)
    {
        if (!learnerSettled && learnerThread->finished())
        {
            learnerThread->join();
            learnerSettled = true;
            if (learnerThread->failed())
            {
                _learnerFailed = true;
                _learnerError = learnerThread->errorMessage();
                _stats.learnerFailures.fetch_add(
                    1, std::memory_order_relaxed);
                warn("supervisor: learner %s died: %s — stopping "
                     "the run (the last periodic checkpoint is the "
                     "recovery path)",
                     learnerName.c_str(), _learnerError.c_str());
                // Trainer state is of unknown integrity: halt the
                // fleet, write nothing.
                control.stop.store(true, std::memory_order_release);
            }
        }

        bool allSettled = learnerSettled;
        for (auto &slot : actors)
        {
            if (slot->settled)
                continue;
            if (slot->thread->finished())
                handleActorExit(*slot);
            else
                checkActorStall(*slot);
            if (!slot->settled)
                allSettled = false;
        }
        if (pollHook)
            pollHook();
        if (allSettled)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config.pollMs));
    }
    publishObsCounters();
}

void
Supervisor::publishObsCounters() const
{
    auto &registry = obs::Registry::instance();
    registry.counter("supervisor.restarts")
        .add(_stats.restarts.load(std::memory_order_relaxed));
    registry.counter("supervisor.degradations")
        .add(_stats.degradations.load(std::memory_order_relaxed));
    registry.counter("supervisor.watchdog_trips")
        .add(_stats.watchdogTrips.load(std::memory_order_relaxed));
    registry.counter("supervisor.quarantined")
        .add(_stats.quarantined.load(std::memory_order_relaxed));
    registry.counter("supervisor.learner_failures")
        .add(_stats.learnerFailures.load(std::memory_order_relaxed));
    if (injector != nullptr)
    {
        for (std::size_t k = 0; k < base::numFaultKinds; ++k)
        {
            const auto kind = static_cast<base::FaultKind>(k);
            const std::uint64_t count = injector->tripCount(kind);
            if (count > 0)
                registry
                    .counter(std::string("fault.") +
                             base::faultKindName(kind))
                    .add(count);
        }
    }
}

} // namespace marlin::async
