/**
 * @file
 * Table I: end-to-end training time for MADDPG and MATD3 with 3-24
 * agents, Predator-Prey and Cooperative Navigation, 60,000 episodes.
 *
 * CPU phases are measured on this machine; GPU network phases use
 * the RTX 3090 device model (see hybrid_model.hh). The table prints
 * the extrapolated 60k-episode totals next to the paper's numbers;
 * the claim under reproduction is the *scaling shape* (superlinear
 * growth in the number of agents and PP ~1.5x slower than CN), not
 * the absolute seconds of the authors' testbed.
 */

#include "hybrid_model.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

struct PaperRow
{
    std::size_t agents;
    double paperSeconds;
};

void
runConfig(Algo algo, Task task, const std::vector<PaperRow> &paper)
{
    std::printf("\n%s / %s\n", algoName(algo), taskName(task));
    std::printf("%-8s %14s %14s %12s %12s\n", "agents", "model(s)",
                "paper(s)", "growth(x)", "paper(x)");
    double prev_model = 0, prev_paper = 0;
    const BufferIndex capacity = sweepCapacity(task, 24);
    for (const PaperRow &row : paper) {
        EstimateContext ctx;
        auto est = estimatePhases(algo, task, row.agents,
                                  memsim::makeRtx3090(), ctx,
                                  capacity);
        Schedule sched;
        const double total = endToEndSeconds(est, sched);
        std::printf("%-8zu %14.0f %14.0f %12s %12s\n", row.agents,
                    total, row.paperSeconds,
                    prev_model > 0
                        ? csprintf("%.2f", total / prev_model).c_str()
                        : "-",
                    prev_paper > 0
                        ? csprintf("%.2f",
                                   row.paperSeconds / prev_paper)
                              .c_str()
                        : "-");
        prev_model = total;
        prev_paper = row.paperSeconds;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_table1_training_time");
    banner("Table I: end-to-end training time, 60k episodes "
           "(extrapolated)");
    std::printf("CPU phases measured; GPU phases modeled as RTX "
                "3090\n");

    runConfig(Algo::Maddpg, Task::PredatorPrey,
              {{3, 3365.99},
               {6, 8504.99},
               {12, 23406.16},
               {24, 82768.15}});
    runConfig(Algo::Matd3, Task::PredatorPrey,
              {{3, 3838.97},
               {6, 9039.11},
               {12, 24678.43},
               {24, 80123.24}});
    runConfig(Algo::Maddpg, Task::CooperativeNavigation,
              {{3, 2403.64},
               {6, 5888.64},
               {12, 15722.43},
               {24, 52421.81}});
    runConfig(Algo::Matd3, Task::CooperativeNavigation,
              {{3, 2785.53},
               {6, 6369.42},
               {12, 17081.71},
               {24, 55371.91}});

    std::printf("\npaper shape: each doubling of agents roughly "
                "2.5-3.5x's the training time;\npredator-prey ~1.5x "
                "slower than cooperative navigation.\n");
    return 0;
}
