#include "marlin/env/predator_prey.hh"

#include <algorithm>
#include <limits>

#include "marlin/base/logging.hh"
#include "marlin/base/string_utils.hh"

namespace marlin::env
{

PredatorPreyScenario::PredatorPreyScenario(PredatorPreyConfig config)
    : _config(config)
{
    MARLIN_ASSERT(_config.numPredators >= 1,
                  "predator-prey needs at least one predator");
    if (_config.numPrey == 0) {
        _config.numPrey =
            std::max<std::size_t>(1, _config.numPredators / 3);
    }
    if (_config.numLandmarks == 0) {
        _config.numLandmarks =
            std::max<std::size_t>(2, _config.numPredators / 3);
    }
}

void
PredatorPreyScenario::makeWorld(World &world)
{
    world.agents.clear();
    world.landmarks.clear();
    world.agents.reserve(_config.numPredators + _config.numPrey);
    world.landmarks.reserve(_config.numLandmarks);

    for (std::size_t i = 0; i < _config.numPredators; ++i) {
        Agent a;
        a.name = csprintf("predator_%zu", i);
        a.adversary = true;
        a.movable = true;
        a.collide = true;
        a.size = Real(0.075);
        a.accel = Real(3);
        a.maxSpeed = Real(1.0);
        world.agents.push_back(a);
    }
    for (std::size_t i = 0; i < _config.numPrey; ++i) {
        Agent a;
        a.name = csprintf("prey_%zu", i);
        a.adversary = false;
        a.scripted = true;
        a.movable = true;
        a.collide = true;
        a.size = Real(0.05);
        a.accel = Real(4);
        a.maxSpeed = Real(1.3);
        world.agents.push_back(a);
    }
    for (std::size_t i = 0; i < _config.numLandmarks; ++i) {
        Entity lm;
        lm.name = csprintf("landmark_%zu", i);
        lm.size = Real(0.2);
        lm.movable = false;
        lm.collide = true;
        world.landmarks.push_back(lm);
    }
}

void
PredatorPreyScenario::resetWorld(World &world, Rng &rng)
{
    for (Agent &a : world.agents) {
        a.pos = {static_cast<Real>(rng.uniform(-1.0, 1.0)),
                 static_cast<Real>(rng.uniform(-1.0, 1.0))};
        a.vel = {};
        a.actionForce = {};
    }
    for (Entity &lm : world.landmarks) {
        lm.pos = {static_cast<Real>(rng.uniform(-0.9, 0.9)),
                  static_cast<Real>(rng.uniform(-0.9, 0.9))};
        lm.vel = {};
    }
}

std::size_t
PredatorPreyScenario::learnableAgents(const World &world) const
{
    return _config.numPredators;
}

void
PredatorPreyScenario::observationInto(const World &world,
                                      std::size_t i, Real *out) const
{
    // Layout (MPE simple_tag):
    //   self vel(2), self pos(2), landmark rel pos(2L),
    //   other agents rel pos(2*(n-1)),
    //   prey velocities (2*numPrey for predators,
    //                    2*(numPrey-1) for prey).
    const Agent &self = world.agents[i];
    *out++ = self.vel.x;
    *out++ = self.vel.y;
    *out++ = self.pos.x;
    *out++ = self.pos.y;
    for (const Entity &lm : world.landmarks) {
        *out++ = lm.pos.x - self.pos.x;
        *out++ = lm.pos.y - self.pos.y;
    }
    for (std::size_t j = 0; j < world.agents.size(); ++j) {
        if (j == i)
            continue;
        const Agent &other = world.agents[j];
        *out++ = other.pos.x - self.pos.x;
        *out++ = other.pos.y - self.pos.y;
    }
    for (std::size_t j = 0; j < world.agents.size(); ++j) {
        if (j == i)
            continue;
        const Agent &other = world.agents[j];
        if (!other.adversary) {
            *out++ = other.vel.x;
            *out++ = other.vel.y;
        }
    }
}

std::size_t
PredatorPreyScenario::observationDim(std::size_t i) const
{
    const std::size_t total =
        _config.numPredators + _config.numPrey;
    const bool is_prey = i >= _config.numPredators;
    const std::size_t prey_vels =
        is_prey ? _config.numPrey - 1 : _config.numPrey;
    return 4 + 2 * _config.numLandmarks + 2 * (total - 1) +
           2 * prey_vels;
}

Real
PredatorPreyScenario::reward(const World &world, std::size_t i) const
{
    const Agent &self = world.agents[i];
    Real r = 0;
    if (self.adversary) {
        // Predators: +tag per touched prey, shaped toward nearest.
        Real min_dist = std::numeric_limits<Real>::max();
        for (std::size_t j = _config.numPredators;
             j < world.agents.size(); ++j) {
            const Agent &prey = world.agents[j];
            min_dist = std::min(min_dist,
                                distance(self.pos, prey.pos));
            if (World::isCollision(self, prey))
                r += _config.tagReward;
        }
        r -= _config.shapingCoeff * min_dist;
    } else {
        // Prey: fly from predators, penalized on contact and for
        // leaving the arena.
        for (std::size_t j = 0; j < _config.numPredators; ++j) {
            const Agent &pred = world.agents[j];
            r += _config.shapingCoeff *
                 distance(self.pos, pred.pos);
            if (World::isCollision(self, pred))
                r -= _config.tagReward;
        }
        auto boundary_penalty = [](Real x) -> Real {
            const Real ax = std::abs(x);
            if (ax < Real(0.9))
                return 0;
            if (ax < Real(1.0))
                return (ax - Real(0.9)) * Real(10);
            return std::min(std::exp(Real(2) * ax - Real(2)),
                            Real(10));
        };
        r -= boundary_penalty(self.pos.x);
        r -= boundary_penalty(self.pos.y);
    }
    return r;
}

int
PredatorPreyScenario::scriptedAction(const World &world,
                                     std::size_t i, Rng &rng) const
{
    // Greedy flee: pick the discrete action whose direction best
    // aligns with the vector away from the nearest predator, with a
    // small chance of random motion so prey are not fully
    // predictable.
    if (rng.uniform() < 0.1)
        return static_cast<int>(rng.randint(numDiscreteActions));

    const Agent &self = world.agents[i];
    Real best_dist = std::numeric_limits<Real>::max();
    Vec2 away;
    for (std::size_t j = 0; j < _config.numPredators; ++j) {
        const Real d = distance(self.pos, world.agents[j].pos);
        if (d < best_dist) {
            best_dist = d;
            away = (self.pos - world.agents[j].pos).normalized();
        }
    }
    // Steer back toward the arena when near the edge.
    if (std::abs(self.pos.x) > Real(1.0))
        away.x = self.pos.x > 0 ? Real(-1) : Real(1);
    if (std::abs(self.pos.y) > Real(1.0))
        away.y = self.pos.y > 0 ? Real(-1) : Real(1);

    int best_action = 0;
    Real best_dot = -std::numeric_limits<Real>::max();
    for (int a = 1; a < numDiscreteActions; ++a) {
        const Vec2 dir = discreteActionDirection(a);
        const Real dot = dir.x * away.x + dir.y * away.y;
        if (dot > best_dot) {
            best_dot = dot;
            best_action = a;
        }
    }
    return best_action;
}

} // namespace marlin::env
