/**
 * @file
 * Tests for the live-introspection surface: Prometheus text
 * rendering (name sanitization, golden counter/gauge/histogram
 * output, cumulative "le" buckets ending in +Inf) and the MetricsHttp
 * endpoint (valid /metrics and /healthz scrapes over real sockets,
 * 404/400 error paths, per-connection isolation, and both service
 * modes — background thread and caller-driven serviceOnce).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "marlin/marlin.hh"

namespace marlin
{
namespace
{

// --- Rendering ------------------------------------------------------

TEST(Exposition, SanitizesNamesOntoPrometheusGrammar)
{
    EXPECT_EQ(obs::sanitizeMetricName("async.ring.pushed"),
              "async_ring_pushed");
    EXPECT_EQ(obs::sanitizeMetricName("a-b c/d"), "a_b_c_d");
    EXPECT_EQ(obs::sanitizeMetricName("ok_name:sub"),
              "ok_name:sub"); // Colons are legal in the grammar.
    EXPECT_EQ(obs::sanitizeMetricName("9lives"), "_9lives");
    EXPECT_EQ(obs::sanitizeMetricName(""), "_");
}

TEST(Exposition, GoldenCounterAndGauge)
{
    std::vector<obs::MetricSample> samples(2);
    samples[0].name = "serve.requests";
    samples[0].kind = obs::MetricSample::Kind::Counter;
    samples[0].count = 42;
    samples[1].name = "async.ring.depth";
    samples[1].kind = obs::MetricSample::Kind::Gauge;
    samples[1].value = -2.5;

    EXPECT_EQ(obs::renderPrometheusText(samples),
              "# HELP serve_requests MARLin metric "
              "'serve.requests'\n"
              "# TYPE serve_requests counter\n"
              "serve_requests 42\n"
              "# HELP async_ring_depth MARLin metric "
              "'async.ring.depth'\n"
              "# TYPE async_ring_depth gauge\n"
              "async_ring_depth -2.5\n");
}

TEST(Exposition, GoldenHistogramCumulativeBuckets)
{
    // Registry snapshots carry PER-BUCKET counts (2, 3, 5 overflow);
    // the exposition must accumulate them into cumulative "le"
    // series ending in +Inf, with _count equal to the +Inf bucket.
    obs::MetricSample h;
    h.name = "lat.us";
    h.kind = obs::MetricSample::Kind::Histogram;
    h.buckets = {{10.0, 2}, {100.0, 3}, {
        std::numeric_limits<double>::infinity(), 5}};
    h.count = 10;
    h.value = 123.75; // sum

    EXPECT_EQ(obs::renderPrometheusText({h}),
              "# HELP lat_us MARLin metric 'lat.us'\n"
              "# TYPE lat_us histogram\n"
              "lat_us_bucket{le=\"10\"} 2\n"
              "lat_us_bucket{le=\"100\"} 5\n"
              "lat_us_bucket{le=\"+Inf\"} 10\n"
              "lat_us_sum 123.75\n"
              "lat_us_count 10\n");
}

TEST(Exposition, HistogramWithoutOverflowBucketGainsInf)
{
    // A degenerate sample (no +Inf bucket recorded) still renders a
    // legal histogram: the +Inf series is synthesized.
    obs::MetricSample h;
    h.name = "odd";
    h.kind = obs::MetricSample::Kind::Histogram;
    h.buckets = {{1.0, 4}};
    h.count = 4;
    h.value = 2.0;
    const std::string text = obs::renderPrometheusText({h});
    EXPECT_NE(text.find("odd_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("odd_count 4\n"), std::string::npos);
}

TEST(Exposition, RegistrySnapshotRoundTrips)
{
    obs::Registry &reg = obs::Registry::instance();
    reg.counter("test.expo.counter").reset();
    reg.counter("test.expo.counter").add(3);
    reg.histogram("test.expo.hist", {50.0, 100.0}).reset();
    reg.histogram("test.expo.hist", {50.0, 100.0}).observe(75.0);

    const std::string text = obs::renderPrometheusText();
    EXPECT_NE(text.find("test_expo_counter 3\n"), std::string::npos);
    EXPECT_NE(
        text.find("test_expo_hist_bucket{le=\"100\"} 1\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("test_expo_hist_bucket{le=\"+Inf\"} 1\n"),
        std::string::npos);
}

// --- HTTP endpoint --------------------------------------------------

/** Blocking one-shot HTTP client: connect, send, read to EOF. */
std::string
httpGet(std::uint16_t port, const std::string &raw_request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, raw_request.data(), raw_request.size(), 0),
              static_cast<ssize_t>(raw_request.size()));
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

TEST(MetricsHttp, ServesScrapeAndHealthOnBackgroundThread)
{
    obs::Registry::instance().counter("test.http.counter").reset();
    obs::Registry::instance().counter("test.http.counter").add(9);

    serve::MetricsHttpConfig cfg; // port 0: ephemeral
    serve::MetricsHttp http(cfg);
    ASSERT_TRUE(http.start());
    ASSERT_NE(http.port(), 0);
    http.startThread();

    const std::string ok = httpGet(
        http.port(), "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(ok.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(ok.find("# TYPE test_http_counter counter"),
              std::string::npos);
    EXPECT_NE(ok.find("test_http_counter 9\n"), std::string::npos);

    const std::string health = httpGet(
        http.port(), "GET /healthz HTTP/1.0\r\n\r\n");
    EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok\n"), std::string::npos);

    EXPECT_GE(http.scrapesServed(), 1u);
    http.stop();
}

TEST(MetricsHttp, RejectsBadPathsAndMethodsPerConnection)
{
    serve::MetricsHttpConfig cfg;
    serve::MetricsHttp http(cfg);
    ASSERT_TRUE(http.start());
    http.startThread();

    // Each response goes to its own connection: an error on one
    // never leaks into another's stream.
    EXPECT_NE(httpGet(http.port(), "GET /nope HTTP/1.0\r\n\r\n")
                  .find("HTTP/1.0 404"),
              std::string::npos);
    EXPECT_NE(httpGet(http.port(), "POST /metrics HTTP/1.0\r\n\r\n")
                  .find("HTTP/1.0 400"),
              std::string::npos);
    EXPECT_NE(httpGet(http.port(), "garbage\r\n\r\n")
                  .find("HTTP/1.0 400"),
              std::string::npos);
    // A valid scrape still succeeds after the errors above.
    EXPECT_NE(httpGet(http.port(), "GET /metrics HTTP/1.0\r\n\r\n")
                  .find("HTTP/1.0 200 OK"),
              std::string::npos);
    http.stop();
}

TEST(MetricsHttp, ServiceOnceDrivenByCallerThread)
{
    // The async CLI drives scrapes from the supervisor's watchdog
    // tick instead of a dedicated thread: serviceOnce must make
    // progress under a polling caller.
    serve::MetricsHttpConfig cfg;
    serve::MetricsHttp http(cfg);
    ASSERT_TRUE(http.start());

    std::string response;
    std::thread client([&] {
        response = httpGet(http.port(),
                           "GET /healthz HTTP/1.0\r\n\r\n");
    });
    // Poll like the watchdog does (2ms cadence, 0ms timeout would
    // also work; a small timeout keeps the test prompt).
    for (int i = 0; i < 2000 && response.empty(); ++i)
        http.serviceOnce(2);
    client.join();
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    http.stop();
}

} // namespace
} // namespace marlin
