/**
 * @file
 * Bounded in-memory trace-event buffer with Chrome/Perfetto
 * trace_event JSON export.
 *
 * Disabled by default: recording sites pay one relaxed atomic load
 * and a predicted-not-taken branch. When enabled (--trace on the CLI
 * and benches), phase spans, checkpoint writes and thread-pool chunk
 * executions land in a fixed-capacity buffer via a single fetch_add
 * — no locks, no allocation — and exportTrace() serializes them into
 * a JSON file that ui.perfetto.dev / chrome://tracing open directly.
 *
 * Overflow policy: once the buffer is full, further events are
 * dropped (the earliest events win — a trace that loses its warm-up
 * would misattribute startup cost) and *counted*; spans arriving
 * while an export/snapshot is serializing the buffer are rejected
 * and counted the same way. The dropped total is reported in the
 * JSON footer *and* mirrored to the `trace.dropped` registry
 * counter, so truncation is never silent and shows up in a live
 * /metrics scrape, not just the export.
 *
 * Flow events: a span may carry a flow id and direction, exported
 * as Chrome trace_event `bind_id` + `flow_out`/`flow_in` on the
 * "X" event. Two spans sharing a flow id (one out, one in) render
 * as a linking arrow in Perfetto — how an actor's ring push is
 * visually tied to the learner drain that consumed it, across
 * threads.
 *
 * Event names/categories are `const char *` by contract: they must
 * point at string literals or other process-lifetime storage, which
 * every MARLin call site satisfies (phase names, static labels).
 */

#ifndef MARLIN_OBS_TRACE_HH
#define MARLIN_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "marlin/base/instant.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::obs
{

/** Flow-arrow direction of a span (none for ordinary spans). */
enum class FlowDir : std::uint8_t
{
    None = 0,
    Out = 1, ///< Producer end: arrow starts here.
    In = 2,  ///< Consumer end: arrow lands here.
};

/** One completed span ("ph":"X"), times in ns since process start. */
struct TraceEvent
{
    const char *name = nullptr;
    const char *cat = nullptr;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    std::uint32_t tid = 0;
    /** Nonzero links spans sharing the id across threads. */
    std::uint64_t flowId = 0;
    FlowDir flowDir = FlowDir::None;
};

/** The process-wide bounded trace buffer. */
class TraceRing
{
  public:
    /**
     * Install a fresh buffer of @p capacity events as the active
     * ring (replacing any previous one). Not thread-safe against
     * concurrent recording — call at startup, like --trace does.
     */
    static void enable(std::size_t capacity);

    /** Detach the active ring (recording sites go back to no-ops). */
    static void disable();

    /** Active ring, or nullptr when tracing is off. */
    static TraceRing *
    active() noexcept
    {
        return g_active.load(std::memory_order_acquire);
    }

    /** Record one span (optionally flow-linked). Lock-free; drops
     *  (and counts) when full or while an export is serializing. */
    void
    record(const char *name, const char *cat, std::uint64_t start_ns,
           std::uint64_t dur_ns, std::uint64_t flow_id = 0,
           FlowDir flow_dir = FlowDir::None) noexcept
    {
        if (snapshotting.load(std::memory_order_relaxed)) {
            countDrop();
            return;
        }
        const std::size_t idx =
            next.fetch_add(1, std::memory_order_relaxed);
        if (idx >= events.size()) {
            countDrop();
            return;
        }
        TraceEvent &e = events[idx];
        e.name = name;
        e.cat = cat;
        e.startNs = start_ns;
        e.durNs = dur_ns;
        e.tid = base::currentThreadTag();
        e.flowId = flow_id;
        e.flowDir = flow_dir;
    }

    /**
     * Bracket a snapshot/export of the buffer: spans recorded in
     * between are rejected (and counted as dropped) instead of
     * racing the serializer over half-written slots. Relaxed flag:
     * a record() that misses the flip writes a slot the exporter
     * already copied — harmless; the guard bounds the race window,
     * the accounting keeps it honest.
     */
    void
    beginSnapshot() noexcept
    {
        snapshotting.store(true, std::memory_order_relaxed);
    }
    void
    endSnapshot() noexcept
    {
        snapshotting.store(false, std::memory_order_relaxed);
    }

    std::size_t capacity() const { return events.size(); }

    /** Events actually stored (<= capacity). */
    std::size_t
    size() const noexcept
    {
        const std::size_t n = next.load(std::memory_order_relaxed);
        return n < events.size() ? n : events.size();
    }

    /** Events rejected because the buffer was full. */
    std::size_t
    dropped() const noexcept
    {
        return droppedCount.load(std::memory_order_relaxed);
    }

    const TraceEvent &
    event(std::size_t i) const
    {
        return events[i];
    }

  private:
    explicit TraceRing(std::size_t capacity) : events(capacity) {}

    /** Count a rejected span in both the local total and the
     *  registry. The counter ref is resolved in enable() (cold),
     *  so the hot drop path never takes the registry lock. */
    void
    countDrop() noexcept
    {
        droppedCount.fetch_add(1, std::memory_order_relaxed);
        if (dropCounter != nullptr)
            dropCounter->add(1);
    }

    static std::atomic<TraceRing *> g_active;

    std::vector<TraceEvent> events;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> droppedCount{0};
    std::atomic<bool> snapshotting{false};
    Counter *dropCounter = nullptr;
};

/**
 * Record a completed span into the active ring, if any. The cheap
 * always-on entry point used by ScopedPhase and the checkpoint
 * writer.
 */
inline void
recordSpan(const char *name, const char *cat, std::uint64_t start_ns,
           std::uint64_t dur_ns) noexcept
{
    if (TraceRing *ring = TraceRing::active())
        ring->record(name, cat, start_ns, dur_ns);
}

/** Record a flow-linked span (producer or consumer end of an
 *  arrow). Call sites gate on TraceRing::active() themselves when
 *  they would otherwise pay for clock reads. */
inline void
recordFlowSpan(const char *name, const char *cat,
               std::uint64_t start_ns, std::uint64_t dur_ns,
               std::uint64_t flow_id, FlowDir dir) noexcept
{
    if (TraceRing *ring = TraceRing::active())
        ring->record(name, cat, start_ns, dur_ns, flow_id, dir);
}

/** RAII span: times its scope and records on destruction. */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *cat) noexcept
        : _name(name), _cat(cat), startNs(base::nowNsSinceStart())
    {
    }

    ~TraceSpan()
    {
        recordSpan(_name, _cat, startNs,
                   base::nowNsSinceStart() - startNs);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *_name;
    const char *_cat;
    std::uint64_t startNs;
};

/**
 * Serialize the active ring as Chrome trace_event JSON ("traceEvents"
 * array of complete events, ts/dur in microseconds) plus an
 * "otherData" block reporting capacity, stored and dropped counts.
 * Returns false (with @p error filled) on I/O failure or when
 * tracing was never enabled.
 */
bool exportTrace(const std::string &path,
                 std::string *error = nullptr);

} // namespace marlin::obs

#endif // MARLIN_OBS_TRACE_HH
