/**
 * @file
 * Tests for the observability layer (marlin/obs): metrics registry
 * merge semantics under the thread pool, histogram "le" bucket
 * edges, telemetry JSONL schema round-trip, trace ring overflow
 * accounting, exception-safe phase spans, and the headline
 * invariant — training with telemetry attached produces a
 * byte-identical checkpoint to the same run without it.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "marlin/async/flow_id.hh"
#include "marlin/marlin.hh"

namespace marlin
{
namespace
{

namespace fs = std::filesystem;

/** Fresh temp directory per test; removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const char *tag)
        : path(fs::temp_directory_path() /
               (std::string("marlin_obs_") + tag))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string file(const char *name) const
    {
        return (path / name).string();
    }
};

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// --- Registry -------------------------------------------------------

TEST(Registry, CounterMergesShardsExactlyUnderThreadPool)
{
    obs::Counter &c =
        obs::Registry::instance().counter("test.merge.counter");
    c.reset();
    base::ThreadPool pool(4);
    pool.parallelFor(0, 10000, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            c.add(2);
    });
    // parallelFor is a barrier, so the merged read is exact.
    EXPECT_EQ(c.value(), 20000u);
}

TEST(Registry, SameNameReturnsSameMetric)
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter &a = reg.counter("test.same.counter");
    obs::Counter &b = reg.counter("test.same.counter");
    EXPECT_EQ(&a, &b);
    obs::Gauge &g = reg.gauge("test.same.gauge");
    g.set(3.5);
    g.set(-1.25); // Gauges overwrite, never accumulate.
    EXPECT_DOUBLE_EQ(reg.gauge("test.same.gauge").value(), -1.25);
}

TEST(Registry, SnapshotCarriesEveryKind)
{
    obs::Registry &reg = obs::Registry::instance();
    reg.counter("test.snap.counter").reset();
    reg.counter("test.snap.counter").add(7);
    reg.gauge("test.snap.gauge").set(2.5);
    reg.histogram("test.snap.hist", {1.0, 10.0}).observe(5.0);

    bool saw_counter = false, saw_gauge = false, saw_hist = false;
    for (const obs::MetricSample &s : reg.snapshot()) {
        if (s.name == "test.snap.counter") {
            saw_counter = true;
            EXPECT_EQ(s.kind, obs::MetricSample::Kind::Counter);
            EXPECT_EQ(s.count, 7u);
        } else if (s.name == "test.snap.gauge") {
            saw_gauge = true;
            EXPECT_DOUBLE_EQ(s.value, 2.5);
        } else if (s.name == "test.snap.hist") {
            saw_hist = true;
            EXPECT_EQ(s.kind, obs::MetricSample::Kind::Histogram);
            ASSERT_EQ(s.buckets.size(), 3u); // 2 bounds + overflow.
        }
    }
    EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST(Histogram, LeBucketEdgesAndOverflow)
{
    obs::Histogram &h = obs::Registry::instance().histogram(
        "test.edges.hist", {1.0, 10.0, 100.0});
    h.reset();
    // "le" semantics: a value exactly on a bound lands in that
    // bucket, not the next one.
    h.observe(0.5);   // <= 1
    h.observe(1.0);   // <= 1 (boundary)
    h.observe(1.001); // <= 10
    h.observe(10.0);  // <= 10 (boundary)
    h.observe(100.0); // <= 100 (boundary)
    h.observe(101.0); // overflow
    h.observe(1e9);   // overflow

    ASSERT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.totalCount(), 7u);
    EXPECT_DOUBLE_EQ(h.bucketUpperBound(1), 10.0);
    EXPECT_TRUE(std::isinf(h.bucketUpperBound(3)));
    EXPECT_DOUBLE_EQ(h.sum(),
                     0.5 + 1.0 + 1.001 + 10.0 + 100.0 + 101.0 + 1e9);
}

// --- Telemetry JSONL ------------------------------------------------

TEST(Telemetry, JsonlSchemaRoundTrip)
{
    TempDir dir("telemetry");
    const std::string path = dir.file("run.jsonl");
    {
        obs::TelemetryWriter writer(
            path, {{"algo", "maddpg"}, {"task", "cn"}});
        ASSERT_TRUE(writer.ok());

        obs::StepRecord rec;
        rec.episode = 3;
        rec.envStep = 75;
        rec.updateCalls = 1;
        rec.phaseNs.emplace_back("env_step", 1234u);
        rec.haveLosses = true;
        rec.criticLoss = 0.25;
        rec.actorLoss = -0.5;
        rec.haveRing = true;
        rec.ringDepth = 17;
        rec.ringDropped = 2;
        rec.ringSeqGaps = 2;
        rec.haveAsyncLatency = true;
        rec.transitP50Us = 120.5;
        rec.transitP99Us = 900.25;
        rec.policyStaleness = 3;
        writer.writeStep(rec);

        obs::StepRecord no_losses;
        no_losses.envStep = 76;
        writer.writeStep(no_losses);

        writer.writeSummary({{"final_score", -42.5}});
        EXPECT_EQ(writer.recordsWritten(), 4u);
    }

    const std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 4u);
    for (const std::string &line : lines) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    // Header: schema version, commit, meta round-trip.
    EXPECT_NE(lines[0].find("\"record\":\"header\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"schema\":" + std::to_string(
                                obs::telemetrySchemaVersion)),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"commit\":"), std::string::npos);
    EXPECT_NE(lines[0].find("\"algo\":\"maddpg\""),
              std::string::npos);
    // Step with losses carries them; step without doesn't.
    EXPECT_NE(lines[1].find("\"record\":\"step\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"env_step\":75"), std::string::npos);
    EXPECT_NE(lines[1].find("\"env_step\":1234"), std::string::npos)
        << "phase_ns map should carry the env_step phase delta";
    EXPECT_NE(lines[1].find("\"critic_loss\":"), std::string::npos);
    EXPECT_EQ(lines[2].find("\"critic_loss\":"), std::string::npos);
    // Ring accounting (schema v2) travels only when set.
    EXPECT_NE(lines[1].find("\"ring_depth\":17"), std::string::npos);
    EXPECT_NE(lines[1].find("\"ring_dropped\":2"),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"ring_seq_gaps\":2"),
              std::string::npos);
    EXPECT_EQ(lines[2].find("\"ring_depth\":"), std::string::npos);
    // Latency attribution (schema v4) travels only when set, as an
    // all-or-nothing group.
    EXPECT_NE(lines[1].find("\"transit_p50_us\":120.5"),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"transit_p99_us\":900.25"),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"policy_staleness\":3"),
              std::string::npos);
    EXPECT_EQ(lines[2].find("\"transit_p50_us\":"),
              std::string::npos);
    EXPECT_EQ(lines[2].find("\"policy_staleness\":"),
              std::string::npos);
    // Summary: results and a final metrics snapshot.
    EXPECT_NE(lines[3].find("\"record\":\"summary\""),
              std::string::npos);
    EXPECT_NE(lines[3].find("\"final_score\":-42.5"),
              std::string::npos);
    EXPECT_NE(lines[3].find("\"metrics\":"), std::string::npos);
}

TEST(Telemetry, JsonEscapeControlAndQuote)
{
    EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

// --- Trace ring -----------------------------------------------------

TEST(Trace, RingOverflowIsCountedNeverSilent)
{
    obs::TraceRing::enable(8);
    obs::TraceRing *ring = obs::TraceRing::active();
    ASSERT_NE(ring, nullptr);
    for (int i = 0; i < 20; ++i)
        obs::recordSpan("span", "test", 100u * i, 50);
    EXPECT_EQ(ring->capacity(), 8u);
    EXPECT_EQ(ring->size(), 8u);
    EXPECT_EQ(ring->dropped(), 12u);
    // Drop-newest: the earliest events survive.
    EXPECT_EQ(ring->event(0).startNs, 0u);
    EXPECT_EQ(ring->event(7).startNs, 700u);

    TempDir dir("trace");
    const std::string path = dir.file("trace.json");
    std::string error;
    ASSERT_TRUE(obs::exportTrace(path, &error)) << error;
    const std::string json = readAll(path);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\":12"), std::string::npos);
    EXPECT_NE(json.find("\"storedEvents\":8"), std::string::npos);
    obs::TraceRing::disable();
}

TEST(Trace, DroppedSpansSurfaceAsRegistryCounter)
{
    obs::Counter &dropped =
        obs::Registry::instance().counter("trace.dropped");
    obs::TraceRing::enable(4);
    const std::uint64_t before = dropped.value();
    for (int i = 0; i < 10; ++i)
        obs::recordSpan("span", "test", 100u * i, 50);
    // 4 stored, 6 rejected; the registry counter mirrors the ring's
    // local accounting so a /metrics scrape sees the loss live.
    EXPECT_EQ(obs::TraceRing::active()->dropped(), 6u);
    EXPECT_EQ(dropped.value(), before + 6);
    obs::TraceRing::disable();
}

TEST(Trace, SnapshotRejectionsAreCounted)
{
    obs::TraceRing::enable(64);
    obs::TraceRing *ring = obs::TraceRing::active();
    ASSERT_NE(ring, nullptr);
    obs::recordSpan("kept", "test", 0, 1);

    // While an export snapshot walks the ring, concurrent record()
    // calls are rejected — but never silently: they count as drops.
    ring->beginSnapshot();
    obs::recordSpan("rejected", "test", 10, 1);
    obs::recordSpan("rejected", "test", 20, 1);
    ring->endSnapshot();
    obs::recordSpan("kept", "test", 30, 1);

    EXPECT_EQ(ring->size(), 2u);
    EXPECT_EQ(ring->dropped(), 2u);
    obs::TraceRing::disable();
}

TEST(Trace, FlowSpansExportBindIdPairing)
{
    obs::TraceRing::enable(64);
    const std::uint64_t id = async::transitionFlowId(2, 41);
    EXPECT_NE(id, 0u); // 0 is reserved for "no flow".
    obs::recordFlowSpan("actor_push", "async", 100, 5, id,
                        obs::FlowDir::Out);
    obs::recordFlowSpan("ring_drain", "async", 300, 7, id,
                        obs::FlowDir::In);
    obs::recordSpan("plain", "async", 400, 1);

    TempDir dir("flow");
    const std::string path = dir.file("trace.json");
    std::string error;
    ASSERT_TRUE(obs::exportTrace(path, &error)) << error;
    const std::string json = readAll(path);

    char bind[64];
    std::snprintf(bind, sizeof(bind), "\"bind_id\":\"0x%llx\"",
                  static_cast<unsigned long long>(id));
    // Both ends carry the same id, one out + one in; the plain span
    // carries no flow fields at all.
    const std::size_t first = json.find(bind);
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(json.find(bind, first + 1), std::string::npos);
    EXPECT_NE(json.find("\"flow_out\":true"), std::string::npos);
    EXPECT_NE(json.find("\"flow_in\":true"), std::string::npos);
    const std::size_t plain = json.find("\"name\":\"plain\"");
    ASSERT_NE(plain, std::string::npos);
    EXPECT_EQ(json.find("bind_id", plain), std::string::npos);
    obs::TraceRing::disable();
}

TEST(Histogram, QuantileInterpolatesWithinBuckets)
{
    obs::Histogram &h = obs::Registry::instance().histogram(
        "test.quantile.hist", {10.0, 100.0, 1000.0});
    h.reset();
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0); // Empty: no estimate.
    for (int i = 0; i < 50; ++i)
        h.observe(5.0); // le=10
    for (int i = 0; i < 50; ++i)
        h.observe(50.0); // le=100
    // Median sits on the first/second bucket edge; p99 inside the
    // second bucket; quantiles are monotone in q.
    EXPECT_NEAR(h.quantile(0.5), 10.0, 1.0);
    EXPECT_GT(h.quantile(0.99), 90.0);
    EXPECT_LE(h.quantile(0.99), 100.0);
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
    h.observe(1e9); // Overflow clamps to the last finite bound.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Trace, DisabledRecordingIsANoOp)
{
    obs::TraceRing::disable();
    EXPECT_EQ(obs::TraceRing::active(), nullptr);
    obs::recordSpan("ignored", "test", 0, 1); // Must not crash.
    std::string error;
    EXPECT_FALSE(obs::exportTrace("/nonexistent/dir/x.json",
                                  &error));
    EXPECT_FALSE(error.empty());
}

TEST(Trace, ScopedPhaseRecordsSpanEvenWhenThrowing)
{
    obs::TraceRing::enable(64);
    profile::PhaseTimer timer;
    try {
        profile::ScopedPhase sp(timer, profile::Phase::Sampling);
        throw std::runtime_error("unwind through the span");
    } catch (const std::runtime_error &) {
    }
    // Satellite 6: the phase is accounted and the span recorded
    // even though the scope exited by exception.
    EXPECT_GT(timer.nanoseconds(profile::Phase::Sampling), 0u);
    obs::TraceRing *ring = obs::TraceRing::active();
    ASSERT_NE(ring, nullptr);
    bool found = false;
    for (std::size_t i = 0; i < ring->size(); ++i) {
        if (std::string(ring->event(i).name) ==
            "mini_batch_sampling")
            found = true;
    }
    EXPECT_TRUE(found);
    obs::TraceRing::disable();
}

// --- Kernel counting shim -------------------------------------------

TEST(KernelCounting, CountsCallsWithoutChangingResults)
{
    const std::size_t n = 37; // Odd length so tails run.
    std::vector<Real> x(n), y_plain(n), y_counted(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = Real(0.25) * static_cast<Real>(i);
        y_plain[i] = y_counted[i] = Real(1.5);
    }

    numeric::kernels::setCounting(false);
    numeric::kernels::active().axpy(Real(2), x.data(),
                                    y_plain.data(), n);

    obs::Registry &reg = obs::Registry::instance();
    numeric::kernels::setCounting(true);
    ASSERT_TRUE(numeric::kernels::countingEnabled());
    const std::uint64_t calls_before =
        reg.counter("kernels.axpy.calls").value();
    const std::uint64_t elems_before =
        reg.counter("kernels.axpy.elems").value();
    numeric::kernels::active().axpy(Real(2), x.data(),
                                    y_counted.data(), n);
    EXPECT_EQ(reg.counter("kernels.axpy.calls").value(),
              calls_before + 1);
    EXPECT_EQ(reg.counter("kernels.axpy.elems").value(),
              elems_before + n);
    numeric::kernels::setCounting(false);
    ASSERT_FALSE(numeric::kernels::countingEnabled());

    // The shim forwards to the same underlying table: identical
    // bytes out.
    EXPECT_EQ(std::memcmp(y_plain.data(), y_counted.data(),
                          n * sizeof(Real)),
              0);
}

// --- End-to-end: telemetry must not perturb training ----------------

core::TrainConfig
smallConfig()
{
    core::TrainConfig c;
    c.batchSize = 32;
    c.bufferCapacity = 4096;
    c.warmupTransitions = 64;
    c.updateEvery = 20;
    c.hiddenDims = {16, 16};
    c.seed = 21;
    return c;
}

/** Train a small MADDPG run and save its checkpoint bytes. */
std::string
trainAndCheckpoint(const std::string &ckpt_path,
                   obs::TelemetryWriter *telemetry)
{
    auto environment = env::makeCooperativeNavigationEnv(2, 5);
    core::TrainConfig config = smallConfig();
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    core::MaddpgTrainer trainer(
        dims, environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });
    core::TrainLoop loop(*environment, trainer, config);
    if (telemetry != nullptr)
        loop.setTelemetry(telemetry, 3);
    loop.run(6);
    core::saveTrainerFile(ckpt_path, trainer);
    return readAll(ckpt_path);
}

TEST(Telemetry, TrainingIsByteIdenticalWithTelemetryOnOrOff)
{
    TempDir dir("identity");
    const std::string plain =
        trainAndCheckpoint(dir.file("plain.ckpt"), nullptr);

    obs::TraceRing::enable(1 << 14); // Both sinks live this run.
    std::string observed;
    {
        obs::TelemetryWriter writer(dir.file("run.jsonl"),
                                    {{"test", "identity"}});
        ASSERT_TRUE(writer.ok());
        observed =
            trainAndCheckpoint(dir.file("observed.ckpt"), &writer);
        EXPECT_GT(writer.recordsWritten(), 2u);
    }
    obs::TraceRing::disable();

    ASSERT_FALSE(plain.empty());
    EXPECT_EQ(plain, observed)
        << "telemetry/trace sinks must be pure observers";
}

} // namespace
} // namespace marlin
