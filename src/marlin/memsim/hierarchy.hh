/**
 * @file
 * Three-level cache hierarchy + dTLB + L1 stream prefetcher, with a
 * simple latency model so traces yield both counter values and an
 * estimated memory-time figure.
 */

#ifndef MARLIN_MEMSIM_HIERARCHY_HH
#define MARLIN_MEMSIM_HIERARCHY_HH

#include <string>

#include "marlin/memsim/cache.hh"
#include "marlin/memsim/prefetcher.hh"
#include "marlin/memsim/tlb.hh"

namespace marlin::memsim
{

/** Full hierarchy geometry and latencies (cycles). */
struct HierarchyConfig
{
    CacheConfig l1 = {32 * 1024, 64, 8};
    CacheConfig l2 = {512 * 1024, 64, 8};
    CacheConfig l3 = {16 * 1024 * 1024, 64, 16};
    TlbConfig tlb = {};
    PrefetcherConfig prefetcher = {};
    std::uint32_t l1Latency = 4;
    std::uint32_t l2Latency = 12;
    std::uint32_t l3Latency = 40;
    std::uint32_t memLatency = 200;
    std::uint32_t tlbMissPenalty = 30;
};

/** Aggregated counters after a trace replay. */
struct HierarchyStats
{
    CacheStats l1;
    CacheStats l2;
    CacheStats l3;
    TlbStats tlb;
    PrefetcherStats prefetcher;
    std::uint64_t lineAccesses = 0;
    std::uint64_t cycles = 0;

    /** Misses that went all the way to memory. */
    std::uint64_t memAccesses() const { return l3.misses; }
};

/**
 * Copy a stats snapshot into the obs metrics registry as gauges
 * named "<prefix>.l1.hits", "<prefix>.tlb.misses", ... so memsim
 * results ride along in telemetry records next to the training
 * counters they explain. Gauges (not counters) because a snapshot
 * is a state, and repeated publishes must overwrite, not add.
 */
void publishHierarchyMetrics(const HierarchyStats &stats,
                             const std::string &prefix);

/**
 * Inclusive three-level hierarchy. Demand accesses walk L1 -> L2 ->
 * L3 -> memory; fills propagate back up. The stream prefetcher
 * observes the L1 demand-line stream and fills L1 and L2.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(HierarchyConfig config = {});

    const HierarchyConfig &config() const { return _config; }

    /**
     * Issue a demand read of @p bytes at @p addr; the access is
     * split into line-granular probes.
     */
    void access(std::uint64_t addr, std::uint32_t bytes);

    /** Snapshot of all counters. */
    HierarchyStats stats() const;

    /** Clear contents and counters. */
    void reset();

  private:
    HierarchyConfig _config;
    CacheModel l1;
    CacheModel l2;
    CacheModel l3;
    TlbModel tlb;
    StreamPrefetcher prefetcher;
    std::uint64_t lineAccesses = 0;
    std::uint64_t cycles = 0;
    std::vector<std::uint64_t> prefetchScratch;

    void accessLine(std::uint64_t line_addr);
};

} // namespace marlin::memsim

#endif // MARLIN_MEMSIM_HIERARCHY_HH
