/**
 * @file
 * Crash-safety tests for the full-state checkpoint runtime: v2
 * round trips, legacy v1 files, kill/resume bit-identity (the
 * headline contract: a run killed at a seeded random step and
 * resumed from disk reproduces the uninterrupted run's episode
 * rewards exactly, at any thread count), CRC fallback from a
 * corrupted latest to previous, failed-write rotation safety, and
 * the numeric health-guard policies.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "marlin/marlin.hh"
#include "marlin/replay/gather.hh"

namespace marlin
{
namespace
{

std::vector<std::size_t>
dimsOf(const env::Environment &environment)
{
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment.numAgents(); ++i)
        dims.push_back(environment.obsDim(i));
    return dims;
}

enum class Which { Maddpg, Matd3Interleaved };

core::TrainConfig
rigConfig(Which which)
{
    core::TrainConfig c;
    c.batchSize = 32;
    c.bufferCapacity = 4096;
    c.warmupTransitions = 64;
    c.updateEvery = 20;
    c.hiddenDims = {16, 16};
    c.seed = 21;
    if (which == Which::Matd3Interleaved)
        c.backend = core::SamplingBackend::Interleaved;
    return c;
}

/** Everything one training run needs, in destruction-safe order. */
struct Rig
{
    std::unique_ptr<env::Environment> environment;
    std::unique_ptr<core::CtdeTrainerBase> trainer;
    std::unique_ptr<core::TrainLoop> loop;
};

Rig
makeRig(Which which, core::TrainConfig config,
        std::size_t agents = 3, std::uint64_t env_seed = 77)
{
    Rig rig;
    rig.environment =
        env::makeCooperativeNavigationEnv(agents, env_seed);
    const auto dims = dimsOf(*rig.environment);
    const std::size_t act_dim = rig.environment->actionDim();
    if (which == Which::Maddpg) {
        rig.trainer = std::make_unique<core::MaddpgTrainer>(
            dims, act_dim, config,
            [] { return std::make_unique<replay::UniformSampler>(); });
    } else {
        // MATD3 + interleaved layout + prioritized sampler: the
        // most state-rich configuration (twin critics, policy-delay
        // counters, sum-tree priorities, KV store) all have to
        // survive the round trip.
        const BufferIndex capacity = config.bufferCapacity;
        rig.trainer = std::make_unique<core::Matd3Trainer>(
            dims, act_dim, config, [capacity] {
                replay::PerConfig per;
                per.capacity = capacity;
                return std::make_unique<replay::PrioritizedSampler>(
                    per);
            });
    }
    rig.loop = std::make_unique<core::TrainLoop>(
        *rig.environment, *rig.trainer, config);
    return rig;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "marlin_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

std::vector<std::vector<Real>>
probeObservations(const env::Environment &environment)
{
    std::vector<std::vector<Real>> obs;
    for (std::size_t i = 0; i < environment.numAgents(); ++i) {
        std::vector<Real> o(environment.obsDim(i));
        for (std::size_t k = 0; k < o.size(); ++k)
            o[k] = Real(0.1) * static_cast<Real>(k + i);
        obs.push_back(std::move(o));
    }
    return obs;
}

void
poisonCritic(core::CtdeTrainerBase &trainer)
{
    auto params = trainer.networks(0).critic.params();
    ASSERT_FALSE(params.empty());
    params[0]->value.data()[0] =
        std::numeric_limits<Real>::quiet_NaN();
}

/**
 * The acceptance contract: baseline an uninterrupted run, replay it
 * with a seeded random kill + rotating checkpoints, resume in fresh
 * objects, and demand bit-identical episode rewards. The baseline
 * runs on 1 thread and the killed/resumed runs on 4, so the test
 * simultaneously pins thread-count invariance across process death.
 */
void
killResumeBitIdentical(Which which, const char *dir_name)
{
    const std::size_t episodes = 12;

    base::ThreadPool::setGlobalThreads(1);
    std::vector<Real> baseline;
    {
        Rig rig = makeRig(which, rigConfig(which));
        baseline = rig.loop->run(episodes).episodeRewards;
    }
    ASSERT_EQ(baseline.size(), episodes);

    const std::string dir = freshDir(dir_name);
    core::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyEpisodes = 2;

    base::ThreadPool::setGlobalThreads(4);
    base::FaultInjector injector(0xfeedbeef);
    // Earliest kill lands after the first rotation (2 episodes =
    // 50 steps); latest leaves episodes still to run on resume.
    const StepCount kill_step =
        injector.armKillAtRandomStep(60, 250);
    {
        Rig rig = makeRig(which, rigConfig(which));
        rig.loop->setCheckpointing(opts);
        rig.loop->setFaultInjector(&injector);
        const auto killed = rig.loop->run(episodes);
        ASSERT_TRUE(killed.killed) << "kill step " << kill_step;
        ASSERT_LT(killed.episodeRewards.size(), episodes);
        // The dead process's objects are simply abandoned here: all
        // that survives, as after a real SIGKILL, is the disk.
    }
    {
        Rig rig = makeRig(which, rigConfig(which));
        rig.loop->setCheckpointing(opts);
        const auto resumed = rig.loop->run(episodes);
        EXPECT_FALSE(resumed.killed);
        EXPECT_GT(resumed.resumedFromEpisode, 0u);
        ASSERT_EQ(resumed.episodeRewards.size(), episodes);
        for (std::size_t i = 0; i < episodes; ++i) {
            EXPECT_EQ(resumed.episodeRewards[i], baseline[i])
                << "episode " << i << " diverged after resume "
                << "(killed at step " << kill_step << ")";
        }
    }
    base::ThreadPool::setGlobalThreads(0);
}

TEST(Checkpoint, KillResumeBitIdenticalMaddpg)
{
    killResumeBitIdentical(Which::Maddpg, "kill_maddpg");
}

TEST(Checkpoint, KillResumeBitIdenticalMatd3Interleaved)
{
    killResumeBitIdentical(Which::Matd3Interleaved, "kill_matd3");
}

TEST(Checkpoint, CorruptLatestFallsBackToPrevious)
{
    const std::size_t episodes = 8;
    std::vector<Real> baseline;
    {
        Rig rig = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
        baseline = rig.loop->run(episodes).episodeRewards;
    }

    const std::string dir = freshDir("corrupt_latest");
    core::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyEpisodes = 1;
    {
        Rig rig = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
        rig.loop->setCheckpointing(opts);
        rig.loop->run(6); // latest = episode 6, previous = episode 5
    }

    // Flip one byte inside the network section of latest.
    const std::string latest = core::latestCheckpointPath(dir);
    ASSERT_TRUE(base::corruptFileByte(latest, 300));

    // The CRC catches the corruption...
    {
        Rig probe = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
        core::RunState st;
        st.trainer = probe.trainer.get();
        const auto r = core::loadRunFile(latest, st);
        ASSERT_FALSE(r);
        EXPECT_EQ(r.error, core::CkptError::CrcMismatch);
    }

    // ...and resume falls back to previous (episode 5) without
    // aborting, then finishes bit-identically to the baseline.
    {
        Rig rig = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
        rig.loop->setCheckpointing(opts);
        const auto resumed = rig.loop->run(episodes);
        EXPECT_EQ(resumed.resumedFromEpisode, 5u);
        ASSERT_EQ(resumed.episodeRewards.size(), episodes);
        for (std::size_t i = 0; i < episodes; ++i)
            EXPECT_EQ(resumed.episodeRewards[i], baseline[i])
                << "episode " << i;
    }
}

TEST(Checkpoint, FailedWriteLeavesRotationIntact)
{
    const std::string dir = freshDir("failed_write");
    core::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyEpisodes = 1;
    Rig rig = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    rig.loop->setCheckpointing(opts);
    rig.loop->run(3);

    const std::string latest = core::latestCheckpointPath(dir);
    const std::string previous = core::previousCheckpointPath(dir);
    const std::string latest_before = readFileBytes(latest);
    const std::string previous_before = readFileBytes(previous);
    ASSERT_FALSE(latest_before.empty());
    ASSERT_FALSE(previous_before.empty());

    base::FaultInjector injector;
    injector.armFailAtWrite(1);
    core::RunState st;
    st.trainer = rig.trainer.get();
    const auto r = core::saveRotating(dir, st, &injector);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::IoError);

    // The torn temp file must not have touched either generation.
    EXPECT_EQ(readFileBytes(latest), latest_before);
    EXPECT_EQ(readFileBytes(previous), previous_before);
}

TEST(Checkpoint, V2RoundTripRestoresNetworksAndRuntime)
{
    Rig a = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    a.loop->run(5);

    std::ostringstream os;
    core::RunState save_state;
    save_state.trainer = a.trainer.get();
    core::saveRun(os, save_state);

    auto other = rigConfig(Which::Maddpg);
    other.seed = 99; // Different weights until the load.
    Rig b = makeRig(Which::Maddpg, other);

    std::istringstream is(os.str());
    core::RunState load_state;
    load_state.trainer = b.trainer.get();
    const auto r = core::loadRun(is, load_state);
    ASSERT_TRUE(r) << r.detail;
    EXPECT_EQ(r.version, core::checkpointVersion);

    const auto obs = probeObservations(*a.environment);
    EXPECT_EQ(a.trainer->greedyActions(obs),
              b.trainer->greedyActions(obs));
    EXPECT_EQ(a.trainer->updateCount(), b.trainer->updateCount());
}

TEST(Checkpoint, LegacyV1FilesStillLoad)
{
    Rig a = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    a.loop->run(4);

    std::ostringstream os;
    core::saveTrainer(os, *a.trainer); // v1 writer

    auto other = rigConfig(Which::Maddpg);
    other.seed = 99;
    Rig b = makeRig(Which::Maddpg, other);

    std::istringstream is(os.str());
    core::RunState st;
    st.trainer = b.trainer.get();
    const auto r = core::loadRun(is, st);
    ASSERT_TRUE(r) << r.detail;
    EXPECT_EQ(r.version, core::checkpointVersionLegacy);

    const auto obs = probeObservations(*a.environment);
    EXPECT_EQ(a.trainer->greedyActions(obs),
              b.trainer->greedyActions(obs));
}

TEST(Checkpoint, TrainerOnlyFileRefusesFullResume)
{
    Rig a = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    std::ostringstream os;
    core::RunState save_state;
    save_state.trainer = a.trainer.get();
    core::saveRun(os, save_state); // No LOOP section written.

    Rig b = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    core::LoopProgress progress;
    core::RunState st;
    st.trainer = b.trainer.get();
    st.progress = &progress;
    std::istringstream is(os.str());
    const auto r = core::loadRun(is, st);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::MissingSection);
}

TEST(Checkpoint, AgentCountMismatchIsAShapeError)
{
    Rig a = makeRig(Which::Maddpg, rigConfig(Which::Maddpg), 3);
    std::ostringstream os;
    core::RunState save_state;
    save_state.trainer = a.trainer.get();
    core::saveRun(os, save_state);

    Rig b = makeRig(Which::Maddpg, rigConfig(Which::Maddpg), 4);
    core::RunState st;
    st.trainer = b.trainer.get();
    std::istringstream is(os.str());
    const auto r = core::loadRun(is, st);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::ShapeMismatch);
}

/** Build a replay buffer matching a rig's trainer geometry. */
std::vector<replay::TransitionShape>
rigShapes(const Rig &rig, BufferIndex /*capacity*/)
{
    std::vector<replay::TransitionShape> shapes;
    for (std::size_t i = 0; i < rig.environment->numAgents(); ++i)
        shapes.push_back({rig.environment->obsDim(i),
                          rig.environment->actionDim()});
    return shapes;
}

TEST(Checkpoint, ReplayCapacityMismatchIsATypedShapeError)
{
    Rig a = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    replay::MultiAgentBuffer saved(rigShapes(a, 0), 4096);
    std::ostringstream os;
    core::RunState save_state;
    save_state.trainer = a.trainer.get();
    save_state.buffers = &saved;
    core::saveRun(os, save_state);

    // Same shapes, half the capacity: the META gate must reject it
    // with the typed error before any section is restored.
    Rig b = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    replay::MultiAgentBuffer smaller(rigShapes(b, 0), 2048);
    core::RunState st;
    st.trainer = b.trainer.get();
    st.buffers = &smaller;
    std::istringstream is(os.str());
    const auto r = core::loadRun(is, st);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::ShapeMismatch);
    EXPECT_NE(r.detail.find("replay capacity"), std::string::npos)
        << r.detail;
    EXPECT_EQ(smaller.size(), 0u) << "failed load must not mutate";
}

/**
 * A checkpoint whose stored replay capacity was rewritten in place
 * (section CRC recomputed, so the corruption is semantically valid
 * bytes) must fail the capacity gate as a ShapeMismatch — not decay
 * into a CRC error, and never partially restore.
 */
TEST(Checkpoint, CorruptCapacityFieldFailsTheGateNotTheRestore)
{
    Rig a = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    replay::MultiAgentBuffer saved(rigShapes(a, 0), 4096);
    std::ostringstream os;
    core::RunState save_state;
    save_state.trainer = a.trainer.get();
    save_state.buffers = &saved;
    core::saveRun(os, save_state);
    std::string image = os.str();

    // Walk the section chain to the META payload; its final u64 is
    // the replay capacity. Rewrite it and recompute the section CRC.
    const std::uint32_t tag_meta =
        static_cast<std::uint32_t>('M') |
        (static_cast<std::uint32_t>('E') << 8) |
        (static_cast<std::uint32_t>('T') << 16) |
        (static_cast<std::uint32_t>('A') << 24);
    std::size_t off = 8; // File magic + version.
    bool patched = false;
    while (off + 12 <= image.size()) {
        std::uint32_t tag = 0;
        std::uint64_t len = 0;
        std::memcpy(&tag, image.data() + off, 4);
        std::memcpy(&len, image.data() + off + 4, 8);
        const std::size_t payload = off + 12;
        if (tag == tag_meta) {
            ASSERT_GE(len, 8u);
            const std::uint64_t bogus = 12345;
            std::memcpy(image.data() + payload + len - 8, &bogus, 8);
            const std::uint32_t crc =
                crc32(image.data() + payload, len);
            std::memcpy(image.data() + payload + len, &crc, 4);
            patched = true;
            break;
        }
        off = payload + len + 4;
    }
    ASSERT_TRUE(patched) << "META section not found";

    Rig b = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    replay::MultiAgentBuffer buffers(rigShapes(b, 0), 4096);
    core::RunState st;
    st.trainer = b.trainer.get();
    st.buffers = &buffers;
    std::istringstream is(image);
    const auto r = core::loadRun(is, st);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::ShapeMismatch) << r.detail;
    EXPECT_NE(r.detail.find("12345"), std::string::npos) << r.detail;
    EXPECT_EQ(buffers.size(), 0u);
}

TEST(Checkpoint, ShardedStoreRoundTripsThroughShrdSection)
{
    Rig a = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    replay::ShardedStoreConfig cfg;
    cfg.shards = 2;
    replay::ShardedStore store_a(rigShapes(a, 0), 4096, cfg);
    {
        std::vector<std::vector<Real>> obs, act, next;
        std::vector<Real> rew;
        std::vector<bool> done;
        for (std::size_t i = 0; i < store_a.numAgents(); ++i) {
            const auto &shape = store_a.agentShape(i);
            obs.emplace_back(shape.obsDim, Real(0.25));
            act.emplace_back(shape.actDim, Real(0.5));
            next.emplace_back(shape.obsDim, Real(0.75));
            rew.push_back(Real(1));
            done.push_back(false);
        }
        for (int t = 0; t < 100; ++t) {
            rew[0] = static_cast<Real>(t);
            store_a.append(obs, act, rew, next, done);
        }
    }

    std::ostringstream os;
    core::RunState save_state;
    save_state.trainer = a.trainer.get();
    save_state.sharded = &store_a;
    core::saveRun(os, save_state);

    auto other = rigConfig(Which::Maddpg);
    other.seed = 99;
    Rig b = makeRig(Which::Maddpg, other);
    replay::ShardedStore store_b(rigShapes(b, 0), 4096, cfg);
    core::RunState st;
    st.trainer = b.trainer.get();
    st.sharded = &store_b;
    std::istringstream is(os.str());
    const auto r = core::loadRun(is, st);
    ASSERT_TRUE(r) << r.detail;

    ASSERT_EQ(store_b.size(), store_a.size());
    replay::IndexPlan plan;
    for (BufferIndex i = 0; i < store_a.size(); ++i)
        plan.indices.push_back(i);
    plan.weights.assign(plan.indices.size(), Real(1));
    std::vector<replay::AgentBatch> batch_a, batch_b;
    store_a.gatherAll(plan, batch_a);
    store_b.gatherAll(plan, batch_b);
    for (std::size_t i = 0; i < batch_a.size(); ++i)
        for (std::size_t k = 0; k < batch_a[i].rewards.size(); ++k)
            ASSERT_EQ(batch_a[i].rewards.data()[k],
                      batch_b[i].rewards.data()[k])
                << "agent " << i << " row " << k;
}

TEST(Checkpoint, ResumeOnEmptyDirectoryStartsFresh)
{
    const std::string dir = freshDir("fresh_start");
    Rig rig = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    core::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyEpisodes = 2;
    rig.loop->setCheckpointing(opts);
    const auto r = rig.loop->run(4);
    EXPECT_EQ(r.resumedFromEpisode, 0u);
    EXPECT_EQ(r.episodeRewards.size(), 4u);
    // And the run left loadable snapshots behind.
    Rig probe = makeRig(Which::Maddpg, rigConfig(Which::Maddpg));
    core::RunState st;
    st.trainer = probe.trainer.get();
    EXPECT_TRUE(
        core::loadRunFile(core::latestCheckpointPath(dir), st));
}

TEST(FaultInjector, SeededKillStepIsReproducible)
{
    base::FaultInjector a(42), b(42);
    EXPECT_EQ(a.armKillAtRandomStep(10, 99),
              b.armKillAtRandomStep(10, 99));

    base::FaultInjector c;
    c.armKillAtStep(5);
    for (int i = 1; i < 5; ++i)
        EXPECT_FALSE(c.onStep()) << "step " << i;
    EXPECT_TRUE(c.onStep());
    EXPECT_EQ(c.stepsObserved(), 5u);
}

TEST(FaultInjector, FailpointStreambufFailsKthWriteAndStaysDead)
{
    std::ostringstream sink;
    base::FaultInjector injector;
    injector.armFailAtWrite(3);
    base::FailpointStreambuf guard(sink.rdbuf(), &injector);
    std::ostream os(&guard);

    os << "aa";
    os << "bb";
    EXPECT_TRUE(os.good());
    os << "cc"; // Third write: injected failure.
    EXPECT_FALSE(os.good());
    os.clear();
    os << "dd"; // Sticky: the stream stays dead.
    EXPECT_FALSE(os.good());
    EXPECT_EQ(sink.str(), "aabb");
}

TEST(FaultInjector, CorruptFileByteFlipsExactlyOneByte)
{
    const std::string path =
        ::testing::TempDir() + "marlin_corrupt_unit.bin";
    {
        std::ofstream os(path, std::ios::binary);
        os << "hello";
    }
    ASSERT_TRUE(base::corruptFileByte(path, 1, 0x01));
    EXPECT_EQ(readFileBytes(path), "hdllo"); // 'e' ^ 0x01 = 'd'
    EXPECT_FALSE(base::corruptFileByte(path, 99));
    std::filesystem::remove(path);
}

TEST(HealthGuard, SkipUpdatePolicyKeepsRunAlive)
{
    auto config = rigConfig(Which::Maddpg);
    config.healthPolicy = core::HealthGuardPolicy::SkipUpdate;
    Rig rig = makeRig(Which::Maddpg, config);
    rig.loop->run(4); // Warm up: real updates have happened.
    poisonCritic(*rig.trainer);
    const auto r = rig.loop->run(8);
    EXPECT_FALSE(r.halted);
    EXPECT_GT(r.nonFiniteUpdates, 0u);
    EXPECT_EQ(r.episodeRewards.size(), 8u);
}

TEST(HealthGuard, HaltPolicyStopsTheRun)
{
    auto config = rigConfig(Which::Maddpg);
    config.healthPolicy = core::HealthGuardPolicy::Halt;
    Rig rig = makeRig(Which::Maddpg, config);
    rig.loop->run(4);
    poisonCritic(*rig.trainer);
    const auto r = rig.loop->run(8);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.nonFiniteUpdates, 0u);
    EXPECT_LT(r.episodeRewards.size(), 8u);
}

TEST(HealthGuard, RollbackPolicyRestoresCleanState)
{
    const std::string dir = freshDir("rollback");
    auto config = rigConfig(Which::Maddpg);
    config.healthPolicy = core::HealthGuardPolicy::Rollback;
    config.healthMaxRollbacks = 2;
    Rig rig = makeRig(Which::Maddpg, config);
    core::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyEpisodes = 1;
    opts.resume = false; // The poison below must survive run()'s
                         // startup, or there is nothing to roll back.
    rig.loop->setCheckpointing(opts);
    rig.loop->run(4); // Rotation holds episodes 3 and 4.

    poisonCritic(*rig.trainer);
    const auto r = rig.loop->run(8);
    EXPECT_FALSE(r.halted);
    EXPECT_GE(r.rollbacks, 1u);
    EXPECT_EQ(r.episodeRewards.size(), 8u);
    // The restored critic is finite again.
    const auto params = rig.trainer->networks(0).critic.params();
    EXPECT_TRUE(std::isfinite(params[0]->value.data()[0]));
}

} // namespace
} // namespace marlin
