/**
 * @file
 * AVX2 kernel table. This is the only TU built with -mavx2 -mfma;
 * it is entered strictly behind the cpuid check in isaAvailable(),
 * so the rest of the binary stays runnable on baseline x86-64.
 *
 * Bit-exactness with the scalar reference is a hard contract here:
 * every kernel maps one output element to one SIMD lane and runs
 * the identical IEEE op sequence the scalar table runs. That means
 *  - separate _mm256_mul_ps / _mm256_add_ps, never _mm256_fmadd_ps
 *    (FMA's single rounding would diverge), and the TU is compiled
 *    with -ffp-contract=off so the compiler cannot re-fuse them;
 *  - compare+blend instead of min/max for ReLU and clamp, because
 *    vmaxps(-0, +0) returns +0 where the scalar branch keeps -0;
 *  - _mm256_sqrt_ps / _mm256_div_ps only, which are IEEE
 *    correctly-rounded — no rsqrt/rcp approximations.
 * Tail elements fall back to the same scalar expressions, compiled
 * in this TU under the same -ffp-contract=off.
 */

#include <cmath>
#include <cstring>
#include <immintrin.h>

#include "marlin/numeric/kernels.hh"

namespace marlin::numeric::kernels
{

namespace
{

constexpr std::size_t lanes = 8; // 256-bit / float32

void
axpyAvx2(Real a, const Real *x, Real *y, std::size_t n)
{
    const __m256 va = _mm256_set1_ps(a);
    std::size_t i = 0;
    for (; i + lanes <= n; i += lanes) {
        const __m256 vx = _mm256_loadu_ps(x + i);
        const __m256 vy = _mm256_loadu_ps(y + i);
        _mm256_storeu_ps(y + i,
                         _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

void
addAvx2(const Real *x, Real *y, std::size_t n)
{
    std::size_t i = 0;
    for (; i + lanes <= n; i += lanes) {
        const __m256 vx = _mm256_loadu_ps(x + i);
        const __m256 vy = _mm256_loadu_ps(y + i);
        _mm256_storeu_ps(y + i, _mm256_add_ps(vy, vx));
    }
    for (; i < n; ++i)
        y[i] += x[i];
}

void
subAvx2(const Real *x, Real *y, std::size_t n)
{
    std::size_t i = 0;
    for (; i + lanes <= n; i += lanes) {
        const __m256 vx = _mm256_loadu_ps(x + i);
        const __m256 vy = _mm256_loadu_ps(y + i);
        _mm256_storeu_ps(y + i, _mm256_sub_ps(vy, vx));
    }
    for (; i < n; ++i)
        y[i] -= x[i];
}

void
scaleAvx2(Real a, Real *y, std::size_t n)
{
    const __m256 va = _mm256_set1_ps(a);
    std::size_t i = 0;
    for (; i + lanes <= n; i += lanes) {
        const __m256 vy = _mm256_loadu_ps(y + i);
        _mm256_storeu_ps(y + i, _mm256_mul_ps(vy, va));
    }
    for (; i < n; ++i)
        y[i] *= a;
}

void
clampAvx2(Real lo, Real hi, Real *y, std::size_t n)
{
    const __m256 vlo = _mm256_set1_ps(lo);
    const __m256 vhi = _mm256_set1_ps(hi);
    std::size_t i = 0;
    for (; i + lanes <= n; i += lanes) {
        __m256 v = _mm256_loadu_ps(y + i);
        // (v < lo) ? lo : v, then (hi < v) ? hi : v — ordered-quiet
        // compares leave NaN lanes untouched, like std::clamp.
        const __m256 below = _mm256_cmp_ps(v, vlo, _CMP_LT_OQ);
        v = _mm256_blendv_ps(v, vlo, below);
        const __m256 above = _mm256_cmp_ps(vhi, v, _CMP_LT_OQ);
        v = _mm256_blendv_ps(v, vhi, above);
        _mm256_storeu_ps(y + i, v);
    }
    for (; i < n; ++i) {
        const Real v = y[i];
        y[i] = (v < lo) ? lo : (hi < v) ? hi : v;
    }
}

void
reluForwardAvx2(const Real *x, Real *y, std::size_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + lanes <= n; i += lanes) {
        const __m256 vx = _mm256_loadu_ps(x + i);
        const __m256 neg = _mm256_cmp_ps(vx, zero, _CMP_LT_OQ);
        _mm256_storeu_ps(y + i, _mm256_andnot_ps(neg, vx));
    }
    for (; i < n; ++i)
        y[i] = (x[i] < Real(0)) ? Real(0) : x[i];
}

void
reluBackwardAvx2(const Real *pre, Real *g, std::size_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + lanes <= n; i += lanes) {
        const __m256 vp = _mm256_loadu_ps(pre + i);
        const __m256 vg = _mm256_loadu_ps(g + i);
        const __m256 dead = _mm256_cmp_ps(vp, zero, _CMP_LE_OQ);
        _mm256_storeu_ps(g + i, _mm256_andnot_ps(dead, vg));
    }
    for (; i < n; ++i)
        if (pre[i] <= Real(0))
            g[i] = Real(0);
}

void
adamStepAvx2(const AdamParams &p, const Real *g, Real *w, Real *m,
             Real *v, std::size_t n)
{
    const Real omb1s = Real(1) - p.beta1;
    const Real omb2s = Real(1) - p.beta2;
    const __m256 b1 = _mm256_set1_ps(p.beta1);
    const __m256 b2 = _mm256_set1_ps(p.beta2);
    const __m256 omb1 = _mm256_set1_ps(omb1s);
    const __m256 omb2 = _mm256_set1_ps(omb2s);
    const __m256 corr1 = _mm256_set1_ps(p.biasCorr1);
    const __m256 corr2 = _mm256_set1_ps(p.biasCorr2);
    const __m256 lr = _mm256_set1_ps(p.lr);
    const __m256 eps = _mm256_set1_ps(p.epsilon);
    std::size_t j = 0;
    for (; j + lanes <= n; j += lanes) {
        const __m256 vg = _mm256_loadu_ps(g + j);
        __m256 vm = _mm256_loadu_ps(m + j);
        __m256 vv = _mm256_loadu_ps(v + j);
        vm = _mm256_add_ps(_mm256_mul_ps(b1, vm),
                           _mm256_mul_ps(omb1, vg));
        // Matches the scalar (omb2 * g) * g association.
        vv = _mm256_add_ps(
            _mm256_mul_ps(b2, vv),
            _mm256_mul_ps(_mm256_mul_ps(omb2, vg), vg));
        const __m256 mhat = _mm256_div_ps(vm, corr1);
        const __m256 vhat = _mm256_div_ps(vv, corr2);
        const __m256 denom =
            _mm256_add_ps(_mm256_sqrt_ps(vhat), eps);
        const __m256 step =
            _mm256_div_ps(_mm256_mul_ps(lr, mhat), denom);
        _mm256_storeu_ps(m + j, vm);
        _mm256_storeu_ps(v + j, vv);
        _mm256_storeu_ps(
            w + j, _mm256_sub_ps(_mm256_loadu_ps(w + j), step));
    }
    for (; j < n; ++j) {
        m[j] = p.beta1 * m[j] + omb1s * g[j];
        v[j] = p.beta2 * v[j] + omb2s * g[j] * g[j];
        const Real mhat = m[j] / p.biasCorr1;
        const Real vhat = v[j] / p.biasCorr2;
        w[j] -= p.lr * mhat / (std::sqrt(vhat) + p.epsilon);
    }
}

void
softUpdateAvx2(Real tau, const Real *s, Real *d, std::size_t n)
{
    const Real omts = Real(1) - tau;
    const __m256 vt = _mm256_set1_ps(tau);
    const __m256 omt = _mm256_set1_ps(omts);
    std::size_t j = 0;
    for (; j + lanes <= n; j += lanes) {
        const __m256 vs = _mm256_loadu_ps(s + j);
        const __m256 vd = _mm256_loadu_ps(d + j);
        _mm256_storeu_ps(d + j,
                         _mm256_add_ps(_mm256_mul_ps(vt, vs),
                                       _mm256_mul_ps(omt, vd)));
    }
    for (; j < n; ++j)
        d[j] = tau * s[j] + omts * d[j];
}

void
copyAvx2(const Real *s, Real *d, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 * lanes <= n; i += 4 * lanes) {
        const __m256 a = _mm256_loadu_ps(s + i);
        const __m256 b = _mm256_loadu_ps(s + i + lanes);
        const __m256 c = _mm256_loadu_ps(s + i + 2 * lanes);
        const __m256 e = _mm256_loadu_ps(s + i + 3 * lanes);
        _mm256_storeu_ps(d + i, a);
        _mm256_storeu_ps(d + i + lanes, b);
        _mm256_storeu_ps(d + i + 2 * lanes, c);
        _mm256_storeu_ps(d + i + 3 * lanes, e);
    }
    if (i < n)
        std::memcpy(d + i, s + i, (n - i) * sizeof(Real));
}

void
gemmBlockAvx2(const Real *a, std::size_t astride, const Real *b,
              std::size_t ldb, std::size_t kb, Real *c,
              std::size_t n, bool skip_zeros)
{
    for (std::size_t t = 0; t < kb; ++t) {
        const Real coef = a[t * astride];
        if (skip_zeros && coef == Real(0))
            continue;
        const Real *brow = b + t * ldb;
        const __m256 vc = _mm256_set1_ps(coef);
        std::size_t j = 0;
        for (; j + lanes <= n; j += lanes) {
            const __m256 vb = _mm256_loadu_ps(brow + j);
            const __m256 acc = _mm256_loadu_ps(c + j);
            _mm256_storeu_ps(
                c + j,
                _mm256_add_ps(acc, _mm256_mul_ps(vc, vb)));
        }
        for (; j < n; ++j)
            c[j] += coef * brow[j];
    }
}

constexpr KernelTable avx2TableInstance = {
    Isa::Avx2,       axpyAvx2,       addAvx2,
    subAvx2,         scaleAvx2,      clampAvx2,
    reluForwardAvx2, reluBackwardAvx2, adamStepAvx2,
    softUpdateAvx2,  copyAvx2,       gemmBlockAvx2,
};

} // namespace

const KernelTable &
avx2Table()
{
    return avx2TableInstance;
}

} // namespace marlin::numeric::kernels
