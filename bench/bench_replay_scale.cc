/**
 * @file
 * PR-10 defining measurement: sampler throughput and simulated cache
 * behaviour of the sharded, out-of-core replay engine as capacity
 * grows from 1M toward 100M transitions — far past what the paper's
 * in-RAM 1e6-entry buffer (Section V) could hold.
 *
 * Three families, each over the transition-count sweep:
 *
 *   BM_ShardedAppend/N  steady-state append (ring overwrite + cold
 *                       write-behind spill) in records/s;
 *   BM_ShardedGather/N  uniform-random batch gathers through the
 *                       hot/cold tiers in sampled records/s, plus
 *                       memsim miss rates of one traced gather;
 *   BM_AccmerGather/N   the AccMER-style reuse sampler (sum-tree
 *                       references expanded into locality runs,
 *                       plans reused across updates) driving the
 *                       same gathers.
 *
 * Stores keep the newest quarter of capacity hot in RAM and spill
 * the rest into mmap cold segments, so the 100M point genuinely
 * exercises out-of-core behaviour. CI runs the 1M slice only
 * (--benchmark_filter=/1000000$); EXPERIMENTS.md has the full
 * sweep recipe.
 *
 * Flags (consumed before google-benchmark parses argv):
 *   --replay-shards N     power-of-two shard count (default 2)
 *   --replay-cold-dir D   cold-segment directory (default
 *                         /tmp/marlin_replay_scale)
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "common.hh"
#include "marlin/memsim/trace_replay.hh"
#include "marlin/replay/reuse_sampler.hh"
#include "marlin/replay/sharded_store.hh"

using namespace marlin;

namespace
{

std::size_t gShards = 2;
std::string gColdDir = "/tmp/marlin_replay_scale";

/** Tiny paper-style shapes: two agents, obs 4, act 2. */
std::vector<replay::TransitionShape>
benchShapes()
{
    return {{4, 2}, {4, 2}};
}

/**
 * Build-or-fetch a filled store for @p capacity. Cached per process
 * so google-benchmark's iteration-count probing never re-pays the
 * fill (at 100M records the fill is minutes of memcpy + spill).
 */
replay::ShardedStore &
filledStore(BufferIndex capacity)
{
    static std::map<BufferIndex,
                    std::unique_ptr<replay::ShardedStore>>
        cache;
    auto it = cache.find(capacity);
    if (it != cache.end())
        return *it->second;

    replay::ShardedStoreConfig cfg;
    cfg.shards = gShards;
    // Newest quarter hot; the rest is only reachable via the cold
    // tier, so every gather mixes RAM hits with mmap faults.
    cfg.hotCapacity = capacity / 4;
    cfg.coldDir =
        gColdDir + "/cap-" + std::to_string(capacity);
    std::error_code ec;
    std::filesystem::create_directories(cfg.coldDir, ec);
    auto store = std::make_unique<replay::ShardedStore>(
        benchShapes(), capacity, cfg);

    const replay::JointTransitionLayout &layout = store->layout();
    std::vector<Real> rec(layout.stride);
    Rng rng(42);
    for (Real &v : rec)
        v = rng.uniformf();
    for (BufferIndex i = 0; i < capacity; ++i) {
        // Perturb one scalar per record: content-unique records
        // without paying a full re-randomize on the fill path.
        rec[i % layout.stride] = rng.uniformf();
        store->appendRecord(layout, rec.data());
    }
    auto [pos, ok] = cache.emplace(capacity, std::move(store));
    (void)ok;
    return *pos->second;
}

/** Uniform batch plan over [0, size). */
void
uniformPlan(replay::IndexPlan &plan, BufferIndex size,
            std::size_t batch, Rng &rng)
{
    plan.indices.resize(batch);
    plan.weights.assign(batch, Real(1));
    plan.priorityIds.clear();
    for (std::size_t i = 0; i < batch; ++i)
        plan.indices[i] = rng.randint(size);
}

void
BM_ShardedAppend(benchmark::State &state)
{
    replay::ShardedStore &store =
        filledStore(static_cast<BufferIndex>(state.range(0)));
    const replay::JointTransitionLayout &layout = store.layout();
    std::vector<Real> rec(layout.stride, Real(0.5));
    for (auto _ : state)
        store.appendRecord(layout, rec.data());
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(layout.stride * sizeof(Real)));
    state.counters["spilled"] = static_cast<double>(
        store.coldEnabled() ? store.coldTier(0)->spilledCount() : 0);
}

void
BM_ShardedGather(benchmark::State &state)
{
    const auto capacity = static_cast<BufferIndex>(state.range(0));
    replay::ShardedStore &store = filledStore(capacity);
    constexpr std::size_t batch = 256;
    Rng rng(7);
    replay::IndexPlan plan;
    std::vector<replay::AgentBatch> batches;
    // Warm gather so the timed loop measures the zero-alloc steady
    // state, not first-call matrix sizing.
    uniformPlan(plan, store.size(), batch, rng);
    store.gatherAll(plan, batches);
    for (auto _ : state) {
        uniformPlan(plan, store.size(), batch, rng);
        store.gatherAll(plan, batches);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(batch));

    // Memsim attribution: one traced gather replayed through the
    // default hierarchy gives the miss-rate shape the paper reads
    // off hardware counters (Fig. 4), here as a function of how far
    // past RAM the replay reaches.
    replay::AccessTrace trace;
    uniformPlan(plan, store.size(), batch, rng);
    store.gatherAll(plan, batches, &trace);
    memsim::CacheHierarchy hierarchy;
    const memsim::TraceReplayResult sim =
        memsim::replayTrace(hierarchy, trace);
    const auto pct = [](std::uint64_t part, std::uint64_t whole) {
        return whole > 0 ? 100.0 * static_cast<double>(part) /
                               static_cast<double>(whole)
                         : 0.0;
    };
    state.counters["l1_miss_pct"] =
        pct(sim.stats.l1.misses, sim.stats.l1.accesses());
    state.counters["l3_miss_pct"] =
        pct(sim.stats.l3.misses, sim.stats.l3.accesses());
    state.counters["dram_accesses_per_gather"] =
        static_cast<double>(sim.stats.memAccesses());
    state.counters["trace_bytes"] = static_cast<double>(sim.bytes);
}

void
BM_AccmerGather(benchmark::State &state)
{
    const auto capacity = static_cast<BufferIndex>(state.range(0));
    replay::ShardedStore &store = filledStore(capacity);
    constexpr std::size_t batch = 256;

    replay::PerConfig per;
    per.capacity = capacity;
    replay::ReuseConfig reuse; // window 4, run length 8.
    replay::ReuseSampler sampler(per, reuse);
    // Give the sum tree mass over the whole logical space, exactly
    // what onTransitionAdded does during training.
    for (BufferIndex i = 0; i < store.size(); ++i)
        sampler.onAdd(i);

    Rng rng(11);
    replay::IndexPlan plan;
    std::vector<replay::AgentBatch> batches;
    sampler.planInto(store.size(), batch, rng, plan);
    store.gatherAll(plan, batches);
    for (auto _ : state) {
        sampler.planInto(store.size(), batch, rng, plan);
        store.gatherAll(plan, batches);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(batch));
}

/** 1M / 10M / 100M transition sweep (decimal, paper-style). */
void
scaleArgs(benchmark::internal::Benchmark *bench)
{
    bench->Arg(1'000'000)->Arg(10'000'000)->Arg(100'000'000);
    bench->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_ShardedAppend)->Apply(scaleArgs);
BENCHMARK(BM_ShardedGather)->Apply(scaleArgs);
BENCHMARK(BM_AccmerGather)->Arg(1'000'000)->Unit(
    benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    bench::initThreads(argc, argv);
    const char *isa = bench::initIsa(argc, argv);

    // Consume --replay-shards / --replay-cold-dir before
    // google-benchmark sees (and rejects) them.
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--replay-shards") == 0 &&
            i + 1 < argc) {
            gShards = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strncmp(arg, "--replay-shards=", 16) == 0) {
            gShards = static_cast<std::size_t>(
                std::strtoul(arg + 16, nullptr, 10));
        } else if (std::strcmp(arg, "--replay-cold-dir") == 0 &&
                   i + 1 < argc) {
            gColdDir = argv[++i];
        } else if (std::strncmp(arg, "--replay-cold-dir=", 18) ==
                   0) {
            gColdDir = arg + 18;
        } else {
            argv[out++] = argv[i];
        }
    }
    for (int i = out; i < argc; ++i)
        argv[i] = nullptr;
    argc = out;
    if (gShards == 0 || (gShards & (gShards - 1)) != 0)
        fatal("--replay-shards %zu is not a power of two", gShards);

    std::printf("\n=== bench_replay_scale ===\n");
    // Banner with the replay_shards key (validated by
    // check_bench_json.py): shard count changes the storage walk,
    // so numbers must never be misattributed across it.
    std::printf("{\"bench\": \"bench_replay_scale\", "
                "\"threads\": %zu, \"actors\": %zu, "
                "\"isa\": \"%s\", \"commit\": \"%s\", "
                "\"replay_shards\": %zu}\n",
                base::ThreadPool::globalThreads(),
                bench::bannerActors(), isa, marlin::gitCommit,
                gShards);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
