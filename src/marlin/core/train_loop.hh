/**
 * @file
 * End-to-end training loop with the paper's phase structure:
 * action selection -> environment step -> replay insertion ->
 * (periodically) update all trainers.
 *
 * The loop is crash-safe: with checkpointing enabled it rotates a
 * full-state snapshot (networks, replay, RNG streams, progress)
 * every N episodes, auto-resumes from the newest loadable snapshot,
 * and a run killed at an arbitrary step then resumed reproduces the
 * uninterrupted run's episode rewards bit-for-bit.
 */

#ifndef MARLIN_CORE_TRAIN_LOOP_HH
#define MARLIN_CORE_TRAIN_LOOP_HH

#include <functional>
#include <memory>

#include "marlin/core/checkpoint.hh"
#include "marlin/core/trainer.hh"
#include "marlin/replay/sharded_store.hh"
#include "marlin/env/environment.hh"
#include "marlin/obs/telemetry.hh"

namespace marlin::core
{

/** Outcome of a training run. */
struct TrainResult
{
    /**
     * Mean (over agents) episode return, one entry per episode —
     * including episodes restored from a checkpoint on resume, so a
     * resumed run's vector lines up with an uninterrupted one.
     */
    std::vector<Real> episodeRewards;
    /** Accumulated phase timings for the whole run. */
    profile::PhaseTimer timer;
    StepCount envSteps = 0;
    StepCount updateCalls = 0;
    /** Mean reward over the final 10% of episodes. */
    Real finalScore = 0;
    /** An armed fault injector killed the run mid-episode. */
    bool killed = false;
    /** A health guard stopped the run (Halt, or rollback budget). */
    bool halted = false;
    /** Agent updates that saw a non-finite loss or gradient. */
    std::size_t nonFiniteUpdates = 0;
    /** Checkpoint rollbacks taken by HealthGuardPolicy::Rollback. */
    std::size_t rollbacks = 0;
    /** Episode the run resumed from (0 when started fresh). */
    std::size_t resumedFromEpisode = 0;
    /**
     * Allocation discipline of the steady-state regime (every step
     * after warm-up and the first full policy-delay cycle), measured
     * by base::AllocGuard around the step body: action selection,
     * env step, replay insertion and the trainer update. Telemetry,
     * checkpointing and fault-injection bookkeeping sit outside the
     * guarded region. A healthy build reports zero allocations.
     */
    StepCount steadyStateSteps = 0;
    std::uint64_t steadyStateAllocs = 0;
    std::uint64_t steadyStateAllocBytes = 0;
};

/** Per-episode progress callback. */
struct EpisodeInfo
{
    std::size_t episode = 0;
    Real meanReward = 0;
    Real epsilonUnused = 0;
};

using EpisodeCallback = std::function<void(const EpisodeInfo &)>;

/** Where and how often the loop checkpoints itself. */
struct CheckpointOptions
{
    /** Directory for latest/previous rotation; empty disables. */
    std::string dir;
    /** Episodes between snapshots. */
    std::size_t everyEpisodes = 1;
    /** Try resumeLatest() before training starts. */
    bool resume = true;
};

/**
 * Owns the replay storage and drives the environment/trainer pair.
 *
 * With SamplingBackend::Interleaved the loop also maintains the
 * reorganized key-value store next to the per-agent buffers,
 * charging its maintenance to the LayoutReorg phase.
 */
class TrainLoop
{
  public:
    /**
     * @param environment Environment to train in (not owned).
     * @param trainer MADDPG/MATD3 trainer (not owned).
     * @param config Must match the trainer's config.
     */
    TrainLoop(env::Environment &environment, Trainer &trainer,
              TrainConfig config);

    /**
     * Enable rotating full-state checkpoints. Requires a trainer
     * derived from CtdeTrainerBase (both shipped algorithms are).
     */
    void setCheckpointing(CheckpointOptions options);

    /**
     * Stream one telemetry step record every @p every_steps
     * environment steps (plus the run summary from the final
     * record). The writer is a pure observer — training numerics,
     * RNG streams and checkpoint bytes are identical with or without
     * it. Not owned; pass nullptr to detach.
     */
    void setTelemetry(obs::TelemetryWriter *writer,
                      std::size_t every_steps = 1);

    /**
     * Attach a fault injector: the loop polls onStep() once per
     * environment step and abandons the run (result.killed) when a
     * kill fires, without any cleanup — on-disk state is left
     * exactly as a SIGKILL would leave it. The injector is also
     * consulted for checkpoint write failures. Not owned; pass
     * nullptr to detach.
     */
    void setFaultInjector(base::FaultInjector *injector);

    /**
     * Train until @p episodes episodes have completed (including
     * episodes restored on resume). Progress lives in the loop, so
     * a kill + fresh TrainLoop + resume continues where the last
     * checkpoint left off.
     */
    TrainResult run(std::size_t episodes,
                    const EpisodeCallback &callback = nullptr);

    /**
     * Per-agent buffers (PerAgent/Interleaved backends only; the
     * sharded backend owns no per-agent rings).
     */
    const replay::MultiAgentBuffer &
    buffer() const
    {
        MARLIN_ASSERT(buffers != nullptr,
                      "no per-agent buffers under this backend");
        return *buffers;
    }

    /** The replay storage the trainer samples from. */
    const replay::ReplayStore &replayStore() const { return *active; }

    /** Null unless the interleaved backend is active. */
    const replay::InterleavedReplayStore *
    interleavedStore() const
    {
        return store.get();
    }

    /** Null unless the sharded backend is active. */
    const replay::ShardedStore *
    shardedStore() const
    {
        return sharded.get();
    }

    /** Episodes completed so far (survives checkpoint/resume). */
    std::size_t episodesCompleted() const
    {
        return static_cast<std::size_t>(progress.episodeIndex);
    }

  private:
    env::Environment &environment;
    Trainer &trainer;
    TrainConfig config;
    /** Per-agent rings (null under the sharded backend, so a 100M
     *  out-of-core capacity never materializes in RAM). */
    std::unique_ptr<replay::MultiAgentBuffer> buffers;
    std::unique_ptr<replay::InterleavedReplayStore> store;
    /** Sharded/tiered storage (sharded backend only). */
    std::unique_ptr<replay::ShardedStore> sharded;
    /** The store the trainer samples from (never null). */
    replay::ReplayStore *active = nullptr;
    /** Resumable run progress (serialized in the LOOP section). */
    LoopProgress progress;
    CheckpointOptions ckptOptions;
    base::FaultInjector *injector = nullptr;
    obs::TelemetryWriter *telemetry = nullptr;
    std::size_t telemetryEvery = 1;

    /**
     * Phase accumulator values at the last telemetry record, so each
     * record carries per-phase deltas rather than running totals.
     */
    std::array<std::uint64_t, profile::numPhases> telemetryLastNs{};
    /** Last trainer update's stats, for the next step record. */
    UpdateStats telemetryLastStats;
    bool telemetryHaveStats = false;

    /** Emit one step record if the cadence says so. */
    void maybeEmitTelemetry(const TrainResult &result);

    /**
     * Trainer updates performed by THIS process (deliberately not
     * serialized): a run resumed from a checkpoint inherits
     * progress.updateCalls but cold scratch buffers, so the
     * steady-state allocation guard must wait for live updates to
     * warm them, not restored ones.
     */
    StepCount liveUpdates = 0;

    // Step-loop scratch, retained across steps and episodes so the
    // steady-state step body performs no heap allocation. The
    // current observations swap with the step result's observation
    // buffers each step, so both sides keep their capacity.
    std::vector<std::vector<Real>> obs;
    env::StepResult stepScratch;
    std::vector<int> actionScratch;
    std::vector<std::array<Real, 2>> forceScratch;
    std::vector<env::Vec2> vecForceScratch;
    std::vector<std::vector<Real>> onehotScratch;

    /** RunState bundle over this loop's members. */
    RunState runState(CtdeTrainerBase *ctde);

    /** Fill result from progress and compute the final score. */
    TrainResult &finish(TrainResult &result);
};

} // namespace marlin::core

#endif // MARLIN_CORE_TRAIN_LOOP_HH
