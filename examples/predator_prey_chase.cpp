/**
 * @file
 * Competitive scenario walkthrough: train MADDPG predators against
 * scripted prey, comparing the baseline uniform sampler with the
 * paper's cache locality-aware sampler side by side — same seeds,
 * same environment — and then render a short greedy chase as ASCII
 * frames so the learned behaviour is visible.
 *
 *   ./predator_prey_chase [episodes]
 */

#include <cstdio>
#include <cstdlib>

#include "marlin/marlin.hh"

using namespace marlin;

namespace
{

struct RunOutcome
{
    Real finalScore = 0;
    double samplingSeconds = 0;
    double totalSeconds = 0;
};

RunOutcome
trainOnce(std::size_t episodes, core::SamplerFactory factory,
          const char *label)
{
    auto environment = env::makePredatorPreyEnv(3, 11);
    core::TrainConfig config;
    config.batchSize = 128;
    config.bufferCapacity = 1 << 15;
    config.warmupTransitions = 256;
    config.updateEvery = 50;
    config.epsilonDecayEpisodes = episodes / 2;
    config.seed = 11;

    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    core::MaddpgTrainer trainer(dims, environment->actionDim(),
                                config, std::move(factory));
    core::TrainLoop loop(*environment, trainer, config);
    std::printf("training %s...\n", label);
    auto result = loop.run(episodes);

    RunOutcome outcome;
    outcome.finalScore = result.finalScore;
    outcome.samplingSeconds =
        result.timer.seconds(profile::Phase::Sampling);
    outcome.totalSeconds = result.timer.totalSeconds();
    return outcome;
}

/** Render one world state as a small ASCII grid. */
void
renderFrame(const env::World &world, int step)
{
    constexpr int size = 21; // [-1, 1] mapped onto a 21x21 grid.
    char grid[size][size];
    for (auto &row : grid)
        for (char &c : row)
            c = '.';
    auto plot = [&](env::Vec2 pos, char c) {
        int gx = static_cast<int>((pos.x + 1) / 2 * (size - 1));
        int gy = static_cast<int>((pos.y + 1) / 2 * (size - 1));
        gx = std::clamp(gx, 0, size - 1);
        gy = std::clamp(gy, 0, size - 1);
        grid[size - 1 - gy][gx] = c;
    };
    for (const auto &lm : world.landmarks)
        plot(lm.pos, '#');
    for (std::size_t i = 0; i < world.agents.size(); ++i) {
        plot(world.agents[i].pos,
             world.agents[i].adversary
                 ? static_cast<char>('1' + i)
                 : 'P');
    }
    std::printf("step %d\n", step);
    for (auto &row : grid) {
        std::fwrite(row, 1, size, stdout);
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t episodes =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1200;

    // --- 1. Baseline vs cache-aware training, same seeds ---------
    auto baseline = trainOnce(
        episodes,
        [] { return std::make_unique<replay::UniformSampler>(); },
        "baseline MADDPG (uniform sampling)");
    auto cache_aware = trainOnce(
        episodes,
        [] {
            return std::make_unique<replay::LocalityAwareSampler>(
                replay::LocalityConfig{16, 8});
        },
        "cache-aware MADDPG (16 neighbors)");

    std::printf("\n%-26s %14s %16s %12s\n", "variant", "final score",
                "sampling (s)", "total (s)");
    std::printf("%-26s %14.2f %16.3f %12.2f\n", "baseline",
                baseline.finalScore, baseline.samplingSeconds,
                baseline.totalSeconds);
    std::printf("%-26s %14.2f %16.3f %12.2f\n", "cache-aware",
                cache_aware.finalScore, cache_aware.samplingSeconds,
                cache_aware.totalSeconds);

    // --- 2. Watch a short greedy chase --------------------------
    std::printf("\nreplaying a greedy episode (predators 1-3 chase "
                "prey P, # are obstacles)\n\n");
    auto environment = env::makePredatorPreyEnv(3, 11);
    core::TrainConfig config;
    config.seed = 11;
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    core::MaddpgTrainer trainer(
        dims, environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });

    auto obs = environment->reset();
    for (int step = 0; step < 6; ++step) {
        renderFrame(environment->world(), step);
        auto actions = trainer.greedyActions(obs);
        obs = environment->step(actions).observations;
    }
    return 0;
}
