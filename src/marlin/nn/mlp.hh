/**
 * @file
 * Multi-layer perceptron matching the paper's network shape:
 * two hidden ReLU layers of 64 units each (configurable).
 */

#ifndef MARLIN_NN_MLP_HH
#define MARLIN_NN_MLP_HH

#include <vector>

#include "marlin/nn/activation.hh"
#include "marlin/nn/linear.hh"

namespace marlin::nn
{

/** Shape and activation configuration of an Mlp. */
struct MlpConfig
{
    std::size_t inputDim = 0;
    std::vector<std::size_t> hiddenDims = {64, 64};
    std::size_t outputDim = 0;
    Activation hiddenActivation = Activation::ReLU;
    Activation outputActivation = Activation::Identity;
};

/**
 * Feed-forward network: Linear -> act -> ... -> Linear -> out-act.
 *
 * One backward() per forward(); gradients accumulate into each
 * layer's Param::grad until zeroGrad().
 */
class Mlp
{
  public:
    Mlp() = default;

    /** Construct with fan-in uniform initialization. */
    Mlp(const MlpConfig &config, Rng &rng);

    const MlpConfig &config() const { return _config; }

    /** y = net(x). */
    void forward(const Matrix &x, Matrix &y);

    /** Convenience: forward returning the output by value. */
    Matrix forward(const Matrix &x);

    /**
     * Backpropagate dL/dy, accumulating parameter gradients;
     * optionally produce dL/dx (needed to chain critic -> actor).
     */
    void backward(const Matrix &grad_y, Matrix *grad_x = nullptr);

    /** All trainable parameters, in layer order. */
    std::vector<Param *> params();
    std::vector<const Param *> params() const;

    /** Total scalar parameter count. */
    std::size_t paramCount() const;

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** Hard-copy parameters from @p src (target network init). */
    void copyFrom(const Mlp &src);

    /**
     * Polyak soft update: this = tau * src + (1 - tau) * this.
     * The paper uses tau = 0.01.
     */
    void softUpdateFrom(const Mlp &src, Real tau);

  private:
    MlpConfig _config;
    std::vector<Linear> layers;
    std::vector<ActivationLayer> acts;
    // Scratch activations to avoid per-call allocation.
    std::vector<Matrix> preact;
    std::vector<Matrix> postact;
    // Backward scratch, one pair per layer: dL/d(pre-activation)
    // and dL/d(layer input). Persisting them makes a warm backward
    // pass allocation-free.
    std::vector<Matrix> dpre;
    std::vector<Matrix> dinput;
};

} // namespace marlin::nn

#endif // MARLIN_NN_MLP_HH
