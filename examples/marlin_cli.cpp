/**
 * @file
 * Full command-line training driver: pick the algorithm, task,
 * sampler, layout backend and hyper-parameters; optionally resume
 * from / save to a checkpoint. This is the "run the paper" entry
 * point for users who don't want to write C++.
 *
 *   ./marlin_cli --algo maddpg --task pp --agents 6 \
 *       --sampler locality --neighbors 16 --episodes 2000 \
 *       --save-checkpoint run.ckpt
 *
 * Crash-safe mode: --checkpoint-dir rotates full-state snapshots
 * every --checkpoint-every episodes and auto-resumes from them, so
 * a killed run picks up where the last snapshot left off:
 *
 *   ./marlin_cli --task cn --episodes 2000 --checkpoint-dir ckpts
 *
 * Live introspection: --stats-port N serves GET /metrics (Prometheus
 * text of the whole obs registry) and /healthz while training runs.
 * In async mode scrapes are serviced by the supervisor's watchdog
 * tick — the actor and learner hot paths never touch a socket.
 */

#include <cstdio>
#include <cstdlib>

#include "marlin/base/args.hh"
#include "marlin/base/fault_injector.hh"
#include "marlin/core/checkpoint.hh"
#include "marlin/env/physical_deception.hh"
#include "marlin/marlin.hh"
#include "marlin/replay/rank_sampler.hh"
#include "marlin/replay/reuse_sampler.hh"

using namespace marlin;

namespace
{

std::unique_ptr<env::Environment>
buildEnvironment(const std::string &task, std::size_t agents,
                 std::uint64_t seed)
{
    if (task == "pp")
        return env::makePredatorPreyEnv(agents, seed);
    if (task == "cn")
        return env::makeCooperativeNavigationEnv(agents, seed);
    if (task == "pd") {
        env::PhysicalDeceptionConfig cfg;
        cfg.numGoodAgents = agents > 1 ? agents - 1 : 1;
        return std::make_unique<env::Environment>(
            std::make_unique<env::PhysicalDeceptionScenario>(cfg),
            seed);
    }
    fatal("unknown task '%s' (expected pp, cn or pd)", task.c_str());
}

core::SamplerFactory
buildSamplerFactory(const std::string &sampler, std::size_t neighbors,
                    BufferIndex capacity, std::size_t reuse_window)
{
    if (sampler == "uniform") {
        return [] {
            return std::make_unique<replay::UniformSampler>();
        };
    }
    if (sampler == "locality") {
        return [neighbors] {
            return std::make_unique<replay::LocalityAwareSampler>(
                replay::LocalityConfig{neighbors, 0});
        };
    }
    if (sampler == "per") {
        return [capacity] {
            replay::PerConfig cfg;
            cfg.capacity = capacity;
            return std::make_unique<replay::PrioritizedSampler>(cfg);
        };
    }
    if (sampler == "per-rank") {
        return [capacity] {
            replay::PerConfig cfg;
            cfg.capacity = capacity;
            return std::make_unique<replay::RankBasedSampler>(cfg);
        };
    }
    if (sampler == "ip") {
        return [capacity] {
            replay::PerConfig cfg;
            cfg.capacity = capacity;
            return std::make_unique<
                replay::InfoPrioritizedLocalitySampler>(cfg);
        };
    }
    if (sampler == "accmer") {
        return [capacity, neighbors, reuse_window] {
            replay::PerConfig cfg;
            cfg.capacity = capacity;
            replay::ReuseConfig reuse;
            reuse.reuseWindow = reuse_window;
            reuse.runLength = neighbors;
            return std::make_unique<replay::ReuseSampler>(cfg,
                                                          reuse);
        };
    }
    fatal("unknown sampler '%s' (expected uniform, locality, per, "
          "per-rank, ip or accmer)",
          sampler.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("marlin_cli");
    args.addOption("algo", "maddpg", "algorithm: maddpg or matd3");
    args.addOption("task", "cn",
                   "task: pp (predator-prey), cn (cooperative "
                   "navigation), pd (physical deception)");
    args.addOption("agents", "3", "number of trained agents");
    args.addOption("episodes", "1000", "training episodes");
    args.addOption("sampler", "uniform",
                   "uniform, locality, per, per-rank, ip or accmer");
    args.addOption("neighbors", "16",
                   "neighbor run length for --sampler locality and "
                   "accmer");
    args.addOption("reuse-window", "4",
                   "plans per fresh sum-tree draw for --sampler "
                   "accmer");
    args.addOption("batch", "128", "mini-batch size");
    args.addOption("buffer", "32768", "replay capacity");
    args.addOption("replay-capacity", "0",
                   "replay capacity for the sharded engine (0 = "
                   "--buffer); accepts >RAM sizes with a cold dir");
    args.addOption("replay-shards", "1",
                   "power-of-two replay shard count (>1 selects the "
                   "sharded backend; sampling is bit-identical for "
                   "any value)");
    args.addOption("replay-hot", "0",
                   "transitions kept in RAM by the sharded backend "
                   "(0 = all hot); the rest spills to "
                   "--replay-cold-dir");
    args.addOption("replay-cold-dir", "",
                   "mmap cold-segment directory for the sharded "
                   "backend (enables out-of-core replay)");
    args.addOption("update-every", "50",
                   "insertions between updates");
    args.addOption("lr", "0.01", "Adam learning rate");
    args.addOption("gamma", "0.95", "discount factor");
    args.addOption("seed", "7", "RNG seed");
    args.addOption("threads", "0",
                   "worker threads for the training hot path "
                   "(0 = MARLIN_THREADS env var or hardware "
                   "concurrency; results are identical for any "
                   "value)");
    args.addOption("actors", "0",
                   "rollout threads: 1 = the deterministic lockstep "
                   "loop, >1 = the async actor-learner runtime "
                   "(0 = MARLIN_ACTORS env var or 1)");
    args.addOption("lanes", "1",
                   "environment lanes per actor (async mode)");
    args.addOption("ring-capacity", "4096",
                   "transition-ring records per actor (async mode; "
                   "rounded up to a power of two)");
    args.addOption("watchdog-ms", "250",
                   "async supervisor: actor-stall watchdog deadline "
                   "in ms (0 disables stall detection; crashed "
                   "actors are always detected)");
    args.addOption("max-restarts", "2",
                   "async supervisor: crash restarts per actor "
                   "before it is degraded");
    args.addOption("async-checkpoint-every", "50",
                   "learner updates between rotating snapshots for "
                   "--checkpoint-dir in async mode");
    args.addOption("chaos", "",
                   "async-only fault schedule, e.g. "
                   "'kill:1@120,stall:2@200:50,corrupt:0@300,"
                   "kill-learner@400,delay-snap@3:20'");
    args.addOption("isa", "auto",
                   "kernel instruction set: auto, scalar or avx2 "
                   "(auto = MARLIN_ISA env var or best supported; "
                   "results are identical per ISA for any thread "
                   "count)");
    args.addOption("save-checkpoint", "",
                   "write trainer state here after training");
    args.addOption("load-checkpoint", "",
                   "restore trainer state before training");
    args.addOption("checkpoint-dir", "",
                   "rotate full-state latest/previous snapshots "
                   "here and auto-resume from them");
    args.addOption("checkpoint-every", "10",
                   "episodes between snapshots for "
                   "--checkpoint-dir");
    args.addOption("health", "off",
                   "non-finite loss/gradient policy: off, halt, "
                   "skip or rollback (rollback needs "
                   "--checkpoint-dir)");
    args.addOption("telemetry", "",
                   "stream per-step run telemetry (JSONL) to this "
                   "path; training numerics are unchanged");
    args.addOption("telemetry-every", "1",
                   "environment steps between telemetry records");
    args.addOption("stats-port", "-1",
                   "serve live GET /metrics + /healthz (Prometheus "
                   "text) on this port during training (0 binds an "
                   "ephemeral port, -1 disables)");
    args.addOption("stats-port-file", "",
                   "write the bound stats port here (one line)");
    args.addOption("trace", "",
                   "export a Chrome/Perfetto trace_event JSON of "
                   "phase spans, pool tasks and checkpoint writes "
                   "to this path");
    args.addOption("trace-capacity", "262144",
                   "trace ring capacity in events; overflow is "
                   "counted, never silently lost");
    args.addOption("log-level", "inform",
                   "silent, fatal, warn, inform or debug");
    args.addFlag("interleaved",
                 "use the reorganized key-value replay layout");
    args.addFlag("continuous",
                 "tanh actors emitting 2D forces (OU exploration) "
                 "instead of 5 discrete actions");
    args.parse(argc, argv);

    setLogLevel(parseLogLevel(args.get("log-level")));

    const auto agents =
        static_cast<std::size_t>(args.getInt("agents"));
    const auto episodes =
        static_cast<std::size_t>(args.getInt("episodes"));

    base::ThreadPool::setGlobalThreads(
        static_cast<std::size_t>(args.getInt("threads")));
    std::printf("threads: %zu (deterministic for any count)\n",
                base::ThreadPool::globalThreads());

    // Flag beats env var beats the lockstep default.
    std::size_t actors =
        static_cast<std::size_t>(args.getInt("actors"));
    if (actors == 0) {
        const char *env = std::getenv("MARLIN_ACTORS");
        if (env != nullptr)
            actors = static_cast<std::size_t>(
                std::strtoul(env, nullptr, 10));
        if (actors == 0)
            actors = 1;
    }
    std::printf("actors: %zu (%s)\n", actors,
                actors > 1 ? "async actor-learner runtime"
                           : "deterministic lockstep loop");

    if (args.get("isa") != "auto") {
        const auto isa =
            numeric::kernels::isaFromString(args.get("isa"));
        if (!isa.has_value()) {
            fatal("--isa '%s' is not 'auto', 'scalar' or 'avx2'",
                  args.get("isa").c_str());
        }
        numeric::kernels::setIsa(*isa);
    }
    std::printf("isa: %s (cpu: %s)\n",
                numeric::kernels::isaName(
                    numeric::kernels::activeIsa()),
                base::cpuVectorFeatures());

    auto environment = buildEnvironment(
        args.get("task"), agents,
        static_cast<std::uint64_t>(args.getInt("seed")));

    core::TrainConfig config;
    config.batchSize = static_cast<std::size_t>(args.getInt("batch"));
    config.bufferCapacity =
        static_cast<BufferIndex>(args.getInt("buffer"));
    if (args.getInt("replay-capacity") > 0) {
        config.bufferCapacity =
            static_cast<BufferIndex>(args.getInt("replay-capacity"));
    }
    config.updateEvery =
        static_cast<std::size_t>(args.getInt("update-every"));
    config.warmupTransitions = config.batchSize * 2;
    config.lr = static_cast<Real>(args.getDouble("lr"));
    config.gamma = static_cast<Real>(args.getDouble("gamma"));
    config.epsilonDecayEpisodes = episodes / 2;
    config.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    if (args.getFlag("interleaved"))
        config.backend = core::SamplingBackend::Interleaved;
    config.replayShards =
        static_cast<std::size_t>(args.getInt("replay-shards"));
    config.replayHotCapacity =
        static_cast<BufferIndex>(args.getInt("replay-hot"));
    config.replayColdDir = args.get("replay-cold-dir");
    const bool wantSharded = config.replayShards > 1 ||
                             !config.replayColdDir.empty();
    if (wantSharded) {
        if (args.getFlag("interleaved")) {
            fatal("--interleaved and the sharded replay engine "
                  "(--replay-shards/--replay-cold-dir) are mutually "
                  "exclusive backends");
        }
        config.backend = core::SamplingBackend::Sharded;
    }
    if (args.getFlag("continuous"))
        config.actionMode = core::ActionMode::Continuous;

    const std::string health = args.get("health");
    if (health == "halt") {
        config.healthPolicy = core::HealthGuardPolicy::Halt;
    } else if (health == "skip") {
        config.healthPolicy = core::HealthGuardPolicy::SkipUpdate;
    } else if (health == "rollback") {
        config.healthPolicy = core::HealthGuardPolicy::Rollback;
    } else if (health != "off") {
        fatal("unknown health policy '%s' (expected off, halt, "
              "skip or rollback)",
              health.c_str());
    }

    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));

    auto factory = buildSamplerFactory(
        args.get("sampler"),
        static_cast<std::size_t>(args.getInt("neighbors")),
        config.bufferCapacity,
        static_cast<std::size_t>(args.getInt("reuse-window")));

    const std::size_t act_dim =
        config.actionMode == core::ActionMode::Continuous
            ? 2
            : environment->actionDim();
    std::unique_ptr<core::CtdeTrainerBase> trainer;
    const std::string algo = args.get("algo");
    if (algo == "maddpg") {
        trainer = std::make_unique<core::MaddpgTrainer>(
            dims, act_dim, config, factory);
    } else if (algo == "matd3") {
        trainer = std::make_unique<core::Matd3Trainer>(
            dims, act_dim, config, factory);
    } else {
        fatal("unknown algo '%s'", algo.c_str());
    }

    if (!args.get("load-checkpoint").empty()) {
        core::loadTrainerFile(args.get("load-checkpoint"), *trainer);
        inform("restored checkpoint '%s'",
               args.get("load-checkpoint").c_str());
    }

    // Observability sinks. Both are pure observers: enabling them
    // changes no training numerics and no checkpoint bytes.
    const std::string telemetry_path = args.get("telemetry");
    const std::string trace_path = args.get("trace");
    if (!telemetry_path.empty() || !trace_path.empty())
        numeric::kernels::setCounting(true);
    if (!trace_path.empty()) {
        obs::TraceRing::enable(static_cast<std::size_t>(
            args.getInt("trace-capacity")));
    }
    std::unique_ptr<obs::TelemetryWriter> telemetry;
    if (!telemetry_path.empty()) {
        telemetry = std::make_unique<obs::TelemetryWriter>(
            telemetry_path,
            std::vector<std::pair<std::string, std::string>>{
                {"tool", "marlin_cli"},
                {"algo", algo},
                {"task", args.get("task")},
                {"agents", args.get("agents")},
                {"episodes", args.get("episodes")},
                {"sampler", args.get("sampler")},
                {"seed", args.get("seed")},
                {"actors", std::to_string(actors)},
                {"threads",
                 std::to_string(base::ThreadPool::globalThreads())},
                {"isa",
                 numeric::kernels::isaName(
                     numeric::kernels::activeIsa())},
                {"layout", args.getFlag("interleaved")
                               ? "interleaved"
                               : "aos"},
            });
        if (!telemetry->ok())
            fatal("cannot open --telemetry path '%s'",
                  telemetry_path.c_str());
    }

    // Live introspection endpoint. In async mode the supervisor's
    // watchdog tick services scrapes, so neither the actors nor the
    // learner hot path ever touches a socket; the lockstep loop has
    // no idle thread, so a background thread serves there instead.
    std::unique_ptr<serve::MetricsHttp> stats;
    const long statsPort = args.getInt("stats-port");
    if (statsPort >= 0) {
        serve::MetricsHttpConfig mcfg;
        mcfg.port = static_cast<std::uint16_t>(statsPort);
        stats = std::make_unique<serve::MetricsHttp>(mcfg);
        if (!stats->start())
            fatal("cannot listen on stats port %ld", statsPort);
        std::printf("stats: port %u (GET /metrics, /healthz)\n",
                    static_cast<unsigned>(stats->port()));
        std::fflush(stdout);
        if (!args.get("stats-port-file").empty()) {
            std::FILE *f = std::fopen(
                args.get("stats-port-file").c_str(), "w");
            if (f == nullptr)
                fatal("cannot write --stats-port-file '%s'",
                      args.get("stats-port-file").c_str());
            std::fprintf(f, "%u\n",
                         static_cast<unsigned>(stats->port()));
            std::fclose(f);
        }
    }

    std::printf("%s on %s: %zu agents, %zu episodes, sampler=%s%s\n",
                algo.c_str(),
                environment->scenario().name().c_str(),
                environment->numAgents(), episodes,
                args.get("sampler").c_str(),
                args.getFlag("interleaved") ? ", interleaved layout"
                                            : "");

    if (actors > 1) {
        const std::string task = args.get("task");
        async::AsyncConfig acfg;
        acfg.actors = actors;
        acfg.lanesPerActor =
            static_cast<std::size_t>(args.getInt("lanes"));
        acfg.ringCapacity =
            static_cast<std::size_t>(args.getInt("ring-capacity"));
        acfg.watchdogDeadlineMs = static_cast<std::uint64_t>(
            args.getInt("watchdog-ms"));
        acfg.maxActorRestarts =
            static_cast<std::size_t>(args.getInt("max-restarts"));
        // Async checkpointing: learner-side rotating snapshots of
        // the contiguous completed-episode prefix. Resume is
        // throughput-equivalent, not bit-identical; --actors 1 keeps
        // the bit-identical contract.
        acfg.checkpointDir = args.get("checkpoint-dir");
        acfg.checkpointEveryUpdates = static_cast<std::size_t>(
            args.getInt("async-checkpoint-every"));
        acfg.resume = !acfg.checkpointDir.empty();
        async::AsyncTrainLoop loop(
            *trainer,
            [&task, agents](std::uint64_t seed) {
                return buildEnvironment(task, agents, seed);
            },
            [&](std::uint64_t seed) {
                core::TrainConfig actor_config = config;
                actor_config.seed = seed;
                std::unique_ptr<core::CtdeTrainerBase> policy;
                if (algo == "maddpg") {
                    policy = std::make_unique<core::MaddpgTrainer>(
                        dims, act_dim, actor_config, factory);
                } else {
                    policy = std::make_unique<core::Matd3Trainer>(
                        dims, act_dim, actor_config, factory);
                }
                return policy;
            },
            config, acfg);
        if (telemetry) {
            loop.setTelemetry(telemetry.get(),
                              static_cast<std::size_t>(
                                  args.getInt("telemetry-every")));
        }
        if (stats) {
            serve::MetricsHttp *http = stats.get();
            loop.setSupervisorHook([http] { http->serviceOnce(0); });
        }
        base::FaultInjector injector(
            static_cast<std::uint64_t>(args.getInt("seed")));
        if (!args.get("chaos").empty()) {
            std::string chaos_error;
            if (!injector.parseChaosSpec(args.get("chaos"),
                                         &chaos_error)) {
                fatal("--chaos: %s", chaos_error.c_str());
            }
            loop.setFaultInjector(&injector);
            inform("chaos armed: %zu scheduled fault(s)",
                   injector.scheduledFaults().size());
        }
        auto result = loop.run(episodes);

        if (result.nonFiniteUpdates > 0) {
            warn("%zu update(s) saw non-finite losses/gradients "
                 "(policy: %s)",
                 result.nonFiniteUpdates, health.c_str());
        }
        if (result.halted)
            warn("run halted by the numeric health guard");
        if (result.ringDropped > 0) {
            inform("rings dropped %llu transition(s) (seq gaps: "
                   "%llu); raise --ring-capacity to keep more",
                   static_cast<unsigned long long>(
                       result.ringDropped),
                   static_cast<unsigned long long>(
                       result.ringSeqGaps));
        }
        if (result.restarts > 0 || result.degradations > 0 ||
            result.watchdogTrips > 0 || result.quarantined > 0) {
            inform("supervisor: %llu restart(s), %llu "
                   "degradation(s), %llu watchdog trip(s), %llu "
                   "quarantined transition(s)",
                   static_cast<unsigned long long>(result.restarts),
                   static_cast<unsigned long long>(
                       result.degradations),
                   static_cast<unsigned long long>(
                       result.watchdogTrips),
                   static_cast<unsigned long long>(
                       result.quarantined));
        }
        if (result.resumedFromEpisode > 0) {
            inform("resumed from episode %llu",
                   static_cast<unsigned long long>(
                       result.resumedFromEpisode));
        }
        if (result.checkpointsSaved > 0) {
            inform("saved %llu rotating checkpoint(s) to '%s'",
                   static_cast<unsigned long long>(
                       result.checkpointsSaved),
                   acfg.checkpointDir.c_str());
        }
        if (result.learnerFailed) {
            // Nonzero exit so CI drills (and real orchestration) see
            // a learner crash as a failed run; the last periodic
            // checkpoint is the recovery path.
            warn("learner failed: %s", result.learnerError.c_str());
            return 1;
        }
        std::printf("\nenv steps %llu (drained %llu), updates %llu, "
                    "weight refreshes %llu\n",
                    static_cast<unsigned long long>(result.envSteps),
                    static_cast<unsigned long long>(
                        result.drainedSteps),
                    static_cast<unsigned long long>(
                        result.updateCalls),
                    static_cast<unsigned long long>(
                        result.weightRefreshes));
        std::printf("final score %.2f | %s\n", result.finalScore,
                    profile::formatTopLevel(
                        profile::topLevelBreakdown(result.timer))
                        .c_str());
        std::printf("%s\n",
                    profile::formatUpdate(
                        profile::updateBreakdown(result.timer))
                        .c_str());
    } else {
        if (!args.get("chaos").empty()) {
            fatal("--chaos drives the async supervisor; rerun with "
                  "--actors 2 or more");
        }
        if (stats)
            stats->startThread();
        core::TrainLoop loop(*environment, *trainer, config);
        if (telemetry) {
            loop.setTelemetry(telemetry.get(),
                              static_cast<std::size_t>(
                                  args.getInt("telemetry-every")));
        }
        if (!args.get("checkpoint-dir").empty()) {
            core::CheckpointOptions ckpt;
            ckpt.dir = args.get("checkpoint-dir");
            ckpt.everyEpisodes = static_cast<std::size_t>(
                args.getInt("checkpoint-every"));
            ckpt.resume = true;
            loop.setCheckpointing(ckpt);
        }

        const std::size_t report =
            std::max<std::size_t>(1, episodes / 10);
        double window = 0;
        auto result =
            loop.run(episodes, [&](const core::EpisodeInfo &e) {
                window += e.meanReward;
                if ((e.episode + 1) % report == 0) {
                    std::printf(
                        "  episode %6zu  mean reward %9.2f\n",
                        e.episode + 1, window / report);
                    window = 0;
                }
            });

        if (result.nonFiniteUpdates > 0) {
            warn("%zu update(s) saw non-finite losses/gradients "
                 "(policy: %s)",
                 result.nonFiniteUpdates, health.c_str());
        }
        if (result.halted)
            warn("run halted by the numeric health guard");

        std::printf("\nfinal score %.2f | %s\n", result.finalScore,
                    profile::formatTopLevel(
                        profile::topLevelBreakdown(result.timer))
                        .c_str());
        std::printf("%s\n",
                    profile::formatUpdate(
                        profile::updateBreakdown(result.timer))
                        .c_str());
    }

    if (stats)
        stats->stop();

    if (!args.get("save-checkpoint").empty()) {
        core::saveTrainerFile(args.get("save-checkpoint"), *trainer);
        inform("saved checkpoint '%s'",
               args.get("save-checkpoint").c_str());
    }

    if (!trace_path.empty()) {
        const obs::TraceRing *ring = obs::TraceRing::active();
        std::string error;
        if (!obs::exportTrace(trace_path, &error)) {
            fatal("trace export to '%s' failed: %s",
                  trace_path.c_str(), error.c_str());
        }
        inform("trace: %zu event(s) -> '%s' (%llu dropped)",
               ring != nullptr ? ring->size() : std::size_t(0),
               trace_path.c_str(),
               static_cast<unsigned long long>(
                   ring != nullptr ? ring->dropped() : 0));
        if (ring != nullptr && ring->dropped() > 0) {
            warn("trace ring overflowed; rerun with a larger "
                 "--trace-capacity to keep every event");
        }
    }
    return 0;
}
