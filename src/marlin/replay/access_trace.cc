#include "marlin/replay/access_trace.hh"

namespace marlin::replay
{

std::uint64_t
AccessTrace::totalBytes() const
{
    std::uint64_t total = 0;
    for (const MemAccess &a : accesses)
        total += a.bytes;
    return total;
}

} // namespace marlin::replay
