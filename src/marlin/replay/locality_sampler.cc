#include "marlin/replay/locality_sampler.hh"

#include <algorithm>

#include "marlin/base/logging.hh"
#include "marlin/base/string_utils.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

LocalityAwareSampler::LocalityAwareSampler(LocalityConfig config)
    : _config(config)
{
    MARLIN_ASSERT(_config.neighbors > 0,
                  "locality sampler needs neighbors >= 1");
}

std::string
LocalityAwareSampler::name() const
{
    return csprintf("locality_n%zu_r%zu", _config.neighbors,
                    _config.referencePoints);
}

void
LocalityAwareSampler::planInto(BufferIndex buffer_size,
                               std::size_t batch, Rng &rng,
                               IndexPlan &out)
{
    MARLIN_ASSERT(buffer_size > 0, "sampling from an empty buffer");
    const std::size_t run = std::min<std::size_t>(
        _config.neighbors, static_cast<std::size_t>(buffer_size));
    if (!warnedMismatch && _config.referencePoints != 0 &&
        _config.referencePoints * _config.neighbors != batch) {
        warn("locality sampler: refs (%zu) x neighbors (%zu) != "
             "batch (%zu); batch size wins",
             _config.referencePoints, _config.neighbors, batch);
        warnedMismatch = true;
    }

    // Anchor/run counters quantify the locality actually delivered:
    // run_indices_total / anchors is the mean contiguous run length
    // the prefetcher sees.
    static obs::Counter &plans =
        obs::Registry::instance().counter("replay.locality.plans");
    static obs::Counter &anchors =
        obs::Registry::instance().counter("replay.locality.anchors");
    static obs::Counter &run_indices =
        obs::Registry::instance().counter(
            "replay.locality.run_indices_total");
    plans.add();

    out.clear();
    out.indices.reserve(batch);
    while (out.indices.size() < batch) {
        // Clamp the anchor so the whole run is valid and contiguous:
        // the sequential addresses are what steers the prefetcher.
        const BufferIndex max_anchor = buffer_size - run;
        BufferIndex anchor =
            max_anchor > 0 ? rng.randint(max_anchor + 1) : 0;
        anchors.add();
        const std::size_t before = out.indices.size();
        for (std::size_t k = 0;
             k < run && out.indices.size() < batch; ++k) {
            out.indices.push_back(anchor + k);
        }
        run_indices.add(out.indices.size() - before);
    }
}

} // namespace marlin::replay
