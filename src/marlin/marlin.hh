/**
 * @file
 * Umbrella header: include everything a downstream MARLin user
 * typically needs.
 */

#ifndef MARLIN_MARLIN_HH
#define MARLIN_MARLIN_HH

#include "marlin/async/async_train_loop.hh"
#include "marlin/base/alloc_guard.hh"
#include "marlin/base/args.hh"
#include "marlin/base/cpu.hh"
#include "marlin/base/crc32.hh"
#include "marlin/base/fault_injector.hh"
#include "marlin/base/instant.hh"
#include "marlin/base/logging.hh"
#include "marlin/base/random.hh"
#include "marlin/base/spsc_ring.hh"
#include "marlin/base/string_utils.hh"
#include "marlin/base/thread_pool.hh"
#include "marlin/base/worker_thread.hh"
#include "marlin/base/workspace.hh"
#include "marlin/core/checkpoint.hh"
#include "marlin/core/config.hh"
#include "marlin/core/evaluator.hh"
#include "marlin/core/maddpg.hh"
#include "marlin/core/matd3.hh"
#include "marlin/core/train_loop.hh"
#include "marlin/env/cooperative_navigation.hh"
#include "marlin/env/environment.hh"
#include "marlin/env/physical_deception.hh"
#include "marlin/env/predator_prey.hh"
#include "marlin/env/vector_env.hh"
#include "marlin/memsim/platform.hh"
#include "marlin/memsim/trace_replay.hh"
#include "marlin/numeric/kernels.hh"
#include "marlin/obs/exposition.hh"
#include "marlin/obs/metrics.hh"
#include "marlin/obs/telemetry.hh"
#include "marlin/obs/trace.hh"
#include "marlin/profile/report.hh"
#include "marlin/replay/aos_buffer.hh"
#include "marlin/replay/info_prioritized_sampler.hh"
#include "marlin/replay/locality_sampler.hh"
#include "marlin/replay/prioritized_sampler.hh"
#include "marlin/replay/rank_sampler.hh"
#include "marlin/replay/reuse_sampler.hh"
#include "marlin/replay/sharded_store.hh"
#include "marlin/replay/transition_ring.hh"
#include "marlin/replay/uniform_sampler.hh"
#include "marlin/serve/client.hh"
#include "marlin/serve/metrics_http.hh"
#include "marlin/serve/reload.hh"
#include "marlin/serve/server.hh"

#endif // MARLIN_MARLIN_HH
