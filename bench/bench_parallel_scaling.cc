/**
 * @file
 * Thread-pool scaling of the paper's dominant phase: wall-clock for
 * update-all-trainers across threads x agents, emitted as a JSON
 * speedup curve. The paper (Fig. 2/3/6) shows per-agent updates
 * dominating end-to-end time and growing with agent count; the
 * per-agent independence this bench exploits is the primary CPU
 * parallelism opportunity called out by the characterization papers.
 *
 * Also validates the determinism contract end to end: the 12-agent
 * Predator-Prey config must produce bit-identical trainer state at
 * 1 and 4 threads.
 *
 *   ./bench_parallel_scaling [--updates N] [--batch N] [--threads N]
 *
 * Speedups are relative to the 1-thread row of the same agent
 * count. On a single-core host every curve is flat — the JSON header
 * records hardware_concurrency so readers can tell.
 */

#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "marlin/core/checkpoint.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

core::TrainConfig
scalingConfig(std::size_t batch)
{
    core::TrainConfig config;
    config.batchSize = batch;
    config.bufferCapacity = 4096;
    config.warmupTransitions = batch;
    config.hiddenDims = {64, 64};
    config.seed = 11;
    return config;
}

std::unique_ptr<core::CtdeTrainerBase>
makeFilledTrainer(std::size_t agents, std::size_t batch,
                  replay::MultiAgentBuffer &buffers)
{
    auto config = scalingConfig(batch);
    auto trainer =
        makeTrainer(Algo::Maddpg, taskObsDims(Task::PredatorPrey, agents),
                    5, config, uniformFactory());
    Rng fill_rng(1234);
    fillSynthetic(buffers, static_cast<BufferIndex>(batch * 4),
                  fill_rng);
    return trainer;
}

/** Seconds of wall clock for @p updates trainer update calls. */
double
timedUpdates(core::CtdeTrainerBase &trainer,
             const replay::MultiAgentBuffer &buffers,
             std::size_t updates)
{
    profile::PhaseTimer timer;
    const profile::Stopwatch watch;
    for (std::size_t u = 0; u < updates; ++u)
        trainer.update(buffers, timer);
    return watch.elapsedSeconds();
}

/** Serialized trainer state after @p updates at @p threads. */
std::string
stateAfterUpdates(std::size_t agents, std::size_t batch,
                  std::size_t updates, std::size_t threads)
{
    base::ThreadPool::setGlobalThreads(threads);
    replay::MultiAgentBuffer buffers(
        taskShapes(Task::PredatorPrey, agents), 4096);
    auto trainer = makeFilledTrainer(agents, batch, buffers);
    profile::PhaseTimer timer;
    for (std::size_t u = 0; u < updates; ++u)
        trainer->update(buffers, timer);
    std::ostringstream os;
    core::saveTrainer(os, *trainer);
    return os.str();
}

long
argValue(int argc, char **argv, const char *name, long fallback)
{
    const std::size_t len = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
            return std::strtol(argv[i + 1], nullptr, 10);
        if (std::strncmp(argv[i], name, len) == 0 &&
            argv[i][len] == '=')
            return std::strtol(argv[i] + len + 1, nullptr, 10);
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_parallel_scaling");
    banner("Parallel scaling: update-all-trainers across "
           "threads x agents");

    const auto updates = static_cast<std::size_t>(
        argValue(argc, argv, "--updates", 2));
    const auto batch = static_cast<std::size_t>(
        argValue(argc, argv, "--batch", 64));
    const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
    const std::vector<std::size_t> agent_counts = {3, 6, 12, 24};

    std::printf("%-8s %-8s %14s %9s\n", "agents", "threads",
                "update(s)", "speedup");

    std::ostringstream json;
    json << "{\"bench\": \"parallel_scaling\", \"algo\": \"MADDPG\", "
         << "\"task\": \"predator-prey\", \"hardware_concurrency\": "
         << std::thread::hardware_concurrency()
         << ", \"batch\": " << batch
         << ", \"updates_per_point\": " << updates
         << ", \"results\": [";

    bool first = true;
    for (std::size_t agents : agent_counts) {
        double serial_seconds = 0;
        for (std::size_t threads : thread_counts) {
            base::ThreadPool::setGlobalThreads(threads);
            replay::MultiAgentBuffer buffers(
                taskShapes(Task::PredatorPrey, agents), 4096);
            auto trainer =
                makeFilledTrainer(agents, batch, buffers);
            // One untimed warmup update absorbs lazy allocations
            // (per-agent scratch batches, layer activations).
            profile::PhaseTimer warm;
            trainer->update(buffers, warm);
            const double seconds =
                timedUpdates(*trainer, buffers, updates);
            if (threads == 1)
                serial_seconds = seconds;
            const double speedup =
                seconds > 0 ? serial_seconds / seconds : 0.0;
            std::printf("%-8zu %-8zu %14.4f %9.2f\n", agents,
                        threads, seconds, speedup);
            json << (first ? "" : ", ") << "{\"agents\": " << agents
                 << ", \"threads\": " << threads
                 << ", \"update_seconds\": " << seconds
                 << ", \"speedup\": " << speedup << "}";
            first = false;
        }
    }
    json << "]";

    // Determinism cross-check on the paper's mid-scale config.
    const std::string one = stateAfterUpdates(12, batch, updates, 1);
    const std::string four = stateAfterUpdates(12, batch, updates, 4);
    const bool identical = one == four;
    json << ", \"determinism\": {\"agents\": 12, "
         << "\"threads_compared\": [1, 4], \"bit_identical\": "
         << (identical ? "true" : "false") << "}}";

    std::printf("\n12-agent determinism (1 vs 4 threads): %s\n",
                identical ? "bit-identical" : "MISMATCH");
    std::printf("%s\n", json.str().c_str());

    base::ThreadPool::setGlobalThreads(0);
    return identical ? 0 : 1;
}
