/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring primitives.
 *
 * The async actor-learner runtime moves every transition from an
 * actor thread to the learner thread through one of these rings, so
 * the design goals are the classic ones of realtime producer/consumer
 * pipelines (JACK-style audio rings, market-data replay buffers):
 *
 *  - exactly one producer thread and one consumer thread per ring;
 *    neither ever blocks the other;
 *  - power-of-two capacity so slot lookup is a mask, not a modulo;
 *  - the head and tail indices live on their own cache lines, and
 *    each side keeps a cached copy of the other side's index so the
 *    common case (space/data available) costs no cache-line bounce;
 *  - batched publish: a producer may stage several slots and make
 *    them visible with a single release store.
 *
 * SpscIndexRing owns only the index arithmetic; SpscRing<T> adds
 * typed storage. The replay layer builds its variable-stride
 * transition ring (replay/transition_ring.hh) on SpscIndexRing.
 */

#ifndef MARLIN_BASE_SPSC_RING_HH
#define MARLIN_BASE_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace marlin::base
{

/** Smallest power of two >= @p v (and >= 2). */
constexpr std::size_t
ceilPow2(std::size_t v)
{
    std::size_t p = 2;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Index bookkeeping for a bounded SPSC queue of power-of-two
 * capacity. Positions are monotonically increasing 64-bit counts
 * (they never wrap in any realistic run); the slot of a position is
 * position & mask().
 *
 * Thread contract: producerFree/producerPos/publish may only be
 * called from the producer thread; consumerAvailable/consumerPos/
 * consume only from the consumer thread; size() from anywhere.
 */
class SpscIndexRing
{
  public:
    /** @param capacity_hint Rounded up to the next power of two. */
    explicit SpscIndexRing(std::size_t capacity_hint)
        : cap(ceilPow2(capacity_hint < 2 ? 2 : capacity_hint))
    {
    }

    SpscIndexRing(const SpscIndexRing &) = delete;
    SpscIndexRing &operator=(const SpscIndexRing &) = delete;

    std::size_t capacity() const { return cap; }
    std::size_t mask() const { return cap - 1; }

    /**
     * Slots the producer may stage beyond what it already staged
     * (@p staged slots claimed but not yet published). Refreshes the
     * cached consumer index only when the fast path says "full", so
     * a non-full ring never touches the consumer's cache line.
     */
    std::size_t
    producerFree(std::size_t staged) noexcept
    {
        const std::uint64_t used = tailLocal + staged - cachedHead;
        if (used < cap)
            return cap - static_cast<std::size_t>(used);
        cachedHead = head.load(std::memory_order_acquire);
        const std::uint64_t used2 = tailLocal + staged - cachedHead;
        return used2 < cap ? cap - static_cast<std::size_t>(used2)
                           : 0;
    }

    /** Next unpublished position (producer thread only). */
    std::uint64_t producerPos() const noexcept { return tailLocal; }

    /** Make @p n staged slots visible to the consumer. */
    void
    publish(std::size_t n) noexcept
    {
        tailLocal += n;
        tail.store(tailLocal, std::memory_order_release);
    }

    /**
     * Published slots the consumer has not consumed yet. Refreshes
     * the cached producer index only when the fast path says
     * "empty".
     */
    std::size_t
    consumerAvailable() noexcept
    {
        if (cachedTail != headLocal)
            return static_cast<std::size_t>(cachedTail - headLocal);
        cachedTail = tail.load(std::memory_order_acquire);
        return static_cast<std::size_t>(cachedTail - headLocal);
    }

    /** Next unconsumed position (consumer thread only). */
    std::uint64_t consumerPos() const noexcept { return headLocal; }

    /** Retire @p n consumed slots, freeing them for the producer. */
    void
    consume(std::size_t n) noexcept
    {
        headLocal += n;
        head.store(headLocal, std::memory_order_release);
    }

    /**
     * Published-but-unconsumed count, readable from any thread
     * (approximate while both sides run; exact when quiesced).
     */
    std::size_t
    size() const noexcept
    {
        const std::uint64_t t = tail.load(std::memory_order_relaxed);
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        return t >= h ? static_cast<std::size_t>(t - h) : 0;
    }

  private:
    // Shared indices, one cache line each so producer stores never
    // invalidate the consumer's line and vice versa.
    alignas(64) std::atomic<std::uint64_t> tail{0};
    alignas(64) std::atomic<std::uint64_t> head{0};
    // Producer-private mirror of tail plus cached head.
    alignas(64) std::uint64_t tailLocal = 0;
    std::uint64_t cachedHead = 0;
    // Consumer-private mirror of head plus cached tail.
    alignas(64) std::uint64_t headLocal = 0;
    std::uint64_t cachedTail = 0;

    std::size_t cap;
};

/**
 * Typed bounded SPSC queue of trivially copyable values. Push never
 * blocks: a full ring rejects the value and the caller decides what
 * dropping means (the transition ring counts it; see
 * replay/transition_ring.hh).
 */
template <typename T>
class SpscRing
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SpscRing elements must be trivially copyable");

  public:
    explicit SpscRing(std::size_t capacity_hint)
        : idx(capacity_hint), slots(idx.capacity())
    {
    }

    std::size_t capacity() const { return idx.capacity(); }

    /** Producer: push one value; false when the ring is full. */
    bool
    tryPush(const T &v) noexcept
    {
        if (idx.producerFree(0) == 0)
            return false;
        slots[idx.producerPos() & idx.mask()] = v;
        idx.publish(1);
        return true;
    }

    /**
     * Producer: copy up to @p n values from @p src, publishing them
     * with one release store. @return values actually enqueued.
     */
    std::size_t
    pushBatch(const T *src, std::size_t n) noexcept
    {
        std::size_t free = idx.producerFree(0);
        if (free > n)
            free = n;
        for (std::size_t i = 0; i < free; ++i)
            slots[(idx.producerPos() + i) & idx.mask()] = src[i];
        idx.publish(free);
        return free;
    }

    /** Consumer: pop one value; false when the ring is empty. */
    bool
    tryPop(T &out) noexcept
    {
        if (idx.consumerAvailable() == 0)
            return false;
        out = slots[idx.consumerPos() & idx.mask()];
        idx.consume(1);
        return true;
    }

    /**
     * Consumer: copy up to @p n values into @p dst, retiring them
     * with one release store. @return values actually dequeued.
     */
    std::size_t
    popBatch(T *dst, std::size_t n) noexcept
    {
        std::size_t avail = idx.consumerAvailable();
        if (avail > n)
            avail = n;
        for (std::size_t i = 0; i < avail; ++i)
            dst[i] = slots[(idx.consumerPos() + i) & idx.mask()];
        idx.consume(avail);
        return avail;
    }

    /** Any thread: approximate occupancy. */
    std::size_t size() const noexcept { return idx.size(); }
    bool empty() const noexcept { return size() == 0; }

  private:
    SpscIndexRing idx;
    std::vector<T> slots;
};

} // namespace marlin::base

#endif // MARLIN_BASE_SPSC_RING_HH
