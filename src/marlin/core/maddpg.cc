#include "marlin/core/maddpg.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "marlin/base/logging.hh"
#include "marlin/base/serialize.hh"
#include "marlin/base/thread_pool.hh"
#include "marlin/nn/loss.hh"
#include "marlin/numeric/ops.hh"
#include "marlin/obs/metrics.hh"
#include "marlin/replay/gather.hh"

namespace marlin::core
{

using profile::Phase;
using profile::ScopedPhase;

namespace
{

/**
 * L2 norm accumulated in double regardless of Real: a diagnostic
 * read-out, deliberately outside the kernel layer so it can never
 * alter the training arithmetic.
 */
Real
l2Norm(const Matrix &m)
{
    double acc = 0.0;
    for (std::size_t k = 0; k < m.size(); ++k) {
        const double v = static_cast<double>(m.data()[k]);
        acc += v * v;
    }
    return static_cast<Real>(std::sqrt(acc));
}

obs::Counter &
nonFiniteTrips()
{
    static obs::Counter &trips =
        obs::Registry::instance().counter("health.nonfinite_trips");
    return trips;
}

} // namespace

CtdeTrainerBase::CtdeTrainerBase(std::vector<std::size_t> obs_dims,
                                 std::size_t act_dim,
                                 TrainConfig config,
                                 SamplerFactory sampler_factory,
                                 bool twin_critic)
    : _config(std::move(config)), obsDims(std::move(obs_dims)),
      actDim(act_dim), rng(_config.seed),
      epsilon(_config.epsilonStart, _config.epsilonEnd,
              _config.epsilonDecayEpisodes)
{
    MARLIN_ASSERT(!obsDims.empty(), "trainer needs at least one agent");
    MARLIN_ASSERT(actDim > 0, "trainer needs a nonzero action space");
    MARLIN_ASSERT(sampler_factory != nullptr,
                  "trainer needs a sampler factory");

    sumObsDims = std::accumulate(obsDims.begin(), obsDims.end(),
                                 std::size_t{0});
    jointDim = sumObsDims + obsDims.size() * actDim;

    // Independent per-agent streams, derived from the trainer seed
    // so a fixed seed still pins the whole run.
    SplitMix64 mix(_config.seed ^ 0xa6e57ee75ca1f3b9ULL);
    agentRngs.reserve(obsDims.size());
    for (std::size_t i = 0; i < obsDims.size(); ++i)
        agentRngs.emplace_back(mix.next());

    const bool continuous =
        _config.actionMode == ActionMode::Continuous;
    nets.reserve(obsDims.size());
    samplers.reserve(obsDims.size());
    for (std::size_t i = 0; i < obsDims.size(); ++i) {
        AgentNetworksConfig nc;
        nc.obsDim = obsDims[i];
        nc.actDim = actDim;
        nc.jointDim = jointDim;
        nc.hiddenDims = _config.hiddenDims;
        nc.lr = _config.lr;
        nc.twinCritic = twin_critic;
        nc.actorOutput = continuous ? nn::Activation::Tanh
                                    : nn::Activation::Identity;
        nets.push_back(std::make_unique<AgentNetworks>(nc, rng));
        samplers.push_back(sampler_factory());
        // Pre-size rank tables / priority scratch for the full
        // buffer so sampler-internal growth never allocates during
        // steady-state plans.
        samplers.back()->reserve(_config.bufferCapacity);
        if (continuous) {
            ouNoise.emplace_back(actDim, Real(0.15),
                                 _config.ouSigma);
        }
    }
}

std::vector<replay::TransitionShape>
CtdeTrainerBase::transitionShapes() const
{
    std::vector<replay::TransitionShape> shapes;
    shapes.reserve(obsDims.size());
    for (std::size_t d : obsDims)
        shapes.push_back({d, actDim});
    return shapes;
}

void
CtdeTrainerBase::selectActionsInto(
    const std::vector<std::vector<Real>> &obs, std::size_t episode,
    std::vector<int> &out)
{
    MARLIN_ASSERT(obs.size() == obsDims.size(),
                  "one observation per agent required");
    const Real eps = epsilon.value(episode);
    out.resize(obs.size());
    for (std::size_t i = 0; i < obs.size(); ++i) {
        if (rng.uniform() < eps) {
            out[i] = static_cast<int>(rng.randint(actDim));
            continue;
        }
        selObs.reshape(1, obsDims[i]);
        std::copy(obs[i].begin(), obs[i].end(), selObs.data());
        nets[i]->actor.forward(selObs, selOut);
        // Gumbel draw == sampling the softmax policy: the stochastic
        // policy itself provides exploration.
        out[i] = static_cast<int>(
            numeric::gumbelArgmaxRow(selOut, 0, rng));
    }
}

std::vector<int>
CtdeTrainerBase::greedyActions(
    const std::vector<std::vector<Real>> &obs)
{
    MARLIN_ASSERT(obs.size() == obsDims.size(),
                  "one observation per agent required");
    std::vector<int> actions(obs.size());
    for (std::size_t i = 0; i < obs.size(); ++i) {
        Matrix x(1, obsDims[i],
                 std::vector<Real>(obs[i].begin(), obs[i].end()));
        Matrix logits = nets[i]->actor.forward(x);
        actions[i] =
            static_cast<int>(numeric::argmaxRows(logits)[0]);
    }
    return actions;
}

void
CtdeTrainerBase::selectContinuousActionsInto(
    const std::vector<std::vector<Real>> &obs, std::size_t episode,
    std::vector<std::array<Real, 2>> &out)
{
    MARLIN_ASSERT(_config.actionMode == ActionMode::Continuous,
                  "trainer was built for discrete actions");
    MARLIN_ASSERT(obs.size() == obsDims.size(),
                  "one observation per agent required");
    out.resize(obs.size());
    for (std::size_t i = 0; i < obs.size(); ++i) {
        selObs.reshape(1, obsDims[i]);
        std::copy(obs[i].begin(), obs[i].end(), selObs.data());
        nets[i]->actor.forward(selObs, selOut); // Tanh-squashed.
        const auto &noise = ouNoise[i].step(rng);
        for (std::size_t c = 0; c < 2; ++c) {
            out[i][c] = std::clamp(selOut(0, c) + noise[c], Real(-1),
                                   Real(1));
        }
    }
    (void)episode;
}

std::vector<std::array<Real, 2>>
CtdeTrainerBase::greedyContinuousActions(
    const std::vector<std::vector<Real>> &obs)
{
    MARLIN_ASSERT(_config.actionMode == ActionMode::Continuous,
                  "trainer was built for discrete actions");
    MARLIN_ASSERT(obs.size() == obsDims.size(),
                  "one observation per agent required");
    std::vector<std::array<Real, 2>> actions(obs.size());
    for (std::size_t i = 0; i < obs.size(); ++i) {
        Matrix x(1, obsDims[i],
                 std::vector<Real>(obs[i].begin(), obs[i].end()));
        Matrix a = nets[i]->actor.forward(x);
        actions[i] = {a(0, 0), a(0, 1)};
    }
    return actions;
}

void
CtdeTrainerBase::onTransitionAdded(BufferIndex idx)
{
    for (auto &s : samplers)
        s->onAdd(idx);
}

UpdateStats
CtdeTrainerBase::update(const replay::ReplayStore &store,
                        profile::PhaseTimer &timer)
{
    MARLIN_ASSERT(store.numAgents() == obsDims.size(),
                  "store/trainer agent count mismatch");
    const std::size_t n = obsDims.size();
    if (scratchBatches.size() != n)
        scratchBatches.resize(n);
    if (workspaces.size() != n)
        workspaces.resize(n);

    // Serial prologue. Mini-batch sampling consumes the shared RNG
    // stream in agent order, and the cross-agent target-action pass
    // forwards every agent's target actor (whose forward() caches
    // activations), so both stay on the calling thread. Every agent
    // thus reads the same pre-update snapshot of all target policies
    // — the simultaneous-update semantics that make the per-agent
    // steps below independent.
    for (std::size_t i = 0; i < n; ++i) {
        UpdateWorkspace &ws = workspaces[i];
        {
            ScopedPhase sp(timer, Phase::Sampling);
            samplers[i]->planInto(store.size(), _config.batchSize,
                                  rng, ws.plan);
            store.gatherAll(ws.plan, scratchBatches[i]);
        }
        {
            ScopedPhase sp(timer, Phase::TargetQ);
            targetNextActionsInto(scratchBatches[i], agentRngs[i],
                                  ws.nextActions);
        }
    }

    // Per-agent critic+actor updates: agents own disjoint networks,
    // Adam moments, samplers, RNG streams and workspaces, and only
    // read the shared batches, so the pool runs them concurrently
    // and the result is bit-identical for any thread count.
    UpdateStats stats;
    base::ThreadPool &pool = base::ThreadPool::global();
    if (pool.numThreads() == 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            updateAgent(i, scratchBatches[i], workspaces[i], timer,
                        stats);
        }
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            workspaces[i].stats = UpdateStats{};
            workspaces[i].timer.reset();
        }
        pool.parallelFor(
            0, n, 1, [this](std::size_t b0, std::size_t b1) {
                for (std::size_t i = b0; i < b1; ++i) {
                    updateAgent(i, scratchBatches[i], workspaces[i],
                                workspaces[i].timer,
                                workspaces[i].stats);
                }
            });
        // Deterministic reduction in agent order: phase CPU time
        // merges into the caller's timer and the losses sum in the
        // same sequence the serial loop would use.
        for (std::size_t i = 0; i < n; ++i) {
            timer.merge(workspaces[i].timer);
            stats.criticLoss += workspaces[i].stats.criticLoss;
            stats.actorLoss += workspaces[i].stats.actorLoss;
            stats.meanAbsTd += workspaces[i].stats.meanAbsTd;
            stats.criticGradNorm +=
                workspaces[i].stats.criticGradNorm;
            stats.actorGradNorm += workspaces[i].stats.actorGradNorm;
            stats.nonFiniteCount +=
                workspaces[i].stats.nonFiniteCount;
        }
    }

    const Real inv = Real(1) / static_cast<Real>(obsDims.size());
    stats.criticLoss *= inv;
    stats.actorLoss *= inv;
    stats.meanAbsTd *= inv;
    stats.criticGradNorm *= inv;
    stats.actorGradNorm *= inv;
    ++updates;
    return stats;
}

void
CtdeTrainerBase::targetNextActionsInto(
    const std::vector<AgentBatch> &batches, Rng &noise_rng,
    std::vector<Matrix> &out)
{
    (void)noise_rng; // MADDPG's target policies are noise-free.
    // The N x (N-1) cross-agent policy reads the paper describes:
    // every trainer evaluates every agent's target actor.
    const bool discrete =
        _config.actionMode == ActionMode::Discrete;
    out.resize(batches.size());
    for (std::size_t j = 0; j < batches.size(); ++j) {
        nets[j]->targetActor.forward(batches[j].nextObs, out[j]);
        // Discrete: softmax relaxation over logits. Continuous:
        // the Tanh output activation already squashes.
        if (discrete)
            numeric::softmaxRows(out[j]);
    }
}

void
CtdeTrainerBase::buildJointCurrentInto(
    const std::vector<AgentBatch> &batches,
    std::vector<const Matrix *> &scratch, Matrix &out) const
{
    scratch.clear();
    for (const AgentBatch &b : batches)
        scratch.push_back(&b.obs);
    for (const AgentBatch &b : batches)
        scratch.push_back(&b.actions);
    numeric::hconcatInto(scratch, out);
}

void
CtdeTrainerBase::buildJointNextInto(
    const std::vector<AgentBatch> &batches,
    const std::vector<Matrix> &next_actions,
    std::vector<const Matrix *> &scratch, Matrix &out) const
{
    scratch.clear();
    for (const AgentBatch &b : batches)
        scratch.push_back(&b.nextObs);
    for (const Matrix &a : next_actions)
        scratch.push_back(&a);
    numeric::hconcatInto(scratch, out);
}

void
CtdeTrainerBase::tdTargetInto(const AgentBatch &batch,
                              const Matrix &q_next, Matrix &y) const
{
    y.reshape(q_next.rows(), 1);
    for (std::size_t r = 0; r < q_next.rows(); ++r) {
        const Real not_done = Real(1) - batch.dones(r, 0);
        y(r, 0) = batch.rewards(r, 0) +
                  _config.gamma * not_done * q_next(r, 0);
    }
}

std::size_t
CtdeTrainerBase::actionColumn(std::size_t i) const
{
    return sumObsDims + i * actDim;
}

bool
CtdeTrainerBase::criticActorStep(std::size_t i,
                                 const std::vector<AgentBatch> &batches,
                                 UpdateWorkspace &ws, bool update_actor,
                                 UpdateStats &stats)
{
    AgentNetworks &net = *nets[i];
    const replay::IndexPlan &plan = ws.plan;
    buildJointCurrentInto(batches, ws.concat, ws.joint);
    const Matrix &joint = ws.joint;
    const Matrix &y = ws.y;
    const HealthGuardPolicy policy = _config.healthPolicy;

    // ---- Critic (Q loss) ----
    // Losses and loss gradients are computed before any backward /
    // optimizer call so a NaN or Inf can be caught while the weights
    // are still untouched.
    net.critic.forward(joint, ws.q1);
    Matrix &q1 = ws.q1;
    Matrix &dq = ws.dq;
    Real critic_loss;
    if (plan.weights.empty()) {
        critic_loss = nn::mseLoss(q1, y, dq);
    } else {
        critic_loss = nn::weightedMseLoss(q1, y, plan.weights, dq);
    }
    Matrix &dq2 = ws.dq2;
    if (net.critic2) {
        net.critic2->forward(joint, ws.q2);
        if (plan.weights.empty()) {
            critic_loss += nn::mseLoss(ws.q2, y, dq2);
        } else {
            critic_loss +=
                nn::weightedMseLoss(ws.q2, y, plan.weights, dq2);
        }
    }
    const bool critic_healthy =
        std::isfinite(critic_loss) && !numeric::hasNonFinite(dq) &&
        (net.critic2 == nullptr || !numeric::hasNonFinite(dq2));
    if (!critic_healthy) {
        ++stats.nonFiniteCount;
        nonFiniteTrips().add();
        if (policy != HealthGuardPolicy::Off) {
            // Poisoned TD errors must not reach the sampler
            // priorities either, so the whole agent step is dropped.
            net.criticOpt.zeroGrad();
            return false;
        }
    }
    net.critic.backward(dq);
    if (net.critic2)
        net.critic2->backward(dq2);
    net.criticOpt.step();
    stats.criticLoss += critic_loss;
    stats.criticGradNorm += l2Norm(dq);
    if (net.critic2)
        stats.criticGradNorm += l2Norm(dq2);

    // Refresh priorities from the fresh TD errors (no-op for
    // unprioritized samplers).
    nn::absTdErrorInto(q1, y, ws.td);
    if (!plan.priorityIds.empty())
        samplers[i]->updatePriorities(plan.priorityIds, ws.td);
    Real mean_td = 0;
    for (Real t : ws.td)
        mean_td += t;
    stats.meanAbsTd += mean_td / static_cast<Real>(ws.td.size());

    if (!update_actor)
        return critic_healthy;

    // ---- Actor (P loss) ----
    // Differentiable path: replace agent i's stored action block
    // with the current policy's action relaxation (softmax over
    // logits for discrete, tanh output for continuous), run the
    // critic, and backprop -Q through the critic input into the
    // actor.
    const bool discrete =
        _config.actionMode == ActionMode::Discrete;
    net.actor.forward(batches[i].obs, ws.logits);
    Matrix &logits = ws.logits;
    ws.soft = logits;
    Matrix &soft = ws.soft;
    if (discrete)
        numeric::softmaxRows(soft);

    ws.jointPi = joint;
    Matrix &joint_pi = ws.jointPi;
    const std::size_t col = actionColumn(i);
    for (std::size_t r = 0; r < joint_pi.rows(); ++r) {
        Real *dst = joint_pi.row(r) + col;
        const Real *src = soft.row(r);
        for (std::size_t c = 0; c < actDim; ++c)
            dst[c] = src[c];
    }

    net.critic.forward(joint_pi, ws.qPi);
    const Real actor_loss = nn::policyLoss(ws.qPi, ws.dqPi);
    net.critic.backward(ws.dqPi, &ws.dJoint);
    // The critic is frozen during the actor step: discard the
    // gradients this pass accumulated into it.
    net.critic.zeroGrad();

    ws.dSoft.reshape(ws.qPi.rows(), actDim);
    Matrix &d_soft = ws.dSoft;
    for (std::size_t r = 0; r < ws.dJoint.rows(); ++r) {
        const Real *src = ws.dJoint.row(r) + col;
        Real *dst = d_soft.row(r);
        for (std::size_t c = 0; c < actDim; ++c)
            dst[c] = src[c];
    }

    Matrix &d_logits = ws.dLogits;
    if (discrete) {
        numeric::softmaxBackwardRows(soft, d_soft, d_logits);
        // Logit magnitude regularization (reference implementations
        // use mean(logits^2) * 1e-3) keeps the relaxation from
        // saturating.
        const Real reg =
            Real(2e-3) / static_cast<Real>(logits.size());
        for (std::size_t k = 0; k < d_logits.size(); ++k)
            d_logits.data()[k] += reg * logits.data()[k];
    } else {
        // Continuous: the actor's Tanh output activation owns the
        // squashing derivative inside backward().
        d_logits = d_soft;
    }

    const bool actor_healthy =
        std::isfinite(actor_loss) && !numeric::hasNonFinite(d_logits);
    if (!actor_healthy) {
        ++stats.nonFiniteCount;
        nonFiniteTrips().add();
        if (policy != HealthGuardPolicy::Off) {
            net.actorOpt.zeroGrad();
            return false;
        }
    }
    net.actor.backward(d_logits);
    net.actorOpt.step();
    stats.actorLoss += actor_loss;
    stats.actorGradNorm += l2Norm(d_logits);
    return critic_healthy && actor_healthy;
}

void
CtdeTrainerBase::saveRuntimeState(std::ostream &os) const
{
    writePod<std::uint64_t>(os, updates);
    writeRngState(os, rng.state());

    writePod<std::uint64_t>(os, agentRngs.size());
    for (const Rng &r : agentRngs)
        writeRngState(os, r.state());

    writePod<std::uint64_t>(os, ouNoise.size());
    for (const OrnsteinUhlenbeckNoise &n : ouNoise)
        writeVector(os, n.state());

    // Sampler state is opaque to this layer: each sampler serializes
    // into its own length-prefixed blob so a sampler with no state
    // (uniform) costs 8 bytes and stays skippable.
    writePod<std::uint64_t>(os, samplers.size());
    for (const auto &sampler : samplers) {
        std::ostringstream blob;
        sampler->saveState(blob);
        writeString(os, blob.str());
    }

    saveExtraState(os);
}

void
CtdeTrainerBase::loadRuntimeState(std::istream &is)
{
    updates = readPod<std::uint64_t>(is);
    rng.setState(readRngState(is));

    const auto n_rngs = readPod<std::uint64_t>(is);
    if (n_rngs != agentRngs.size()) {
        fatal("checkpoint has %llu agent RNG streams, trainer has %zu",
              static_cast<unsigned long long>(n_rngs),
              agentRngs.size());
    }
    for (Rng &r : agentRngs)
        r.setState(readRngState(is));

    const auto n_noise = readPod<std::uint64_t>(is);
    if (n_noise != ouNoise.size()) {
        fatal("checkpoint has %llu OU noise states, trainer has %zu",
              static_cast<unsigned long long>(n_noise),
              ouNoise.size());
    }
    for (OrnsteinUhlenbeckNoise &n : ouNoise)
        n.setState(readVector<Real>(is));

    const auto n_samplers = readPod<std::uint64_t>(is);
    if (n_samplers != samplers.size()) {
        fatal("checkpoint has %llu sampler states, trainer has %zu",
              static_cast<unsigned long long>(n_samplers),
              samplers.size());
    }
    for (auto &sampler : samplers) {
        std::istringstream blob(readString(is));
        sampler->loadState(blob);
    }

    loadExtraState(is);
}

MaddpgTrainer::MaddpgTrainer(std::vector<std::size_t> obs_dims,
                             std::size_t act_dim, TrainConfig config,
                             SamplerFactory sampler_factory)
    : CtdeTrainerBase(std::move(obs_dims), act_dim, std::move(config),
                      std::move(sampler_factory), false)
{
}

void
MaddpgTrainer::updateAgent(std::size_t i,
                           const std::vector<AgentBatch> &batches,
                           UpdateWorkspace &ws,
                           profile::PhaseTimer &timer,
                           UpdateStats &stats)
{
    {
        ScopedPhase sp(timer, Phase::TargetQ);
        buildJointNextInto(batches, ws.nextActions, ws.concat,
                           ws.jointNext);
        nets[i]->targetCritic.forward(ws.jointNext, ws.qNext);
        tdTargetInto(batches[i], ws.qNext, ws.y);
    }
    {
        ScopedPhase sp(timer, Phase::QPLoss);
        if (criticActorStep(i, batches, ws, true, stats))
            nets[i]->softUpdateTargets(_config.tau);
    }
}

} // namespace marlin::core
