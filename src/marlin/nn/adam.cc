#include "marlin/nn/adam.hh"

#include <cmath>

#include "marlin/base/logging.hh"
#include "marlin/numeric/kernels.hh"

namespace marlin::nn
{

AdamOptimizer::AdamOptimizer(std::vector<Param *> params,
                             AdamConfig config)
    : _config(config), bound(std::move(params))
{
    MARLIN_ASSERT(!bound.empty(), "AdamOptimizer with no parameters");
    m.reserve(bound.size());
    v.reserve(bound.size());
    for (Param *p : bound) {
        m.emplace_back(p->value.rows(), p->value.cols());
        v.emplace_back(p->value.rows(), p->value.cols());
    }
}

void
AdamOptimizer::step()
{
    if (_config.gradClipNorm > Real(0))
        clipGradNorm(_config.gradClipNorm);
    ++t;
    numeric::kernels::AdamParams params;
    params.beta1 = _config.beta1;
    params.beta2 = _config.beta2;
    params.biasCorr1 = Real(1) - std::pow(_config.beta1,
                                          static_cast<Real>(t));
    params.biasCorr2 = Real(1) - std::pow(_config.beta2,
                                          static_cast<Real>(t));
    params.lr = _config.lr;
    params.epsilon = _config.epsilon;
    const numeric::kernels::KernelTable &kt =
        numeric::kernels::active();
    for (std::size_t i = 0; i < bound.size(); ++i) {
        Param &p = *bound[i];
        kt.adamStep(params, p.grad.data(), p.value.data(),
                    m[i].data(), v[i].data(), p.value.size());
        p.zeroGrad();
    }
}

void
AdamOptimizer::zeroGrad()
{
    for (Param *p : bound)
        p->zeroGrad();
}

void
AdamOptimizer::setState(std::vector<Matrix> m1, std::vector<Matrix> m2,
                        std::uint64_t step_count)
{
    MARLIN_ASSERT(m1.size() == bound.size() &&
                      m2.size() == bound.size(),
                  "Adam state count mismatch");
    for (std::size_t i = 0; i < bound.size(); ++i) {
        MARLIN_ASSERT(m1[i].rows() == bound[i]->value.rows() &&
                          m1[i].cols() == bound[i]->value.cols() &&
                          m2[i].rows() == bound[i]->value.rows() &&
                          m2[i].cols() == bound[i]->value.cols(),
                      "Adam state shape mismatch");
    }
    m = std::move(m1);
    v = std::move(m2);
    t = step_count;
}

Real
AdamOptimizer::clipGradNorm(Real max_norm)
{
    double total = 0.0;
    for (Param *p : bound) {
        const Real *g = p->grad.data();
        for (std::size_t j = 0; j < p->grad.size(); ++j)
            total += static_cast<double>(g[j]) * g[j];
    }
    const Real norm = static_cast<Real>(std::sqrt(total));
    if (norm > max_norm && norm > Real(0)) {
        const Real scale = max_norm / norm;
        for (Param *p : bound)
            p->grad *= scale;
    }
    return norm;
}

} // namespace marlin::nn
