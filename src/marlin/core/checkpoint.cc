#include "marlin/core/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "marlin/base/crc32.hh"
#include "marlin/base/serialize.hh"
#include "marlin/nn/serialize.hh"
#include "marlin/obs/metrics.hh"
#include "marlin/obs/trace.hh"
#include "marlin/replay/sharded_store.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace marlin::core
{

namespace
{

constexpr std::uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(b))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(c))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(d))
            << 24);
}

constexpr std::uint32_t tagMeta = fourcc('M', 'E', 'T', 'A');
constexpr std::uint32_t tagNets = fourcc('N', 'E', 'T', 'S');
constexpr std::uint32_t tagTrainerRt = fourcc('T', 'R', 'T', 'S');
constexpr std::uint32_t tagReplay = fourcc('R', 'P', 'L', 'Y');
constexpr std::uint32_t tagInterleaved = fourcc('I', 'L', 'V', 'S');
constexpr std::uint32_t tagSharded = fourcc('S', 'H', 'R', 'D');
constexpr std::uint32_t tagEnvRng = fourcc('E', 'N', 'V', 'S');
constexpr std::uint32_t tagLoop = fourcc('L', 'O', 'O', 'P');

std::string
tagName(std::uint32_t tag)
{
    std::string name(4, '?');
    for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
        name[static_cast<std::size_t>(i)] =
            (c >= 0x20 && c < 0x7f) ? c : '?';
    }
    return name;
}

/** Per-agent network + optimizer bodies (shared by v1 and NETS). */
void
writeNetworkBodies(std::ostream &os, CtdeTrainerBase &trainer)
{
    writePod<std::uint64_t>(os, trainer.numAgents());
    for (std::size_t i = 0; i < trainer.numAgents(); ++i) {
        AgentNetworks &net = trainer.networks(i);
        const bool twin = net.critic2 != nullptr;
        writePod<std::uint8_t>(os, twin ? 1 : 0);
        nn::saveMlp(os, net.actor);
        nn::saveMlp(os, net.critic);
        nn::saveMlp(os, net.targetActor);
        nn::saveMlp(os, net.targetCritic);
        if (twin) {
            nn::saveMlp(os, *net.critic2);
            nn::saveMlp(os, *net.targetCritic2);
        }
        nn::saveAdam(os, net.actorOpt);
        nn::saveAdam(os, net.criticOpt);
    }
}

/**
 * Inverse of writeNetworkBodies. Fatal on mismatch: callers have
 * already ruled out architecture disagreement (via META or the v1
 * prelude), so a failure here is writer-side corruption that the
 * CRC should have caught — not a recoverable condition.
 */
void
readNetworkBodies(std::istream &is, CtdeTrainerBase &trainer)
{
    const auto agents = readPod<std::uint64_t>(is);
    if (agents != trainer.numAgents())
        fatal("checkpoint has %llu agents, trainer has %zu",
              static_cast<unsigned long long>(agents),
              trainer.numAgents());
    for (std::size_t i = 0; i < trainer.numAgents(); ++i) {
        AgentNetworks &net = trainer.networks(i);
        const bool twin_ckpt = readPod<std::uint8_t>(is) != 0;
        const bool twin = net.critic2 != nullptr;
        if (twin_ckpt != twin)
            fatal("checkpoint twin-critic flag mismatch for agent "
                  "%zu",
                  i);
        nn::loadMlp(is, net.actor);
        nn::loadMlp(is, net.critic);
        nn::loadMlp(is, net.targetActor);
        nn::loadMlp(is, net.targetCritic);
        if (twin) {
            nn::loadMlp(is, *net.critic2);
            nn::loadMlp(is, *net.targetCritic2);
        }
        nn::loadAdam(is, net.actorOpt);
        nn::loadAdam(is, net.criticOpt);
    }
}

void
writeSection(std::ostream &os, std::uint32_t tag,
             const std::string &payload)
{
    writePod<std::uint32_t>(os, tag);
    writePod<std::uint64_t>(os, payload.size());
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    writePod<std::uint32_t>(os,
                            crc32(payload.data(), payload.size()));
}

std::string
metaPayload(const RunState &state)
{
    std::ostringstream os;
    CtdeTrainerBase &trainer = *state.trainer;
    writeString(os, trainer.name());
    writePod<std::uint64_t>(os, trainer.numAgents());
    std::vector<std::uint64_t> dims(trainer.observationDims().begin(),
                                    trainer.observationDims().end());
    writeVector(os, dims);
    writePod<std::uint64_t>(os, trainer.actionDim());
    writePod<std::uint8_t>(os, trainer.twinCritic() ? 1 : 0);
    std::uint64_t capacity = 0;
    if (state.buffers)
        capacity = state.buffers->capacity();
    else if (state.sharded)
        capacity = state.sharded->capacity();
    writePod<std::uint64_t>(os, capacity);
    return os.str();
}

/**
 * Lift a replay-storage load outcome into checkpoint vocabulary so
 * callers see one error taxonomy regardless of which tier failed.
 */
CkptResult
liftStoreResult(const replay::StoreLoadResult &r,
                const std::string &section)
{
    if (r)
        return CkptResult::ok(checkpointVersion);
    CkptError error = CkptError::Truncated;
    switch (r.error) {
      case replay::StoreLoadError::ShapeMismatch:
        error = CkptError::ShapeMismatch;
        break;
      case replay::StoreLoadError::Truncated:
        error = CkptError::Truncated;
        break;
      case replay::StoreLoadError::IoError:
        error = CkptError::IoError;
        break;
      case replay::StoreLoadError::Corrupt:
        error = CkptError::CrcMismatch;
        break;
      case replay::StoreLoadError::None:
        break;
    }
    return CkptResult::fail(error,
                            "section " + section + ": " + r.detail);
}

/** Slurp the rest of a stream into memory for offset-based parsing. */
std::string
slurp(std::istream &is)
{
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

bool
readAt(const std::string &image, std::size_t off, void *dst,
       std::size_t len)
{
    if (image.size() < off || image.size() - off < len)
        return false;
    std::memcpy(dst, image.data() + off, len);
    return true;
}

/**
 * Version-1 files: networks only, preceded by the algorithm name and
 * agent count. Those two fields are pre-validated with explicit
 * bounds checks so the common mismatch cases come back as CkptResult
 * errors; only deep corruption of the network blobs still ends in a
 * fatal (v1 has no CRC to rule it out).
 */
CkptResult
loadLegacyImage(const std::string &image, const RunState &state)
{
    std::size_t off = 8;
    std::uint64_t algo_len = 0;
    if (!readAt(image, off, &algo_len, sizeof(algo_len)))
        return CkptResult::fail(CkptError::Truncated,
                                "v1 file ends inside algorithm tag");
    off += sizeof(algo_len);
    if (image.size() - off < algo_len)
        return CkptResult::fail(CkptError::Truncated,
                                "v1 file ends inside algorithm tag");
    const std::string algo = image.substr(off, algo_len);
    off += algo_len;
    if (algo != state.trainer->name()) {
        return CkptResult::fail(CkptError::AlgoMismatch,
                                "checkpoint was written by '" + algo +
                                    "' but trainer is '" +
                                    state.trainer->name() + "'");
    }
    std::uint64_t agents = 0;
    if (!readAt(image, off, &agents, sizeof(agents)))
        return CkptResult::fail(CkptError::Truncated,
                                "v1 file ends inside agent count");
    if (agents != state.trainer->numAgents()) {
        return CkptResult::fail(
            CkptError::ShapeMismatch,
            "checkpoint has " + std::to_string(agents) +
                " agents, trainer has " +
                std::to_string(state.trainer->numAgents()));
    }

    std::istringstream body(image.substr(off));
    readNetworkBodies(body, *state.trainer);
    CkptResult result = CkptResult::ok(checkpointVersionLegacy);
    result.detail = "networks only (v1 file)";
    return result;
}

struct SectionSpan
{
    std::size_t off = 0;
    std::size_t len = 0;
};

CkptResult
loadImage(const std::string &image, const RunState &state)
{
    MARLIN_ASSERT(state.trainer != nullptr,
                  "loadRun needs a trainer");
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    if (!readAt(image, 0, &magic, sizeof(magic)) ||
        !readAt(image, 4, &version, sizeof(version)))
        return CkptResult::fail(CkptError::Truncated,
                                "file shorter than its header");
    if (magic != checkpointMagic)
        return CkptResult::fail(CkptError::BadMagic,
                                "not a MARLin checkpoint");
    if (version > checkpointVersion) {
        CkptResult r = CkptResult::fail(
            CkptError::BadVersion,
            "written by format version " + std::to_string(version) +
                ", newest supported is " +
                std::to_string(checkpointVersion));
        r.version = version;
        return r;
    }
    if (version == checkpointVersionLegacy)
        return loadLegacyImage(image, state);

    // ---- Section scan: bounds + CRC before anything is parsed ----
    std::map<std::uint32_t, SectionSpan> sections;
    std::size_t off = 8;
    while (off < image.size()) {
        std::uint32_t tag = 0;
        std::uint64_t len = 0;
        if (!readAt(image, off, &tag, sizeof(tag)) ||
            !readAt(image, off + 4, &len, sizeof(len)))
            return CkptResult::fail(CkptError::Truncated,
                                    "file ends inside a section "
                                    "header");
        off += 12;
        if (image.size() - off < len ||
            image.size() - off - len < 4) {
            return CkptResult::fail(CkptError::Truncated,
                                    "file ends inside section " +
                                        tagName(tag));
        }
        std::uint32_t stored_crc = 0;
        readAt(image, off + len, &stored_crc, sizeof(stored_crc));
        if (crc32(image.data() + off, len) != stored_crc) {
            return CkptResult::fail(CkptError::CrcMismatch,
                                    "section " + tagName(tag) +
                                        " payload fails its CRC");
        }
        sections[tag] = {off, static_cast<std::size_t>(len)};
        off += len + 4;
    }

    const auto payload = [&](std::uint32_t tag) {
        const SectionSpan &span = sections.at(tag);
        return image.substr(span.off, span.len);
    };
    const auto require = [&](std::uint32_t tag,
                             bool wanted) -> const char * {
        if (wanted && sections.find(tag) == sections.end())
            return "section missing";
        return nullptr;
    };

    // Everything the caller asked to restore must be present.
    struct Want
    {
        std::uint32_t tag;
        bool wanted;
    };
    const Want wants[] = {
        {tagMeta, true},
        {tagNets, true},
        {tagTrainerRt, true},
        {tagReplay, state.buffers != nullptr},
        {tagInterleaved, state.store != nullptr},
        {tagSharded, state.sharded != nullptr},
        {tagEnvRng, state.environment != nullptr},
        {tagLoop, state.progress != nullptr},
    };
    for (const Want &want : wants) {
        if (require(want.tag, want.wanted)) {
            return CkptResult::fail(CkptError::MissingSection,
                                    "checkpoint has no " +
                                        tagName(want.tag) +
                                        " section");
        }
    }

    // ---- META: architecture fingerprint gate ----
    {
        std::istringstream meta(payload(tagMeta));
        const std::string algo = readString(meta);
        if (algo != state.trainer->name()) {
            return CkptResult::fail(
                CkptError::AlgoMismatch,
                "checkpoint was written by '" + algo +
                    "' but trainer is '" + state.trainer->name() +
                    "'");
        }
        const auto agents = readPod<std::uint64_t>(meta);
        const auto dims = readVector<std::uint64_t>(meta);
        const auto act_dim = readPod<std::uint64_t>(meta);
        const bool twin = readPod<std::uint8_t>(meta) != 0;
        const auto capacity = readPod<std::uint64_t>(meta);

        const auto &want_dims = state.trainer->observationDims();
        bool shapes_ok = agents == state.trainer->numAgents() &&
                         act_dim == state.trainer->actionDim() &&
                         twin == state.trainer->twinCritic() &&
                         dims.size() == want_dims.size();
        if (shapes_ok) {
            for (std::size_t i = 0; i < dims.size(); ++i)
                shapes_ok &= dims[i] == want_dims[i];
        }
        if (!shapes_ok) {
            return CkptResult::fail(CkptError::ShapeMismatch,
                                    "checkpoint architecture does "
                                    "not match the trainer");
        }
        if (state.buffers &&
            capacity != state.buffers->capacity()) {
            return CkptResult::fail(
                CkptError::ShapeMismatch,
                "checkpoint replay capacity " +
                    std::to_string(capacity) + " != run capacity " +
                    std::to_string(state.buffers->capacity()));
        }
        if (state.store && capacity != state.store->capacity()) {
            return CkptResult::fail(
                CkptError::ShapeMismatch,
                "checkpoint replay capacity " +
                    std::to_string(capacity) +
                    " != interleaved capacity " +
                    std::to_string(state.store->capacity()));
        }
        if (state.sharded &&
            capacity != state.sharded->capacity()) {
            return CkptResult::fail(
                CkptError::ShapeMismatch,
                "checkpoint replay capacity " +
                    std::to_string(capacity) +
                    " != sharded capacity " +
                    std::to_string(state.sharded->capacity()));
        }
    }

    // ---- All gates passed: restore (first mutation happens here) --
    {
        std::istringstream body(payload(tagNets));
        readNetworkBodies(body, *state.trainer);
    }
    {
        std::istringstream body(payload(tagTrainerRt));
        state.trainer->loadRuntimeState(body);
    }
    if (state.buffers) {
        std::istringstream body(payload(tagReplay));
        CkptResult r = liftStoreResult(
            state.buffers->loadState(body), tagName(tagReplay));
        if (!r)
            return r;
    }
    if (state.store) {
        std::istringstream body(payload(tagInterleaved));
        CkptResult r = liftStoreResult(
            state.store->loadState(body), tagName(tagInterleaved));
        if (!r)
            return r;
    }
    if (state.sharded) {
        std::istringstream body(payload(tagSharded));
        CkptResult r = liftStoreResult(
            state.sharded->loadState(body), tagName(tagSharded));
        if (!r)
            return r;
    }
    if (state.environment) {
        std::istringstream body(payload(tagEnvRng));
        state.environment->setRngState(readRngState(body));
    }
    if (state.progress) {
        std::istringstream body(payload(tagLoop));
        state.progress->episodeIndex = readPod<std::uint64_t>(body);
        state.progress->insertionsSinceUpdate =
            readPod<std::uint64_t>(body);
        state.progress->envSteps = readPod<std::uint64_t>(body);
        state.progress->updateCalls = readPod<std::uint64_t>(body);
        state.progress->episodeRewards = readVector<Real>(body);
    }
    return CkptResult::ok(version);
}

obs::Counter &
fsyncCounter()
{
    static obs::Counter &fsyncs =
        obs::Registry::instance().counter("ckpt.fsyncs");
    return fsyncs;
}

void
fsyncDirectory(const std::string &dir)
{
#if defined(__unix__) || defined(__APPLE__)
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        fsyncCounter().add();
        ::close(fd);
    }
#else
    (void)dir;
#endif
}

} // namespace

const char *
ckptErrorName(CkptError error)
{
    switch (error) {
      case CkptError::None:
        return "none";
      case CkptError::NotFound:
        return "not-found";
      case CkptError::IoError:
        return "io-error";
      case CkptError::Truncated:
        return "truncated";
      case CkptError::BadMagic:
        return "bad-magic";
      case CkptError::BadVersion:
        return "bad-version";
      case CkptError::CrcMismatch:
        return "crc-mismatch";
      case CkptError::MissingSection:
        return "missing-section";
      case CkptError::AlgoMismatch:
        return "algo-mismatch";
      case CkptError::ShapeMismatch:
        return "shape-mismatch";
    }
    return "unknown";
}

void
saveRun(std::ostream &os, const RunState &state)
{
    MARLIN_ASSERT(state.trainer != nullptr,
                  "saveRun needs a trainer");
    writeHeader(os, checkpointMagic, checkpointVersion);
    writeSection(os, tagMeta, metaPayload(state));
    {
        std::ostringstream payload;
        writeNetworkBodies(payload, *state.trainer);
        writeSection(os, tagNets, payload.str());
    }
    {
        std::ostringstream payload;
        state.trainer->saveRuntimeState(payload);
        writeSection(os, tagTrainerRt, payload.str());
    }
    if (state.buffers) {
        std::ostringstream payload;
        state.buffers->saveState(payload);
        writeSection(os, tagReplay, payload.str());
    }
    if (state.store) {
        std::ostringstream payload;
        state.store->saveState(payload);
        writeSection(os, tagInterleaved, payload.str());
    }
    if (state.sharded) {
        std::ostringstream payload;
        state.sharded->saveState(payload);
        writeSection(os, tagSharded, payload.str());
    }
    if (state.environment) {
        std::ostringstream payload;
        writeRngState(payload, state.environment->rngState());
        writeSection(os, tagEnvRng, payload.str());
    }
    if (state.progress) {
        std::ostringstream payload;
        writePod<std::uint64_t>(payload,
                                state.progress->episodeIndex);
        writePod<std::uint64_t>(
            payload, state.progress->insertionsSinceUpdate);
        writePod<std::uint64_t>(payload, state.progress->envSteps);
        writePod<std::uint64_t>(payload,
                                state.progress->updateCalls);
        writeVector(payload, state.progress->episodeRewards);
        writeSection(os, tagLoop, payload.str());
    }
}

CkptResult
loadRun(std::istream &is, const RunState &state)
{
    return loadImage(slurp(is), state);
}

CkptResult
saveRunFile(const std::string &path, const RunState &state,
            base::FaultInjector *injector)
{
    // Spans + counters expose the paper-relevant cost of durability:
    // how many bytes each rotation writes and how often fsync stalls
    // the loop.
    obs::TraceSpan span("checkpoint_write", "ckpt");
    static obs::Counter &files =
        obs::Registry::instance().counter("ckpt.files_written");
    static obs::Counter &bytes =
        obs::Registry::instance().counter("ckpt.bytes_written");

    std::ostringstream buf;
    saveRun(buf, state);
    const std::string image = buf.str();
    const std::string tmp = path + ".tmp";

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        CkptResult r = CkptResult::fail(
            CkptError::IoError, "cannot open '" + tmp + "'");
        r.path = path;
        return r;
    }
    if (injector != nullptr && !injector->onWrite()) {
        // Simulate the disk going away mid-write: a torn temp file
        // is left behind (exactly what a crash leaves), and the real
        // checkpoint at @p path is never touched.
        std::fwrite(image.data(), 1, image.size() / 2, f);
        std::fclose(f);
        CkptResult r = CkptResult::fail(CkptError::IoError,
                                        "injected write failure");
        r.path = path;
        return r;
    }
    const std::size_t wrote =
        std::fwrite(image.data(), 1, image.size(), f);
    const bool flushed = std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
    if (flushed) {
        ::fsync(::fileno(f));
        fsyncCounter().add();
    }
#endif
    std::fclose(f);
    if (wrote != image.size() || !flushed) {
        CkptResult r = CkptResult::fail(
            CkptError::IoError, "short write to '" + tmp + "'");
        r.path = path;
        return r;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        CkptResult r = CkptResult::fail(
            CkptError::IoError,
            "cannot rename '" + tmp + "' to '" + path + "'");
        r.path = path;
        return r;
    }
    files.add();
    bytes.add(image.size());
    CkptResult r = CkptResult::ok(checkpointVersion);
    r.path = path;
    return r;
}

CkptResult
loadRunFile(const std::string &path, const RunState &state)
{
    static obs::Counter &loads =
        obs::Registry::instance().counter("ckpt.loads");
    static obs::Counter &failures =
        obs::Registry::instance().counter("ckpt.load_failures");
    loads.add();
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        failures.add();
        CkptResult r = CkptResult::fail(
            CkptError::NotFound, "cannot open '" + path + "'");
        r.path = path;
        return r;
    }
    CkptResult r = loadRun(is, state);
    r.path = path;
    if (!r)
        failures.add();
    return r;
}

std::string
latestCheckpointPath(const std::string &dir)
{
    return dir + "/latest.ckpt";
}

std::string
previousCheckpointPath(const std::string &dir)
{
    return dir + "/previous.ckpt";
}

CkptResult
saveRotating(const std::string &dir, const RunState &state,
             base::FaultInjector *injector)
{
    const std::string staging = dir + "/staging.ckpt";
    const std::string latest = latestCheckpointPath(dir);
    const std::string previous = previousCheckpointPath(dir);

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    CkptResult r = saveRunFile(staging, state, injector);
    if (!r)
        return r;

    // Rotate: latest -> previous (a missing latest just fails the
    // rename, which is fine on the very first checkpoint), then the
    // fully-written staging file becomes latest. A crash between the
    // two renames leaves a valid previous, which resumeLatest finds.
    std::rename(latest.c_str(), previous.c_str());
    if (std::rename(staging.c_str(), latest.c_str()) != 0) {
        CkptResult fail_r = CkptResult::fail(
            CkptError::IoError,
            "cannot rotate '" + staging + "' to '" + latest + "'");
        fail_r.path = latest;
        return fail_r;
    }
    fsyncDirectory(dir);
    r.path = latest;
    return r;
}

CkptResult
resumeLatest(const std::string &dir, const RunState &state)
{
    const std::string latest = latestCheckpointPath(dir);
    const std::string previous = previousCheckpointPath(dir);

    CkptResult from_latest = loadRunFile(latest, state);
    if (from_latest)
        return from_latest;
    if (from_latest.error != CkptError::NotFound) {
        warn("checkpoint '%s' unusable (%s: %s); falling back to "
             "'%s'",
             latest.c_str(), ckptErrorName(from_latest.error),
             from_latest.detail.c_str(), previous.c_str());
    }

    CkptResult from_previous = loadRunFile(previous, state);
    if (from_previous)
        return from_previous;
    if (from_latest.error == CkptError::NotFound &&
        from_previous.error == CkptError::NotFound) {
        CkptResult r = CkptResult::fail(
            CkptError::NotFound, "no checkpoint in '" + dir + "'");
        r.path = latest;
        return r;
    }
    // Report the more informative of the two failures.
    if (from_previous.error == CkptError::NotFound)
        return from_latest;
    return from_previous;
}

void
saveTrainer(std::ostream &os, CtdeTrainerBase &trainer)
{
    writeHeader(os, checkpointMagic, checkpointVersionLegacy);
    writeString(os, trainer.name());
    writeNetworkBodies(os, trainer);
}

void
loadTrainer(std::istream &is, CtdeTrainerBase &trainer)
{
    readHeader(is, checkpointMagic, checkpointVersionLegacy);
    const std::string algo = readString(is);
    if (algo != trainer.name())
        fatal("checkpoint was written by '%s' but trainer is '%s'",
              algo.c_str(), trainer.name().c_str());
    readNetworkBodies(is, trainer);
}

void
saveTrainerFile(const std::string &path, CtdeTrainerBase &trainer)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    saveTrainer(os, trainer);
    if (!os)
        fatal("failed while writing checkpoint '%s'", path.c_str());
}

void
loadTrainerFile(const std::string &path, CtdeTrainerBase &trainer)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open checkpoint '%s'", path.c_str());
    loadTrainer(is, trainer);
}

} // namespace marlin::core
