/**
 * @file
 * Hybrid measured/modeled phase estimator used by the training-scale
 * benches (Table I, Figures 2, 3, 6, 9, 12, 13).
 *
 * The paper's platform runs mini-batch sampling on the CPU and the
 * actor-critic network computations on a GPU. This container has no
 * GPU, so the benches measure every CPU-bound phase directly (env
 * step, action-selection forward passes, replay insertion, and the
 * real mini-batch gathers at batch 1024) and *model* the GPU-side
 * network phases with the analytic device model (FLOPs / PCIe bytes
 * / kernel-launch latency per update, Section "device_model").
 * Swapping the device config reproduces the paper's cross-platform
 * comparisons (RTX 3090 vs GTX 1070 vs CPU-only).
 */

#ifndef MARLIN_BENCH_HYBRID_MODEL_HH
#define MARLIN_BENCH_HYBRID_MODEL_HH

#include "common.hh"

namespace marlin::bench
{

/** Per-phase seconds; step-scoped and update-scoped entries. */
struct PhaseEstimate
{
    // Per environment step.
    double actionSelection = 0;
    double envStep = 0;
    double bufferAdd = 0;
    // Per update-all-trainers call (all N trainers).
    double sampling = 0;
    double targetQ = 0;
    double qpLoss = 0;
};

/** What the estimator measured/modeled, for reporting. */
struct EstimateContext
{
    std::size_t agents = 0;
    BufferIndex capacity = 0;
    std::size_t batch = 1024;
    std::string device;
};

/** FLOPs of one agent-trainer's target-Q phase. */
inline double
targetQFlops(const std::vector<std::size_t> &dims, std::size_t act_dim,
             std::size_t batch, std::size_t hidden,
             std::size_t joint_dim, bool twin)
{
    double flops = 0;
    for (std::size_t d : dims) {
        flops += memsim::mlpForwardFlops(batch, d, hidden, act_dim);
    }
    flops += memsim::mlpForwardFlops(batch, joint_dim, hidden, 1) *
             (twin ? 2.0 : 1.0);
    return flops;
}

/** FLOPs of one agent-trainer's Q-loss + P-loss phase. */
inline double
qpLossFlops(std::size_t obs_dim, std::size_t act_dim,
            std::size_t batch, std::size_t hidden,
            std::size_t joint_dim, bool twin)
{
    const double critic_fwd =
        memsim::mlpForwardFlops(batch, joint_dim, hidden, 1);
    const double actor_fwd =
        memsim::mlpForwardFlops(batch, obs_dim, hidden, act_dim);
    // Q loss: forward + backward (~3x forward) per critic.
    double flops = 3.0 * critic_fwd * (twin ? 2.0 : 1.0);
    // P loss: critic forward+input-backward plus actor fwd+bwd.
    flops += 3.0 * critic_fwd + 3.0 * actor_fwd;
    return flops;
}

/**
 * Measure CPU phases and model device phases for one configuration.
 *
 * @param algo MADDPG or MATD3.
 * @param task Particle task.
 * @param agents Trained agent count.
 * @param device GPU model; device.present == false means the
 *        network phases run on the CPU and are *measured* from the
 *        real trainer instead of modeled.
 * @param ctx Out-parameter describing the run.
 */
/**
 * Capacity that keeps per-update working sets comparable across an
 * agent sweep: sized for the *largest* agent count so growth ratios
 * between rows are not distorted by per-row capacity changes.
 */
inline BufferIndex
sweepCapacity(Task task, std::size_t max_agents,
              std::size_t budget_mb = 512)
{
    return scaledCapacity(taskShapes(task, max_agents),
                          static_cast<std::size_t>(budget_mb) << 20);
}

inline PhaseEstimate
estimatePhases(Algo algo, Task task, std::size_t agents,
               const memsim::DeviceConfig &device,
               EstimateContext &ctx,
               BufferIndex fixed_capacity = 0)
{
    PhaseEstimate est;
    const std::size_t batch = 1024;
    const std::size_t hidden = 64;
    const std::size_t act_dim = 5;

    auto environment = makeEnvironment(task, agents, agents * 17 + 1);
    const auto dims = obsDims(*environment);
    std::size_t joint_dim = agents * act_dim;
    for (std::size_t d : dims)
        joint_dim += d;

    ctx.agents = agents;
    ctx.batch = batch;
    ctx.device = device.present ? device.name : "cpu-measured";

    // --- Measured: env step + action selection + buffer add ------
    core::TrainConfig config;
    config.batchSize = batch;
    config.hiddenDims = {hidden, hidden};
    config.seed = agents;
    auto trainer = makeTrainer(algo, dims, act_dim, config,
                               uniformFactory());

    auto obs = environment->reset();
    const int steps = 200;
    {
        profile::Stopwatch sw;
        for (int t = 0; t < steps; ++t)
            trainer->selectActions(obs, 0);
        est.actionSelection = sw.elapsedSeconds() / steps;
    }
    {
        profile::Stopwatch sw;
        for (int t = 0; t < steps; ++t) {
            auto step = environment->step(
                std::vector<int>(agents, t % 5));
            if (t == steps - 1)
                obs = step.observations;
        }
        est.envStep = sw.elapsedSeconds() / steps;
    }

    // --- Measured: mini-batch sampling at full batch --------------
    auto shapes = taskShapes(task, agents, act_dim);
    const BufferIndex capacity =
        fixed_capacity ? fixed_capacity
                       : scaledCapacity(shapes, 512ull << 20);
    ctx.capacity = capacity;
    replay::MultiAgentBuffer buffers(shapes, capacity);
    Rng fill_rng(agents * 3 + 1);
    fillSynthetic(buffers, capacity, fill_rng);
    {
        // Buffer-add cost measured against the big buffer.
        profile::Stopwatch sw;
        fillSynthetic(buffers, 64, fill_rng);
        est.bufferAdd = sw.elapsedSeconds() / 64;
    }
    {
        replay::UniformSampler sampler;
        Rng rng(5);
        std::vector<replay::AgentBatch> batches;
        // Warm-up, then timed reps of the full N x N gather.
        for (std::size_t trainer_i = 0; trainer_i < agents;
             ++trainer_i) {
            auto plan = sampler.plan(buffers.size(), batch, rng);
            replay::gatherAllAgents(buffers, plan, batches);
        }
        const int reps = agents >= 12 ? 2 : 4;
        profile::Stopwatch sw;
        for (int rep = 0; rep < reps; ++rep) {
            for (std::size_t trainer_i = 0; trainer_i < agents;
                 ++trainer_i) {
                auto plan = sampler.plan(buffers.size(), batch, rng);
                replay::gatherAllAgents(buffers, plan, batches);
            }
        }
        est.sampling = sw.elapsedSeconds() / reps;
    }

    const bool twin = algo == Algo::Matd3;
    if (device.present) {
        // --- Modeled: network phases offloaded to the GPU ---------
        double tq_flops = 0, qp_flops = 0;
        double tq_bytes = 0, qp_bytes = 0;
        for (std::size_t i = 0; i < agents; ++i) {
            tq_flops += targetQFlops(dims, act_dim, batch, hidden,
                                     joint_dim, twin);
            qp_flops += qpLossFlops(dims[i], act_dim, batch, hidden,
                                    joint_dim, twin);
            // Joint next-state tensor up; q-targets back.
            tq_bytes += 4.0 * batch * joint_dim;
            // Joint current tensor + obs up; losses back.
            qp_bytes += 4.0 * batch * (joint_dim + dims[i]);
        }
        // Kernel launches: 3 layers per forward/backward pass.
        const double tq_launch =
            agents * (dims.size() + (twin ? 2.0 : 1.0)) * 3;
        const double qp_launch =
            agents * ((twin ? 4.0 : 3.0) * 3 /*critic passes*/ +
                      3.0 * 3 /*actor passes*/ + 4.0 /*opt*/);
        est.targetQ =
            offloadSeconds(device, tq_flops, tq_bytes, 4.0 * batch) +
            tq_launch * device.launchLatency;
        est.qpLoss =
            offloadSeconds(device, qp_flops, qp_bytes, 4.0 * batch) +
            qp_launch * device.launchLatency;
        // Action selection also runs on the GPU in the paper: a
        // batch-1 forward per agent is pure launch+transfer.
        est.actionSelection =
            agents *
            offloadSeconds(device,
                           memsim::mlpForwardFlops(1, dims[0], hidden,
                                                   act_dim),
                           4.0 * dims[0], 4.0 * act_dim);
    } else {
        // --- Measured: network phases on this CPU -----------------
        profile::PhaseTimer timer;
        trainer->update(buffers, timer);
        const int reps = agents >= 12 ? 1 : 2;
        timer.reset();
        for (int rep = 0; rep < reps; ++rep)
            trainer->update(buffers, timer);
        est.targetQ =
            timer.seconds(profile::Phase::TargetQ) / reps;
        est.qpLoss = timer.seconds(profile::Phase::QPLoss) / reps;
    }
    return est;
}

/** Paper schedule: 25-step episodes, update every 100 insertions. */
struct Schedule
{
    std::size_t episodes = 60000;
    std::size_t episodeLength = 25;
    std::size_t updateEvery = 100;

    double
    envSteps() const
    {
        return static_cast<double>(episodes) * episodeLength;
    }

    double updates() const { return envSteps() / updateEvery; }
};

/** End-to-end seconds for a schedule under a phase estimate. */
inline double
endToEndSeconds(const PhaseEstimate &est, const Schedule &sched)
{
    const double per_step =
        est.actionSelection + est.envStep + est.bufferAdd;
    const double per_update = est.sampling + est.targetQ + est.qpLoss;
    return sched.envSteps() * per_step +
           sched.updates() * per_update;
}

/** Figure-2-style top-level percentages. */
struct TopSplit
{
    double actionPct = 0;
    double updatePct = 0;
    double otherPct = 0;
};

inline TopSplit
topSplit(const PhaseEstimate &est, const Schedule &sched)
{
    const double action = sched.envSteps() * est.actionSelection;
    const double other =
        sched.envSteps() * (est.envStep + est.bufferAdd);
    const double update =
        sched.updates() * (est.sampling + est.targetQ + est.qpLoss);
    const double total = action + other + update;
    return {100.0 * action / total, 100.0 * update / total,
            100.0 * other / total};
}

/** Figure-3-style update-internal percentages. */
struct UpdateSplit
{
    double samplingPct = 0;
    double targetQPct = 0;
    double qpLossPct = 0;
};

inline UpdateSplit
updateSplit(const PhaseEstimate &est)
{
    const double total = est.sampling + est.targetQ + est.qpLoss;
    return {100.0 * est.sampling / total,
            100.0 * est.targetQ / total,
            100.0 * est.qpLoss / total};
}

} // namespace marlin::bench

#endif // MARLIN_BENCH_HYBRID_MODEL_HH
