#include "marlin/serve/protocol.hh"

#include <cstring>

namespace marlin::serve
{

namespace
{

void
storeLe16(std::byte *dst, std::uint16_t v)
{
    dst[0] = static_cast<std::byte>(v & 0xff);
    dst[1] = static_cast<std::byte>((v >> 8) & 0xff);
}

void
storeLe32(std::byte *dst, std::uint32_t v)
{
    dst[0] = static_cast<std::byte>(v & 0xff);
    dst[1] = static_cast<std::byte>((v >> 8) & 0xff);
    dst[2] = static_cast<std::byte>((v >> 16) & 0xff);
    dst[3] = static_cast<std::byte>((v >> 24) & 0xff);
}

std::uint16_t
loadLe16(const std::byte *src)
{
    return static_cast<std::uint16_t>(
        std::to_integer<std::uint16_t>(src[0]) |
        (std::to_integer<std::uint16_t>(src[1]) << 8));
}

std::uint32_t
loadLe32(const std::byte *src)
{
    return std::to_integer<std::uint32_t>(src[0]) |
           (std::to_integer<std::uint32_t>(src[1]) << 8) |
           (std::to_integer<std::uint32_t>(src[2]) << 16) |
           (std::to_integer<std::uint32_t>(src[3]) << 24);
}

/**
 * Append a 12-byte header + float payload. Floats go out as raw
 * IEEE-754 binary32; MARLin only targets little-endian hosts (the
 * checkpoint format makes the same assumption), so the payload is a
 * straight memcpy.
 */
void
encodeFrame(std::vector<std::byte> &out, std::uint32_t magic,
            std::uint16_t field_a, std::uint16_t field_b,
            const Real *values, std::size_t count)
{
    static_assert(sizeof(Real) == 4,
                  "wire format carries binary32 floats");
    const std::size_t payload_bytes = count * sizeof(Real);
    const std::size_t base = out.size();
    out.resize(base + headerBytes + payload_bytes);
    std::byte *p = out.data() + base;
    storeLe32(p, magic);
    storeLe16(p + 4, field_a);
    storeLe16(p + 6, field_b);
    storeLe32(p + 8, static_cast<std::uint32_t>(payload_bytes));
    if (payload_bytes > 0)
        std::memcpy(p + headerBytes, values, payload_bytes);
}

} // namespace

const char *
statusName(Status status)
{
    switch (status) {
    case Status::Ok:
        return "ok";
    case Status::BadAgent:
        return "bad-agent";
    case Status::BadObsDim:
        return "bad-obs-dim";
    case Status::BadFrame:
        return "bad-frame";
    }
    return "unknown";
}

void
RequestView::copyObs(Real *dst) const
{
    if (payloadBytes > 0)
        std::memcpy(dst, payload, payloadBytes);
}

void
ResponseView::copyActions(Real *dst) const
{
    if (payloadBytes > 0)
        std::memcpy(dst, payload, payloadBytes);
}

void
encodeRequest(std::vector<std::byte> &out, std::uint16_t agent,
              const Real *obs, std::size_t count)
{
    encodeFrame(out, requestMagic, protocolVersion, agent, obs,
                count);
}

void
encodeResponse(std::vector<std::byte> &out, Status status,
               const Real *actions, std::size_t count)
{
    const auto status_field = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(status));
    encodeFrame(out, responseMagic, protocolVersion, status_field,
                actions, count);
}

bool
FrameDecoder::isError(Result r)
{
    return r != Result::Frame && r != Result::NeedMore;
}

const char *
FrameDecoder::resultName(Result r)
{
    switch (r) {
    case Result::Frame:
        return "frame";
    case Result::NeedMore:
        return "need-more";
    case Result::BadMagic:
        return "bad-magic";
    case Result::BadVersion:
        return "bad-version";
    case Result::Oversized:
        return "oversized";
    case Result::BadLength:
        return "bad-length";
    }
    return "unknown";
}

FrameDecoder::FrameDecoder(std::uint32_t expect_magic,
                           std::size_t max_payload_bytes)
    : expectMagic(expect_magic), maxPayloadBytes(max_payload_bytes)
{
}

void
FrameDecoder::feed(const void *data, std::size_t n)
{
    const auto *bytes = static_cast<const std::byte *>(data);
    // Compact before appending once the consumed prefix dominates,
    // so the buffer stays bounded by one frame plus one read's worth
    // of bytes instead of growing with connection lifetime.
    if (off > 0 && (off >= buf.size() || off > 4096)) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(off));
        off = 0;
    }
    buf.insert(buf.end(), bytes, bytes + n);
}

FrameDecoder::Result
FrameDecoder::decodeHeader(std::uint16_t &field_a,
                           std::uint16_t &field_b,
                           std::size_t &payload_bytes)
{
    if (havePoison)
        return poisoned;
    if (pendingBytes() < headerBytes)
        return Result::NeedMore;
    const std::byte *p = buf.data() + off;
    if (loadLe32(p) != expectMagic) {
        poisoned = Result::BadMagic;
    } else if (loadLe16(p + 4) != protocolVersion) {
        poisoned = Result::BadVersion;
    } else {
        payload_bytes = loadLe32(p + 8);
        if (payload_bytes > maxPayloadBytes)
            poisoned = Result::Oversized;
        else if (payload_bytes % sizeof(Real) != 0)
            poisoned = Result::BadLength;
    }
    if (isError(poisoned)) {
        havePoison = true;
        return poisoned;
    }
    if (pendingBytes() < headerBytes + payload_bytes)
        return Result::NeedMore;
    field_a = loadLe16(p + 4);
    field_b = loadLe16(p + 6);
    return Result::Frame;
}

void
FrameDecoder::consume(std::size_t n)
{
    off += n;
}

FrameDecoder::Result
FrameDecoder::next(RequestView &out)
{
    std::uint16_t version = 0;
    std::uint16_t agent = 0;
    std::size_t payload_bytes = 0;
    const Result r = decodeHeader(version, agent, payload_bytes);
    if (r != Result::Frame)
        return r;
    out.agentId = agent;
    out.payload = buf.data() + off + headerBytes;
    out.payloadBytes = payload_bytes;
    consume(headerBytes + payload_bytes);
    return Result::Frame;
}

FrameDecoder::Result
FrameDecoder::next(ResponseView &out)
{
    std::uint16_t version = 0;
    std::uint16_t status = 0;
    std::size_t payload_bytes = 0;
    const Result r = decodeHeader(version, status, payload_bytes);
    if (r != Result::Frame)
        return r;
    // The status travels in the low byte of the 16-bit field pair
    // (byte 6 of the header); byte 7 is reserved.
    out.status = static_cast<Status>(status & 0xff);
    out.payload = buf.data() + off + headerBytes;
    out.payloadBytes = payload_bytes;
    consume(headerBytes + payload_bytes);
    return Result::Frame;
}

void
FrameDecoder::reset()
{
    buf.clear();
    off = 0;
    havePoison = false;
    poisoned = Result::NeedMore;
}

} // namespace marlin::serve
