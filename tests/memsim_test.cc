/**
 * @file
 * Tests for the memory-hierarchy simulator: cache hit/miss and LRU
 * behaviour, TLB, stream prefetcher, hierarchy composition, and the
 * key qualitative property the paper relies on — sequential access
 * streams miss far less than random ones.
 */

#include <gtest/gtest.h>

#include "marlin/base/random.hh"
#include "marlin/memsim/platform.hh"
#include "marlin/memsim/trace_replay.hh"

namespace marlin::memsim
{
namespace
{

TEST(CacheModel, ColdMissThenHit)
{
    CacheModel cache({1024, 64, 2});
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(63));  // Same line.
    EXPECT_FALSE(cache.access(64)); // Next line.
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheModel, LruEvictionOrder)
{
    // 2 sets x 2 ways, 64 B lines: lines mapping to set 0 are
    // 0, 2, 4... (line number even).
    CacheModel cache({256, 64, 2});
    EXPECT_EQ(cache.numSets(), 2u);
    const std::uint64_t a = 0 * 64;   // set 0
    const std::uint64_t b = 2 * 64;   // set 0
    const std::uint64_t c = 4 * 64;   // set 0
    cache.access(a);
    cache.access(b);
    cache.access(a);     // a is MRU, b is LRU.
    cache.access(c);     // Evicts b.
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(CacheModel, PrefetchFillCountsAsPrefetchHitOnDemand)
{
    CacheModel cache({1024, 64, 2});
    cache.prefetchFill(128);
    EXPECT_EQ(cache.stats().prefetchFills, 1u);
    EXPECT_TRUE(cache.access(128));
    EXPECT_EQ(cache.stats().prefetchHits, 1u);
    // Second access is a plain hit.
    cache.access(128);
    EXPECT_EQ(cache.stats().prefetchHits, 1u);
}

TEST(CacheModel, ResetClears)
{
    CacheModel cache({1024, 64, 2});
    cache.access(0);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses(), 0u);
    EXPECT_FALSE(cache.contains(0));
}

TEST(CacheModel, MissRateOverWorkingSet)
{
    // Working set 2x the cache: sequential sweep repeated should
    // keep missing (LRU thrash), miss rate ~1.
    CacheModel cache({4096, 64, 4});
    const int lines = 2 * 4096 / 64;
    for (int rep = 0; rep < 4; ++rep)
        for (int l = 0; l < lines; ++l)
            cache.access(static_cast<std::uint64_t>(l) * 64);
    EXPECT_GT(cache.stats().missRate(), 0.95);
}

TEST(TlbModel, HitWithinPage)
{
    TlbModel tlb({16, 4, 4096});
    EXPECT_FALSE(tlb.access(100));
    EXPECT_TRUE(tlb.access(4000));   // Same page.
    EXPECT_FALSE(tlb.access(4096));  // Next page.
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 2u);
}

TEST(TlbModel, CapacityEviction)
{
    TlbModel tlb({4, 4, 4096}); // Single set, 4 entries.
    for (std::uint64_t p = 0; p < 5; ++p)
        tlb.access(p * 4096);
    // Page 0 was LRU and must have been evicted.
    EXPECT_FALSE(tlb.access(0));
    EXPECT_TRUE(tlb.access(4 * 4096));
}

TEST(StreamPrefetcher, TrainsOnSequentialRun)
{
    StreamPrefetcher pf({8, 4, 2, true});
    std::vector<std::uint64_t> out;
    pf.observe(100, out);
    EXPECT_TRUE(out.empty()); // First touch only allocates a stream.
    pf.observe(101, out);
    // Second consecutive line reaches the training threshold:
    // prefetches run `degree` lines ahead.
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 102u);
    EXPECT_EQ(out.back(), 105u);
    pf.observe(102, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 103u);
    EXPECT_EQ(out.back(), 106u);
    EXPECT_GE(pf.stats().issued, 8u);
    EXPECT_EQ(pf.stats().trained, 1u);
}

TEST(StreamPrefetcher, TracksDescendingStreams)
{
    StreamPrefetcher pf({8, 2, 2, true});
    std::vector<std::uint64_t> out;
    pf.observe(100, out);
    pf.observe(99, out);
    pf.observe(98, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 97u);
}

TEST(StreamPrefetcher, RandomStreamDoesNotTrain)
{
    StreamPrefetcher pf({4, 4, 2, true});
    Rng rng(1);
    std::vector<std::uint64_t> out;
    std::uint64_t issued = 0;
    for (int i = 0; i < 1000; ++i) {
        pf.observe(rng.randint(1 << 20), out);
        issued += out.size();
    }
    // A uniformly random line stream over 1M lines almost never
    // produces two adjacent accesses; allow a tiny residue.
    EXPECT_LT(issued, 50u);
}

TEST(StreamPrefetcher, DisabledIssuesNothing)
{
    PrefetcherConfig cfg;
    cfg.enabled = false;
    StreamPrefetcher pf(cfg);
    std::vector<std::uint64_t> out;
    for (std::uint64_t l = 0; l < 100; ++l)
        pf.observe(l, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.stats().issued, 0u);
}

TEST(Hierarchy, MissesPropagateDownLevels)
{
    HierarchyConfig cfg;
    cfg.l1 = {1024, 64, 2};
    cfg.l2 = {4096, 64, 4};
    cfg.l3 = {16384, 64, 4};
    cfg.prefetcher.enabled = false;
    CacheHierarchy h(cfg);
    h.access(0, 4);
    auto s = h.stats();
    EXPECT_EQ(s.l1.misses, 1u);
    EXPECT_EQ(s.l2.misses, 1u);
    EXPECT_EQ(s.l3.misses, 1u);
    h.access(0, 4);
    s = h.stats();
    EXPECT_EQ(s.l1.hits, 1u);
    EXPECT_EQ(s.l2.accesses(), 1u); // L1 hit shields L2.
}

TEST(Hierarchy, MultiLineAccessTouchesEachLine)
{
    HierarchyConfig cfg;
    cfg.prefetcher.enabled = false;
    CacheHierarchy h(cfg);
    h.access(0, 256); // 4 lines.
    EXPECT_EQ(h.stats().lineAccesses, 4u);
    h.reset();
    h.access(60, 8); // Straddles a line boundary.
    EXPECT_EQ(h.stats().lineAccesses, 2u);
}

TEST(Hierarchy, CyclesIncreaseWithMissDepth)
{
    HierarchyConfig cfg;
    cfg.prefetcher.enabled = false;
    CacheHierarchy h(cfg);
    h.access(0, 4);
    const auto cold = h.stats().cycles;
    h.reset();
    h.access(0, 4);
    h.access(0, 4);
    const auto warm_pair = h.stats().cycles;
    // Second access is an L1 hit: far cheaper than the cold miss.
    EXPECT_LT(warm_pair, 2 * cold);
}

TEST(Hierarchy, SequentialBeatsRandom)
{
    // The core mechanism behind the paper's optimization: replay a
    // sequential vs a random trace of equal volume and compare L1
    // misses (prefetcher on).
    const std::size_t accesses = 20000;
    const std::uint64_t region = 64ull << 20; // 64 MiB working set.

    replay::AccessTrace sequential;
    for (std::size_t i = 0; i < accesses; ++i)
        sequential.record(reinterpret_cast<const void *>(
                              0x10000000ull + i * 64),
                          64);

    replay::AccessTrace random;
    Rng rng(2);
    for (std::size_t i = 0; i < accesses; ++i) {
        const std::uint64_t addr =
            0x10000000ull + (rng.randint(region / 64)) * 64;
        random.record(reinterpret_cast<const void *>(addr), 64);
    }

    auto preset = makePlatform(PlatformId::Threadripper3975WX);
    CacheHierarchy seq_h(preset.hierarchy);
    CacheHierarchy rand_h(preset.hierarchy);
    auto seq = replayTrace(seq_h, sequential, preset.frequencyHz);
    auto rnd = replayTrace(rand_h, random, preset.frequencyHz);

    // Sequential misses are mostly covered by the prefetcher.
    EXPECT_LT(seq.stats.l1.misses, rnd.stats.l1.misses / 2);
    EXPECT_LT(seq.stats.cycles, rnd.stats.cycles);
    EXPECT_LT(seq.stats.tlb.misses, rnd.stats.tlb.misses);
}

TEST(Platform, PresetsDiffer)
{
    auto tr = makePlatform(PlatformId::Threadripper3975WX);
    auto i7 = makePlatform(PlatformId::CoreI7_9700K);
    EXPECT_NE(tr.name, i7.name);
    EXPECT_GT(tr.hierarchy.l3.sizeBytes, i7.hierarchy.l3.sizeBytes);
    EXPECT_GT(tr.hierarchy.tlb.entries, i7.hierarchy.tlb.entries);
    EXPECT_EQ(platformFromString("threadripper"),
              PlatformId::Threadripper3975WX);
    EXPECT_EQ(platformFromString("i7-9700k"),
              PlatformId::CoreI7_9700K);
}

TEST(DeviceModel, OffloadCostComponents)
{
    auto gpu = makeRtx3090();
    // Pure-launch lower bound.
    EXPECT_GE(offloadSeconds(gpu, 0, 0, 0), gpu.launchLatency);
    // Adding transfer bytes increases time.
    const double with_bytes = offloadSeconds(gpu, 0, 1e9, 0);
    EXPECT_GT(with_bytes, offloadSeconds(gpu, 0, 1e6, 0));
    // Absent device costs nothing.
    DeviceConfig none;
    EXPECT_EQ(offloadSeconds(none, 1e9, 1e9, 1e9), 0.0);
}

TEST(DeviceModel, Gtx1070SlowerThan3090)
{
    auto big = makeRtx3090();
    auto small = makeGtx1070();
    const double flop = 1e10, bytes = 1e8;
    EXPECT_GT(offloadSeconds(small, flop, bytes, bytes),
              offloadSeconds(big, flop, bytes, bytes));
}

TEST(DeviceModel, MlpFlopsFormula)
{
    // batch=2, in=3, hidden=4, out=5:
    // 2 * 2 * (3*4 + 4*4 + 4*5) = 4 * 48 = 192.
    EXPECT_EQ(mlpForwardFlops(2, 3, 4, 5), 192.0);
}

TEST(TraceReplay, AccumulatesAcrossCalls)
{
    HierarchyConfig cfg;
    cfg.prefetcher.enabled = false;
    CacheHierarchy h(cfg);
    replay::AccessTrace t;
    t.record(reinterpret_cast<const void *>(0x1000), 64);
    auto r1 = replayTrace(h, t, 1e9);
    EXPECT_EQ(r1.traceEntries, 1u);
    EXPECT_GT(r1.memorySeconds, 0.0);
    auto r2 = replayTrace(h, t, 1e9);
    // Warm second replay: fewer cycles for the same trace.
    EXPECT_LT(r2.memorySeconds, r1.memorySeconds);
}

} // namespace
} // namespace marlin::memsim
