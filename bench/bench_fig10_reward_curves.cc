/**
 * @file
 * Figure 10: mean-episode-reward training curves for baseline
 * MADDPG vs cache-aware sampling with n=16/ref=64 (more randomness)
 * and n=64/ref=16 (max locality) on PP-6, CN-6 and CN-12.
 *
 * Paper claim: the locality-aware variants track the baseline's
 * learning curve (slight degradation visible for CN-12 with the
 * n64r16 setting). We train real (scaled-down) runs and print the
 * smoothed curves plus final scores; the check is that the locality
 * scores stay within a band of the baseline, not bitwise equality.
 * Scale-down: 1200/600 episodes instead of 60k, batch 128, hidden
 * 32 — small enough for one core, large enough to learn.
 */

#include "common.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

struct Curve
{
    std::string label;
    std::vector<Real> rewards;
    double seconds = 0;
};

Curve
trainCurve(Task task, std::size_t agents, std::size_t episodes,
           const std::string &label, core::SamplerFactory factory)
{
    auto environment = makeEnvironment(task, agents, 42);
    core::TrainConfig config;
    config.batchSize = 128;
    config.bufferCapacity = 1 << 15;
    config.warmupTransitions = 256;
    config.updateEvery = 50;
    config.hiddenDims = {32, 32};
    config.epsilonDecayEpisodes = episodes / 2;
    config.seed = 42;
    core::MaddpgTrainer trainer(obsDims(*environment),
                                environment->actionDim(), config,
                                std::move(factory));
    core::TrainLoop loop(*environment, trainer, config);
    profile::Stopwatch sw;
    auto result = loop.run(episodes);
    return {label, std::move(result.episodeRewards),
            sw.elapsedSeconds()};
}

void
runScenario(Task task, std::size_t agents, std::size_t episodes)
{
    std::printf("\n%s-%zu (%zu episodes, MADDPG)\n", taskName(task),
                agents, episodes);

    std::vector<Curve> curves;
    curves.push_back(trainCurve(task, agents, episodes, "baseline",
                                uniformFactory()));
    curves.push_back(trainCurve(task, agents, episodes, "n16_r64",
                                localityFactory(16, 8)));
    curves.push_back(trainCurve(task, agents, episodes, "n64_r16",
                                localityFactory(64, 2)));

    // Smoothed curve: mean reward per tenth of training.
    std::printf("%-10s", "decile");
    for (const auto &c : curves)
        std::printf(" %12s", c.label.c_str());
    std::printf("\n");
    const std::size_t buckets = 10;
    const std::size_t per = episodes / buckets;
    for (std::size_t b = 0; b < buckets; ++b) {
        std::printf("%-10zu", b + 1);
        for (const auto &c : curves) {
            double mean = 0;
            for (std::size_t e = b * per; e < (b + 1) * per; ++e)
                mean += c.rewards[e];
            std::printf(" %12.1f", mean / per);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "final");
    for (const auto &c : curves) {
        double mean = 0;
        for (std::size_t e = episodes - per; e < episodes; ++e)
            mean += c.rewards[e];
        std::printf(" %12.1f", mean / per);
    }
    std::printf("\n%-10s", "time(s)");
    for (const auto &c : curves)
        std::printf(" %12.1f", c.seconds);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig10_reward_curves");
    banner("Figure 10: reward curves, baseline vs cache-aware "
           "sampling");
    runScenario(Task::PredatorPrey, 6, 1600);
    runScenario(Task::CooperativeNavigation, 6, 1600);
    runScenario(Task::CooperativeNavigation, 12, 600);
    std::printf("\npaper shape: locality-aware curves track the "
                "baseline; mild degradation\nis visible in CN-12 "
                "when locality is pushed (n=64, ref=16).\n");
    return 0;
}
