#include "marlin/env/vector_env.hh"

#include "marlin/base/logging.hh"

namespace marlin::env
{

VectorEnvironment::VectorEnvironment(const EnvFactory &factory,
                                     std::size_t count)
{
    MARLIN_ASSERT(count >= 1, "vector env needs at least one lane");
    MARLIN_ASSERT(factory != nullptr, "vector env needs a factory");
    lanes.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        lanes.push_back(factory(i));
        MARLIN_ASSERT(lanes.back() != nullptr,
                      "factory returned a null environment");
    }
    const std::size_t agents = lanes.front()->numAgents();
    for (const auto &lane_env : lanes) {
        MARLIN_ASSERT(lane_env->numAgents() == agents,
                      "vector env lanes must be homogeneous");
        for (std::size_t a = 0; a < agents; ++a) {
            MARLIN_ASSERT(lane_env->obsDim(a) ==
                              lanes.front()->obsDim(a),
                          "vector env lanes must share obs shapes");
        }
    }
}

std::vector<std::vector<std::vector<Real>>>
VectorEnvironment::reset()
{
    std::vector<std::vector<std::vector<Real>>> obs;
    obs.reserve(lanes.size());
    for (auto &lane_env : lanes)
        obs.push_back(lane_env->reset());
    return obs;
}

std::vector<std::vector<Real>>
VectorEnvironment::resetLane(std::size_t i)
{
    MARLIN_ASSERT(i < lanes.size(), "lane index out of range");
    return lanes[i]->reset();
}

std::vector<StepResult>
VectorEnvironment::step(const std::vector<std::vector<int>> &actions)
{
    MARLIN_ASSERT(actions.size() == lanes.size(),
                  "one action vector per lane required");
    std::vector<StepResult> results;
    results.reserve(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i)
        results.push_back(lanes[i]->step(actions[i]));
    return results;
}

} // namespace marlin::env
