#include "marlin/memsim/tlb.hh"

#include "marlin/base/logging.hh"

namespace marlin::memsim
{

TlbModel::TlbModel(TlbConfig config) : _config(config)
{
    MARLIN_ASSERT(_config.ways > 0 &&
                      _config.entries >= _config.ways,
                  "TLB needs at least one set");
    sets = _config.entries / _config.ways;
    MARLIN_ASSERT(sets > 0 && (sets & (sets - 1)) == 0,
                  "TLB set count must be a power of two");
    table.resize(sets * _config.ways);
}

bool
TlbModel::access(std::uint64_t addr)
{
    const std::uint64_t page = addr / _config.pageBytes;
    const std::uint64_t set = page % sets;
    const std::uint64_t tag = page / sets;
    ++useClock;

    Entry *base = table.data() + set * _config.ways;
    Entry *victim = base;
    for (std::uint32_t w = 0; w < _config.ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == tag) {
            e.lastUse = useClock;
            ++_stats.hits;
            return true;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    ++_stats.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    return false;
}

void
TlbModel::reset()
{
    for (Entry &e : table)
        e = Entry{};
    _stats = TlbStats{};
    useClock = 0;
}

} // namespace marlin::memsim
