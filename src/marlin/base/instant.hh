/**
 * @file
 * Process-wide monotonic timebase and compact thread tags.
 *
 * Every observability consumer — trace spans, telemetry records and
 * Debug-level log prefixes — stamps times against the same steady
 * epoch (captured at static-init time, before main), so a log line at
 * t=1.234s lines up with the trace span covering t=1.234s when both
 * are opened side by side. Thread tags are small sequential integers
 * (0 for the first thread that asks, usually main) rather than OS
 * thread ids, so traces and logs from different runs stay comparable.
 */

#ifndef MARLIN_BASE_INSTANT_HH
#define MARLIN_BASE_INSTANT_HH

#include <chrono>
#include <cstdint>

namespace marlin::base
{

/** Steady-clock epoch shared by logs, traces and telemetry. */
std::chrono::steady_clock::time_point processStartTime() noexcept;

/** Nanoseconds between the process epoch and @p tp. */
std::uint64_t
nsSinceStart(std::chrono::steady_clock::time_point tp) noexcept;

/** Nanoseconds since the process epoch, now. */
std::uint64_t nowNsSinceStart() noexcept;

/**
 * Small per-thread integer, assigned in first-use order (main is
 * almost always 0). Stable for the thread's lifetime.
 */
unsigned currentThreadTag() noexcept;

} // namespace marlin::base

#endif // MARLIN_BASE_INSTANT_HH
