/**
 * @file
 * Elementwise activation functions with cached backward state.
 */

#ifndef MARLIN_NN_ACTIVATION_HH
#define MARLIN_NN_ACTIVATION_HH

#include "marlin/numeric/matrix.hh"

namespace marlin::nn
{

using numeric::Matrix;

/** Supported activation kinds. */
enum class Activation { Identity, ReLU, Tanh };

/** Parse "relu"/"tanh"/"identity" (case-sensitive). */
Activation activationFromString(const std::string &name);

/** Printable name. */
const char *activationName(Activation a);

/**
 * Stateful activation: forward caches what backward needs (the
 * pre-activation sign for ReLU, the output for Tanh).
 */
class ActivationLayer
{
  public:
    explicit ActivationLayer(Activation kind = Activation::Identity)
        : _kind(kind) {}

    Activation kind() const { return _kind; }

    /** y = f(x); caches backward state. */
    void forward(const Matrix &x, Matrix &y);

    /** grad_x = f'(cached) * grad_y. */
    void backward(const Matrix &grad_y, Matrix &grad_x) const;

  private:
    Activation _kind;
    Matrix cached; ///< Input for ReLU, output for Tanh.
};

} // namespace marlin::nn

#endif // MARLIN_NN_ACTIVATION_HH
