/**
 * @file
 * Policy-serving daemon: load the latest checkpoint of a training
 * run and answer observation->action queries over the compact TCP
 * protocol, batching concurrent requests into one zero-alloc actor
 * forward per agent.
 *
 *   ./marlin_serve --checkpoint-dir ckpts --task cn --agents 3 \
 *       --port 7777 --batch-max 32 --batch-deadline-us 200
 *
 * Hot reload: SIGHUP swaps in the newest checkpoint immediately;
 * --reload-poll-ms N additionally watches the latest/previous
 * rotation and swaps whenever the training process rotates a new
 * snapshot. Either way no connection is dropped: the swap happens
 * on the event-loop thread between two batch flushes.
 *
 * --port 0 binds an ephemeral port; --port-file writes the bound
 * port as a single line so scripts (CI's serve-smoke gate) can find
 * the server without racing its stdout.
 *
 * --metrics-port N additionally serves GET /metrics (Prometheus
 * text exposition of the whole obs registry) and GET /healthz on a
 * second listener, handled on a background thread so a scrape never
 * delays a batch flush. --metrics-port-file mirrors --port-file.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "marlin/base/args.hh"
#include "marlin/env/physical_deception.hh"
#include "marlin/marlin.hh"

using namespace marlin;

namespace
{

serve::Server *g_server = nullptr;

void
onTerminate(int)
{
    if (g_server != nullptr)
        g_server->stop();
}

std::unique_ptr<env::Environment>
buildEnvironment(const std::string &task, std::size_t agents,
                 std::uint64_t seed)
{
    if (task == "pp")
        return env::makePredatorPreyEnv(agents, seed);
    if (task == "cn")
        return env::makeCooperativeNavigationEnv(agents, seed);
    if (task == "pd") {
        env::PhysicalDeceptionConfig cfg;
        cfg.numGoodAgents = agents > 1 ? agents - 1 : 1;
        return std::make_unique<env::Environment>(
            std::make_unique<env::PhysicalDeceptionScenario>(cfg),
            seed);
    }
    fatal("unknown task '%s' (expected pp, cn or pd)", task.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("marlin_serve");
    args.addOption("checkpoint-dir", "",
                   "training run's latest/previous rotation to "
                   "serve (required)");
    args.addOption("algo", "maddpg",
                   "architecture of the checkpoint: maddpg or "
                   "matd3");
    args.addOption("task", "cn",
                   "task the checkpoint was trained on: pp, cn or "
                   "pd (fixes the observation dims)");
    args.addOption("agents", "3", "number of trained agents");
    args.addOption("port", "7777",
                   "TCP port; 0 binds an ephemeral port");
    args.addOption("port-file", "",
                   "write the bound port here (one line) once "
                   "listening");
    args.addOption("metrics-port", "-1",
                   "serve GET /metrics + /healthz here (0 binds an "
                   "ephemeral port, -1 disables)");
    args.addOption("metrics-port-file", "",
                   "write the bound metrics port here (one line)");
    args.addOption("batch-max", "32",
                   "flush a batch at this many queued requests");
    args.addOption("batch-deadline-us", "200",
                   "flush when the oldest queued request has "
                   "waited this long (0 = flush every turn)");
    args.addOption("reload-poll-ms", "0",
                   "watch the checkpoint rotation at this cadence "
                   "and hot-swap new weights (0 = SIGHUP only)");
    args.addOption("poller", "auto",
                   "readiness backend: auto, epoll or poll");
    args.addOption("seed", "7",
                   "seed for the architecture-matching trainer "
                   "shell (weights come from the checkpoint)");
    args.addOption("log-level", "inform",
                   "silent, fatal, warn, inform or debug");
    args.addFlag("continuous",
                 "checkpoint was trained with --continuous "
                 "(2D tanh actions instead of 5 discrete)");
    args.parse(argc, argv);

    setLogLevel(parseLogLevel(args.get("log-level")));

    const std::string dir = args.get("checkpoint-dir");
    if (dir.empty())
        fatal("--checkpoint-dir is required");

    const auto agents =
        static_cast<std::size_t>(args.getInt("agents"));
    auto environment = buildEnvironment(
        args.get("task"), agents,
        static_cast<std::uint64_t>(args.getInt("seed")));

    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));

    core::TrainConfig config;
    config.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    if (args.getFlag("continuous"))
        config.actionMode = core::ActionMode::Continuous;
    const std::size_t act_dim =
        config.actionMode == core::ActionMode::Continuous
            ? 2
            : environment->actionDim();

    core::SamplerFactory factory = [] {
        return std::make_unique<replay::UniformSampler>();
    };
    std::unique_ptr<core::CtdeTrainerBase> trainer;
    const std::string algo = args.get("algo");
    if (algo == "maddpg") {
        trainer = std::make_unique<core::MaddpgTrainer>(
            dims, act_dim, config, factory);
    } else if (algo == "matd3") {
        trainer = std::make_unique<core::Matd3Trainer>(
            dims, act_dim, config, factory);
    } else {
        fatal("unknown algo '%s'", algo.c_str());
    }

    serve::ServePolicy policy;
    serve::CheckpointReloader reloader(dir, *trainer, policy);
    const core::CkptResult loaded = reloader.loadNow();
    if (!loaded) {
        fatal("cannot load a checkpoint from '%s' (%s: %s)",
              dir.c_str(), core::ckptErrorName(loaded.error),
              loaded.detail.c_str());
    }
    inform("serving %zu agent(s), obs dims [%zu..], act dim %zu",
           policy.numAgents(), policy.obsDim(0), policy.actDim());

    serve::ServeConfig scfg;
    scfg.port = static_cast<std::uint16_t>(args.getInt("port"));
    scfg.batchMax =
        static_cast<std::size_t>(args.getInt("batch-max"));
    scfg.batchDeadlineUs = static_cast<std::uint64_t>(
        args.getInt("batch-deadline-us"));
    scfg.reloadPollMs = static_cast<std::uint64_t>(
        args.getInt("reload-poll-ms"));
    if (!serve::pollerKindFromString(args.get("poller"),
                                     scfg.poller)) {
        fatal("--poller '%s' is not 'auto', 'epoll' or 'poll'",
              args.get("poller").c_str());
    }

    serve::Server server(policy, scfg);
    server.setReloadHook(
        [&reloader](bool forced) {
            return reloader.maybeReload(forced);
        });
    if (!server.start())
        fatal("cannot listen on port %ld", args.getInt("port"));

    g_server = &server;
    serve::installSighupReload(&server);
    std::signal(SIGINT, onTerminate);
    std::signal(SIGTERM, onTerminate);

    // Metrics endpoint on its own listener + thread: scrapes read a
    // registry snapshot, so they never touch the serving event loop.
    std::unique_ptr<serve::MetricsHttp> metrics;
    const long metricsPort = args.getInt("metrics-port");
    if (metricsPort >= 0) {
        serve::MetricsHttpConfig mcfg;
        mcfg.port = static_cast<std::uint16_t>(metricsPort);
        mcfg.poller = scfg.poller;
        metrics = std::make_unique<serve::MetricsHttp>(mcfg);
        if (!metrics->start())
            fatal("cannot listen on metrics port %ld", metricsPort);
        metrics->startThread();
        std::printf("metrics on port %u (GET /metrics, /healthz)\n",
                    static_cast<unsigned>(metrics->port()));
        std::fflush(stdout);
        if (!args.get("metrics-port-file").empty()) {
            std::FILE *f = std::fopen(
                args.get("metrics-port-file").c_str(), "w");
            if (f == nullptr)
                fatal("cannot write --metrics-port-file '%s'",
                      args.get("metrics-port-file").c_str());
            std::fprintf(f, "%u\n",
                         static_cast<unsigned>(metrics->port()));
            std::fclose(f);
        }
    }

    std::printf("listening on port %u (%s backend, batch-max %zu, "
                "deadline %llu us)\n",
                static_cast<unsigned>(server.port()),
                server.backendName(), scfg.batchMax,
                static_cast<unsigned long long>(
                    scfg.batchDeadlineUs));
    std::fflush(stdout);
    if (!args.get("port-file").empty()) {
        std::FILE *f =
            std::fopen(args.get("port-file").c_str(), "w");
        if (f == nullptr)
            fatal("cannot write --port-file '%s'",
                  args.get("port-file").c_str());
        std::fprintf(f, "%u\n",
                     static_cast<unsigned>(server.port()));
        std::fclose(f);
    }

    server.run();

    if (metrics)
        metrics->stop();
    serve::installSighupReload(nullptr);
    g_server = nullptr;

    const serve::ServeStats stats = server.stats();
    std::printf("served %llu response(s) over %llu connection(s), "
                "%llu batch(es), %llu reload(s), %llu protocol "
                "error(s)\n",
                static_cast<unsigned long long>(stats.responses),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.reloads),
                static_cast<unsigned long long>(
                    stats.protocolErrors));
    return 0;
}
