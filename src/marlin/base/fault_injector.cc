#include "marlin/base/fault_injector.hh"

#include <cstdio>

#include "marlin/base/logging.hh"
#include "marlin/base/string_utils.hh"

namespace marlin::base
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind)
    {
    case FaultKind::KillActor: return "kill-actor";
    case FaultKind::StallActor: return "stall-actor";
    case FaultKind::CorruptTransition: return "corrupt-transition";
    case FaultKind::KillLearner: return "kill-learner";
    case FaultKind::DelaySnapshot: return "delay-snapshot";
    }
    return "unknown";
}

StepCount
FaultInjector::armKillAtRandomStep(StepCount lo, StepCount hi)
{
    MARLIN_ASSERT(lo <= hi, "kill-step range must satisfy lo <= hi");
    const StepCount step = lo + rng.randint(hi - lo + 1);
    armKillAtStep(step);
    return step;
}

bool
FaultInjector::onStep()
{
    const StepCount seen =
        steps.fetch_add(1, std::memory_order_relaxed) + 1;
    return killArmed.load(std::memory_order_acquire) &&
           seen >= killStep.load(std::memory_order_relaxed);
}

bool
FaultInjector::onWrite()
{
    const std::uint64_t seen =
        writes.fetch_add(1, std::memory_order_relaxed) + 1;
    if (writeDead.load(std::memory_order_relaxed))
        return false;
    if (failArmed.load(std::memory_order_acquire) &&
        seen >= failWrite.load(std::memory_order_relaxed))
    {
        writeDead.store(true, std::memory_order_relaxed);
        return false;
    }
    return true;
}

void
FaultInjector::disarm()
{
    killArmed.store(false, std::memory_order_release);
    failArmed.store(false, std::memory_order_release);
}

void
FaultInjector::scheduleFault(const FaultEvent &event)
{
    schedule.emplace_back(event);
}

namespace
{

/** Parse a non-negative integer; false on junk/empty/overflow. */
bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t value = 0;
    for (const char c : s)
    {
        if (c < '0' || c > '9')
            return false;
        const auto digit = static_cast<std::uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return false;
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

/** Strip leading/trailing whitespace ("kill:1@5, stall:..."). */
std::string
trimmed(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return s.substr(b, e - b);
}

} // namespace

bool
FaultInjector::parseChaosSpec(const std::string &spec,
                              std::string *error)
{
    const auto fail = [error](const std::string &token,
                              const char *why) {
        if (error != nullptr)
            *error = csprintf("chaos token \"%s\": %s", token.c_str(),
                              why);
        return false;
    };

    std::vector<FaultEvent> parsed;
    for (const std::string &rawToken : tokenize(spec, ','))
    {
        const std::string token = trimmed(rawToken);
        if (token.empty())
            continue;
        const std::size_t at = token.find('@');
        if (at == std::string::npos)
            return fail(token, "missing '@<step>'");
        const std::string head = token.substr(0, at);
        const std::vector<std::string> tail =
            tokenize(token.substr(at + 1), ':');

        FaultEvent event;
        const std::vector<std::string> headParts =
            tokenize(head, ':');
        if (headParts.empty())
            return fail(token, "missing fault verb");
        const std::string &verb = headParts[0];
        if (verb == "kill" || verb == "stall" || verb == "corrupt")
        {
            std::uint64_t actor = 0;
            if (headParts.size() != 2 ||
                !parseU64(headParts[1], actor))
                return fail(token, "expected '<verb>:<actor>'");
            event.actorId = static_cast<std::size_t>(actor);
            event.kind = verb == "kill" ? FaultKind::KillActor
                         : verb == "stall"
                             ? FaultKind::StallActor
                             : FaultKind::CorruptTransition;
            if (verb == "stall")
            {
                if (tail.size() != 2 ||
                    !parseU64(tail[0], event.atStep) ||
                    !parseU64(tail[1], event.millis))
                    return fail(token,
                                "expected 'stall:<actor>@<step>:<ms>'");
            }
            else
            {
                if (tail.size() != 1 ||
                    !parseU64(tail[0], event.atStep))
                    return fail(token, "expected '@<step>'");
            }
        }
        else if (verb == "kill-learner")
        {
            if (headParts.size() != 1 || tail.size() != 1 ||
                !parseU64(tail[0], event.atStep))
                return fail(token,
                            "expected 'kill-learner@<drained>'");
            event.kind = FaultKind::KillLearner;
        }
        else if (verb == "delay-snap")
        {
            if (headParts.size() != 1 || tail.size() != 2 ||
                !parseU64(tail[0], event.atStep) ||
                !parseU64(tail[1], event.millis))
                return fail(token,
                            "expected 'delay-snap@<ordinal>:<ms>'");
            event.kind = FaultKind::DelaySnapshot;
        }
        else
        {
            return fail(token, "unknown fault verb");
        }
        parsed.push_back(event);
    }
    for (const FaultEvent &event : parsed)
        scheduleFault(event);
    return true;
}

std::vector<FaultEvent>
FaultInjector::scheduleRandomChaos(std::size_t num_actors,
                                   std::uint64_t max_step,
                                   std::size_t events)
{
    MARLIN_ASSERT(num_actors > 0, "chaos needs >= 1 actor");
    MARLIN_ASSERT(max_step > 0, "chaos needs a positive step range");
    std::vector<FaultEvent> generated;
    generated.reserve(events);
    for (std::size_t i = 0; i < events; ++i)
    {
        FaultEvent event;
        switch (rng.randint(3))
        {
        case 0: event.kind = FaultKind::KillActor; break;
        case 1: event.kind = FaultKind::StallActor; break;
        default: event.kind = FaultKind::CorruptTransition; break;
        }
        event.actorId =
            static_cast<std::size_t>(rng.randint(num_actors));
        event.atStep = 1 + rng.randint(max_step);
        if (event.kind == FaultKind::StallActor)
            event.millis = 1 + rng.randint(20);
        scheduleFault(event);
        generated.push_back(event);
    }
    return generated;
}

std::vector<FaultEvent>
FaultInjector::scheduledFaults() const
{
    std::vector<FaultEvent> out;
    out.reserve(schedule.size());
    for (const ScheduledFault &slot : schedule)
        out.push_back(slot.event);
    return out;
}

bool
FaultInjector::tryFire(ScheduledFault &slot)
{
    bool expected = false;
    if (!slot.fired.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
        return false;
    trips[static_cast<std::size_t>(slot.event.kind)].fetch_add(
        1, std::memory_order_relaxed);
    return true;
}

ActorFaultAction
FaultInjector::onActorStep(std::size_t actor_id,
                           std::uint64_t local_step)
{
    ActorFaultAction action;
    for (ScheduledFault &slot : schedule)
    {
        const FaultEvent &event = slot.event;
        const bool actorKind =
            event.kind == FaultKind::KillActor ||
            event.kind == FaultKind::StallActor ||
            event.kind == FaultKind::CorruptTransition;
        if (!actorKind || event.actorId != actor_id ||
            local_step < event.atStep)
            continue;
        if (!tryFire(slot))
            continue;
        switch (event.kind)
        {
        case FaultKind::KillActor: action.kill = true; break;
        case FaultKind::StallActor:
            action.stallMs += event.millis;
            break;
        case FaultKind::CorruptTransition:
            action.corrupt = true;
            break;
        default: break;
        }
    }
    return action;
}

bool
FaultInjector::onLearnerDrain(std::uint64_t drained_total)
{
    bool kill = false;
    for (ScheduledFault &slot : schedule)
    {
        if (slot.event.kind != FaultKind::KillLearner ||
            drained_total < slot.event.atStep)
            continue;
        if (tryFire(slot))
            kill = true;
    }
    return kill;
}

std::uint64_t
FaultInjector::onSnapshotPublish(std::uint64_t ordinal)
{
    std::uint64_t delayMs = 0;
    for (ScheduledFault &slot : schedule)
    {
        if (slot.event.kind != FaultKind::DelaySnapshot ||
            ordinal < slot.event.atStep)
            continue;
        if (tryFire(slot))
            delayMs += slot.event.millis;
    }
    return delayMs;
}

std::uint64_t
FaultInjector::tripTotal() const
{
    std::uint64_t total = 0;
    for (const auto &t : trips)
        total += t.load(std::memory_order_relaxed);
    return total;
}

bool
corruptFileByte(const std::string &path, std::uint64_t offset,
                unsigned char mask)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (f == nullptr)
        return false;
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
        std::fclose(f);
        return false;
    }
    int byte = std::fgetc(f);
    if (byte == EOF) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, static_cast<long>(offset), SEEK_SET);
    const unsigned char corrupted =
        static_cast<unsigned char>(byte) ^ mask;
    std::fputc(corrupted, f);
    std::fclose(f);
    return true;
}

FailpointStreambuf::int_type
FailpointStreambuf::overflow(int_type ch)
{
    if (injector != nullptr && !injector->onWrite())
        return traits_type::eof();
    if (traits_type::eq_int_type(ch, traits_type::eof()))
        return traits_type::not_eof(ch);
    return inner->sputc(traits_type::to_char_type(ch));
}

std::streamsize
FailpointStreambuf::xsputn(const char *s, std::streamsize n)
{
    if (injector != nullptr && !injector->onWrite())
        return 0;
    return inner->sputn(s, n);
}

int
FailpointStreambuf::sync()
{
    return inner->pubsync();
}

} // namespace marlin::base
