/**
 * @file
 * Phase accounting: accumulated wall-clock per training phase, with
 * a RAII scope guard for the hot paths.
 */

#ifndef MARLIN_PROFILE_TIMER_HH
#define MARLIN_PROFILE_TIMER_HH

#include <array>
#include <chrono>
#include <cstdint>

#include "marlin/base/instant.hh"
#include "marlin/obs/trace.hh"
#include "marlin/profile/phase.hh"

namespace marlin::profile
{

/** Monotonic clock used by all MARLin timing. */
using Clock = std::chrono::steady_clock;

/** Accumulated time and entry count per phase. */
class PhaseTimer
{
  public:
    /**
     * Add @p ns nanoseconds to phase @p p. noexcept so ScopedPhase
     * destructors account time even while an exception unwinds.
     */
    void
    add(Phase p, std::uint64_t ns) noexcept
    {
        auto &slot = slots[static_cast<std::size_t>(p)];
        slot.ns += ns;
        ++slot.count;
    }

    /** Accumulated nanoseconds in phase @p p (telemetry deltas). */
    std::uint64_t
    nanoseconds(Phase p) const noexcept
    {
        return slots[static_cast<std::size_t>(p)].ns;
    }

    /** Accumulated seconds in phase @p p. */
    double
    seconds(Phase p) const
    {
        return static_cast<double>(
                   slots[static_cast<std::size_t>(p)].ns) *
               1e-9;
    }

    /** Times phase @p p was entered. */
    std::uint64_t
    count(Phase p) const
    {
        return slots[static_cast<std::size_t>(p)].count;
    }

    /** Sum over all phases, in seconds. */
    double totalSeconds() const;

    /** Seconds in the paper's update-all-trainers super-phase. */
    double updateAllTrainersSeconds() const;

    /** Zero all accumulators. */
    void reset();

    /** Merge another timer's accumulators into this one. */
    void merge(const PhaseTimer &other);

  private:
    struct Slot
    {
        std::uint64_t ns = 0;
        std::uint64_t count = 0;
    };

    std::array<Slot, numPhases> slots{};
};

/**
 * RAII guard accumulating the enclosed scope into one phase, and —
 * when tracing is enabled — recording the scope as a trace span.
 * Both the timer add and the span record run in the destructor and
 * are noexcept, so phases are fully accounted even when panic paths
 * or trainer exceptions unwind through the scope (no dangling span,
 * no lost time).
 */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseTimer &timer, Phase phase) noexcept
        : _timer(timer), _phase(phase), start(Clock::now())
    {
    }

    ~ScopedPhase()
    {
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count();
        _timer.add(_phase, static_cast<std::uint64_t>(ns));
        obs::recordSpan(phaseName(_phase), "phase",
                        base::nsSinceStart(start),
                        static_cast<std::uint64_t>(ns));
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    PhaseTimer &_timer;
    Phase _phase;
    Clock::time_point start;
};

/** Simple stopwatch for ad-hoc measurements. */
class Stopwatch
{
  public:
    Stopwatch() : start(Clock::now()) {}

    /** Seconds since construction or last restart(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    }

    void restart() { start = Clock::now(); }

  private:
    Clock::time_point start;
};

} // namespace marlin::profile

#endif // MARLIN_PROFILE_TIMER_HH
