/**
 * @file
 * Proportional prioritized experience replay (PER), the
 * state-of-the-art prioritization baseline the paper compares
 * against (PER-MADDPG / PER-MATD3).
 */

#ifndef MARLIN_REPLAY_PRIORITIZED_SAMPLER_HH
#define MARLIN_REPLAY_PRIORITIZED_SAMPLER_HH

#include "marlin/replay/sampler.hh"
#include "marlin/replay/sum_tree.hh"

namespace marlin::replay
{

/** PER hyper-parameters (Schaul et al. defaults). */
struct PerConfig
{
    /** Priority exponent: p_i = (|td_i| + epsilon)^alpha. */
    Real alpha = Real(0.6);
    /** IS-weight exponent (Lemma 1's beta); annealed toward 1. */
    Real beta = Real(0.4);
    /** Additive epsilon so no transition starves. */
    Real epsilon = Real(1e-5);
    /** Per-plan beta increment (0 disables annealing). */
    Real betaAnneal = Real(0);
    /** Replay capacity backing the sum tree. */
    BufferIndex capacity = 1 << 20;
};

/**
 * Proportional PER: stratified sampling over the cumulative priority
 * mass, IS weights w_i = (N * P(i))^-beta normalized by the batch
 * max (the paper's Lemma 1 with full per-sample compensation).
 */
class PrioritizedSampler : public Sampler
{
  public:
    explicit PrioritizedSampler(PerConfig config);

    std::string name() const override { return "per"; }

    void planInto(BufferIndex buffer_size, std::size_t batch,
                  Rng &rng, IndexPlan &out) override;

    void onAdd(BufferIndex idx) override;

    void updatePriorities(const std::vector<BufferIndex> &priority_ids,
                          const std::vector<Real> &td_errors) override;

    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    const PerConfig &config() const { return _config; }
    const SumTree &tree() const { return _tree; }
    Real currentBeta() const { return beta; }

  protected:
    PerConfig _config;
    SumTree _tree;
    Real beta;
    /** Un-normalized Lemma-1 weights for the current plan. */
    std::vector<double> rawWeights;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_PRIORITIZED_SAMPLER_HH
