#include "marlin/serve/metrics_http.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "marlin/base/logging.hh"
#include "marlin/obs/exposition.hh"

namespace marlin::serve
{

namespace
{

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string
httpResponse(const char *status, const char *content_type,
             const std::string &body)
{
    std::string out = "HTTP/1.0 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

MetricsHttp::MetricsHttp(MetricsHttpConfig config_in)
    : config(config_in), poller(config.poller),
      scrapeCounter(
          obs::Registry::instance().counter("obs.scrapes")),
      errorCounter(
          obs::Registry::instance().counter("obs.scrape_errors"))
{
}

MetricsHttp::~MetricsHttp()
{
    stop();
}

bool
MetricsHttp::start()
{
    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0) {
        warn("metrics-http: socket: %s", std::strerror(errno));
        return false;
    }
    setNonBlocking(listenFd);
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(config.port);
    if (::bind(listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        warn("metrics-http: bind port %u: %s", config.port,
             std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    if (::listen(listenFd, config.backlog) != 0) {
        warn("metrics-http: listen: %s", std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }

    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd,
                      reinterpret_cast<struct sockaddr *>(&bound),
                      &len) == 0) {
        boundPort = ntohs(bound.sin_port);
    }
    poller.add(listenFd);
    return true;
}

void
MetricsHttp::serviceOnce(int timeout_ms)
{
    if (listenFd < 0)
        return;
    poller.wait(events, timeout_ms);
    for (const PollEvent &ev : events) {
        if (ev.fd == listenFd) {
            if (ev.readable)
                acceptClients();
            continue;
        }
        auto it = conns.find(ev.fd);
        if (it == conns.end())
            continue;
        if (ev.closed) {
            closeConn(ev.fd);
            continue;
        }
        if (ev.readable)
            handleReadable(it->second);
        auto again = conns.find(ev.fd);
        if (again == conns.end())
            continue;
        if (ev.writable)
            flushOutput(again->second);
    }
}

void
MetricsHttp::startThread()
{
    stopFlag.store(false, std::memory_order_release);
    thread = std::thread([this] {
        while (!stopFlag.load(std::memory_order_acquire))
            serviceOnce(50);
    });
}

void
MetricsHttp::stop()
{
    stopFlag.store(true, std::memory_order_release);
    if (thread.joinable())
        thread.join();
    for (auto &[fd, conn] : conns)
        ::close(fd);
    conns.clear();
    if (listenFd >= 0) {
        poller.remove(listenFd);
        ::close(listenFd);
        listenFd = -1;
    }
}

void
MetricsHttp::acceptClients()
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            warn("metrics-http: accept: %s", std::strerror(errno));
            return;
        }
        setNonBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        Conn conn;
        conn.fd = fd;
        conns.emplace(fd, std::move(conn));
        poller.add(fd);
    }
}

void
MetricsHttp::handleReadable(Conn &conn)
{
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            if (!conn.responding)
                conn.in.append(buf, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof(buf))
                break;
            continue;
        }
        if (n == 0) {
            // Peer finished sending (or left). If a full request
            // line arrived, answer it below; otherwise drop.
            if (conn.in.find("\r\n") == std::string::npos &&
                conn.in.find('\n') == std::string::npos) {
                closeConn(conn.fd);
                return;
            }
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeConn(conn.fd);
        return;
    }
    if (conn.responding)
        return;
    // A request line is enough: this endpoint ignores headers.
    if (conn.in.find('\n') == std::string::npos &&
        conn.in.size() < config.maxRequestBytes)
        return;
    buildResponse(conn);
    flushOutput(conn);
}

void
MetricsHttp::buildResponse(Conn &conn)
{
    conn.responding = true;
    std::size_t eol = conn.in.find('\n');
    if (eol == std::string::npos)
        eol = conn.in.size();
    std::string line = conn.in.substr(0, eol);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();

    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    const std::string method =
        sp1 == std::string::npos ? line : line.substr(0, sp1);
    const std::string path =
        sp1 == std::string::npos
            ? std::string()
            : line.substr(sp1 + 1, sp2 == std::string::npos
                                       ? std::string::npos
                                       : sp2 - sp1 - 1);

    if (method != "GET" || path.empty() || path[0] != '/') {
        errorCounter.add();
        conn.out = httpResponse("400 Bad Request", "text/plain",
                                "bad request\n");
    } else if (path == "/metrics" ||
               path.rfind("/metrics?", 0) == 0) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
        scrapeCounter.add();
        conn.out = httpResponse("200 OK",
                                obs::prometheusContentType,
                                obs::renderPrometheusText());
    } else if (path == "/healthz") {
        conn.out =
            httpResponse("200 OK", "text/plain", "ok\n");
    } else {
        errorCounter.add();
        conn.out = httpResponse("404 Not Found", "text/plain",
                                "not found\n");
    }
    conn.in.clear();
}

void
MetricsHttp::flushOutput(Conn &conn)
{
    while (conn.outOff < conn.out.size()) {
        const ssize_t n = ::send(
            conn.fd, conn.out.data() + conn.outOff,
            conn.out.size() - conn.outOff, MSG_NOSIGNAL);
        if (n > 0) {
            conn.outOff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            poller.setWriteInterest(conn.fd, true);
            return;
        }
        if (n < 0 && errno == EINTR)
            continue;
        closeConn(conn.fd);
        return;
    }
    // HTTP/1.0, Connection: close — done means close.
    closeConn(conn.fd);
}

void
MetricsHttp::closeConn(int fd)
{
    auto it = conns.find(fd);
    if (it == conns.end())
        return;
    poller.remove(fd);
    ::close(fd);
    conns.erase(it);
}

} // namespace marlin::serve
