/**
 * @file
 * Preallocated, capacity-retaining scratch-buffer pool.
 *
 * The steady-state allocation discipline (see alloc_guard.hh) needs
 * every hot-path temporary to live in storage that survives the call
 * that fills it. Most subsystems own their scratch as members; for
 * free functions (e.g. the gemmNT B-pack buffer) Workspace provides
 * slot-keyed buffers that grow to the high-water mark of each call
 * site and then never reallocate again.
 */

#ifndef MARLIN_BASE_WORKSPACE_HH
#define MARLIN_BASE_WORKSPACE_HH

#include <cstddef>
#include <vector>

#include "marlin/base/types.hh"

namespace marlin::base
{

/**
 * A pool of growable-but-never-shrinking Real buffers keyed by a
 * small integer slot. Each call site owns one slot (see the
 * WorkspaceSlot enum); asking for n elements returns a buffer of at
 * least n elements whose first n are yours to overwrite. Capacity is
 * retained across calls, so once a workload's shapes stabilize the
 * pool stops touching the allocator entirely.
 *
 * Not thread-safe; use threadLocal() for per-thread scratch.
 */
class Workspace
{
  public:
    /**
     * Buffer for @p slot, grown (zero-filled growth) to at least
     * @p n elements. Contents beyond what the caller writes are
     * unspecified. The reference stays valid until the next
     * scratch() call for the same slot.
     */
    std::vector<Real> &scratch(std::size_t slot, std::size_t n);

    /** Number of slots ever touched. */
    std::size_t slots() const { return pool.size(); }

    /** Total Real elements held across all slots. */
    std::size_t footprintElements() const;

    /** This thread's workspace (lazily constructed, never freed
     *  before thread exit). */
    static Workspace &threadLocal();

  private:
    std::vector<std::vector<Real>> pool;
};

/** Registry of Workspace slot owners, so call sites can't collide. */
enum WorkspaceSlot : std::size_t
{
    /** gemmNT's packed-transpose of the B operand. */
    wsGemmNTPack = 0,
};

} // namespace marlin::base

#endif // MARLIN_BASE_WORKSPACE_HH
