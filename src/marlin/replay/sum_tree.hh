/**
 * @file
 * Flat-array binary sum tree supporting O(log n) priority updates
 * and prefix-sum sampling — the standard PER data structure
 * (Schaul et al., 2015).
 */

#ifndef MARLIN_REPLAY_SUM_TREE_HH
#define MARLIN_REPLAY_SUM_TREE_HH

#include <iosfwd>
#include <vector>

#include "marlin/base/types.hh"

namespace marlin::replay
{

/**
 * Complete binary tree over `capacity` leaves (rounded up to a power
 * of two) where internal nodes store subtree sums. Leaf i holds the
 * unnormalized priority of replay slot i.
 */
class SumTree
{
  public:
    explicit SumTree(BufferIndex capacity);

    BufferIndex capacity() const { return _capacity; }

    /** Sum of all priorities. */
    double total() const { return nodes[1]; }

    /** Current priority of leaf @p idx. */
    double priorityOf(BufferIndex idx) const;

    /** Largest priority ever set (1 before any update). */
    double maxPriority() const { return _maxPriority; }

    /** Smallest nonzero priority currently stored. */
    double minPriority() const;

    /** Set leaf @p idx to @p priority and update ancestors. */
    void set(BufferIndex idx, double priority);

    /**
     * Find the leaf whose cumulative-priority interval contains
     * @p prefix. @pre 0 <= prefix < total().
     */
    BufferIndex find(double prefix) const;

    /** Reset all priorities to zero. */
    void clear();

    /** Serialize every node plus the running max priority. */
    void saveState(std::ostream &os) const;

    /** Restore state written by saveState on a same-capacity tree. */
    void loadState(std::istream &is);

  private:
    BufferIndex _capacity;
    BufferIndex leafCount; ///< capacity rounded to a power of two.
    std::vector<double> nodes; ///< 1-indexed heap layout.
    double _maxPriority = 1.0;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_SUM_TREE_HH
