/**
 * @file
 * Tests for the data-layout reorganization store: the interleaved
 * gather must be bit-identical to the per-agent baseline gather.
 */

#include <gtest/gtest.h>

#include "marlin/base/random.hh"
#include "marlin/replay/gather.hh"
#include "marlin/replay/interleaved_store.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin::replay
{
namespace
{

std::vector<TransitionShape>
testShapes()
{
    return {{3, 5}, {4, 5}, {6, 5}};
}

void
fillBuffers(MultiAgentBuffer &buf, int steps, Rng &rng)
{
    const std::size_t n = buf.numAgents();
    for (int t = 0; t < steps; ++t) {
        std::vector<std::vector<Real>> obs(n), act(n), next(n);
        std::vector<Real> rew(n);
        std::vector<bool> done(n);
        for (std::size_t a = 0; a < n; ++a) {
            const auto &shape = buf.agent(a).shape();
            obs[a].resize(shape.obsDim);
            next[a].resize(shape.obsDim);
            act[a].assign(shape.actDim, Real(0));
            act[a][rng.randint(shape.actDim)] = Real(1);
            for (auto &v : obs[a])
                v = static_cast<Real>(rng.uniform(-1, 1));
            for (auto &v : next[a])
                v = static_cast<Real>(rng.uniform(-1, 1));
            rew[a] = static_cast<Real>(rng.uniform(-1, 1));
            done[a] = rng.uniform() < 0.1;
        }
        buf.add(obs, act, rew, next, done);
    }
}

void
expectBatchesEqual(const std::vector<AgentBatch> &a,
                   const std::vector<AgentBatch> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].obs, b[i].obs) << "agent " << i;
        EXPECT_EQ(a[i].actions, b[i].actions) << "agent " << i;
        EXPECT_EQ(a[i].rewards, b[i].rewards) << "agent " << i;
        EXPECT_EQ(a[i].nextObs, b[i].nextObs) << "agent " << i;
        EXPECT_EQ(a[i].dones, b[i].dones) << "agent " << i;
    }
}

TEST(InterleavedStore, RecordSizeIsSumOfFlatSizes)
{
    InterleavedReplayStore store(testShapes(), 16);
    // (2*3+5+2) + (2*4+5+2) + (2*6+5+2) = 13+15+19 = 47.
    EXPECT_EQ(store.recordSize(), 47u);
    EXPECT_EQ(store.storageBytes(), 47u * 16 * sizeof(Real));
}

TEST(InterleavedStore, RebuildMatchesBaselineGather)
{
    MultiAgentBuffer buf(testShapes(), 256);
    Rng rng(1);
    fillBuffers(buf, 200, rng);

    InterleavedReplayStore store(testShapes(), 256);
    store.rebuildFrom(buf);
    EXPECT_EQ(store.size(), 200u);

    UniformSampler sampler;
    Rng srng(2);
    auto plan = sampler.plan(buf.size(), 64, srng);

    std::vector<AgentBatch> baseline, interleaved;
    gatherAllAgents(buf, plan, baseline);
    store.gatherAllAgents(plan, interleaved);
    expectBatchesEqual(baseline, interleaved);
}

TEST(InterleavedStore, AppendMatchesBaselineGather)
{
    MultiAgentBuffer buf(testShapes(), 128);
    InterleavedReplayStore store(testShapes(), 128);
    Rng rng(3);

    // Mirror every add into the store.
    const std::size_t n = buf.numAgents();
    for (int t = 0; t < 100; ++t) {
        std::vector<std::vector<Real>> obs(n), act(n), next(n);
        std::vector<Real> rew(n);
        std::vector<bool> done(n);
        for (std::size_t a = 0; a < n; ++a) {
            const auto &shape = buf.agent(a).shape();
            obs[a].resize(shape.obsDim, static_cast<Real>(t));
            next[a].resize(shape.obsDim, static_cast<Real>(t) + 0.5f);
            act[a].assign(shape.actDim, Real(0));
            act[a][0] = Real(1);
            rew[a] = static_cast<Real>(t * (a + 1));
            done[a] = false;
        }
        buf.add(obs, act, rew, next, done);
        store.append(obs, act, rew, next, done);
    }

    IndexPlan plan;
    plan.indices = {0, 50, 99, 42};
    std::vector<AgentBatch> baseline, interleaved;
    gatherAllAgents(buf, plan, baseline);
    store.gatherAllAgents(plan, interleaved);
    expectBatchesEqual(baseline, interleaved);
}

TEST(InterleavedStore, RingWraparound)
{
    InterleavedReplayStore store({{2, 5}}, 4);
    for (int t = 0; t < 6; ++t) {
        std::vector<std::vector<Real>> obs = {
            {static_cast<Real>(t), 0}};
        std::vector<std::vector<Real>> act = {{1, 0, 0, 0, 0}};
        std::vector<Real> rew = {static_cast<Real>(t)};
        std::vector<std::vector<Real>> next = obs;
        std::vector<bool> done = {false};
        store.append(obs, act, rew, next, done);
    }
    EXPECT_EQ(store.size(), 4u);
    IndexPlan plan;
    plan.indices = {0, 1, 2, 3};
    std::vector<AgentBatch> out;
    store.gatherAllAgents(plan, out);
    // Slots 0,1 overwritten by t=4,5.
    EXPECT_EQ(out[0].rewards(0, 0), Real(4));
    EXPECT_EQ(out[0].rewards(1, 0), Real(5));
    EXPECT_EQ(out[0].rewards(2, 0), Real(2));
    EXPECT_EQ(out[0].rewards(3, 0), Real(3));
}

TEST(InterleavedStore, GatherTraceIsOneRecordPerIndex)
{
    MultiAgentBuffer buf(testShapes(), 64);
    Rng rng(5);
    fillBuffers(buf, 32, rng);
    InterleavedReplayStore store(testShapes(), 64);
    store.rebuildFrom(buf);

    IndexPlan plan;
    plan.indices = {1, 2, 3, 4, 5};
    std::vector<AgentBatch> out;
    AccessTrace trace;
    store.gatherAllAgents(plan, out, &trace);
    // One contiguous record read per index — the O(m) property.
    EXPECT_EQ(trace.size(), 5u);
    EXPECT_EQ(trace.entries()[0].bytes,
              store.recordSize() * sizeof(Real));

    // Baseline gather touches 3 reads per index per agent: O(N*m).
    AccessTrace baseline_trace;
    std::vector<AgentBatch> baseline;
    gatherAllAgents(buf, plan, baseline, &baseline_trace);
    EXPECT_EQ(baseline_trace.size(), 5u * 3u * buf.numAgents());
}

TEST(InterleavedStore, RecordsAreContiguousInMemory)
{
    InterleavedReplayStore store(testShapes(), 8);
    const Real *r0 = store.record(0);
    const Real *r1 = store.record(1);
    EXPECT_EQ(r1 - r0,
              static_cast<std::ptrdiff_t>(store.recordSize()));
}

} // namespace
} // namespace marlin::replay
