#include "marlin/nn/mlp.hh"

#include "marlin/base/logging.hh"
#include "marlin/numeric/kernels.hh"

namespace marlin::nn
{

Mlp::Mlp(const MlpConfig &config, Rng &rng) : _config(config)
{
    MARLIN_ASSERT(config.inputDim > 0 && config.outputDim > 0,
                  "Mlp requires nonzero input/output dims");
    std::size_t prev = config.inputDim;
    for (std::size_t h : config.hiddenDims) {
        layers.emplace_back(prev, h, rng);
        acts.emplace_back(config.hiddenActivation);
        prev = h;
    }
    layers.emplace_back(prev, config.outputDim, rng);
    acts.emplace_back(config.outputActivation);
    preact.resize(layers.size());
    postact.resize(layers.size());
    dpre.resize(layers.size());
    dinput.resize(layers.size());
}

void
Mlp::forward(const Matrix &x, Matrix &y)
{
    const Matrix *cur = &x;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        layers[i].forward(*cur, preact[i]);
        acts[i].forward(preact[i], postact[i]);
        cur = &postact[i];
    }
    y = *cur;
}

Matrix
Mlp::forward(const Matrix &x)
{
    Matrix y;
    forward(x, y);
    return y;
}

void
Mlp::backward(const Matrix &grad_y, Matrix *grad_x)
{
    MARLIN_ASSERT(!layers.empty(), "backward on empty Mlp");
    // Pointer walk over persistent per-layer scratch: identical
    // arithmetic to a copy-based chain, zero allocations once warm.
    const Matrix *grad = &grad_y;
    for (std::size_t i = layers.size(); i-- > 0;) {
        acts[i].backward(*grad, dpre[i]);
        layers[i].backward(dpre[i], dinput[i]);
        grad = &dinput[i];
    }
    if (grad_x)
        *grad_x = *grad;
}

std::vector<Param *>
Mlp::params()
{
    std::vector<Param *> out;
    for (auto &layer : layers)
        for (Param *p : layer.params())
            out.push_back(p);
    return out;
}

std::vector<const Param *>
Mlp::params() const
{
    std::vector<const Param *> out;
    for (const auto &layer : layers)
        for (const Param *p : layer.params())
            out.push_back(p);
    return out;
}

std::size_t
Mlp::paramCount() const
{
    std::size_t n = 0;
    for (const Param *p : params())
        n += p->value.size();
    return n;
}

// zeroGrad/copyFrom/softUpdateFrom iterate the layers directly
// (weight then bias, matching params() order) instead of building a
// params() vector: softUpdateFrom runs once per network per update,
// and the steady-state contract forbids that per-call allocation.

void
Mlp::zeroGrad()
{
    for (auto &layer : layers) {
        layer.weight.zeroGrad();
        layer.bias.zeroGrad();
    }
}

void
Mlp::copyFrom(const Mlp &src)
{
    MARLIN_ASSERT(layers.size() == src.layers.size(),
                  "copyFrom network shape mismatch");
    for (std::size_t i = 0; i < layers.size(); ++i) {
        layers[i].weight.value = src.layers[i].weight.value;
        layers[i].bias.value = src.layers[i].bias.value;
    }
}

void
Mlp::softUpdateFrom(const Mlp &src, Real tau)
{
    MARLIN_ASSERT(layers.size() == src.layers.size(),
                  "softUpdateFrom network shape mismatch");
    const numeric::kernels::KernelTable &kt =
        numeric::kernels::active();
    const auto blend = [&kt, tau](Matrix &d, const Matrix &s) {
        MARLIN_ASSERT(d.size() == s.size(), "param size mismatch");
        kt.softUpdate(tau, s.data(), d.data(), d.size());
    };
    for (std::size_t i = 0; i < layers.size(); ++i) {
        blend(layers[i].weight.value, src.layers[i].weight.value);
        blend(layers[i].bias.value, src.layers[i].bias.value);
    }
}

} // namespace marlin::nn
