/**
 * @file
 * Shared run coordination for the async actor-learner runtime.
 */

#ifndef MARLIN_ASYNC_RUN_CONTROL_HH
#define MARLIN_ASYNC_RUN_CONTROL_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "marlin/base/types.hh"

namespace marlin::async
{

/**
 * The one piece of state every async thread shares. Actors claim
 * global episode indices — normally a fetch_add on episodesClaimed
 * (the claimed index drives the epsilon decay schedule, so
 * exploration anneals over global progress exactly like the lockstep
 * loop), but indices abandoned by a crashed or degraded actor go
 * into a reclaim pool that claim() drains first, so the fleet still
 * delivers exactly episodeTarget completed episodes. An actor retires
 * (decrements activeActors) once completedCount reaches the target;
 * the learner exits when every actor has retired and the rings are
 * drained. stop is the cooperative emergency brake (health-guard
 * halt, learner death).
 */
struct RunControl
{
    std::atomic<std::uint64_t> episodesClaimed{0};
    std::uint64_t episodeTarget = 0;
    /** Episodes whose reward has been recorded. */
    std::atomic<std::uint64_t> completedCount{0};
    std::atomic<std::size_t> activeActors{0};
    std::atomic<bool> stop{false};

    /** Completed episodes as (global episode index, mean reward). */
    std::mutex rewardMutex;
    std::vector<std::pair<std::uint64_t, Real>> episodeRewards;
    /** Episode indices abandoned mid-flight (guarded by
     *  rewardMutex), waiting to be re-claimed by a healthy actor. */
    std::vector<std::uint64_t> reclaimable;

    /**
     * Actor side: claim the next episode index, preferring
     * abandoned ones. @return false when every index up to the
     * target is claimed and nothing is reclaimable — the caller
     * should idle (indices may still be reclaimed later) until
     * completedCount reaches the target.
     */
    bool
    claim(std::uint64_t &index)
    {
        {
            const std::lock_guard<std::mutex> lock(rewardMutex);
            if (!reclaimable.empty())
            {
                index = reclaimable.back();
                reclaimable.pop_back();
                return true;
            }
        }
        // Load-first keeps the counter from racing far past the
        // target when many actors poll after exhaustion.
        if (episodesClaimed.load(std::memory_order_relaxed) >=
            episodeTarget)
            return false;
        const std::uint64_t e = episodesClaimed.fetch_add(
            1, std::memory_order_relaxed);
        if (e >= episodeTarget)
            return false;
        index = e;
        return true;
    }

    /** Return an abandoned episode index to the pool. */
    void
    reclaim(std::uint64_t index)
    {
        const std::lock_guard<std::mutex> lock(rewardMutex);
        reclaimable.push_back(index);
    }

    /** Actor side: record a finished episode's mean reward. */
    void
    recordEpisode(std::uint64_t index, Real mean_reward)
    {
        {
            const std::lock_guard<std::mutex> lock(rewardMutex);
            episodeRewards.emplace_back(index, mean_reward);
        }
        completedCount.fetch_add(1, std::memory_order_release);
    }

    /** True once every targeted episode has a recorded reward. */
    bool
    done() const
    {
        return completedCount.load(std::memory_order_acquire) >=
               episodeTarget;
    }
};

} // namespace marlin::async

#endif // MARLIN_ASYNC_RUN_CONTROL_HH
