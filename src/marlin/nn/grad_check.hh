/**
 * @file
 * Finite-difference gradient verification for Mlp networks; used by
 * the test suite to validate the manual backprop implementation.
 */

#ifndef MARLIN_NN_GRAD_CHECK_HH
#define MARLIN_NN_GRAD_CHECK_HH

#include <functional>

#include "marlin/nn/mlp.hh"

namespace marlin::nn
{

/** Result of a gradient check over one network. */
struct GradCheckResult
{
    Real maxAbsError = 0;   ///< max |analytic - numeric|
    Real maxRelError = 0;   ///< max relative error
    std::size_t checked = 0; ///< number of scalar params compared
};

/**
 * Compare analytic parameter gradients of @p net against central
 * finite differences of the scalar loss
 * L(x) = mse(net(x), target).
 *
 * @param net Network under test (parameters are perturbed and
 *            restored in place).
 * @param x Input batch.
 * @param target Regression target (same shape as net output).
 * @param epsilon Finite-difference step.
 * @param stride Check every stride-th scalar parameter (1 = all).
 */
GradCheckResult checkMlpGradients(Mlp &net, const Matrix &x,
                                  const Matrix &target,
                                  Real epsilon = Real(1e-2),
                                  std::size_t stride = 1);

/**
 * Check the input gradient dL/dx produced by backward() against
 * finite differences.
 */
GradCheckResult checkInputGradients(Mlp &net, const Matrix &x,
                                    const Matrix &target,
                                    Real epsilon = Real(1e-2),
                                    std::size_t stride = 1);

} // namespace marlin::nn

#endif // MARLIN_NN_GRAD_CHECK_HH
