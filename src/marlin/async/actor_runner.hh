/**
 * @file
 * Rollout thread of the async runtime: owns a set of environment
 * lanes and a private policy clone, generates transitions and pushes
 * them into its SPSC ring without ever blocking on the learner.
 */

#ifndef MARLIN_ASYNC_ACTOR_RUNNER_HH
#define MARLIN_ASYNC_ACTOR_RUNNER_HH

#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "marlin/async/policy_snapshot.hh"
#include "marlin/async/run_control.hh"
#include "marlin/base/fault_injector.hh"
#include "marlin/base/worker_thread.hh"
#include "marlin/core/maddpg.hh"
#include "marlin/env/environment.hh"
#include "marlin/profile/timer.hh"
#include "marlin/replay/transition_ring.hh"

namespace marlin::async
{

/** Per-actor knobs, fixed for the run. */
struct ActorConfig
{
    std::size_t actorId = 0;
    /** Environment steps per episode (TrainConfig value). */
    std::size_t maxEpisodeLength = 25;
    /** Ring publishes are batched: one release store per this many
     *  generated transitions (and at every episode boundary). */
    std::size_t publishBatch = 8;
    core::ActionMode actionMode = core::ActionMode::Discrete;
};

/**
 * One rollout thread. The runner steps its lanes round-robin, one
 * env step per lane per sweep, so a multi-lane actor amortizes each
 * weight refresh and ring publish over several concurrent episodes.
 * Lanes are plain Environment instances stepped serially on this
 * thread — deliberately not VectorEnvironment, which would re-enter
 * the global ThreadPool from N actor threads at once (see
 * base/worker_thread.hh for why long-lived roles stay off the pool).
 *
 * Thread contract: run() is the thread body; everything else is
 * constructed before the thread starts and read after it joins.
 * Supervision additions: run() may be called again after the thread
 * it ran on died (restart with preserved lane/RNG/sequence state);
 * requestAbort() and forceRetire() are watchdog-side and safe while
 * the thread runs; abandonActiveEpisodes() returns in-flight
 * episode claims to the pool and is called either by run() itself
 * on clean exit or by the supervisor after joining a dead thread.
 */
class ActorRunner
{
  public:
    /**
     * @param envs The actor's environment lanes (>= 1), distinct
     *        seeds per lane.
     * @param policy Private trainer clone used only for action
     *        selection; its weights track the learner via @p snapshot.
     * @param ring This actor's producer side.
     */
    ActorRunner(ActorConfig config,
                std::vector<std::unique_ptr<env::Environment>> envs,
                std::unique_ptr<core::CtdeTrainerBase> policy,
                replay::TransitionRing &ring,
                const replay::JointTransitionLayout &layout,
                PolicySnapshot &snapshot, RunControl &control);

    /** Supervisor wiring; call before the thread starts. */
    void setHeartbeat(base::Heartbeat *hb) { heartbeat = hb; }
    void setFaultInjector(base::FaultInjector *fi) { injector = fi; }

    /** Thread body: roll out until the episode target or stop. */
    void run();

    /**
     * Watchdog: ask the runner to exit at the next sweep without
     * completing its episodes (degradation of a stalled actor).
     */
    void
    requestAbort()
    {
        abortFlag.store(true, std::memory_order_release);
    }

    /**
     * Return every active lane's claimed episode index to the
     * reclaim pool so a healthy actor can re-run it. Single-caller
     * at a time: either run() on its way out, or the supervisor
     * after joining this runner's dead thread.
     */
    void abandonActiveEpisodes();

    /**
     * Decrement activeActors exactly once over the runner's life,
     * no matter how many exit paths fire (clean retire, abort,
     * supervisor giving up on restarts).
     */
    void
    retireOnce()
    {
        if (!retiredFlag.exchange(true, std::memory_order_acq_rel))
            control.activeActors.fetch_sub(
                1, std::memory_order_release);
    }

    // Read after join.
    StepCount envSteps() const { return steps; }
    std::uint64_t weightRefreshes() const { return refreshes; }
    const profile::PhaseTimer &timer() const { return _timer; }

  private:
    struct Lane
    {
        env::Environment *env = nullptr;
        std::vector<std::vector<Real>> obs;
        std::uint64_t episode = 0; ///< Claimed global index.
        std::size_t t = 0;         ///< Step within the episode.
        Real reward = 0;
        bool active = false;
    };

    /** Claim the next episode for @p lane; false when none remain. */
    bool claimEpisode(Lane &lane);

    /** One env step on @p lane; retires the episode at the limit. */
    void stepLane(Lane &lane);

    ActorConfig config;
    std::vector<std::unique_ptr<env::Environment>> envs;
    std::unique_ptr<core::CtdeTrainerBase> policy;
    replay::TransitionRing &ring;
    const replay::JointTransitionLayout &layout;
    PolicySnapshot &snapshot;
    RunControl &control;

    base::Heartbeat *heartbeat = nullptr;
    base::FaultInjector *injector = nullptr;
    std::atomic<bool> abortFlag{false};
    std::atomic<bool> retiredFlag{false};

    std::vector<Lane> lanes;
    std::uint64_t seenVersion = 0;
    std::uint64_t nextSeq = 0; ///< Stamped on every generated step.
    std::size_t sincePublish = 0;

    StepCount steps = 0;
    std::uint64_t refreshes = 0;
    profile::PhaseTimer _timer;

    // Step scratch shared across lanes (lanes run serially).
    env::StepResult stepScratch;
    std::vector<int> actionScratch;
    std::vector<std::array<Real, 2>> forceScratch;
    std::vector<env::Vec2> vecForceScratch;
    std::vector<std::vector<Real>> onehotScratch;
};

} // namespace marlin::async

#endif // MARLIN_ASYNC_ACTOR_RUNNER_HH
