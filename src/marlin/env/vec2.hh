/**
 * @file
 * Minimal 2D vector used by the particle world.
 */

#ifndef MARLIN_ENV_VEC2_HH
#define MARLIN_ENV_VEC2_HH

#include <cmath>

#include "marlin/base/types.hh"

namespace marlin::env
{

/** 2D vector of Real with the handful of ops the physics needs. */
struct Vec2
{
    Real x = 0;
    Real y = 0;

    Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(Real s) const { return {x * s, y * s}; }

    Vec2 &
    operator+=(const Vec2 &o)
    {
        x += o.x;
        y += o.y;
        return *this;
    }

    Vec2 &
    operator*=(Real s)
    {
        x *= s;
        y *= s;
        return *this;
    }

    Real normSq() const { return x * x + y * y; }
    Real norm() const { return std::sqrt(normSq()); }

    /** Unit vector (zero vector maps to zero). */
    Vec2
    normalized() const
    {
        const Real n = norm();
        return n > Real(0) ? Vec2{x / n, y / n} : Vec2{};
    }

    bool operator==(const Vec2 &o) const = default;
};

/** Euclidean distance between two points. */
inline Real
distance(const Vec2 &a, const Vec2 &b)
{
    return (a - b).norm();
}

} // namespace marlin::env

#endif // MARLIN_ENV_VEC2_HH
