/**
 * @file
 * Binary serialization of matrices, MLPs and Adam optimizer state,
 * used by trainer checkpoints.
 */

#ifndef MARLIN_NN_SERIALIZE_HH
#define MARLIN_NN_SERIALIZE_HH

#include <iostream>

#include "marlin/nn/adam.hh"
#include "marlin/nn/mlp.hh"

namespace marlin::nn
{

/** Write a matrix (shape + row-major data). */
void saveMatrix(std::ostream &os, const Matrix &m);

/** Read a matrix written by saveMatrix. */
Matrix loadMatrix(std::istream &is);

/**
 * Write an Mlp's parameter values (shape-checked on load; the
 * loading network must already have the same architecture).
 */
void saveMlp(std::ostream &os, const Mlp &net);

/** Load parameter values into an architecture-matching Mlp. */
void loadMlp(std::istream &is, Mlp &net);

/** Write Adam moments + step counter. */
void saveAdam(std::ostream &os, const AdamOptimizer &opt);

/** Restore Adam moments + step counter (same parameter set). */
void loadAdam(std::istream &is, AdamOptimizer &opt);

} // namespace marlin::nn

#endif // MARLIN_NN_SERIALIZE_HH
