#include "marlin/replay/aos_buffer.hh"

#include <cstring>

namespace marlin::replay
{

AosReplayBuffer::AosReplayBuffer(TransitionShape shape,
                                 BufferIndex capacity)
    : _shape(shape), _capacity(capacity), stride(shape.flatSize())
{
    MARLIN_ASSERT(capacity > 0, "AoS buffer capacity must be > 0");
    MARLIN_ASSERT(shape.obsDim > 0 && shape.actDim > 0,
                  "AoS buffer needs nonzero dims");
    data.resize(capacity * stride);
}

void
AosReplayBuffer::add(const Real *obs, const Real *action, Real reward,
                     const Real *next_obs, bool done)
{
    Real *rec = data.data() + pos * stride;
    std::memcpy(rec, obs, _shape.obsDim * sizeof(Real));
    rec += _shape.obsDim;
    std::memcpy(rec, action, _shape.actDim * sizeof(Real));
    rec += _shape.actDim;
    *rec++ = reward;
    std::memcpy(rec, next_obs, _shape.obsDim * sizeof(Real));
    rec += _shape.obsDim;
    *rec = done ? Real(1) : Real(0);

    pos = (pos + 1) % _capacity;
    if (_size < _capacity)
        ++_size;
}

TransitionView
AosReplayBuffer::view(BufferIndex idx) const
{
    MARLIN_ASSERT(idx < _size, "AoS view index out of range");
    const Real *rec = record(idx);
    TransitionView v;
    v.obs = rec;
    v.action = rec + _shape.obsDim;
    v.reward = rec[_shape.obsDim + _shape.actDim];
    v.nextObs = rec + _shape.obsDim + _shape.actDim + 1;
    v.done = rec[stride - 1];
    return v;
}

void
AosReplayBuffer::gather(const IndexPlan &plan, AgentBatch &out,
                        AccessTrace *trace) const
{
    const std::size_t batch = plan.batchSize();
    out.resize(batch, _shape);
    const std::size_t obs_bytes = _shape.obsDim * sizeof(Real);
    const std::size_t act_bytes = _shape.actDim * sizeof(Real);
    for (std::size_t b = 0; b < batch; ++b) {
        const BufferIndex idx = plan.indices[b];
        MARLIN_ASSERT(idx < _size, "AoS gather index out of range");
        const Real *rec = record(idx);
        if (MARLIN_UNLIKELY(trace != nullptr))
            trace->record(rec, stride * sizeof(Real));
        std::memcpy(out.obs.row(b), rec, obs_bytes);
        rec += _shape.obsDim;
        std::memcpy(out.actions.row(b), rec, act_bytes);
        rec += _shape.actDim;
        out.rewards(b, 0) = *rec++;
        std::memcpy(out.nextObs.row(b), rec, obs_bytes);
        rec += _shape.obsDim;
        out.dones(b, 0) = *rec;
    }
}

} // namespace marlin::replay
