/**
 * @file
 * Baseline sampler: batch-size independent uniform draws, the random
 * mini-batch sampling the paper characterizes as the bottleneck.
 */

#ifndef MARLIN_REPLAY_UNIFORM_SAMPLER_HH
#define MARLIN_REPLAY_UNIFORM_SAMPLER_HH

#include "marlin/replay/sampler.hh"

namespace marlin::replay
{

/** Uniform-with-replacement index selection (baseline MARL). */
class UniformSampler : public Sampler
{
  public:
    std::string name() const override { return "uniform"; }

    void planInto(BufferIndex buffer_size, std::size_t batch,
                  Rng &rng, IndexPlan &out) override;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_UNIFORM_SAMPLER_HH
