#include "marlin/numeric/gemm.hh"

#include <cstring>

#include "marlin/base/compiler.hh"
#include "marlin/base/thread_pool.hh"

namespace marlin::numeric
{

namespace
{

// Block sizes tuned for ~32 KiB L1d with Real = float.
constexpr std::size_t blockM = 64;
constexpr std::size_t blockK = 64;

// Products below this FLOP count (2*m*k*n) run serially: the pool
// dispatch costs more than the arithmetic. Single-row action
// selection stays inline; mini-batch forward/backward crosses it.
constexpr std::size_t parallelFlopThreshold = 1u << 18;

/**
 * Whether a product of this size should fan out. The partition is
 * over disjoint output rows, and within a row every kernel below
 * performs the same additions in the same order as its serial loop,
 * so the result is bit-identical for any thread count.
 */
bool
useParallel(base::ThreadPool &pool, std::size_t m, std::size_t k,
            std::size_t n)
{
    return pool.numThreads() > 1 && !base::ThreadPool::inWorker() &&
           2 * m * k * n >= parallelFlopThreshold;
}

/** Serial i-k-j kernel over output rows [i_begin, i_end). */
void
gemmRows(const Matrix &a, const Matrix &b, Matrix &c,
         std::size_t i_begin, std::size_t i_end)
{
    const std::size_t k = a.cols(), n = b.cols();
    // i-k-j loop order with blocking: the inner j loop streams rows
    // of B and C, which vectorizes well. The aik == 0 skip pays off
    // here because forward inputs carry one-hot action blocks and
    // ReLU activations.
    for (std::size_t i0 = i_begin; i0 < i_end; i0 += blockM) {
        const std::size_t i1 = std::min(i0 + blockM, i_end);
        for (std::size_t k0 = 0; k0 < k; k0 += blockK) {
            const std::size_t k1 = std::min(k0 + blockK, k);
            for (std::size_t i = i0; i < i1; ++i) {
                const Real *MARLIN_RESTRICT arow = a.row(i);
                Real *MARLIN_RESTRICT crow = c.row(i);
                for (std::size_t kk = k0; kk < k1; ++kk) {
                    const Real aik = arow[kk];
                    if (aik == Real(0))
                        continue;
                    const Real *MARLIN_RESTRICT brow = b.row(kk);
                    for (std::size_t j = 0; j < n; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        }
    }
}

void
gemmKernel(const Matrix &a, const Matrix &b, Matrix &c, bool accumulate)
{
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    MARLIN_ASSERT(b.rows() == k, "gemm inner dimension mismatch");
    if (!accumulate)
        c.resize(m, n);
    MARLIN_ASSERT(c.rows() == m && c.cols() == n,
                  "gemm output shape mismatch");

    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, m, k, n)) {
        gemmRows(a, b, c, 0, m);
        return;
    }
    // Partition whole row blocks: chunks own disjoint C rows and
    // run the identical per-row loop nest as the serial path.
    const std::size_t row_blocks = (m + blockM - 1) / blockM;
    pool.parallelFor(0, row_blocks, 1,
                     [&](std::size_t b0, std::size_t b1) {
                         gemmRows(a, b, c, b0 * blockM,
                                  std::min(b1 * blockM, m));
                     });
}

} // namespace

void
gemm(const Matrix &a, const Matrix &b, Matrix &c)
{
    gemmKernel(a, b, c, false);
}

void
gemmAcc(const Matrix &a, const Matrix &b, Matrix &c)
{
    gemmKernel(a, b, c, true);
}

namespace
{

/** gemmTN restricted to output rows [i_begin, i_end). */
void
gemmTNRows(const Matrix &a, const Matrix &b, Matrix &c,
           std::size_t i_begin, std::size_t i_end)
{
    const std::size_t k = a.rows(), n = b.cols();
    // C(m,n) = sum_kk A(k,m)^T B(k,n): stream rows of A and B
    // together. kk stays the outer loop so each C element accumulates
    // its terms in ascending-kk order — the same order for every
    // row partition, hence bit-identical under any thread count.
    // A here is a cached forward input (ReLU activations / one-hot
    // action blocks), so the aki == 0 skip earns its branch.
    for (std::size_t kk = 0; kk < k; ++kk) {
        const Real *MARLIN_RESTRICT arow = a.row(kk);
        const Real *MARLIN_RESTRICT brow = b.row(kk);
        for (std::size_t i = i_begin; i < i_end; ++i) {
            const Real aki = arow[i];
            if (aki == Real(0))
                continue;
            Real *MARLIN_RESTRICT crow = c.row(i);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += aki * brow[j];
        }
    }
}

} // namespace

void
gemmTN(const Matrix &a, const Matrix &b, Matrix &c)
{
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    MARLIN_ASSERT(b.rows() == k, "gemmTN inner dimension mismatch");
    c.resize(m, n);

    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, m, k, n)) {
        gemmTNRows(a, b, c, 0, m);
        return;
    }
    pool.parallelFor(0, m, blockM,
                     [&](std::size_t i0, std::size_t i1) {
                         gemmTNRows(a, b, c, i0, i1);
                     });
}

namespace
{

/** gemmNT restricted to output rows [i_begin, i_end). */
void
gemmNTRows(const Matrix &a, const Matrix &b, Matrix &c,
           std::size_t i_begin, std::size_t i_end)
{
    const std::size_t k = a.cols(), n = b.rows();
    // C(i,j) = dot(A.row(i), B.row(j)). Tile i by blockM and j by
    // blockK so a block of B rows stays L1-resident across a block
    // of A rows — the critic-backward shapes (batch x joint) are
    // far larger than L1. Each dot product runs over the full k in
    // one ascending chain, exactly like the untiled loop, so tiling
    // does not perturb rounding. Both operands are dense gradients
    // and weights, so no sparsity branch pollutes the inner loop.
    for (std::size_t i0 = i_begin; i0 < i_end; i0 += blockM) {
        const std::size_t i1 = std::min(i0 + blockM, i_end);
        for (std::size_t j0 = 0; j0 < n; j0 += blockK) {
            const std::size_t j1 = std::min(j0 + blockK, n);
            for (std::size_t i = i0; i < i1; ++i) {
                const Real *MARLIN_RESTRICT arow = a.row(i);
                Real *MARLIN_RESTRICT crow = c.row(i);
                for (std::size_t j = j0; j < j1; ++j) {
                    const Real *MARLIN_RESTRICT brow = b.row(j);
                    Real acc = 0;
                    for (std::size_t kk = 0; kk < k; ++kk)
                        acc += arow[kk] * brow[kk];
                    crow[j] = acc;
                }
            }
        }
    }
}

} // namespace

void
gemmNT(const Matrix &a, const Matrix &b, Matrix &c)
{
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    MARLIN_ASSERT(b.cols() == k, "gemmNT inner dimension mismatch");
    c.resize(m, n);

    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, m, k, n)) {
        gemmNTRows(a, b, c, 0, m);
        return;
    }
    pool.parallelFor(0, m, blockM,
                     [&](std::size_t i0, std::size_t i1) {
                         gemmNTRows(a, b, c, i0, i1);
                     });
}

} // namespace marlin::numeric
