/**
 * @file
 * Dynamic micro-batcher: pending requests coalesce until either
 * batchMax requests are queued or the oldest request has waited
 * batchDeadlineUs, then one flush runs a single batched actor
 * forward per agent and hands the action rows back in arrival
 * order.
 *
 * Everything on the flush path is retained scratch — the flat
 * observation store, per-agent row plans and the input/output
 * matrices — so a warm flush performs no heap allocation and the
 * inference cost is one workspace-owned Mlp forward per agent with
 * a row count equal to that agent's share of the batch.
 */

#ifndef MARLIN_SERVE_BATCHER_HH
#define MARLIN_SERVE_BATCHER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "marlin/serve/policy.hh"

namespace marlin::serve
{

/** One queued inference request. */
struct PendingRequest
{
    std::uint64_t connId = 0;   ///< Owning connection.
    std::uint16_t agentId = 0;  ///< Policy to query.
    std::size_t obsOffset = 0;  ///< Into the flat obs store.
    std::uint64_t enqueueNs = 0; ///< For the latency histogram.
    /** Trace flow id linking this request's enqueue span to its
     *  response-write span (0 when tracing is off). */
    std::uint64_t traceId = 0;
};

/**
 * Collects requests and flushes them through a ServePolicy.
 * Single-threaded, like the server loop that owns it.
 */
class MicroBatcher
{
  public:
    /**
     * @param batch_max Flush as soon as this many are queued.
     * @param deadline_us Flush when the oldest request has waited
     *        this long (0 = flush on every service turn).
     */
    MicroBatcher(std::size_t batch_max, std::uint64_t deadline_us);

    /**
     * Queue one request. @p obs must hold the agent's obsDim floats
     * (validated by the caller against the policy); it may be
     * unaligned — bytes straight out of the wire buffer — and is
     * copied here.
     */
    void add(std::uint64_t conn_id, std::uint16_t agent_id,
             const void *obs, std::size_t count,
             std::uint64_t now_ns);

    std::size_t size() const { return pending.size(); }
    bool empty() const { return pending.empty(); }

    /** True when size() reached the batch-max watermark. */
    bool full() const { return pending.size() >= batchMax; }

    /** True when the oldest queued request has expired. */
    bool deadlineExpired(std::uint64_t now_ns) const;

    /**
     * Nanoseconds until the oldest request expires (0 when already
     * expired or the queue is empty).
     */
    std::uint64_t nsUntilDeadline(std::uint64_t now_ns) const;

    /**
     * Response sink: called once per queued request, in arrival
     * order, with that request's action row. @p trace_id is the
     * request's flow id (0 when tracing was off at enqueue) so the
     * writer can close the enqueue → write flow arrow.
     */
    using Sink = std::function<void(
        std::uint64_t conn_id, const Real *actions,
        std::size_t count, std::uint64_t enqueue_ns,
        std::uint64_t trace_id)>;

    /**
     * Run one batched forward per agent present in the queue and
     * emit every response through @p sink, then clear the queue.
     * Publishes serve.batch_size, the queue-wait histogram (enqueue
     * to flush start, per request) and the batch-inference
     * histogram (one forward pass, per flush) — the two halves of
     * the request latency the server's end-to-end histogram sums.
     */
    void flush(ServePolicy &policy, const Sink &sink,
               std::uint64_t now_ns);

  private:
    std::size_t batchMax;
    std::uint64_t deadlineNs;
    /** Per-process request trace ids; 0 is reserved for "none". */
    std::uint64_t nextTraceId = 1;

    std::vector<PendingRequest> pending;
    std::vector<Real> obsFlat; ///< Concatenated observations.

    // Flush scratch, retained across flushes (indexed by agent).
    std::vector<std::vector<std::size_t>> agentRows;
    std::vector<Matrix> inputs;
    std::vector<Matrix> outputs;
    /** Row of each pending request inside its agent's batch. */
    std::vector<std::size_t> rowInBatch;
};

} // namespace marlin::serve

#endif // MARLIN_SERVE_BATCHER_HH
