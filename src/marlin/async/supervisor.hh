/**
 * @file
 * Fault-tolerant supervision of the async actor-learner fleet.
 *
 * PR 6's runtime assumed every thread lives forever: a crashed actor
 * silently starved the learner and a wedged one hung the join. The
 * Supervisor owns the fleet's threads and watches them from the
 * orchestrating thread (which doubles as the watchdog): every worker
 * runs inside WorkerThread's exception trampoline and stamps a
 * Heartbeat each sweep, so the monitor loop can tell four states
 * apart — done, crashed (finished + failed), stalled (alive, not
 * beating) and healthy — and apply policy:
 *
 *  - crashed actor: reclaim its in-flight episode indices, flush its
 *    ring's staged records (join gives the happens-before edge that
 *    makes the successor-producer takeover safe, see
 *    transition_ring.hh), then restart the runner with its lane,
 *    RNG and sequence state preserved — bounded retries with
 *    exponential backoff — or, budget exhausted, degrade: the fleet
 *    continues with one fewer actor and healthy peers absorb the
 *    reclaimed episodes;
 *  - stalled actor: a watchdog trip is latched per stall episode
 *    (and cleared on recovery); past the degrade deadline the actor
 *    is aborted and force-retired — its lanes are not touched while
 *    the thread lives, it abandons them itself on wake;
 *  - crashed learner: unrecoverable (optimizer state of unknown
 *    integrity — the periodic checkpoint, written only between
 *    updates, is the recovery path). The run is stopped so actors
 *    exit, and no further checkpoint is written.
 *
 * Everything the supervisor does is counted in SupervisorStats and
 * mirrored to the obs registry, so a run that survived faults says
 * so in its telemetry instead of merely finishing.
 */

#ifndef MARLIN_ASYNC_SUPERVISOR_HH
#define MARLIN_ASYNC_SUPERVISOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "marlin/async/actor_runner.hh"
#include "marlin/async/learner_runner.hh"
#include "marlin/async/run_control.hh"
#include "marlin/base/fault_injector.hh"
#include "marlin/base/worker_thread.hh"
#include "marlin/replay/transition_ring.hh"

namespace marlin::async
{

/** Watchdog and restart policy, fixed for the run. */
struct SupervisorConfig
{
    /** An actor not beating for this long trips the watchdog.
     *  0 disables stall detection (crash detection stays on). */
    std::uint64_t watchdogDeadlineMs = 250;
    /** Stall length that degrades the actor; 0 = 4x the deadline. */
    std::uint64_t degradeAfterMs = 0;
    /** Restarts per actor before it is degraded instead. */
    std::size_t maxRestarts = 2;
    /** Backoff before the first restart; doubles per restart. */
    std::uint64_t restartBackoffMs = 1;
    /** Monitor poll period. */
    std::uint64_t pollMs = 2;
};

/**
 * Supervision outcome counters. Shared with the learner (which
 * feeds quarantined and reads all of them into telemetry), so
 * every field is an atomic.
 */
struct SupervisorStats
{
    std::atomic<std::uint64_t> restarts{0};
    std::atomic<std::uint64_t> degradations{0};
    std::atomic<std::uint64_t> watchdogTrips{0};
    std::atomic<std::uint64_t> quarantined{0};
    std::atomic<std::uint64_t> learnerFailures{0};
};

/**
 * Owns and supervises the fleet's threads. Usage: register the
 * learner and every actor, start(), then superviseUntilDone() on
 * the orchestrating thread — it returns with every thread joined.
 *
 * Single-threaded driver contract: addActor/setLearner/start/
 * superviseUntilDone are called from one thread, in that order.
 */
class Supervisor
{
  public:
    /**
     * @param injector Optional chaos source; its per-kind trip
     *        counts are mirrored to the obs registry at the end of
     *        the run ("fault.kill-actor", ...).
     */
    Supervisor(SupervisorConfig config, RunControl &control,
               base::FaultInjector *injector = nullptr);

    /** Register one actor (not owned). Call before start(). */
    void addActor(std::string name, ActorRunner *runner,
                  replay::TransitionRing *ring);

    /** Register the learner (not owned). Call before start(). */
    void setLearner(std::string name, LearnerRunner *runner);

    /** Spawn the learner thread, then every actor thread. */
    void start();

    /**
     * Invoked once per monitor tick (every pollMs) from the
     * watchdog thread — the designated idle thread of an async run.
     * The CLI mounts its --stats-port /metrics endpoint here, so
     * live scrapes are served without adding a thread and without
     * ever touching the actor/learner hot paths (scrape rendering
     * allocates; the hot threads are the ones under the zero-alloc
     * contract). Call before superviseUntilDone().
     */
    void setPollHook(std::function<void()> hook)
    {
        pollHook = std::move(hook);
    }

    /**
     * Monitor loop (the watchdog): poll heartbeats and thread
     * states, apply restart/degrade/halt policy, and return once
     * every thread has been joined. Obs counters
     * (supervisor.restarts, supervisor.degradations,
     * supervisor.watchdog_trips, supervisor.quarantined,
     * fault.<kind>) are published before returning.
     */
    void superviseUntilDone();

    SupervisorStats &stats() { return _stats; }
    const SupervisorStats &stats() const { return _stats; }

    /** True when the learner thread died with an exception. */
    bool learnerFailed() const { return _learnerFailed; }
    const std::string &learnerError() const { return _learnerError; }

    /** Actors given up on (degraded), crash or stall. */
    std::size_t actorsDegraded() const { return degradedActors; }

  private:
    struct ActorSlot
    {
        std::string name;
        ActorRunner *runner = nullptr;
        replay::TransitionRing *ring = nullptr;
        base::Heartbeat heartbeat;
        std::unique_ptr<base::WorkerThread> thread;
        std::size_t restarts = 0;
        std::uint64_t backoffMs = 1;
        bool degraded = false;
        bool tripped = false; ///< Stall latched until recovery.
        bool settled = false; ///< Joined for good, policy applied.
    };

    /** Crash policy for @p slot (its thread has finished). */
    void handleActorExit(ActorSlot &slot);

    /** Stall policy for @p slot (its thread is alive). */
    void checkActorStall(ActorSlot &slot);

    void publishObsCounters() const;

    SupervisorConfig config;
    RunControl &control;
    base::FaultInjector *injector;
    std::function<void()> pollHook;

    std::vector<std::unique_ptr<ActorSlot>> actors;
    std::string learnerName;
    LearnerRunner *learner = nullptr;
    base::Heartbeat learnerHeartbeat;
    std::unique_ptr<base::WorkerThread> learnerThread;
    bool learnerSettled = false;

    SupervisorStats _stats;
    bool _learnerFailed = false;
    std::string _learnerError;
    std::size_t degradedActors = 0;
};

} // namespace marlin::async

#endif // MARLIN_ASYNC_SUPERVISOR_HH
