/**
 * @file
 * Tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "marlin/base/args.hh"

namespace marlin
{
namespace
{

/** Helper building a mutable argv from literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : storage(std::move(args))
    {
        for (auto &s : storage)
            pointers.push_back(s.data());
    }

    int argc() const { return static_cast<int>(pointers.size()); }
    char **argv() { return pointers.data(); }

  private:
    std::vector<std::string> storage;
    std::vector<char *> pointers;
};

ArgParser
makeParser()
{
    ArgParser p("test");
    p.addOption("episodes", "100", "episode count");
    p.addOption("lr", "0.01", "learning rate");
    p.addOption("name", "default", "run name");
    p.addFlag("verbose", "chatty output");
    return p;
}

TEST(ArgParser, DefaultsApply)
{
    auto p = makeParser();
    Argv a({"test"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("episodes"), 100);
    EXPECT_EQ(p.getDouble("lr"), 0.01);
    EXPECT_EQ(p.get("name"), "default");
    EXPECT_FALSE(p.getFlag("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues)
{
    auto p = makeParser();
    Argv a({"test", "--episodes", "250", "--name", "run1"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("episodes"), 250);
    EXPECT_EQ(p.get("name"), "run1");
}

TEST(ArgParser, EqualsSyntax)
{
    auto p = makeParser();
    Argv a({"test", "--lr=0.5", "--episodes=7"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getDouble("lr"), 0.5);
    EXPECT_EQ(p.getInt("episodes"), 7);
}

TEST(ArgParser, FlagsToggle)
{
    auto p = makeParser();
    Argv a({"test", "--verbose"});
    p.parse(a.argc(), a.argv());
    EXPECT_TRUE(p.getFlag("verbose"));
}

TEST(ArgParser, PositionalsCollected)
{
    auto p = makeParser();
    Argv a({"test", "input.txt", "--episodes", "5", "out.bin"});
    p.parse(a.argc(), a.argv());
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "input.txt");
    EXPECT_EQ(p.positional()[1], "out.bin");
}

TEST(ArgParser, UsageMentionsAllOptions)
{
    auto p = makeParser();
    const std::string u = p.usage();
    EXPECT_NE(u.find("episodes"), std::string::npos);
    EXPECT_NE(u.find("verbose"), std::string::npos);
    EXPECT_NE(u.find("default: 100"), std::string::npos);
}

TEST(ArgParserDeath, UnknownOptionDies)
{
    auto p = makeParser();
    Argv a({"test", "--bogus", "1"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(ArgParserDeath, MissingValueDies)
{
    auto p = makeParser();
    Argv a({"test", "--episodes"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(1), "expects a value");
}

TEST(ArgParserDeath, MalformedIntDies)
{
    auto p = makeParser();
    Argv a({"test", "--episodes", "12abc"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT(p.getInt("episodes"), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(ArgParserDeath, MalformedDoubleDies)
{
    auto p = makeParser();
    Argv a({"test", "--lr", "fast"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT(p.getDouble("lr"), ::testing::ExitedWithCode(1),
                "expects a number");
}

} // namespace
} // namespace marlin
