#include "marlin/replay/replay_buffer.hh"

#include <cstring>

namespace marlin::replay
{

ReplayBuffer::ReplayBuffer(TransitionShape shape, BufferIndex capacity)
    : _shape(shape), _capacity(capacity)
{
    MARLIN_ASSERT(capacity > 0, "replay buffer capacity must be > 0");
    MARLIN_ASSERT(shape.obsDim > 0 && shape.actDim > 0,
                  "replay buffer needs nonzero obs/act dims");
    obsData.resize(capacity * shape.obsDim);
    actData.resize(capacity * shape.actDim);
    rewData.resize(capacity);
    nextObsData.resize(capacity * shape.obsDim);
    doneData.resize(capacity);
}

void
ReplayBuffer::add(const Real *obs, const Real *action, Real reward,
                  const Real *next_obs, bool done)
{
    std::memcpy(obsData.data() + pos * _shape.obsDim, obs,
                _shape.obsDim * sizeof(Real));
    std::memcpy(actData.data() + pos * _shape.actDim, action,
                _shape.actDim * sizeof(Real));
    rewData[pos] = reward;
    std::memcpy(nextObsData.data() + pos * _shape.obsDim, next_obs,
                _shape.obsDim * sizeof(Real));
    doneData[pos] = done ? Real(1) : Real(0);

    pos = (pos + 1) % _capacity;
    if (_size < _capacity)
        ++_size;
}

void
ReplayBuffer::add(const std::vector<Real> &obs,
                  const std::vector<Real> &action, Real reward,
                  const std::vector<Real> &next_obs, bool done)
{
    MARLIN_ASSERT(obs.size() == _shape.obsDim &&
                      next_obs.size() == _shape.obsDim,
                  "observation size mismatch on add");
    MARLIN_ASSERT(action.size() == _shape.actDim,
                  "action size mismatch on add");
    add(obs.data(), action.data(), reward, next_obs.data(), done);
}

TransitionView
ReplayBuffer::view(BufferIndex idx) const
{
    MARLIN_ASSERT(idx < _size, "transition index out of range");
    return {obsRow(idx), actRow(idx), rewData[idx], nextObsRow(idx),
            doneData[idx]};
}

std::size_t
ReplayBuffer::storageBytes() const
{
    return (obsData.size() + actData.size() + rewData.size() +
            nextObsData.size() + doneData.size()) *
           sizeof(Real);
}

MultiAgentBuffer::MultiAgentBuffer(std::vector<TransitionShape> shapes,
                                   BufferIndex capacity)
    : _capacity(capacity)
{
    MARLIN_ASSERT(!shapes.empty(),
                  "MultiAgentBuffer needs at least one agent");
    buffers.reserve(shapes.size());
    for (const TransitionShape &s : shapes)
        buffers.emplace_back(s, capacity);
}

BufferIndex
MultiAgentBuffer::size() const
{
    return buffers.front().size();
}

void
MultiAgentBuffer::add(const std::vector<std::vector<Real>> &obs,
                      const std::vector<std::vector<Real>> &actions,
                      const std::vector<Real> &rewards,
                      const std::vector<std::vector<Real>> &next_obs,
                      const std::vector<bool> &dones)
{
    const std::size_t n = buffers.size();
    MARLIN_ASSERT(obs.size() == n && actions.size() == n &&
                      rewards.size() == n && next_obs.size() == n &&
                      dones.size() == n,
                  "per-agent vectors must match agent count");
    for (std::size_t i = 0; i < n; ++i) {
        buffers[i].add(obs[i], actions[i], rewards[i], next_obs[i],
                       dones[i]);
    }
}

std::size_t
MultiAgentBuffer::storageBytes() const
{
    std::size_t total = 0;
    for (const ReplayBuffer &b : buffers)
        total += b.storageBytes();
    return total;
}

} // namespace marlin::replay
