#include "marlin/core/matd3.hh"

#include <algorithm>

#include "marlin/base/serialize.hh"
#include "marlin/numeric/ops.hh"

namespace marlin::core
{

using profile::Phase;
using profile::ScopedPhase;

Matd3Trainer::Matd3Trainer(std::vector<std::size_t> obs_dims,
                           std::size_t act_dim, TrainConfig config,
                           SamplerFactory sampler_factory)
    : CtdeTrainerBase(std::move(obs_dims), act_dim, std::move(config),
                      std::move(sampler_factory), true),
      criticSteps(numAgents(), 0)
{
}

std::vector<Matrix>
Matd3Trainer::targetNextActions(const std::vector<AgentBatch> &batches,
                                Rng &noise_rng)
{
    const bool discrete =
        _config.actionMode == ActionMode::Discrete;
    std::vector<Matrix> next_actions(batches.size());
    for (std::size_t j = 0; j < batches.size(); ++j) {
        Matrix out =
            nets[j]->targetActor.forward(batches[j].nextObs);
        // Target policy smoothing: clipped Gaussian noise on the
        // logits before the softmax relaxation (discrete), or on
        // the squashed action re-clamped to the action box
        // (continuous, as in TD3). Drawn from the updating agent's
        // private stream so the draw order never depends on how the
        // pool schedules the agent updates.
        for (std::size_t k = 0; k < out.size(); ++k) {
            Real noise = static_cast<Real>(
                noise_rng.gaussian(0.0, _config.targetNoiseStd));
            noise = std::clamp(noise, -_config.targetNoiseClip,
                               _config.targetNoiseClip);
            out.data()[k] += noise;
        }
        if (discrete) {
            numeric::softmaxRows(out);
        } else {
            numeric::clampInPlace(out, Real(-1), Real(1));
        }
        next_actions[j] = std::move(out);
    }
    return next_actions;
}

void
Matd3Trainer::updateAgent(std::size_t i,
                          const std::vector<AgentBatch> &batches,
                          const replay::IndexPlan &plan,
                          const std::vector<Matrix> &next_actions,
                          profile::PhaseTimer &timer,
                          UpdateStats &stats)
{
    AgentNetworks &net = *nets[i];
    Matrix y;
    {
        ScopedPhase sp(timer, Phase::TargetQ);
        std::vector<const Matrix *> scratch;
        const Matrix joint_next =
            buildJointNext(batches, next_actions, scratch);
        // Clipped double-Q: the minimum of the twin target critics
        // counters over-estimation bias.
        Matrix q1 = net.targetCritic.forward(joint_next);
        const Matrix q2 = net.targetCritic2->forward(joint_next);
        for (std::size_t r = 0; r < q1.rows(); ++r)
            q1(r, 0) = std::min(q1(r, 0), q2(r, 0));
        y = tdTarget(batches[i], q1);
    }
    {
        ScopedPhase sp(timer, Phase::QPLoss);
        ++criticSteps[i];
        const bool update_actor =
            (criticSteps[i] % std::max<std::size_t>(
                                  1, _config.policyDelay)) == 0;
        const bool healthy =
            criticActorStep(i, batches, plan, y, update_actor, stats);
        if (update_actor && healthy)
            net.softUpdateTargets(_config.tau);
    }
}

void
Matd3Trainer::saveExtraState(std::ostream &os) const
{
    writeVector(os, criticSteps);
}

void
Matd3Trainer::loadExtraState(std::istream &is)
{
    const std::vector<StepCount> steps = readVector<StepCount>(is);
    if (steps.size() != criticSteps.size()) {
        fatal("checkpoint has %zu policy-delay counters, trainer "
              "has %zu",
              steps.size(), criticSteps.size());
    }
    criticSteps = steps;
}

} // namespace marlin::core
