/**
 * @file
 * End-to-end tests of the async actor-learner runtime: a multi-actor
 * run completes every episode with exact ring accounting, the ring
 * counters surface in the obs registry, and the 1-actor
 * configuration trains with zero drops and zero sequence gaps.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "marlin/marlin.hh"

namespace marlin
{
namespace
{

constexpr std::size_t kAgents = 3;

std::vector<std::size_t>
agentDims()
{
    auto environment = env::makeCooperativeNavigationEnv(kAgents, 1);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    return dims;
}

core::TrainConfig
asyncTestConfig()
{
    core::TrainConfig c;
    c.batchSize = 32;
    c.bufferCapacity = 4096;
    c.warmupTransitions = 64;
    c.updateEvery = 25;
    c.hiddenDims = {16, 16};
    c.seed = 17;
    return c;
}

std::unique_ptr<core::CtdeTrainerBase>
makeMaddpg(const core::TrainConfig &config)
{
    auto environment = env::makeCooperativeNavigationEnv(kAgents, 1);
    return std::make_unique<core::MaddpgTrainer>(
        agentDims(), environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });
}

async::AsyncTrainResult
runAsync(std::size_t actors, std::size_t episodes,
         std::size_t ring_capacity = 4096)
{
    const core::TrainConfig config = asyncTestConfig();
    auto trainer = makeMaddpg(config);
    async::AsyncConfig acfg;
    acfg.actors = actors;
    acfg.ringCapacity = ring_capacity;
    async::AsyncTrainLoop loop(
        *trainer,
        [](std::uint64_t seed) {
            return env::makeCooperativeNavigationEnv(kAgents, seed);
        },
        [&config](std::uint64_t seed) {
            core::TrainConfig actor_config = config;
            actor_config.seed = seed;
            return makeMaddpg(actor_config);
        },
        config, acfg);
    return loop.run(episodes);
}

TEST(AsyncRuntime, MultiActorRunCompletesEveryEpisode)
{
    const std::size_t episodes = 16;
    const auto result = runAsync(2, episodes);

    ASSERT_EQ(result.episodeRewards.size(), episodes);
    for (Real r : result.episodeRewards)
        EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(result.envSteps, 0u);
    EXPECT_GT(result.updateCalls, 0u);
    EXPECT_FALSE(result.halted);
    // At least one actor picked up the initial weight snapshot (an
    // actor that loses the race for every episode claim may retire
    // without ever refreshing — legal on a loaded machine).
    EXPECT_GE(result.weightRefreshes, 1u);
    // Conservation: every generated transition is either pushed or
    // dropped, and the learner drains exactly the pushed ones.
    EXPECT_EQ(result.envSteps,
              result.ringPushed + result.ringDropped);
    EXPECT_EQ(result.drainedSteps, result.ringPushed);
    EXPECT_LE(result.ringSeqGaps, result.ringDropped);
}

TEST(AsyncRuntime, RingCountersSurfaceInObsRegistry)
{
    auto &registry = obs::Registry::instance();
    registry.resetAll();
    const auto result = runAsync(2, 8);

    EXPECT_EQ(registry.counter("async.ring.pushed").value(),
              result.ringPushed);
    EXPECT_EQ(registry.counter("async.ring.dropped").value(),
              result.ringDropped);
    EXPECT_EQ(registry.counter("async.ring.seq_gaps").value(),
              result.ringSeqGaps);
    // All rings fully drained after the join.
    EXPECT_EQ(registry.gauge("async.ring.depth").value(), 0.0);
    EXPECT_EQ(registry.gauge("async.actors").value(), 2.0);
}

TEST(AsyncRuntime, SingleActorAmpleRingNeverDrops)
{
    const std::size_t episodes = 12;
    const auto result = runAsync(1, episodes);

    ASSERT_EQ(result.episodeRewards.size(), episodes);
    EXPECT_EQ(result.ringDropped, 0u);
    EXPECT_EQ(result.ringSeqGaps, 0u);
    EXPECT_EQ(result.envSteps, result.ringPushed);
    EXPECT_EQ(result.drainedSteps, result.envSteps);
}

TEST(AsyncRuntime, TinyRingDropsAreCountedNotSilent)
{
    // A 4-record ring against a full-speed actor: drops are expected
    // and must reconcile exactly — nothing vanishes unaccounted.
    const auto result = runAsync(2, 8, /*ring_capacity=*/4);
    EXPECT_EQ(result.envSteps,
              result.ringPushed + result.ringDropped);
    EXPECT_EQ(result.drainedSteps, result.ringPushed);
    EXPECT_LE(result.ringSeqGaps, result.ringDropped);
    // Episode accounting is immune to drops: rewards are recorded by
    // the actors, not reconstructed from drained transitions.
    EXPECT_EQ(result.episodeRewards.size(), 8u);
}

TEST(AsyncRuntime, TransitLatencyObservedOncePerDrainedRecord)
{
    auto &registry = obs::Registry::instance();
    registry.resetAll();
    const auto result = runAsync(2, 8);

    // The learner observes ring transit (push stamp -> drain) only
    // on the insert path, so the histogram's population is exactly
    // the drained-record count — the attribution can't double-count
    // or skip.
    obs::Histogram &transit = registry.histogram(
        "async.ring.transit_us", {1.0}); // Bounds ignored: existing.
    EXPECT_EQ(transit.totalCount(), result.drainedSteps);
    EXPECT_GT(result.drainedSteps, 0u);
    // Ages are measured on one clock and forward in time.
    EXPECT_GE(transit.sum(), 0.0);
    // Staleness gauge was published and is a small non-negative lag
    // (actors adopt snapshots within a few updates on any machine).
    EXPECT_GE(registry.gauge("async.policy.staleness").value(), 0.0);
}

TEST(AsyncRuntime, RunsAreRepeatableInShape)
{
    // The async runtime is NOT bit-deterministic (that is the
    // lockstep loop's contract), but structural invariants must hold
    // run over run: episode count, conservation, finite scores.
    for (int i = 0; i < 2; ++i) {
        const auto result = runAsync(2, 6);
        EXPECT_EQ(result.episodeRewards.size(), 6u);
        EXPECT_EQ(result.envSteps,
                  result.ringPushed + result.ringDropped);
        EXPECT_TRUE(std::isfinite(result.finalScore));
    }
}

} // namespace
} // namespace marlin
