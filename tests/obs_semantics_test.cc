/**
 * @file
 * Golden observation-semantics tests: pin down the exact layout and
 * meaning of every observation segment against hand-placed worlds,
 * so any silent reordering (which would train fine but break
 * paper-comparability) fails loudly.
 */

#include <gtest/gtest.h>

#include "marlin/env/cooperative_navigation.hh"
#include "marlin/env/predator_prey.hh"

namespace marlin::env
{
namespace
{

TEST(ObsSemantics, PredatorObservationSegments)
{
    PredatorPreyConfig cfg;
    cfg.numPredators = 3; // +1 prey, 2 landmarks -> Box(16).
    PredatorPreyScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);

    // Hand-placed world.
    w.agents[0].pos = {0.1f, 0.2f};
    w.agents[0].vel = {0.5f, -0.5f};
    w.agents[1].pos = {0.4f, 0.2f};
    w.agents[2].pos = {-0.3f, -0.1f};
    w.agents[3].pos = {0.6f, 0.8f}; // Prey.
    w.agents[3].vel = {1.0f, -1.0f};
    w.landmarks[0].pos = {0.0f, 0.0f};
    w.landmarks[1].pos = {1.0f, 1.0f};

    const auto obs = scenario.observation(w, 0);
    ASSERT_EQ(obs.size(), 16u);
    std::size_t k = 0;
    // [0:2) self velocity.
    EXPECT_FLOAT_EQ(obs[k++], 0.5f);
    EXPECT_FLOAT_EQ(obs[k++], -0.5f);
    // [2:4) self position.
    EXPECT_FLOAT_EQ(obs[k++], 0.1f);
    EXPECT_FLOAT_EQ(obs[k++], 0.2f);
    // [4:8) landmarks relative.
    EXPECT_FLOAT_EQ(obs[k++], -0.1f);
    EXPECT_FLOAT_EQ(obs[k++], -0.2f);
    EXPECT_FLOAT_EQ(obs[k++], 0.9f);
    EXPECT_FLOAT_EQ(obs[k++], 0.8f);
    // [8:14) other agents relative (agents 1, 2, prey 3 in order).
    EXPECT_NEAR(obs[k++], 0.3f, 1e-6);
    EXPECT_FLOAT_EQ(obs[k++], 0.0f);
    EXPECT_FLOAT_EQ(obs[k++], -0.4f);
    EXPECT_NEAR(obs[k++], -0.3f, 1e-6);
    EXPECT_FLOAT_EQ(obs[k++], 0.5f);
    EXPECT_NEAR(obs[k++], 0.6f, 1e-6);
    // [14:16) prey velocity.
    EXPECT_FLOAT_EQ(obs[k++], 1.0f);
    EXPECT_FLOAT_EQ(obs[k++], -1.0f);
}

TEST(ObsSemantics, PreyObservationOmitsOwnVelocityChannel)
{
    PredatorPreyConfig cfg;
    cfg.numPredators = 3;
    PredatorPreyScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);
    Rng rng(1);
    scenario.resetWorld(w, rng);

    const auto obs = scenario.observation(w, 3);
    ASSERT_EQ(obs.size(), 14u); // Box(14): no prey-velocity block.
    // First four entries are self vel/pos.
    EXPECT_FLOAT_EQ(obs[0], w.agents[3].vel.x);
    EXPECT_FLOAT_EQ(obs[2], w.agents[3].pos.x);
}

TEST(ObsSemantics, CooperativeNavigationSegments)
{
    CooperativeNavigationConfig cfg;
    cfg.numAgents = 3;
    CooperativeNavigationScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);

    w.agents[0].pos = {0.0f, 0.0f};
    w.agents[0].vel = {0.1f, 0.2f};
    w.agents[1].pos = {0.5f, 0.5f};
    w.agents[2].pos = {-0.5f, 0.5f};
    w.landmarks[0].pos = {0.2f, 0.0f};
    w.landmarks[1].pos = {0.0f, 0.3f};
    w.landmarks[2].pos = {-0.2f, -0.3f};

    const auto obs = scenario.observation(w, 0);
    ASSERT_EQ(obs.size(), 18u);
    std::size_t k = 0;
    EXPECT_FLOAT_EQ(obs[k++], 0.1f); // self vel
    EXPECT_FLOAT_EQ(obs[k++], 0.2f);
    EXPECT_FLOAT_EQ(obs[k++], 0.0f); // self pos
    EXPECT_FLOAT_EQ(obs[k++], 0.0f);
    EXPECT_FLOAT_EQ(obs[k++], 0.2f); // landmark 0 rel
    EXPECT_FLOAT_EQ(obs[k++], 0.0f);
    EXPECT_FLOAT_EQ(obs[k++], 0.0f); // landmark 1 rel
    EXPECT_FLOAT_EQ(obs[k++], 0.3f);
    EXPECT_FLOAT_EQ(obs[k++], -0.2f); // landmark 2 rel
    EXPECT_FLOAT_EQ(obs[k++], -0.3f);
    EXPECT_FLOAT_EQ(obs[k++], 0.5f); // agent 1 rel
    EXPECT_FLOAT_EQ(obs[k++], 0.5f);
    EXPECT_FLOAT_EQ(obs[k++], -0.5f); // agent 2 rel
    EXPECT_FLOAT_EQ(obs[k++], 0.5f);
    // Communication slots are silent zeros.
    for (; k < 18; ++k)
        EXPECT_FLOAT_EQ(obs[k], 0.0f);
}

TEST(ObsSemantics, ObservationsAreTranslationCovariant)
{
    // Shifting the whole world leaves every *relative* segment
    // unchanged; only the absolute self-position slots move.
    CooperativeNavigationConfig cfg;
    cfg.numAgents = 3;
    CooperativeNavigationScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);
    Rng rng(2);
    scenario.resetWorld(w, rng);

    const auto before = scenario.observation(w, 1);
    const Vec2 shift{0.25f, -0.5f};
    for (auto &a : w.agents)
        a.pos += shift;
    for (auto &lm : w.landmarks)
        lm.pos += shift;
    const auto after = scenario.observation(w, 1);

    ASSERT_EQ(before.size(), after.size());
    for (std::size_t k = 0; k < before.size(); ++k) {
        if (k == 2) {
            EXPECT_NEAR(after[k], before[k] + shift.x, 1e-5);
        } else if (k == 3) {
            EXPECT_NEAR(after[k], before[k] + shift.y, 1e-5);
        } else {
            EXPECT_NEAR(after[k], before[k], 1e-5) << "slot " << k;
        }
    }
}

TEST(ObsSemantics, PaperScaleRosterDimensions)
{
    // The 24-agent predator-prey roster from Section II-B: agents
    // 25-32 are prey with Box(96), predators have Box(98).
    PredatorPreyConfig cfg;
    cfg.numPredators = 24;
    PredatorPreyScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);
    EXPECT_EQ(w.numAgents(), 32u);
    for (std::size_t i = 0; i < 24; ++i)
        EXPECT_EQ(scenario.observationDim(i), 98u) << i;
    for (std::size_t i = 24; i < 32; ++i)
        EXPECT_EQ(scenario.observationDim(i), 96u) << i;
}

} // namespace
} // namespace marlin::env
