#include "marlin/core/agent_networks.hh"

#include "marlin/base/logging.hh"

namespace marlin::core
{

namespace
{

nn::MlpConfig
actorConfig(const AgentNetworksConfig &c)
{
    nn::MlpConfig m;
    m.inputDim = c.obsDim;
    m.hiddenDims = c.hiddenDims;
    m.outputDim = c.actDim;
    m.outputActivation = c.actorOutput;
    return m;
}

nn::MlpConfig
criticConfig(const AgentNetworksConfig &c)
{
    nn::MlpConfig m;
    m.inputDim = c.jointDim;
    m.hiddenDims = c.hiddenDims;
    m.outputDim = 1;
    return m;
}

nn::AdamConfig
adamConfig(Real lr)
{
    nn::AdamConfig a;
    a.lr = lr;
    return a;
}

std::vector<nn::Param *>
criticParams(Mlp &critic, std::unique_ptr<Mlp> &critic2)
{
    std::vector<nn::Param *> params = critic.params();
    if (critic2) {
        for (nn::Param *p : critic2->params())
            params.push_back(p);
    }
    return params;
}

} // namespace

AgentNetworks::AgentNetworks(const AgentNetworksConfig &config,
                             Rng &rng)
    : actor(actorConfig(config), rng),
      critic(criticConfig(config), rng),
      targetActor(actorConfig(config), rng),
      targetCritic(criticConfig(config), rng),
      critic2(config.twinCritic
                  ? std::make_unique<Mlp>(criticConfig(config), rng)
                  : nullptr),
      targetCritic2(config.twinCritic
                        ? std::make_unique<Mlp>(criticConfig(config),
                                                rng)
                        : nullptr),
      actorOpt(actor.params(), adamConfig(config.lr)),
      criticOpt(criticParams(critic, critic2), adamConfig(config.lr))
{
    MARLIN_ASSERT(config.obsDim > 0 && config.actDim > 0 &&
                      config.jointDim > 0,
                  "AgentNetworks requires positive dimensions");
    // Targets start as exact copies for stable early training.
    targetActor.copyFrom(actor);
    targetCritic.copyFrom(critic);
    if (critic2)
        targetCritic2->copyFrom(*critic2);
}

void
AgentNetworks::softUpdateTargets(Real tau)
{
    targetActor.softUpdateFrom(actor, tau);
    targetCritic.softUpdateFrom(critic, tau);
    if (critic2)
        targetCritic2->softUpdateFrom(*critic2, tau);
}

std::size_t
AgentNetworks::paramCount() const
{
    std::size_t n = actor.paramCount() + critic.paramCount() +
                    targetActor.paramCount() +
                    targetCritic.paramCount();
    if (critic2)
        n += critic2->paramCount() + targetCritic2->paramCount();
    return n;
}

} // namespace marlin::core
