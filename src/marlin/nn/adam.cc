#include "marlin/nn/adam.hh"

#include <cmath>

#include "marlin/base/logging.hh"

namespace marlin::nn
{

AdamOptimizer::AdamOptimizer(std::vector<Param *> params,
                             AdamConfig config)
    : _config(config), bound(std::move(params))
{
    MARLIN_ASSERT(!bound.empty(), "AdamOptimizer with no parameters");
    m.reserve(bound.size());
    v.reserve(bound.size());
    for (Param *p : bound) {
        m.emplace_back(p->value.rows(), p->value.cols());
        v.emplace_back(p->value.rows(), p->value.cols());
    }
}

void
AdamOptimizer::step()
{
    if (_config.gradClipNorm > Real(0))
        clipGradNorm(_config.gradClipNorm);
    ++t;
    const Real b1t = Real(1) - std::pow(_config.beta1,
                                        static_cast<Real>(t));
    const Real b2t = Real(1) - std::pow(_config.beta2,
                                        static_cast<Real>(t));
    for (std::size_t i = 0; i < bound.size(); ++i) {
        Param &p = *bound[i];
        Real *w = p.value.data();
        Real *g = p.grad.data();
        Real *mi = m[i].data();
        Real *vi = v[i].data();
        const std::size_t n = p.value.size();
        for (std::size_t j = 0; j < n; ++j) {
            mi[j] = _config.beta1 * mi[j] +
                    (Real(1) - _config.beta1) * g[j];
            vi[j] = _config.beta2 * vi[j] +
                    (Real(1) - _config.beta2) * g[j] * g[j];
            const Real mhat = mi[j] / b1t;
            const Real vhat = vi[j] / b2t;
            w[j] -= _config.lr * mhat /
                    (std::sqrt(vhat) + _config.epsilon);
        }
        p.zeroGrad();
    }
}

void
AdamOptimizer::zeroGrad()
{
    for (Param *p : bound)
        p->zeroGrad();
}

void
AdamOptimizer::setState(std::vector<Matrix> m1, std::vector<Matrix> m2,
                        std::uint64_t step_count)
{
    MARLIN_ASSERT(m1.size() == bound.size() &&
                      m2.size() == bound.size(),
                  "Adam state count mismatch");
    for (std::size_t i = 0; i < bound.size(); ++i) {
        MARLIN_ASSERT(m1[i].rows() == bound[i]->value.rows() &&
                          m1[i].cols() == bound[i]->value.cols() &&
                          m2[i].rows() == bound[i]->value.rows() &&
                          m2[i].cols() == bound[i]->value.cols(),
                      "Adam state shape mismatch");
    }
    m = std::move(m1);
    v = std::move(m2);
    t = step_count;
}

Real
AdamOptimizer::clipGradNorm(Real max_norm)
{
    double total = 0.0;
    for (Param *p : bound) {
        const Real *g = p->grad.data();
        for (std::size_t j = 0; j < p->grad.size(); ++j)
            total += static_cast<double>(g[j]) * g[j];
    }
    const Real norm = static_cast<Real>(std::sqrt(total));
    if (norm > max_norm && norm > Real(0)) {
        const Real scale = max_norm / norm;
        for (Param *p : bound)
            p->grad *= scale;
    }
    return norm;
}

} // namespace marlin::nn
