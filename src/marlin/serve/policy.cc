#include "marlin/serve/policy.hh"

#include "marlin/base/logging.hh"
#include "marlin/core/maddpg.hh"

namespace marlin::serve
{

void
ServePolicy::adoptFrom(core::CtdeTrainerBase &trainer)
{
    const std::size_t n = trainer.numAgents();
    // Assign element-wise so an adopt over an existing snapshot of
    // the same architecture reuses the Mlps' storage.
    actors.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        actors[i] = trainer.networks(i).actor;
    obsDims = trainer.observationDims();
    _actDim = trainer.actionDim();
    ++ver;
}

void
ServePolicy::forward(std::size_t agent, const Matrix &obs,
                     Matrix &out)
{
    MARLIN_ASSERT(agent < actors.size(),
                  "serve forward on unknown agent");
    MARLIN_ASSERT(obs.cols() == obsDims[agent],
                  "serve forward obs dim mismatch");
    actors[agent].forward(obs, out);
}

} // namespace marlin::serve
