/**
 * @file
 * Entities of the multi-agent particle world: agents and landmarks.
 */

#ifndef MARLIN_ENV_ENTITY_HH
#define MARLIN_ENV_ENTITY_HH

#include <string>

#include "marlin/env/vec2.hh"

namespace marlin::env
{

/** Physical state shared by agents and landmarks. */
struct Entity
{
    std::string name;
    Vec2 pos;
    Vec2 vel;
    Real size = Real(0.05);  ///< Collision radius.
    Real mass = Real(1);
    bool movable = false;
    bool collide = true;
};

/** Controllable (or scripted) agent in the world. */
struct Agent : Entity
{
    /** Force applied this step from the selected discrete action. */
    Vec2 actionForce;
    /** Acceleration multiplier applied to action forces. */
    Real accel = Real(3);
    /** Hard speed cap; <= 0 means uncapped. */
    Real maxSpeed = Real(-1);
    /** True for environment-controlled agents (e.g. MPE prey). */
    bool scripted = false;
    /** Adversary flag (predator in predator-prey). */
    bool adversary = false;
};

/** Number of discrete actions: noop, +x, -x, +y, -y. */
inline constexpr int numDiscreteActions = 5;

/** Map a discrete action index to a unit force direction. */
inline Vec2
discreteActionDirection(int action)
{
    switch (action) {
      case 0:
        return {0, 0};
      case 1:
        return {1, 0};
      case 2:
        return {-1, 0};
      case 3:
        return {0, 1};
      case 4:
        return {0, -1};
      default:
        return {0, 0};
    }
}

} // namespace marlin::env

#endif // MARLIN_ENV_ENTITY_HH
