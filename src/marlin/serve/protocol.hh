/**
 * @file
 * Wire protocol of the policy-serving front end.
 *
 * A compact length-prefixed binary framing, little-endian on the
 * wire regardless of host order:
 *
 *   Request frame (12-byte header + payload)
 *     offset  size  field
 *     0       4     magic 0x4d524c51 ("MRLQ")
 *     4       2     protocol version (currently 1)
 *     6       2     agent id
 *     8       4     payload length in bytes (obs floats * 4)
 *     12      ...   observation floats (IEEE-754 binary32, LE)
 *
 *   Response frame (12-byte header + payload)
 *     offset  size  field
 *     0       4     magic 0x4d524c52 ("MRLR")
 *     4       2     protocol version
 *     6       1     status (Status below)
 *     7       1     reserved (0)
 *     8       4     payload length in bytes
 *     12      ...   action floats (empty unless status == Ok)
 *
 * TCP delivers a byte stream, not frames, so the decoder accepts
 * arbitrarily fragmented or coalesced input: bytes accumulate in a
 * retained buffer and complete frames are peeled off the front.
 * Framing violations (wrong magic or version, an oversized or
 * non-float-multiple length prefix) poison the stream — there is no
 * way to resynchronize a corrupt length-prefixed stream — so the
 * server answers them with one error response and closes that
 * connection only; semantic errors on a well-framed request (unknown
 * agent id, wrong observation size) are answered in-band and the
 * connection keeps serving.
 */

#ifndef MARLIN_SERVE_PROTOCOL_HH
#define MARLIN_SERVE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "marlin/base/types.hh"

namespace marlin::serve
{

/** Request frame magic ("MRLQ"). */
inline constexpr std::uint32_t requestMagic = 0x4d524c51;

/** Response frame magic ("MRLR"). */
inline constexpr std::uint32_t responseMagic = 0x4d524c52;

/** Wire protocol version this build speaks. */
inline constexpr std::uint16_t protocolVersion = 1;

/** Bytes in every request/response header. */
inline constexpr std::size_t headerBytes = 12;

/** Response status byte. */
enum class Status : std::uint8_t
{
    Ok = 0,        ///< Payload carries the action floats.
    BadAgent = 1,  ///< Agent id out of range for the policy.
    BadObsDim = 2, ///< Observation float count mismatch.
    BadFrame = 3,  ///< Framing violation; connection closes.
};

/** Stable lower-case name for a Status ("bad-agent"). */
const char *statusName(Status status);

/** One decoded request, viewing the decoder's buffer. */
struct RequestView
{
    std::uint16_t agentId = 0;
    /** Payload bytes (unaligned; copy floats out via memcpy). */
    const std::byte *payload = nullptr;
    std::size_t payloadBytes = 0;

    std::size_t
    obsCount() const
    {
        return payloadBytes / sizeof(Real);
    }

    /** memcpy the observation floats into @p dst (obsCount()). */
    void copyObs(Real *dst) const;
};

/** One decoded response (client side), viewing the buffer. */
struct ResponseView
{
    Status status = Status::Ok;
    const std::byte *payload = nullptr;
    std::size_t payloadBytes = 0;

    std::size_t
    actionCount() const
    {
        return payloadBytes / sizeof(Real);
    }

    void copyActions(Real *dst) const;
};

/** Append a request frame for @p agent to @p out. */
void encodeRequest(std::vector<std::byte> &out, std::uint16_t agent,
                   const Real *obs, std::size_t count);

/** Append a response frame to @p out. */
void encodeResponse(std::vector<std::byte> &out, Status status,
                    const Real *actions, std::size_t count);

/**
 * Incremental frame parser over a reassembly buffer. feed() appends
 * raw socket bytes; next() peels complete frames off the front.
 * Once next() reports an error the stream is poisoned and every
 * further call returns the same error.
 */
class FrameDecoder
{
  public:
    enum class Result
    {
        Frame,      ///< A complete frame was decoded.
        NeedMore,   ///< Partial header or payload; feed more bytes.
        BadMagic,   ///< Stream does not start with the magic.
        BadVersion, ///< Peer speaks a different protocol version.
        Oversized,  ///< Length prefix exceeds the configured cap.
        BadLength,  ///< Payload length not a multiple of float.
    };

    /** True when @p r is one of the poisoned-stream outcomes. */
    static bool isError(Result r);

    /** Stable name for a Result ("bad-magic"). */
    static const char *resultName(Result r);

    /**
     * @param expect_magic requestMagic on the server, responseMagic
     *        on the client.
     * @param max_payload_bytes Reject larger length prefixes.
     */
    FrameDecoder(std::uint32_t expect_magic,
                 std::size_t max_payload_bytes);

    /** Append @p n raw bytes from the socket. */
    void feed(const void *data, std::size_t n);

    /**
     * Decode the next frame into @p out. The view borrows the
     * internal buffer and stays valid until the next feed() or
     * next() call. Response fields (status) are only meaningful
     * when expecting responseMagic, request fields (agentId) when
     * expecting requestMagic.
     */
    Result next(RequestView &out);
    Result next(ResponseView &out);

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t pendingBytes() const { return buf.size() - off; }

    /** Drop all buffered bytes and clear any error (tests). */
    void reset();

  private:
    Result decodeHeader(std::uint16_t &field_a, std::uint16_t &field_b,
                        std::size_t &payload_bytes);
    void consume(std::size_t n);

    std::uint32_t expectMagic;
    std::size_t maxPayloadBytes;
    std::vector<std::byte> buf;
    std::size_t off = 0;
    Result poisoned = Result::NeedMore;
    bool havePoison = false;
};

} // namespace marlin::serve

#endif // MARLIN_SERVE_PROTOCOL_HH
