#include "marlin/nn/serialize.hh"

#include "marlin/base/serialize.hh"

namespace marlin::nn
{

void
saveMatrix(std::ostream &os, const Matrix &m)
{
    writePod<std::uint64_t>(os, m.rows());
    writePod<std::uint64_t>(os, m.cols());
    os.write(reinterpret_cast<const char *>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(Real)));
}

Matrix
loadMatrix(std::istream &is)
{
    const auto rows = readPod<std::uint64_t>(is);
    const auto cols = readPod<std::uint64_t>(is);
    Matrix m(rows, cols);
    is.read(reinterpret_cast<char *>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(Real)));
    if (!is)
        fatal("checkpoint truncated while reading %llux%llu matrix",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(cols));
    return m;
}

void
saveMlp(std::ostream &os, const Mlp &net)
{
    const auto params = net.params();
    writePod<std::uint64_t>(os, params.size());
    for (const Param *p : params)
        saveMatrix(os, p->value);
}

void
loadMlp(std::istream &is, Mlp &net)
{
    const auto count = readPod<std::uint64_t>(is);
    auto params = net.params();
    if (count != params.size())
        fatal("checkpoint has %llu tensors, network expects %zu",
              static_cast<unsigned long long>(count), params.size());
    for (Param *p : params) {
        Matrix value = loadMatrix(is);
        if (value.rows() != p->value.rows() ||
            value.cols() != p->value.cols()) {
            fatal("checkpoint tensor %zux%zu does not match network "
                  "tensor %zux%zu",
                  value.rows(), value.cols(), p->value.rows(),
                  p->value.cols());
        }
        p->value = std::move(value);
    }
}

void
saveAdam(std::ostream &os, const AdamOptimizer &opt)
{
    writePod<std::uint64_t>(os, opt.stepCount());
    writePod<std::uint64_t>(os, opt.moments1().size());
    for (const Matrix &m : opt.moments1())
        saveMatrix(os, m);
    for (const Matrix &v : opt.moments2())
        saveMatrix(os, v);
}

void
loadAdam(std::istream &is, AdamOptimizer &opt)
{
    const auto step_count = readPod<std::uint64_t>(is);
    const auto count = readPod<std::uint64_t>(is);
    if (count != opt.moments1().size())
        fatal("Adam checkpoint has %llu moment tensors, optimizer "
              "expects %zu",
              static_cast<unsigned long long>(count),
              opt.moments1().size());
    std::vector<Matrix> m1, m2;
    m1.reserve(count);
    m2.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        m1.push_back(loadMatrix(is));
    for (std::uint64_t i = 0; i < count; ++i)
        m2.push_back(loadMatrix(is));
    opt.setState(std::move(m1), std::move(m2), step_count);
}

} // namespace marlin::nn
