#include "marlin/async/learner_runner.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "marlin/async/flow_id.hh"
#include "marlin/async/supervisor.hh"
#include "marlin/base/instant.hh"
#include "marlin/base/logging.hh"
#include "marlin/base/string_utils.hh"
#include "marlin/core/checkpoint.hh"
#include "marlin/obs/trace.hh"

namespace marlin::async
{

using profile::Phase;
using profile::ScopedPhase;

LearnerRunner::LearnerRunner(
    core::CtdeTrainerBase &trainer_in,
    replay::ReplayStore &store_in,
    std::vector<replay::TransitionRing *> rings_in,
    const replay::JointTransitionLayout &layout_in,
    PolicySnapshot &snapshot_in, RunControl &control_in,
    const core::TrainConfig &config_in,
    LearnerConfig learner_config_in)
    : trainer(trainer_in), store(store_in),
      rings(std::move(rings_in)), layout(layout_in),
      snapshot(snapshot_in), control(control_in), config(config_in),
      learnerConfig(std::move(learner_config_in)),
      pushedCounter(
          obs::Registry::instance().counter("async.ring.pushed")),
      droppedCounter(
          obs::Registry::instance().counter("async.ring.dropped")),
      gapCounter(
          obs::Registry::instance().counter("async.ring.seq_gaps")),
      quarantinedCounter(
          obs::Registry::instance().counter("async.quarantined")),
      depthGauge(obs::Registry::instance().gauge("async.ring.depth")),
      transitHistogram(obs::Registry::instance().histogram(
          "async.ring.transit_us",
          {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
           100000})),
      stalenessGauge(
          obs::Registry::instance().gauge("async.policy.staleness"))
{
    MARLIN_ASSERT(!rings.empty(), "learner needs at least one ring");
}

void
LearnerRunner::setTelemetry(obs::TelemetryWriter *writer,
                            std::size_t every_steps)
{
    telemetry = writer;
    telemetryEvery = every_steps > 0 ? every_steps : 1;
    telemetryNextAt = telemetryEvery;
    telemetryLastNs.fill(0);
}

bool
LearnerRunner::recordPoisoned(const Real *rec) const
{
    for (std::size_t i = 0; i < layout.stride; ++i)
        if (!std::isfinite(rec[i]))
            return true;
    return false;
}

std::size_t
LearnerRunner::drainRings()
{
    std::size_t count = 0;
    for (std::size_t r = 0; r < rings.size(); ++r)
    {
        replay::TransitionRing *ring = rings[r];
        std::size_t fromRing = 0;
        const Real *rec = nullptr;
        std::uint64_t seq = 0;
        std::uint64_t pushTimeNs = 0;
        while (fromRing < learnerConfig.drainChunk &&
               (rec = ring->front(&seq, &pushTimeNs)) != nullptr)
        {
            // Quarantine at the funnel: a NaN/Inf record is popped
            // (so the ring advances and popped == drained +
            // quarantined holds) but never inserted — one poisoned
            // transition must not contaminate every future batch.
            if (recordPoisoned(rec))
            {
                ring->pop();
                ++quarantined;
                quarantinedCounter.add(1);
                if (supStats != nullptr)
                    supStats->quarantined.fetch_add(
                        1, std::memory_order_relaxed);
                ++fromRing;
                continue;
            }
            {
                ScopedPhase sp(_timer, Phase::BufferAdd);
                obs::TraceRing *tr = obs::TraceRing::active();
                const std::uint64_t drainStartNs =
                    tr != nullptr ? base::nowNsSinceStart() : 0;
                // Same contract as the lockstep loop's insertion:
                // the slot index is the storage cursor before the
                // add, and the trainer hears about it (sampler
                // hints) right after. appendRecord is the raw-record
                // fast path on every backend — a straight memcpy on
                // interleaved/sharded stores.
                const BufferIndex slot = store.writeCursor();
                store.appendRecord(layout, rec);
                trainer.onTransitionAdded(slot);
                ring->pop();
                // Transit age on the insert path only, so the
                // histogram's observation count equals drained
                // records exactly (tests pin this). Ring r is actor
                // r's ring — the loop builds them in actor order —
                // so (r, seq) reproduces the producer's flow id.
                const std::uint64_t nowNs = base::nowNsSinceStart();
                transitHistogram.observe(
                    static_cast<double>(nowNs - pushTimeNs) /
                    1000.0);
                if (tr != nullptr)
                {
                    tr->record("ring_drain", "async", drainStartNs,
                               nowNs - drainStartNs,
                               transitionFlowId(r, seq),
                               obs::FlowDir::In);
                }
            }
            ++fromRing;
            ++drained;
            // Honour --telemetry-every at drained-transition
            // granularity even though the learner pulls in chunks.
            if (telemetry != nullptr && drained >= telemetryNextAt)
            {
                refreshMetrics();
                maybeEmitTelemetry();
            }
        }
        count += fromRing;
    }
    return count;
}

void
LearnerRunner::refreshMetrics()
{
    std::uint64_t pushedTotal = 0;
    std::uint64_t droppedTotal = 0;
    std::uint64_t gapTotal = 0;
    std::size_t depthTotal = 0;
    for (const replay::TransitionRing *ring : rings)
    {
        pushedTotal += ring->pushedCount();
        droppedTotal += ring->droppedCount();
        gapTotal += ring->seqGapCount();
        depthTotal += ring->depth();
    }
    if (pushedTotal > lastPushed)
        pushedCounter.add(pushedTotal - lastPushed);
    if (droppedTotal > lastDropped)
        droppedCounter.add(droppedTotal - lastDropped);
    if (gapTotal > lastGaps)
        gapCounter.add(gapTotal - lastGaps);
    lastPushed = pushedTotal;
    lastDropped = droppedTotal;
    lastGaps = gapTotal;
    depthGauge.set(static_cast<double>(depthTotal));
    const std::uint64_t published = snapshot.version();
    const std::uint64_t adopted = snapshot.minAdoptedVersion();
    stalenessGauge.set(static_cast<double>(
        published > adopted ? published - adopted : 0));
}

void
LearnerRunner::maybeEmitTelemetry()
{
    if (telemetry == nullptr || drained < telemetryNextAt)
        return;
    telemetryNextAt = drained + telemetryEvery;

    obs::StepRecord rec;
    const std::uint64_t claimed =
        control.episodesClaimed.load(std::memory_order_relaxed);
    rec.episode = std::min(claimed, control.episodeTarget);
    rec.envStep = drained;
    rec.updateCalls = updates;
    rec.phaseNs.reserve(profile::numPhases);
    for (std::size_t p = 0; p < profile::numPhases; ++p)
    {
        const auto phase = static_cast<Phase>(p);
        const std::uint64_t total = _timer.nanoseconds(phase);
        rec.phaseNs.emplace_back(profile::phaseName(phase),
                                 total - telemetryLastNs[p]);
        telemetryLastNs[p] = total;
    }
    if (_haveStats)
    {
        rec.haveLosses = true;
        rec.criticLoss = static_cast<double>(stats.criticLoss);
        rec.actorLoss = static_cast<double>(stats.actorLoss);
        rec.meanAbsTd = static_cast<double>(stats.meanAbsTd);
        rec.criticGradNorm =
            static_cast<double>(stats.criticGradNorm);
        rec.actorGradNorm = static_cast<double>(stats.actorGradNorm);
    }
    rec.haveRing = true;
    rec.ringDropped = lastDropped;
    rec.ringSeqGaps = lastGaps;
    std::size_t depthTotal = 0;
    for (const replay::TransitionRing *ring : rings)
        depthTotal += ring->depth();
    rec.ringDepth = depthTotal;
    if (supStats != nullptr)
    {
        rec.haveSupervisor = true;
        rec.supRestarts =
            supStats->restarts.load(std::memory_order_relaxed);
        rec.supDegradations =
            supStats->degradations.load(std::memory_order_relaxed);
        rec.supWatchdogTrips =
            supStats->watchdogTrips.load(std::memory_order_relaxed);
        rec.supQuarantined =
            supStats->quarantined.load(std::memory_order_relaxed);
    }
    rec.haveAsyncLatency = true;
    rec.transitP50Us = transitHistogram.quantile(0.5);
    rec.transitP99Us = transitHistogram.quantile(0.99);
    const std::uint64_t published = snapshot.version();
    const std::uint64_t adopted = snapshot.minAdoptedVersion();
    rec.policyStaleness =
        published > adopted ? published - adopted : 0;
    telemetry->writeStep(rec);
}

void
LearnerRunner::maybeCheckpoint(bool force)
{
    if (learnerConfig.checkpointDir.empty())
        return;
    if (!force && (learnerConfig.checkpointEveryUpdates == 0 ||
                   updates % learnerConfig.checkpointEveryUpdates !=
                       0))
        return;

    // Async episodes complete out of order, so the resumable state
    // is the contiguous completed prefix: every episode below
    // progress.episodeIndex has a recorded reward. Episodes past a
    // gap are re-run on resume — throughput-equivalent, not
    // bit-identical (the lockstep loop keeps that contract).
    core::LoopProgress progress;
    {
        const std::lock_guard<std::mutex> lock(control.rewardMutex);
        std::vector<std::pair<std::uint64_t, Real>> pairs =
            control.episodeRewards;
        std::sort(pairs.begin(), pairs.end(),
                  [](const auto &x, const auto &y) {
                      return x.first < y.first;
                  });
        for (std::size_t i = 0; i < pairs.size(); ++i)
        {
            if (pairs[i].first != i)
                break;
            progress.episodeRewards.push_back(pairs[i].second);
        }
    }
    progress.episodeIndex = progress.episodeRewards.size();
    progress.envSteps = drained;
    progress.updateCalls = updates;
    progress.insertionsSinceUpdate = insertionsSinceUpdate;

    core::RunState state;
    state.trainer = &trainer;
    state.buffers = ckptBuffers;
    state.sharded = ckptSharded;
    state.progress = &progress;
    const core::CkptResult saved = core::saveRotating(
        learnerConfig.checkpointDir, state, nullptr);
    if (saved)
        ++checkpoints;
    else
        warn("async learner: checkpoint save failed (%s): %s",
             core::ckptErrorName(saved.error),
             saved.detail.c_str());
}

void
LearnerRunner::run()
{
    while (!control.stop.load(std::memory_order_acquire))
    {
        if (heartbeat != nullptr)
            heartbeat->beat();
        // Order matters: read the retirement flag BEFORE draining.
        // Actors publish their final batch before decrementing
        // activeActors, so "idle before the drain + nothing drained"
        // proves the rings are empty for good.
        const bool actorsIdle =
            control.activeActors.load(std::memory_order_acquire) ==
            0;
        const std::size_t drainedNow = drainRings();
        insertionsSinceUpdate += drainedNow;

        bool updated = false;
        const bool warm =
            store.size() >= config.warmupTransitions &&
            store.size() >=
                static_cast<BufferIndex>(config.batchSize);
        if (warm && insertionsSinceUpdate >=
                        static_cast<StepCount>(config.updateEvery))
        {
            insertionsSinceUpdate = 0;
            stats = trainer.update(store, _timer);
            _haveStats = true;
            ++updates;
            updated = true;
            if (updates % learnerConfig.snapshotEvery == 0)
            {
                ++snapshotOrdinal;
                if (injector != nullptr)
                {
                    const std::uint64_t delayMs =
                        injector->onSnapshotPublish(snapshotOrdinal);
                    if (delayMs > 0)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(delayMs));
                }
                snapshot.publish(trainer);
            }
            maybeCheckpoint(false);
            if (stats.nonFiniteCount > 0)
            {
                nonFinite += stats.nonFiniteCount;
                if (config.healthPolicy == core::HealthGuardPolicy::Halt)
                {
                    warn("async learner: non-finite loss/gradient "
                         "in update %llu: halting",
                         static_cast<unsigned long long>(updates));
                    _halted = true;
                    control.stop.store(true,
                                       std::memory_order_release);
                    break;
                }
            }
        }

        // The chaos kill fires at the END of the cycle that crosses
        // the drained threshold, after that cycle's update and
        // periodic checkpoint. A "kill after D drained" schedule is
        // therefore guaranteed to leave behind whatever checkpoints
        // the first D records earned — on a single-CPU box one drain
        // cycle can swallow hundreds of records, and firing before
        // the update would make "crash then resume" untestable.
        if (injector != nullptr && injector->onLearnerDrain(drained))
            throw base::InjectedFault(csprintf(
                "chaos: kill learner after %llu drained records",
                static_cast<unsigned long long>(drained)));

        if (drainedNow > 0 || updated)
        {
            refreshMetrics();
        }
        else if (actorsIdle)
        {
            break;
        }
        else
        {
            // Rings empty but actors alive: back off briefly rather
            // than spin on their cache lines.
            std::this_thread::sleep_for(
                std::chrono::microseconds(50));
        }
    }
    refreshMetrics();
    // Final snapshot on the clean paths only. A halted run has
    // poisoned numerics, and a crashed learner never reaches here —
    // in both cases the last periodic checkpoint is the one that
    // should survive.
    if (!_halted)
        maybeCheckpoint(true);
}

} // namespace marlin::async
