#include "marlin/memsim/hierarchy.hh"

#include "marlin/obs/metrics.hh"

namespace marlin::memsim
{

void
publishHierarchyMetrics(const HierarchyStats &stats,
                        const std::string &prefix)
{
    obs::Registry &reg = obs::Registry::instance();
    const auto set = [&reg, &prefix](const char *name,
                                     std::uint64_t v) {
        reg.gauge(prefix + "." + name)
            .set(static_cast<double>(v));
    };
    const auto cache = [&set](const char *level,
                              const CacheStats &c) {
        const std::string lv(level);
        set((lv + ".hits").c_str(), c.hits);
        set((lv + ".misses").c_str(), c.misses);
        set((lv + ".prefetch_fills").c_str(), c.prefetchFills);
        set((lv + ".prefetch_hits").c_str(), c.prefetchHits);
        set((lv + ".evictions").c_str(), c.evictions);
    };
    cache("l1", stats.l1);
    cache("l2", stats.l2);
    cache("l3", stats.l3);
    set("tlb.hits", stats.tlb.hits);
    set("tlb.misses", stats.tlb.misses);
    set("prefetcher.trained", stats.prefetcher.trained);
    set("prefetcher.issued", stats.prefetcher.issued);
    set("line_accesses", stats.lineAccesses);
    set("cycles", stats.cycles);
}

CacheHierarchy::CacheHierarchy(HierarchyConfig config)
    : _config(config), l1(config.l1), l2(config.l2), l3(config.l3),
      tlb(config.tlb), prefetcher(config.prefetcher)
{
}

void
CacheHierarchy::accessLine(std::uint64_t line_addr)
{
    ++lineAccesses;

    if (!tlb.access(line_addr))
        cycles += _config.tlbMissPenalty;

    cycles += _config.l1Latency;
    if (!l1.access(line_addr)) {
        cycles += _config.l2Latency;
        if (!l2.access(line_addr)) {
            cycles += _config.l3Latency;
            if (!l3.access(line_addr))
                cycles += _config.memLatency;
            l2.prefetchFill(line_addr); // Fill upward.
        }
        // The demand line lands in L1 via the miss in access();
        // nothing more to do for the fill path.
    }

    // Prefetcher trains on the demand line stream.
    const std::uint64_t line = line_addr / _config.l1.lineBytes;
    prefetcher.observe(line, prefetchScratch);
    for (std::uint64_t target : prefetchScratch) {
        const std::uint64_t target_addr =
            target * _config.l1.lineBytes;
        if (!l1.contains(target_addr)) {
            l1.prefetchFill(target_addr);
            l2.prefetchFill(target_addr);
            l3.prefetchFill(target_addr);
        }
    }
}

void
CacheHierarchy::access(std::uint64_t addr, std::uint32_t bytes)
{
    const std::uint64_t line_bytes = _config.l1.lineBytes;
    const std::uint64_t first = addr / line_bytes;
    const std::uint64_t last =
        (addr + (bytes ? bytes - 1 : 0)) / line_bytes;
    for (std::uint64_t line = first; line <= last; ++line)
        accessLine(line * line_bytes);
}

HierarchyStats
CacheHierarchy::stats() const
{
    HierarchyStats s;
    s.l1 = l1.stats();
    s.l2 = l2.stats();
    s.l3 = l3.stats();
    s.tlb = tlb.stats();
    s.prefetcher = prefetcher.stats();
    s.lineAccesses = lineAccesses;
    s.cycles = cycles;
    return s;
}

void
CacheHierarchy::reset()
{
    l1.reset();
    l2.reset();
    l3.reset();
    tlb.reset();
    prefetcher.reset();
    lineAccesses = 0;
    cycles = 0;
}

} // namespace marlin::memsim
