#include "marlin/replay/transition_ring.hh"

#include <algorithm>
#include <cstring>

#include "marlin/base/instant.hh"
#include "marlin/base/logging.hh"

namespace marlin::replay
{

JointTransitionLayout
JointTransitionLayout::fromShapes(const std::vector<TransitionShape> &shapes)
{
    JointTransitionLayout layout;
    layout.agents.reserve(shapes.size());
    std::size_t off = 0;
    for (const TransitionShape &s : shapes)
    {
        AgentBlock b;
        b.obsDim = s.obsDim;
        b.actDim = s.actDim;
        b.obs = off;
        off += s.obsDim;
        b.act = off;
        off += s.actDim;
        b.reward = off;
        off += 1;
        b.nextObs = off;
        off += s.obsDim;
        b.done = off;
        off += 1;
        layout.agents.push_back(b);
    }
    layout.stride = off;
    return layout;
}

void
packRecord(Real *dst, const JointTransitionLayout &layout,
           const std::vector<std::vector<Real>> &obs,
           const std::vector<std::vector<Real>> &actions,
           const std::vector<Real> &rewards,
           const std::vector<std::vector<Real>> &next_obs,
           const std::vector<bool> &dones)
{
    MARLIN_ASSERT(obs.size() == layout.agents.size(),
                  "packRecord: agent count mismatch");
    for (std::size_t i = 0; i < layout.agents.size(); ++i)
    {
        const auto &b = layout.agents[i];
        std::memcpy(dst + b.obs, obs[i].data(),
                    b.obsDim * sizeof(Real));
        std::memcpy(dst + b.act, actions[i].data(),
                    b.actDim * sizeof(Real));
        dst[b.reward] = rewards[i];
        std::memcpy(dst + b.nextObs, next_obs[i].data(),
                    b.obsDim * sizeof(Real));
        dst[b.done] = dones[i] ? Real(1) : Real(0);
    }
}

void
drainRecordInto(MultiAgentBuffer &buffers,
                const JointTransitionLayout &layout, const Real *rec)
{
    buffers.appendRecord(layout, rec);
}

TransitionRing::TransitionRing(std::size_t stride,
                               std::size_t capacity_hint)
    : idx(capacity_hint), _stride(stride),
      data(idx.capacity() * stride), seqs(idx.capacity()),
      pushNs(idx.capacity())
{
    MARLIN_ASSERT(stride > 0, "TransitionRing: zero stride");
}

Real *
TransitionRing::tryBeginPush(std::uint64_t seq) noexcept
{
    if (idx.producerFree(staged) == 0)
    {
        dropped.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    const std::size_t slot =
        static_cast<std::size_t>(idx.producerPos() + staged)
        & idx.mask();
    seqs[slot] = seq;
    // The transit clock starts when the producer claims the slot:
    // pack time is part of the age the learner measures at drain.
    pushNs[slot] = base::nowNsSinceStart();
    return data.data() + slot * _stride;
}

void
TransitionRing::commitPush() noexcept
{
    ++staged;
    pushed.fetch_add(1, std::memory_order_relaxed);
}

void
TransitionRing::publish() noexcept
{
    if (staged == 0)
        return;
    idx.publish(staged);
    staged = 0;
}

const Real *
TransitionRing::front(std::uint64_t *seq,
                      std::uint64_t *push_ns) noexcept
{
    if (idx.consumerAvailable() == 0)
        return nullptr;
    const std::size_t slot =
        static_cast<std::size_t>(idx.consumerPos()) & idx.mask();
    if (seq != nullptr)
        *seq = seqs[slot];
    if (push_ns != nullptr)
        *push_ns = pushNs[slot];
    return data.data() + slot * _stride;
}

void
TransitionRing::pop() noexcept
{
    const std::size_t slot =
        static_cast<std::size_t>(idx.consumerPos()) & idx.mask();
    const std::uint64_t seq = seqs[slot];
    if (haveExpected && seq > expectedSeq)
        seqGaps.fetch_add(seq - expectedSeq,
                          std::memory_order_relaxed);
    expectedSeq = seq + 1;
    haveExpected = true;
    idx.consume(1);
    popped.fetch_add(1, std::memory_order_relaxed);
}

} // namespace marlin::replay
