/**
 * @file
 * Scalar reference kernels and the runtime ISA dispatch.
 *
 * This TU is compiled with -ffp-contract=off and vectorization
 * disabled (see src/CMakeLists.txt): the scalar table must execute
 * literally the written IEEE op sequence so it (a) reproduces the
 * pre-kernel-layer numerics bit-for-bit and (b) measures true
 * scalar throughput when benches compare ISAs.
 */

#include "marlin/numeric/kernels.hh"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "marlin/base/cpu.hh"
#include "marlin/base/logging.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::numeric::kernels
{

namespace
{

void
axpyScalar(Real a, const Real *x, Real *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
addScalar(const Real *x, Real *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += x[i];
}

void
subScalar(const Real *x, Real *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] -= x[i];
}

void
scaleScalar(Real a, Real *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] *= a;
}

void
clampScalar(Real lo, Real hi, Real *y, std::size_t n)
{
    // Mirrors std::clamp: (v < lo) ? lo : (hi < v) ? hi : v, so NaN
    // passes through and -0 is preserved.
    for (std::size_t i = 0; i < n; ++i) {
        const Real v = y[i];
        y[i] = (v < lo) ? lo : (hi < v) ? hi : v;
    }
}

void
reluForwardScalar(const Real *x, Real *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] = (x[i] < Real(0)) ? Real(0) : x[i];
}

void
reluBackwardScalar(const Real *pre, Real *g, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (pre[i] <= Real(0))
            g[i] = Real(0);
}

void
adamStepScalar(const AdamParams &p, const Real *g, Real *w, Real *m,
               Real *v, std::size_t n)
{
    const Real omb1 = Real(1) - p.beta1;
    const Real omb2 = Real(1) - p.beta2;
    for (std::size_t j = 0; j < n; ++j) {
        m[j] = p.beta1 * m[j] + omb1 * g[j];
        v[j] = p.beta2 * v[j] + omb2 * g[j] * g[j];
        const Real mhat = m[j] / p.biasCorr1;
        const Real vhat = v[j] / p.biasCorr2;
        w[j] -= p.lr * mhat / (std::sqrt(vhat) + p.epsilon);
    }
}

void
softUpdateScalar(Real tau, const Real *s, Real *d, std::size_t n)
{
    const Real omt = Real(1) - tau;
    for (std::size_t j = 0; j < n; ++j)
        d[j] = tau * s[j] + omt * d[j];
}

void
copyScalar(const Real *s, Real *d, std::size_t n)
{
    std::memcpy(d, s, n * sizeof(Real));
}

void
gemmBlockScalar(const Real *a, std::size_t astride, const Real *b,
                std::size_t ldb, std::size_t kb, Real *c,
                std::size_t n, bool skip_zeros)
{
    for (std::size_t t = 0; t < kb; ++t) {
        const Real coef = a[t * astride];
        if (skip_zeros && coef == Real(0))
            continue;
        const Real *brow = b + t * ldb;
        for (std::size_t j = 0; j < n; ++j)
            c[j] += coef * brow[j];
    }
}

constexpr KernelTable scalarTable = {
    Isa::Scalar,     axpyScalar,       addScalar,
    subScalar,       scaleScalar,      clampScalar,
    reluForwardScalar, reluBackwardScalar, adamStepScalar,
    softUpdateScalar, copyScalar,      gemmBlockScalar,
};

} // namespace

} // namespace marlin::numeric::kernels

#if defined(MARLIN_HAVE_AVX2_TU)
namespace marlin::numeric::kernels
{
/** Defined in kernels_avx2.cc (built with -mavx2 -mfma). */
const KernelTable &avx2Table();
} // namespace marlin::numeric::kernels
#endif

namespace marlin::numeric::kernels
{

namespace
{

const KernelTable *
tableFor(Isa isa)
{
#if defined(MARLIN_HAVE_AVX2_TU)
    if (isa == Isa::Avx2)
        return &avx2Table();
#endif
    return isa == Isa::Scalar ? &scalarTable : nullptr;
}

std::atomic<const KernelTable *> currentTable{nullptr};

/**
 * Counting shim. When enabled, currentTable points at countingTable
 * (below), whose entries bump per-kernel call/element counters and
 * forward to the real ISA table held in underlyingTable. When
 * disabled — the default — currentTable points straight at the real
 * table and none of this code runs, so the detached-sink kernel path
 * is byte-for-byte the uninstrumented dispatch.
 */
std::atomic<const KernelTable *> underlyingTable{nullptr};
std::atomic<bool> countingOn{false};

const KernelTable &
real()
{
    return *underlyingTable.load(std::memory_order_relaxed);
}

/** Registers kernels.<name>.{calls,elems} once per wrapper. */
#define MARLIN_KERNEL_COUNT(kernel, nelems)                            \
    do {                                                               \
        static obs::Counter &calls_ =                                  \
            obs::Registry::instance().counter("kernels." kernel        \
                                              ".calls");               \
        static obs::Counter &elems_ =                                  \
            obs::Registry::instance().counter("kernels." kernel        \
                                              ".elems");               \
        calls_.add();                                                  \
        elems_.add(nelems);                                            \
    } while (0)

void
axpyCounting(Real a, const Real *x, Real *y, std::size_t n)
{
    MARLIN_KERNEL_COUNT("axpy", n);
    real().axpy(a, x, y, n);
}

void
addCounting(const Real *x, Real *y, std::size_t n)
{
    MARLIN_KERNEL_COUNT("add", n);
    real().add(x, y, n);
}

void
subCounting(const Real *x, Real *y, std::size_t n)
{
    MARLIN_KERNEL_COUNT("sub", n);
    real().sub(x, y, n);
}

void
scaleCounting(Real a, Real *y, std::size_t n)
{
    MARLIN_KERNEL_COUNT("scale", n);
    real().scale(a, y, n);
}

void
clampCounting(Real lo, Real hi, Real *y, std::size_t n)
{
    MARLIN_KERNEL_COUNT("clamp", n);
    real().clamp(lo, hi, y, n);
}

void
reluForwardCounting(const Real *x, Real *y, std::size_t n)
{
    MARLIN_KERNEL_COUNT("relu_forward", n);
    real().reluForward(x, y, n);
}

void
reluBackwardCounting(const Real *pre, Real *g, std::size_t n)
{
    MARLIN_KERNEL_COUNT("relu_backward", n);
    real().reluBackward(pre, g, n);
}

void
adamStepCounting(const AdamParams &p, const Real *g, Real *w, Real *m,
                 Real *v, std::size_t n)
{
    MARLIN_KERNEL_COUNT("adam_step", n);
    real().adamStep(p, g, w, m, v, n);
}

void
softUpdateCounting(Real tau, const Real *s, Real *d, std::size_t n)
{
    MARLIN_KERNEL_COUNT("soft_update", n);
    real().softUpdate(tau, s, d, n);
}

void
copyCounting(const Real *s, Real *d, std::size_t n)
{
    MARLIN_KERNEL_COUNT("copy", n);
    real().copy(s, d, n);
}

void
gemmBlockCounting(const Real *a, std::size_t astride, const Real *b,
                  std::size_t ldb, std::size_t kb, Real *c,
                  std::size_t n, bool skip_zeros)
{
    MARLIN_KERNEL_COUNT("gemm_block", kb * n);
    real().gemmBlock(a, astride, b, ldb, kb, c, n, skip_zeros);
}

#undef MARLIN_KERNEL_COUNT

/** isa mirrors the underlying table; rewritten on every install. */
KernelTable countingTable = {
    Isa::Scalar,        axpyCounting,        addCounting,
    subCounting,        scaleCounting,       clampCounting,
    reluForwardCounting, reluBackwardCounting, adamStepCounting,
    softUpdateCounting, copyCounting,        gemmBlockCounting,
};

/** 0 = scalar, 1 = avx2; lets telemetry record the dispatch. */
void
publishIsaGauge(Isa isa)
{
    static obs::Gauge &gauge =
        obs::Registry::instance().gauge("kernels.active_isa");
    gauge.set(static_cast<double>(static_cast<int>(isa)));
}

/** Best ISA the binary carries and the CPU can run. */
Isa
bestIsa()
{
    return isaAvailable(Isa::Avx2) ? Isa::Avx2 : Isa::Scalar;
}

const KernelTable *
resolveStartupTable()
{
    const char *env = std::getenv("MARLIN_ISA");
    if (env == nullptr || *env == '\0')
        return tableFor(bestIsa());
    const std::optional<Isa> isa = isaFromString(env);
    if (!isa.has_value())
        fatal("MARLIN_ISA='%s' is not 'scalar' or 'avx2'", env);
    if (!isaAvailable(*isa))
        fatal("MARLIN_ISA=%s requested but this build/CPU cannot "
              "run it",
              env);
    return tableFor(*isa);
}

} // namespace

const KernelTable &
active()
{
    const KernelTable *table =
        currentTable.load(std::memory_order_acquire);
    if (MARLIN_LIKELY(table != nullptr))
        return *table;
    // Magic-static so concurrent first calls resolve exactly once.
    static const KernelTable *resolved = [] {
        const KernelTable *t = resolveStartupTable();
        underlyingTable.store(t, std::memory_order_release);
        publishIsaGauge(t->isa);
        currentTable.store(t, std::memory_order_release);
        return t;
    }();
    return *resolved;
}

Isa
activeIsa()
{
    return active().isa;
}

const char *
isaName(Isa isa)
{
    return isa == Isa::Avx2 ? "avx2" : "scalar";
}

bool
isaAvailable(Isa isa)
{
    if (isa == Isa::Scalar)
        return true;
#if defined(MARLIN_HAVE_AVX2_TU)
    return base::cpuSupportsAvx2();
#else
    return false;
#endif
}

std::optional<Isa>
isaFromString(const std::string &name)
{
    if (name == "scalar")
        return Isa::Scalar;
    if (name == "avx2")
        return Isa::Avx2;
    return std::nullopt;
}

void
setIsa(Isa isa)
{
    if (!isaAvailable(isa))
        fatal("ISA '%s' is not available in this build/CPU",
              isaName(isa));
    const KernelTable *table = tableFor(isa);
    underlyingTable.store(table, std::memory_order_release);
    publishIsaGauge(isa);
    if (countingOn.load(std::memory_order_relaxed)) {
        countingTable.isa = isa;
        currentTable.store(&countingTable,
                           std::memory_order_release);
    } else {
        currentTable.store(table, std::memory_order_release);
    }
}

void
setCounting(bool enabled)
{
    // Resolve first so underlyingTable is valid before the shim can
    // be entered.
    const KernelTable &resolved = active();
    countingOn.store(enabled, std::memory_order_relaxed);
    if (enabled) {
        countingTable.isa = resolved.isa;
        currentTable.store(&countingTable,
                           std::memory_order_release);
    } else {
        currentTable.store(
            underlyingTable.load(std::memory_order_acquire),
            std::memory_order_release);
    }
}

bool
countingEnabled()
{
    return countingOn.load(std::memory_order_relaxed);
}

} // namespace marlin::numeric::kernels
