/**
 * @file
 * Crash-safe run checkpointing.
 *
 * Version 1 (legacy, still readable) stored only the trainer
 * networks and Adam state. Version 2 snapshots the complete run —
 * networks, trainer runtime (RNG streams, noise processes, sampler
 * state, update counters), replay buffers, the interleaved store,
 * the environment RNG and the loop progress — as a sequence of
 * CRC-guarded sections, so a run killed at an arbitrary step resumes
 * bit-identically from the last episode boundary.
 *
 * File layout (version 2):
 *
 *   [u32 magic "MRLC"][u32 version]
 *   repeated: [u32 tag][u64 payload_len][payload][u32 crc32(payload)]
 *
 * Writers emit whole files through a write-to-temp + flush + rename
 * sequence and rotate latest -> previous, so at any kill point one
 * complete checkpoint survives on disk. Readers return CkptResult
 * instead of aborting: truncation, bit rot and architecture
 * mismatches are ordinary recoverable outcomes, and resumeLatest()
 * falls back from latest to previous on its own.
 */

#ifndef MARLIN_CORE_CHECKPOINT_HH
#define MARLIN_CORE_CHECKPOINT_HH

#include <iostream>
#include <string>

#include "marlin/base/fault_injector.hh"
#include "marlin/core/maddpg.hh"
#include "marlin/env/environment.hh"

namespace marlin::replay
{
class ShardedStore;
}

namespace marlin::core
{

/** Magic tag of MARLin trainer checkpoints ("MRLC"). */
inline constexpr std::uint32_t checkpointMagic = 0x4d524c43;

/** Current checkpoint format version (sectioned, CRC-guarded). */
inline constexpr std::uint32_t checkpointVersion = 2;

/** Networks-only format written by saveTrainer (still readable). */
inline constexpr std::uint32_t checkpointVersionLegacy = 1;

/** How a checkpoint load can fail; None means success. */
enum class CkptError
{
    None,           ///< Loaded successfully.
    NotFound,       ///< No checkpoint file exists.
    IoError,        ///< Open/read/write syscall failure.
    Truncated,      ///< File ends mid-header or mid-section.
    BadMagic,       ///< Not a MARLin checkpoint.
    BadVersion,     ///< Written by a newer format than we read.
    CrcMismatch,    ///< A section's payload fails its CRC footer.
    MissingSection, ///< A section the caller requested is absent.
    AlgoMismatch,   ///< Written by a different algorithm (e.g. matd3).
    ShapeMismatch,  ///< Agent count / dims / capacity disagree.
};

/** Stable lower-case name for a CkptError ("crc-mismatch"). */
const char *ckptErrorName(CkptError error);

/** Outcome of a checkpoint load (or failure-capable save). */
struct CkptResult
{
    CkptError error = CkptError::None;
    /** Format version actually read (0 until the header parsed). */
    std::uint32_t version = 0;
    /** Human-readable context ("section RPLY crc mismatch"). */
    std::string detail;
    /** File the outcome refers to (set by the file-level API). */
    std::string path;

    explicit operator bool() const { return error == CkptError::None; }

    static CkptResult
    ok(std::uint32_t version)
    {
        CkptResult r;
        r.version = version;
        return r;
    }

    static CkptResult
    fail(CkptError error, std::string detail)
    {
        CkptResult r;
        r.error = error;
        r.detail = std::move(detail);
        return r;
    }
};

/** TrainLoop progress captured in the LOOP section. */
struct LoopProgress
{
    std::uint64_t episodeIndex = 0;
    std::uint64_t insertionsSinceUpdate = 0;
    std::uint64_t envSteps = 0;
    std::uint64_t updateCalls = 0;
    /** Per-episode mean returns accumulated so far. */
    std::vector<Real> episodeRewards;
};

/**
 * Names everything a full-state checkpoint covers. The trainer is
 * mandatory; every other member may be null, in which case its
 * section is neither written on save nor demanded on load. Loading
 * a version-1 file restores the networks only and leaves the rest
 * untouched (CkptResult::version tells the caller which happened).
 */
struct RunState
{
    CtdeTrainerBase *trainer = nullptr;
    replay::MultiAgentBuffer *buffers = nullptr;
    replay::InterleavedReplayStore *store = nullptr;
    /** Sharded/out-of-core engine (SHRD section; PR-10). */
    replay::ShardedStore *sharded = nullptr;
    env::Environment *environment = nullptr;
    LoopProgress *progress = nullptr;
};

/** Serialize a version-2 checkpoint of @p state to a stream. */
void saveRun(std::ostream &os, const RunState &state);

/**
 * Restore a checkpoint (version 1 or 2) into @p state. All sections
 * are CRC- and shape-validated before anything is mutated, so a
 * failed load leaves @p state exactly as it was.
 */
CkptResult loadRun(std::istream &is, const RunState &state);

/**
 * Atomically write a version-2 checkpoint file: serialize to
 * "<path>.tmp", flush + fsync, then rename over @p path. A crash at
 * any point leaves either the old file or the new one, never a
 * truncated hybrid. @p injector (optional) makes the write fail on
 * demand for crash testing.
 */
CkptResult saveRunFile(const std::string &path, const RunState &state,
                       base::FaultInjector *injector = nullptr);

/** Read and restore a checkpoint file. */
CkptResult loadRunFile(const std::string &path,
                       const RunState &state);

/** "<dir>/latest.ckpt" — the rotation's newest complete snapshot. */
std::string latestCheckpointPath(const std::string &dir);

/** "<dir>/previous.ckpt" — the snapshot before that. */
std::string previousCheckpointPath(const std::string &dir);

/**
 * Checkpoint @p state into @p dir with rotation: the old latest
 * becomes previous, the new snapshot becomes latest. Keeping two
 * generations means a checkpoint that lands corrupt (or a crash
 * mid-rotation) still leaves a loadable file behind.
 */
CkptResult saveRotating(const std::string &dir, const RunState &state,
                        base::FaultInjector *injector = nullptr);

/**
 * Resume from @p dir: try latest.ckpt, and on any failure warn and
 * fall back to previous.ckpt. NotFound when neither file exists.
 */
CkptResult resumeLatest(const std::string &dir,
                        const RunState &state);

/**
 * Legacy networks-only API (version-1 files), kept for callers that
 * only move weights between runs. Fatal on mismatch.
 */
void saveTrainer(std::ostream &os, CtdeTrainerBase &trainer);
void loadTrainer(std::istream &is, CtdeTrainerBase &trainer);
void saveTrainerFile(const std::string &path,
                     CtdeTrainerBase &trainer);
void loadTrainerFile(const std::string &path,
                     CtdeTrainerBase &trainer);

} // namespace marlin::core

#endif // MARLIN_CORE_CHECKPOINT_HH
