#!/usr/bin/env python3
"""Validate a MARLin run-telemetry JSONL file (--telemetry output).

Checks the schema contract that downstream analysis relies on:

  * every line parses as a standalone JSON object (crash-safe JSONL);
  * the first record is a header carrying the schema version, a
    non-empty build commit and a string->string meta map;
  * every step record carries monotonically non-decreasing
    episode/env_step counters, a phase_ns map of non-negative integer
    deltas, and a metrics snapshot whose entries are well-formed
    (counters carry counts, gauges values, histograms bucket arrays
    with ascending bounds ending in "+Inf");
  * step records from the async runtime (schema v2) carry ring
    accounting: ring_depth plus monotonically non-decreasing
    ring_dropped / ring_seq_gaps totals, all non-negative integers
    (the three fields travel together or not at all);
  * supervised async runs (schema v3) additionally carry supervision
    accounting: sup_restarts / sup_degradations / sup_watchdog_trips
    / sup_quarantined, all non-negative integers travelling together
    or not at all, with sup_restarts and sup_quarantined
    monotonically non-decreasing;
  * async runs (schema v4) additionally carry cross-tier latency
    attribution: transit_p50_us / transit_p99_us (non-negative
    numbers, p50 <= p99) and policy_staleness (non-negative integer),
    travelling together or not at all;
  * the last record is a summary with a numeric results map.

Usage: check_telemetry_jsonl.py FILE [--min-steps N]

Exit code 0 means the file honours the schema; any violation prints
a diagnostic and exits 1, so CI can gate on it.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 4

RING_KEYS = ("ring_depth", "ring_dropped", "ring_seq_gaps")

SUP_KEYS = ("sup_restarts", "sup_degradations", "sup_watchdog_trips",
            "sup_quarantined")

LATENCY_KEYS = ("transit_p50_us", "transit_p99_us",
                "policy_staleness")


def fail(msg: str) -> None:
    print(f"check_telemetry_jsonl: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics(metrics, where: str) -> None:
    if not isinstance(metrics, dict):
        fail(f"{where}: metrics is not an object")
    for name, m in metrics.items():
        kind = m.get("kind")
        if kind == "counter":
            if not isinstance(m.get("count"), int) or m["count"] < 0:
                fail(f"{where}: counter {name!r} has a bad count")
        elif kind == "gauge":
            if not isinstance(m.get("value"), (int, float)):
                fail(f"{where}: gauge {name!r} has a bad value")
        elif kind == "histogram":
            buckets = m.get("buckets")
            if not isinstance(buckets, list) or not buckets:
                fail(f"{where}: histogram {name!r} has no buckets")
            if buckets[-1][0] != "+Inf":
                fail(f"{where}: histogram {name!r} lacks the +Inf "
                     "overflow bucket")
            bounds = [b[0] for b in buckets[:-1]]
            if bounds != sorted(bounds):
                fail(f"{where}: histogram {name!r} bounds are not "
                     "ascending")
        else:
            fail(f"{where}: metric {name!r} has unknown kind {kind!r}")


def check_ring(rec, where: str, prev_ring) -> tuple:
    """Validate the optional (all-or-nothing) ring accounting."""
    present = [k for k in RING_KEYS if k in rec]
    if not present:
        return prev_ring
    if len(present) != len(RING_KEYS):
        missing = set(RING_KEYS) - set(present)
        fail(f"{where}: partial ring accounting (missing "
             f"{sorted(missing)})")
    for key in RING_KEYS:
        if not isinstance(rec[key], int) or rec[key] < 0:
            fail(f"{where}: {key!r} is not a non-negative integer")
    ring = (rec["ring_dropped"], rec["ring_seq_gaps"])
    if prev_ring is not None and ring < prev_ring:
        fail(f"{where}: ring totals went backwards: "
             f"{ring} after {prev_ring}")
    return ring


def check_supervisor(rec, where: str, prev_sup) -> tuple:
    """Validate the optional (all-or-nothing) supervision block."""
    present = [k for k in SUP_KEYS if k in rec]
    if not present:
        return prev_sup
    if len(present) != len(SUP_KEYS):
        missing = set(SUP_KEYS) - set(present)
        fail(f"{where}: partial supervision accounting (missing "
             f"{sorted(missing)})")
    for key in SUP_KEYS:
        if not isinstance(rec[key], int) or rec[key] < 0:
            fail(f"{where}: {key!r} is not a non-negative integer")
    sup = (rec["sup_restarts"], rec["sup_quarantined"])
    if prev_sup is not None and sup < prev_sup:
        fail(f"{where}: supervision totals went backwards: "
             f"{sup} after {prev_sup}")
    return sup


def check_latency(rec, where: str) -> None:
    """Validate the optional (all-or-nothing) latency attribution."""
    present = [k for k in LATENCY_KEYS if k in rec]
    if not present:
        return
    if len(present) != len(LATENCY_KEYS):
        missing = set(LATENCY_KEYS) - set(present)
        fail(f"{where}: partial latency attribution (missing "
             f"{sorted(missing)})")
    for key in ("transit_p50_us", "transit_p99_us"):
        v = rec[key]
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"{where}: {key!r} is not a non-negative number")
    if rec["transit_p50_us"] > rec["transit_p99_us"]:
        fail(f"{where}: transit_p50_us > transit_p99_us")
    staleness = rec["policy_staleness"]
    if not isinstance(staleness, int) or staleness < 0:
        fail(f"{where}: 'policy_staleness' is not a non-negative "
             "integer")


def check_step(rec, lineno: int, prev, prev_ring, prev_sup) -> tuple:
    where = f"line {lineno}"
    for key in ("t", "episode", "env_step", "update_calls",
                "phase_ns", "metrics"):
        if key not in rec:
            fail(f"{where}: step record is missing {key!r}")
    episode, step = rec["episode"], rec["env_step"]
    if not isinstance(episode, int) or not isinstance(step, int):
        fail(f"{where}: episode/env_step must be integers")
    if prev is not None and (episode, step) < prev:
        fail(f"{where}: counters went backwards: "
             f"{(episode, step)} after {prev}")
    phase_ns = rec["phase_ns"]
    if not isinstance(phase_ns, dict) or not phase_ns:
        fail(f"{where}: phase_ns is empty")
    for phase, ns in phase_ns.items():
        if not isinstance(ns, int) or ns < 0:
            fail(f"{where}: phase {phase!r} delta {ns!r} is not a "
                 "non-negative integer")
    ring = check_ring(rec, where, prev_ring)
    sup = check_supervisor(rec, where, prev_sup)
    check_latency(rec, where)
    check_metrics(rec["metrics"], where)
    return (episode, step), ring, sup


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("file")
    parser.add_argument("--min-steps", type=int, default=1,
                        help="fail unless at least N step records")
    args = parser.parse_args()

    try:
        with open(args.file, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {args.file}: {e}")
    if not lines:
        fail(f"{args.file} is empty")

    records = []
    for i, line in enumerate(lines, 1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"line {i} is not valid JSON: {e}")
        if not isinstance(rec, dict) or "record" not in rec:
            fail(f"line {i} has no 'record' discriminator")
        records.append(rec)

    header = records[0]
    if header["record"] != "header":
        fail("first record is not a header")
    if header.get("schema") != SCHEMA_VERSION:
        fail(f"schema {header.get('schema')!r} != {SCHEMA_VERSION}")
    if not isinstance(header.get("commit"), str) or not header["commit"]:
        fail("header has an empty commit")
    meta = header.get("meta")
    if not isinstance(meta, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in meta.items()):
        fail("header meta is not a string->string map")

    steps = 0
    prev = None
    prev_ring = None
    prev_sup = None
    for i, rec in enumerate(records[1:], 2):
        kind = rec["record"]
        if kind == "step":
            prev, prev_ring, prev_sup = check_step(
                rec, i, prev, prev_ring, prev_sup)
            steps += 1
        elif kind == "summary":
            if i != len(records):
                fail(f"line {i}: summary is not the last record")
            # Benches that collect no headline numbers write an
            # empty results map; it must still be a map.
            results = rec.get("results")
            if not isinstance(results, dict):
                fail(f"line {i}: summary has no results map")
            for key, value in results.items():
                if not isinstance(value, (int, float)):
                    fail(f"line {i}: result {key!r} is not numeric")
            check_metrics(rec.get("metrics", {}), f"line {i}")
        else:
            fail(f"line {i}: unknown record kind {kind!r}")

    if steps < args.min_steps:
        fail(f"only {steps} step record(s), need {args.min_steps}")
    print(f"ok: header + {steps} step(s) + "
          f"{'summary' if records[-1]['record'] == 'summary' else 'no summary'}"
          f" in {args.file} (commit {header['commit']})")


if __name__ == "__main__":
    main()
