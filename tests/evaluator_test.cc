/**
 * @file
 * Tests for greedy policy evaluation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "marlin/core/evaluator.hh"
#include "marlin/core/maddpg.hh"
#include "marlin/env/environment.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin::core
{
namespace
{

std::unique_ptr<MaddpgTrainer>
makeTrainer(const env::Environment &environment, std::uint64_t seed)
{
    TrainConfig config;
    config.hiddenDims = {8, 8};
    config.seed = seed;
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment.numAgents(); ++i)
        dims.push_back(environment.obsDim(i));
    return std::make_unique<MaddpgTrainer>(
        dims, environment.actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });
}

TEST(Evaluator, ShapesAndStatsConsistent)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 5);
    auto trainer = makeTrainer(*environment, 5);
    auto result = evaluate(*environment, *trainer, 8, 10);

    ASSERT_EQ(result.episodeReturns.size(), 8u);
    ASSERT_EQ(result.perAgentMean.size(), 3u);
    EXPECT_LE(result.min, result.mean);
    EXPECT_LE(result.mean, result.max);
    EXPECT_GE(result.stddev, Real(0));
    double mean = 0;
    for (Real r : result.episodeReturns) {
        EXPECT_TRUE(std::isfinite(r));
        mean += r;
    }
    EXPECT_NEAR(result.mean, mean / 8.0, 1e-4);
}

TEST(Evaluator, DeterministicForSameSeeds)
{
    auto run = [] {
        auto environment = env::makeCooperativeNavigationEnv(3, 17);
        auto trainer = makeTrainer(*environment, 17);
        return evaluate(*environment, *trainer, 4, 10).episodeReturns;
    };
    EXPECT_EQ(run(), run());
}

TEST(Evaluator, PerAgentMeansShareCooperativeReward)
{
    // CN reward = shared coverage term + individual collision
    // penalties; with untouched random policies the shared term
    // dominates and per-agent means should be close.
    auto environment = env::makeCooperativeNavigationEnv(3, 23);
    auto trainer = makeTrainer(*environment, 23);
    auto result = evaluate(*environment, *trainer, 12, 25);
    const Real spread =
        std::abs(result.perAgentMean[0] - result.perAgentMean[2]);
    const Real scale = std::abs(result.perAgentMean[0]) + Real(1);
    EXPECT_LT(spread / scale, Real(0.2));
}

TEST(Evaluator, EpisodeLengthScalesReturns)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 31);
    auto trainer = makeTrainer(*environment, 31);
    auto short_eval = evaluate(*environment, *trainer, 6, 5);
    auto env2 = env::makeCooperativeNavigationEnv(3, 31);
    auto long_eval = evaluate(*env2, *trainer, 6, 50);
    // Returns are sums over steps of negative rewards: longer
    // episodes accumulate strictly more magnitude.
    EXPECT_LT(long_eval.mean, short_eval.mean);
}

} // namespace
} // namespace marlin::core
