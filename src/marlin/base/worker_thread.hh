/**
 * @file
 * Dedicated named threads for long-lived runtime roles.
 *
 * base::ThreadPool is built for short blocking parallelFor dispatches
 * from one coordinating thread; borrowing its workers for roles that
 * live for a whole training run (async actors, the learner) would
 * starve the pool mid-step, confuse the task hook's chunk accounting
 * and make TSan reports unreadable. Long-lived roles get their own
 * WorkerThread instead: a plain std::thread with an OS-visible name
 * (so traces, TSan reports and /proc/<pid>/task attribute work to
 * "marlin-actor3" rather than an anonymous thread) and join-on-
 * destruction lifetime.
 *
 * Supervision support: every WorkerThread body runs inside an
 * exception trampoline — an escaped exception marks the thread
 * failed() and stores its message instead of calling std::terminate —
 * and the thread can stamp a Heartbeat so a watchdog on another
 * thread can tell "still making progress" from "wedged".
 */

#ifndef MARLIN_BASE_WORKER_THREAD_HH
#define MARLIN_BASE_WORKER_THREAD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "marlin/base/instant.hh"

namespace marlin::base
{

/**
 * A monotonic progress stamp shared between one worker and any number
 * of watchers. The worker calls beat() at every natural progress
 * point (one env step, one drain cycle); watchers read lastBeatNs()
 * and compare against the current clock. A heartbeat outlives the
 * thread that stamps it — it is owned by the supervisor, not the
 * WorkerThread — so a watcher can still read the final stamp of a
 * thread that died.
 */
class Heartbeat
{
  public:
    /** Worker: stamp the current monotonic time. */
    void
    beat() noexcept
    {
        last.store(nowNsSinceStart(), std::memory_order_release);
    }

    /** Watcher: monotonic ns of the most recent beat (0 = never). */
    std::uint64_t
    lastBeatNs() const noexcept
    {
        return last.load(std::memory_order_acquire);
    }

    /** Watcher: ns elapsed since the last beat. */
    std::uint64_t
    nsSinceBeat() const noexcept
    {
        const std::uint64_t then = lastBeatNs();
        const std::uint64_t now = nowNsSinceStart();
        return now > then ? now - then : 0;
    }

  private:
    std::atomic<std::uint64_t> last{0};
};

/**
 * A named long-lived thread; joins in the destructor.
 *
 * The thread body runs inside an exception trampoline: a thrown
 * std::exception (or anything else) is caught, its message stored,
 * and failed() flips to true — the worker dies quietly and the
 * supervisor decides what to do, instead of std::terminate taking
 * the whole process. finished() flips to true on every exit path,
 * so a watchdog can distinguish "crashed" (finished && failed) from
 * "done" (finished && !failed) from "stalled" (alive but not
 * beating). Non-movable: watchers hold pointers to the flags.
 */
class WorkerThread
{
  public:
    /**
     * Start @p fn on a new thread named @p name (truncated to the
     * platform limit, 15 chars on Linux).
     */
    WorkerThread(std::string name, std::function<void()> fn);

    WorkerThread(const WorkerThread &) = delete;
    WorkerThread &operator=(const WorkerThread &) = delete;
    WorkerThread(WorkerThread &&) = delete;
    WorkerThread &operator=(WorkerThread &&) = delete;

    ~WorkerThread();

    const std::string &name() const { return _name; }

    /** Block until the thread function returns (idempotent). */
    void join();

    /** True once the thread body returned or threw. */
    bool
    finished() const noexcept
    {
        return _finished.load(std::memory_order_acquire);
    }

    /** True when the thread body escaped with an exception. */
    bool
    failed() const noexcept
    {
        return _failed.load(std::memory_order_acquire);
    }

    /**
     * The escaped exception's what() ("<unknown exception>" for
     * non-std throws). Read only after failed() returns true (the
     * release store on _failed orders the string write before it).
     */
    const std::string &errorMessage() const { return error; }

    /**
     * Name the calling thread at the OS level. No-op on platforms
     * without pthread_setname_np.
     */
    static void setCurrentThreadName(const std::string &name);

  private:
    std::string _name;
    std::string error;
    std::atomic<bool> _finished{false};
    std::atomic<bool> _failed{false};
    std::thread thread;
};

} // namespace marlin::base

#endif // MARLIN_BASE_WORKER_THREAD_HH
