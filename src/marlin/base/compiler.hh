/**
 * @file
 * Compiler portability helpers shared across MARLin.
 */

#ifndef MARLIN_BASE_COMPILER_HH
#define MARLIN_BASE_COMPILER_HH

#if defined(__GNUC__) || defined(__clang__)
#define MARLIN_LIKELY(x) __builtin_expect(!!(x), 1)
#define MARLIN_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define MARLIN_ALWAYS_INLINE inline __attribute__((always_inline))
#define MARLIN_NOINLINE __attribute__((noinline))
#define MARLIN_RESTRICT __restrict__
#else
#define MARLIN_LIKELY(x) (x)
#define MARLIN_UNLIKELY(x) (x)
#define MARLIN_ALWAYS_INLINE inline
#define MARLIN_NOINLINE
#define MARLIN_RESTRICT
#endif

#endif // MARLIN_BASE_COMPILER_HH
