/**
 * @file
 * Adam optimizer (Kingma & Ba, 2014) — the paper trains with Adam at
 * learning rate 0.01.
 */

#ifndef MARLIN_NN_ADAM_HH
#define MARLIN_NN_ADAM_HH

#include <vector>

#include "marlin/nn/linear.hh"

namespace marlin::nn
{

/** Adam hyper-parameters (paper defaults). */
struct AdamConfig
{
    Real lr = Real(0.01);
    Real beta1 = Real(0.9);
    Real beta2 = Real(0.999);
    Real epsilon = Real(1e-8);
    /** Optional global-norm gradient clip; <= 0 disables. */
    Real gradClipNorm = Real(0.5);
};

/**
 * Adam with per-parameter first/second moment state. Bound to a
 * fixed parameter set at construction; step() applies one update
 * from the currently accumulated gradients and zeroes them.
 */
class AdamOptimizer
{
  public:
    AdamOptimizer(std::vector<Param *> params, AdamConfig config = {});

    const AdamConfig &config() const { return _config; }
    std::uint64_t stepCount() const { return t; }

    /** Apply one Adam update and zero the gradients. */
    void step();

    /** Zero gradients without updating. */
    void zeroGrad();

    /**
     * Scale gradients so their global L2 norm is at most
     * @p max_norm. Returns the pre-clip norm.
     */
    Real clipGradNorm(Real max_norm);

    // Checkpoint access (see nn/serialize.hh).
    const std::vector<Matrix> &moments1() const { return m; }
    const std::vector<Matrix> &moments2() const { return v; }

    /** Restore moments and step counter (shapes must match). */
    void setState(std::vector<Matrix> m1, std::vector<Matrix> m2,
                  std::uint64_t step_count);

  private:
    AdamConfig _config;
    std::vector<Param *> bound;
    std::vector<Matrix> m; ///< First moment per param.
    std::vector<Matrix> v; ///< Second moment per param.
    std::uint64_t t = 0;
};

} // namespace marlin::nn

#endif // MARLIN_NN_ADAM_HH
