/**
 * @file
 * Scenario interface: task-specific world construction, observations
 * and rewards layered over the generic particle World.
 */

#ifndef MARLIN_ENV_SCENARIO_HH
#define MARLIN_ENV_SCENARIO_HH

#include <memory>
#include <string>
#include <vector>

#include "marlin/base/random.hh"
#include "marlin/env/world.hh"

namespace marlin::env
{

/**
 * A Scenario defines everything task-specific: entity roster,
 * initial placement, per-agent observations and rewards, and
 * scripted policies for environment-controlled agents.
 *
 * Only the learnable agents (the first learnableAgents() entries of
 * World::agents) are exposed to trainers; scripted agents are part
 * of the environment, as in the paper's predator-prey setup where
 * the prey are environment-controlled.
 */
class Scenario
{
  public:
    virtual ~Scenario() = default;

    /** Human-readable task name. */
    virtual std::string name() const = 0;

    /** Build the entity roster into @p world. */
    virtual void makeWorld(World &world) = 0;

    /** Randomize initial positions/velocities. */
    virtual void resetWorld(World &world, Rng &rng) = 0;

    /** Number of agents trained by the MARL algorithm. */
    virtual std::size_t learnableAgents(const World &world) const = 0;

    /**
     * Write agent @p i's observation into @p out, which must hold
     * observationDim(i) elements. This is the steady-state hot path:
     * implementations write in place and perform no heap allocation.
     */
    virtual void observationInto(const World &world, std::size_t i,
                                 Real *out) const = 0;

    /** Convenience by-value form of observationInto. */
    std::vector<Real>
    observation(const World &world, std::size_t i) const
    {
        std::vector<Real> out(observationDim(i));
        observationInto(world, i, out.data());
        return out;
    }

    /** Observation dimensionality for agent @p i. */
    virtual std::size_t observationDim(std::size_t i) const = 0;

    /** Scalar reward for agent @p i in the current world state. */
    virtual Real reward(const World &world, std::size_t i) const = 0;

    /**
     * Discrete action for scripted agent @p i (called only for
     * agents with Agent::scripted set).
     */
    virtual int
    scriptedAction(const World &world, std::size_t i, Rng &rng) const
    {
        return 0;
    }
};

} // namespace marlin::env

#endif // MARLIN_ENV_SCENARIO_HH
