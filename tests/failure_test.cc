/**
 * @file
 * Failure-injection tests: every misuse MARLIN_ASSERT guards
 * against must die loudly instead of corrupting state. These death
 * tests pin the library's precondition contract.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "marlin/base/serialize.hh"
#include "marlin/core/checkpoint.hh"
#include "marlin/core/maddpg.hh"
#include "marlin/core/matd3.hh"
#include "marlin/core/train_loop.hh"
#include "marlin/env/environment.hh"
#include "marlin/memsim/cache.hh"
#include "marlin/nn/loss.hh"
#include "marlin/nn/mlp.hh"
#include "marlin/numeric/gemm.hh"
#include "marlin/numeric/ops.hh"
#include "marlin/replay/gather.hh"
#include "marlin/replay/locality_sampler.hh"
#include "marlin/replay/sum_tree.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin
{
namespace
{

TEST(FailureDeath, GatherIndexBeyondValidTransitions)
{
    replay::ReplayBuffer buf({3, 5}, 16);
    std::vector<Real> obs(3), next(3);
    std::vector<Real> act(5, 0);
    buf.add(obs, act, 0, next, false);
    replay::IndexPlan plan;
    plan.indices = {5}; // Only slot 0 is valid.
    replay::AgentBatch batch;
    EXPECT_DEATH(gatherAgentBatch(buf, plan, batch),
                 "gather index beyond valid");
}

TEST(FailureDeath, ReplayAddDimensionMismatch)
{
    replay::ReplayBuffer buf({3, 5}, 16);
    std::vector<Real> wrong_obs(7), next(3);
    std::vector<Real> act(5, 0);
    EXPECT_DEATH(buf.add(wrong_obs, act, 0, next, false),
                 "observation size mismatch");
}

TEST(FailureDeath, SamplingFromEmptyBuffer)
{
    replay::UniformSampler sampler;
    Rng rng(1);
    EXPECT_DEATH(sampler.plan(0, 16, rng), "empty");
}

TEST(FailureDeath, SumTreeIndexOutOfRange)
{
    replay::SumTree tree(8);
    EXPECT_DEATH(tree.set(8, 1.0), "out of range");
}

TEST(FailureDeath, SumTreeNegativePriority)
{
    replay::SumTree tree(8);
    EXPECT_DEATH(tree.set(0, -1.0), "non-negative");
}

TEST(FailureDeath, SumTreeFindOnEmptyTree)
{
    replay::SumTree tree(8);
    EXPECT_DEATH(tree.find(0.5), "empty sum tree");
}

TEST(FailureDeath, HconcatRowMismatch)
{
    numeric::Matrix a(2, 3), b(3, 3);
    EXPECT_DEATH(numeric::hconcat({&a, &b}), "row mismatch");
}

TEST(FailureDeath, GemmInnerDimensionMismatch)
{
    numeric::Matrix a(2, 3), b(4, 2), c;
    EXPECT_DEATH(numeric::gemm(a, b, c), "inner dimension");
}

TEST(FailureDeath, MlpForwardWrongInputWidth)
{
    Rng rng(1);
    nn::MlpConfig cfg;
    cfg.inputDim = 4;
    cfg.hiddenDims = {4};
    cfg.outputDim = 2;
    nn::Mlp net(cfg, rng);
    numeric::Matrix x(1, 5);
    EXPECT_DEATH(net.forward(x), "input dimension mismatch");
}

TEST(FailureDeath, EnvironmentWrongActionCount)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 1);
    environment->reset();
    EXPECT_DEATH(environment->step({1, 2}), "one action per");
}

TEST(FailureDeath, EnvironmentActionOutOfRange)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 1);
    environment->reset();
    EXPECT_DEATH(environment->step({1, 2, 9}),
                 "action out of range");
}

TEST(FailureDeath, TrainerObservationCountMismatch)
{
    core::TrainConfig config;
    config.hiddenDims = {4};
    core::MaddpgTrainer trainer(
        {6, 6}, 5, config,
        [] { return std::make_unique<replay::UniformSampler>(); });
    std::vector<std::vector<Real>> obs(1, std::vector<Real>(6));
    EXPECT_DEATH(trainer.selectActions(obs, 0),
                 "one observation per agent");
}

TEST(FailureDeath, CacheLineSizeMustBePowerOfTwo)
{
    EXPECT_DEATH(memsim::CacheModel({1024, 48, 2}), "power of two");
}

TEST(FailureDeath, CacheSmallerThanOneSet)
{
    EXPECT_DEATH(memsim::CacheModel({64, 64, 4}),
                 "smaller than one set");
}

// --- Checkpoint corruption taxonomy: every rejected file maps to a
// --- specific CkptError instead of an abort or silent garbage.

namespace
{

core::TrainConfig
tinyConfig()
{
    core::TrainConfig config;
    config.hiddenDims = {4};
    config.bufferCapacity = 256;
    return config;
}

std::string
savedTrainerImage(core::CtdeTrainerBase &trainer)
{
    std::ostringstream os;
    core::RunState state;
    state.trainer = &trainer;
    core::saveRun(os, state);
    return os.str();
}

} // namespace

TEST(FailureCheckpoint, CrcMismatchDetected)
{
    core::MaddpgTrainer trainer(
        {6, 6}, 5, tinyConfig(),
        [] { return std::make_unique<replay::UniformSampler>(); });
    std::string image = savedTrainerImage(trainer);
    // Flip one bit deep inside the network section's payload.
    image[image.size() / 2] ^= 0x01;

    std::istringstream is(image);
    core::RunState state;
    state.trainer = &trainer;
    const auto r = core::loadRun(is, state);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::CrcMismatch);
}

TEST(FailureCheckpoint, TruncatedMidSection)
{
    core::MaddpgTrainer trainer(
        {6, 6}, 5, tinyConfig(),
        [] { return std::make_unique<replay::UniformSampler>(); });
    const std::string image = savedTrainerImage(trainer);

    std::istringstream is(image.substr(0, image.size() - 7));
    core::RunState state;
    state.trainer = &trainer;
    const auto r = core::loadRun(is, state);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::Truncated);
}

TEST(FailureCheckpoint, FutureVersionRejected)
{
    std::ostringstream os;
    writeHeader(os, core::checkpointMagic,
                core::checkpointVersion + 1);

    core::MaddpgTrainer trainer(
        {6, 6}, 5, tinyConfig(),
        [] { return std::make_unique<replay::UniformSampler>(); });
    std::istringstream is(os.str());
    core::RunState state;
    state.trainer = &trainer;
    const auto r = core::loadRun(is, state);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::BadVersion);
}

TEST(FailureCheckpoint, BadMagicRejected)
{
    core::MaddpgTrainer trainer(
        {6, 6}, 5, tinyConfig(),
        [] { return std::make_unique<replay::UniformSampler>(); });
    std::istringstream is("this is not a checkpoint file at all");
    core::RunState state;
    state.trainer = &trainer;
    const auto r = core::loadRun(is, state);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::BadMagic);
}

TEST(FailureCheckpoint, AlgorithmMismatchRejected)
{
    auto factory = [] {
        return std::make_unique<replay::UniformSampler>();
    };
    core::MaddpgTrainer writer({6, 6}, 5, tinyConfig(), factory);
    const std::string image = savedTrainerImage(writer);

    core::Matd3Trainer reader({6, 6}, 5, tinyConfig(), factory);
    std::istringstream is(image);
    core::RunState state;
    state.trainer = &reader;
    const auto r = core::loadRun(is, state);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::AlgoMismatch);
}

TEST(FailureCheckpoint, MissingFileIsNotFound)
{
    core::MaddpgTrainer trainer(
        {6, 6}, 5, tinyConfig(),
        [] { return std::make_unique<replay::UniformSampler>(); });
    core::RunState state;
    state.trainer = &trainer;
    const auto r =
        core::loadRunFile("/nonexistent/dir/nope.ckpt", state);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, core::CkptError::NotFound);
}

TEST(FailureDeath, SerializeAbsurdVectorLength)
{
    std::ostringstream os;
    writePod<std::uint64_t>(os, 1ull << 60); // Claims 2^60 elements.
    std::istringstream is(os.str());
    EXPECT_DEATH(readVector<Real>(is), "length prefix");
}

TEST(FailureDeath, SerializeAbsurdStringLength)
{
    std::ostringstream os;
    writePod<std::uint64_t>(os, 1ull << 60);
    std::istringstream is(os.str());
    EXPECT_DEATH(readString(is), "length prefix");
}

TEST(FailureDeath, RollbackWithoutCheckpointDir)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 1);
    core::TrainConfig config = tinyConfig();
    config.healthPolicy = core::HealthGuardPolicy::Rollback;
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    core::MaddpgTrainer trainer(
        dims, environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });
    core::TrainLoop loop(*environment, trainer, config);
    EXPECT_DEATH(loop.run(1), "requires a checkpoint");
}

TEST(FailureDeath, WeightedMseWrongWeightCount)
{
    numeric::Matrix pred(4, 1), target(4, 1), grad;
    std::vector<Real> weights(3, Real(1));
    EXPECT_DEATH(nn::weightedMseLoss(pred, target, weights, grad),
                 "one importance weight per batch row");
}

} // namespace
} // namespace marlin
