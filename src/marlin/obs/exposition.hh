/**
 * @file
 * Prometheus text exposition (version 0.0.4) of the metrics
 * registry: the rendering half of the live `GET /metrics` scrape
 * path (see serve/metrics_http.hh for the transport).
 *
 * Counters and gauges render as single samples; histograms render
 * with Prometheus "le" semantics — cumulative `_bucket` series
 * ending in `le="+Inf"`, plus `_sum` and `_count`. The registry
 * stores *per-bucket* counts, so the renderer accumulates them; a
 * scrape taken while writers run may observe a bucket mid-update,
 * which only ever under-reports (relaxed counters), never violates
 * bucket monotonicity within one snapshot.
 *
 * Metric names in MARLin are dotted ("async.ring.pushed"); the
 * Prometheus grammar forbids dots, so names are sanitized to
 * [a-zA-Z_:][a-zA-Z0-9_:]* with every illegal byte mapped to '_'
 * ("async_ring_pushed"). The original dotted name is preserved in
 * the # HELP line so a scrape stays cross-referenceable with the
 * telemetry JSONL, which keeps dotted names.
 */

#ifndef MARLIN_OBS_EXPOSITION_HH
#define MARLIN_OBS_EXPOSITION_HH

#include <string>
#include <vector>

#include "marlin/obs/metrics.hh"

namespace marlin::obs
{

/** Map a dotted MARLin metric name onto the Prometheus grammar. */
std::string sanitizeMetricName(const std::string &name);

/** Render @p samples (one Registry::snapshot()) as Prometheus
 *  text format 0.0.4, # TYPE / # HELP lines included. */
std::string
renderPrometheusText(const std::vector<MetricSample> &samples);

/** Convenience: snapshot the process registry and render it. */
std::string renderPrometheusText();

/** Content-Type header value for the rendered text. */
inline constexpr const char *prometheusContentType =
    "text/plain; version=0.0.4";

} // namespace marlin::obs

#endif // MARLIN_OBS_EXPOSITION_HH
