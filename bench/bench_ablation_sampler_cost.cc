/**
 * @file
 * Ablation (DESIGN.md decision 2): split each sampler's per-update
 * cost into index-plan generation vs data gather. Confirms the
 * strategy-object design isolates the paper's variable — the index
 * pattern — from the shared gather loop, and quantifies the plan
 * overhead of the prioritized samplers (sum-tree descents).
 */

#include "common.hh"

#include "marlin/replay/rank_sampler.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

void
measure(const char *label, replay::Sampler &sampler,
        const replay::MultiAgentBuffer &buffers, int reps)
{
    Rng rng(11);
    std::vector<replay::AgentBatch> batches;
    std::vector<replay::IndexPlan> plans(buffers.numAgents());

    // Warm-up.
    for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
        plans[t] = sampler.plan(buffers.size(), 1024, rng);
        replay::gatherAllAgents(buffers, plans[t], batches);
    }

    profile::Stopwatch plan_sw;
    for (int rep = 0; rep < reps; ++rep)
        for (std::size_t t = 0; t < buffers.numAgents(); ++t)
            plans[t] = sampler.plan(buffers.size(), 1024, rng);
    const double plan_ms = plan_sw.elapsedSeconds() / reps * 1e3;

    profile::Stopwatch gather_sw;
    for (int rep = 0; rep < reps; ++rep)
        for (std::size_t t = 0; t < buffers.numAgents(); ++t)
            replay::gatherAllAgents(buffers, plans[t], batches);
    const double gather_ms =
        gather_sw.elapsedSeconds() / reps * 1e3;

    std::printf("%-20s %12.3f %12.2f %11.1f%%\n", label, plan_ms,
                gather_ms,
                100.0 * plan_ms / (plan_ms + gather_ms));
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_ablation_sampler_cost");
    banner("Ablation: index-plan generation vs gather cost per "
           "update");
    const std::size_t agents = 6;
    auto shapes = taskShapes(Task::PredatorPrey, agents);
    const BufferIndex capacity =
        scaledCapacity(shapes, 384ull << 20);
    replay::MultiAgentBuffer buffers(shapes, capacity);
    Rng fill_rng(1);
    fillSynthetic(buffers, capacity, fill_rng);

    std::printf("predator-prey, %zu agents, capacity %llu\n\n",
                agents, static_cast<unsigned long long>(capacity));
    std::printf("%-20s %12s %12s %12s\n", "sampler", "plan(ms)",
                "gather(ms)", "plan share");

    replay::UniformSampler uniform;
    measure("uniform", uniform, buffers, 4);

    replay::LocalityAwareSampler loc16({16, 64});
    measure("locality n16 r64", loc16, buffers, 4);

    replay::LocalityAwareSampler loc64({64, 16});
    measure("locality n64 r16", loc64, buffers, 4);

    replay::PerConfig per_cfg;
    per_cfg.capacity = capacity;
    replay::PrioritizedSampler per(per_cfg);
    replay::InfoPrioritizedLocalitySampler ip(per_cfg);
    replay::RankBasedSampler rank(per_cfg);
    {
        std::vector<BufferIndex> ids(capacity);
        std::vector<Real> tds(capacity);
        Rng prio(2);
        for (BufferIndex i = 0; i < capacity; ++i) {
            ids[i] = i;
            tds[i] = prio.uniformf() + Real(0.01);
        }
        per.updatePriorities(ids, tds);
        ip.updatePriorities(ids, tds);
        rank.updatePriorities(ids, tds);
    }
    measure("per (proportional)", per, buffers, 4);
    measure("info-prioritized", ip, buffers, 4);
    measure("per (rank-based)", rank, buffers, 2);

    std::printf("\nexpectation: plan cost is negligible for "
                "uniform/locality, visible for the\nsum-tree "
                "samplers, and the gather dominates everywhere — "
                "so sampler speedups\nmust come from the *pattern*, "
                "which is the paper's thesis.\n");
    return 0;
}
