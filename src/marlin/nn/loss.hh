/**
 * @file
 * Loss functions returning both the scalar loss and the gradient
 * with respect to predictions.
 */

#ifndef MARLIN_NN_LOSS_HH
#define MARLIN_NN_LOSS_HH

#include <vector>

#include "marlin/numeric/matrix.hh"

namespace marlin::nn
{

using numeric::Matrix;

/**
 * Mean-squared error: L = mean((pred - target)^2).
 * @param grad Receives dL/dpred (same shape as pred).
 * @return The scalar loss.
 */
Real mseLoss(const Matrix &pred, const Matrix &target, Matrix &grad);

/**
 * Importance-weighted MSE used by prioritized replay:
 * L = mean(w_i * (pred_i - target_i)^2) over batch rows. The weights
 * implement the paper's Lemma 1 bias-correction (w_i =
 * (1/N * 1/P(i))^beta, normalized).
 *
 * @param weights One weight per batch row.
 * @param grad Receives dL/dpred.
 * @return The scalar loss.
 */
Real weightedMseLoss(const Matrix &pred, const Matrix &target,
                     const std::vector<Real> &weights, Matrix &grad);

/**
 * Policy-gradient objective for the deterministic actor:
 * L = -mean(q). Gradient w.r.t. q is -1/batch.
 */
Real policyLoss(const Matrix &q, Matrix &grad);

/**
 * Per-row absolute TD error |pred - target|, used to refresh
 * priorities in PER.
 */
std::vector<Real> absTdError(const Matrix &pred, const Matrix &target);

/** absTdError into caller-owned storage (capacity-retaining). */
void absTdErrorInto(const Matrix &pred, const Matrix &target,
                    std::vector<Real> &out);

} // namespace marlin::nn

#endif // MARLIN_NN_LOSS_HH
