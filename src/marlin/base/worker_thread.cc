#include "marlin/base/worker_thread.hh"

#include <exception>
#include <utility>

#if defined(__linux__) || defined(__APPLE__)
#include <pthread.h>
#endif

namespace marlin::base
{

WorkerThread::WorkerThread(std::string name, std::function<void()> fn)
    : _name(std::move(name)),
      thread([this, body = std::move(fn)] {
          setCurrentThreadName(_name);
          try
          {
              body();
          }
          catch (const std::exception &e)
          {
              error = e.what();
              _failed.store(true, std::memory_order_release);
          }
          catch (...)
          {
              error = "<unknown exception>";
              _failed.store(true, std::memory_order_release);
          }
          _finished.store(true, std::memory_order_release);
      })
{
}

WorkerThread::~WorkerThread()
{
    join();
}

void
WorkerThread::join()
{
    if (thread.joinable())
        thread.join();
}

void
WorkerThread::setCurrentThreadName(const std::string &name)
{
#if defined(__linux__)
    // The kernel limit is 16 bytes including the terminator.
    char buf[16];
    const std::size_t n =
        name.size() < sizeof(buf) - 1 ? name.size() : sizeof(buf) - 1;
    name.copy(buf, n);
    buf[n] = '\0';
    pthread_setname_np(pthread_self(), buf);
#elif defined(__APPLE__)
    pthread_setname_np(name.c_str());
#else
    (void)name;
#endif
}

} // namespace marlin::base
