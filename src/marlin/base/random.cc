#include "marlin/base/random.hh"

#include <cmath>
#include <numeric>

#include "marlin/base/logging.hh"

namespace marlin
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    SplitMix64 sm(seed_value);
    for (auto &word : s)
        word = sm.next();
    have_spare = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::uniformf()
{
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::randint(std::uint64_t n)
{
    MARLIN_ASSERT(n > 0, "randint range must be positive");
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
        std::uint64_t t = -n % n;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::gaussian()
{
    if (have_spare) {
        have_spare = false;
        return spare;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare = mag * std::sin(2.0 * M_PI * u2);
    have_spare = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mu, double sigma)
{
    return mu + sigma * gaussian();
}

std::vector<BufferIndex>
Rng::sampleIndices(BufferIndex n, std::size_t count)
{
    std::vector<BufferIndex> out;
    sampleIndicesInto(n, count, out);
    return out;
}

void
Rng::sampleIndicesInto(BufferIndex n, std::size_t count,
                       std::vector<BufferIndex> &out)
{
    MARLIN_ASSERT(n > 0, "cannot sample from an empty range");
    out.resize(count);
    for (auto &idx : out)
        idx = static_cast<BufferIndex>(randint(n));
}

std::vector<BufferIndex>
Rng::sampleIndicesDistinct(BufferIndex n, std::size_t count)
{
    MARLIN_ASSERT(count <= n,
                  "distinct sample count exceeds population size");
    // Partial Fisher-Yates: O(n) memory but only `count` swaps.
    std::vector<BufferIndex> pool(n);
    std::iota(pool.begin(), pool.end(), BufferIndex{0});
    for (std::size_t i = 0; i < count; ++i) {
        std::size_t j = i + static_cast<std::size_t>(randint(n - i));
        std::swap(pool[i], pool[j]);
    }
    pool.resize(count);
    return pool;
}

RngState
Rng::state() const
{
    RngState snapshot;
    for (int i = 0; i < 4; ++i)
        snapshot.s[i] = s[i];
    snapshot.haveSpare = have_spare;
    snapshot.spare = spare;
    return snapshot;
}

void
Rng::setState(const RngState &state)
{
    for (int i = 0; i < 4; ++i)
        s[i] = state.s[i];
    have_spare = state.haveSpare;
    spare = state.spare;
}

} // namespace marlin
