#include "marlin/async/policy_snapshot.hh"

#include <cstring>

#include "marlin/base/logging.hh"
#include "marlin/core/maddpg.hh"

namespace marlin::async
{

void
PolicySnapshot::publish(core::CtdeTrainerBase &source)
{
    const std::lock_guard<std::mutex> lock(mutex);
    const std::size_t n = source.numAgents();
    flat.resize(n);
    for (std::size_t i = 0; i < n; ++i)
    {
        const auto params = source.networks(i).actor.params();
        std::size_t total = 0;
        for (const nn::Param *p : params)
            total += p->value.size();
        flat[i].resize(total);
        std::size_t off = 0;
        for (const nn::Param *p : params)
        {
            std::memcpy(flat[i].data() + off, p->value.data(),
                        p->value.size() * sizeof(Real));
            off += p->value.size();
        }
    }
    ver.fetch_add(1, std::memory_order_release);
}

bool
PolicySnapshot::refresh(core::CtdeTrainerBase &policy,
                        std::uint64_t &seen_version)
{
    if (ver.load(std::memory_order_acquire) == seen_version)
        return false;
    const std::lock_guard<std::mutex> lock(mutex);
    MARLIN_ASSERT(flat.size() == policy.numAgents(),
                  "policy snapshot: agent count mismatch");
    for (std::size_t i = 0; i < flat.size(); ++i)
    {
        auto params = policy.networks(i).actor.params();
        std::size_t off = 0;
        for (nn::Param *p : params)
        {
            MARLIN_ASSERT(off + p->value.size() <= flat[i].size(),
                          "policy snapshot: shape mismatch");
            std::memcpy(p->value.data(), flat[i].data() + off,
                        p->value.size() * sizeof(Real));
            off += p->value.size();
        }
    }
    seen_version = ver.load(std::memory_order_relaxed);
    return true;
}

} // namespace marlin::async
