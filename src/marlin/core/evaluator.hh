/**
 * @file
 * Greedy policy evaluation: roll out the current policies without
 * exploration or training and summarize the returns. Used to report
 * the "mean score" style results of the paper's reward figures
 * without the exploration noise baked into training curves.
 */

#ifndef MARLIN_CORE_EVALUATOR_HH
#define MARLIN_CORE_EVALUATOR_HH

#include "marlin/core/trainer.hh"
#include "marlin/env/environment.hh"

namespace marlin::core
{

/** Summary statistics over evaluation episodes. */
struct EvalResult
{
    /** Mean (over agents) return per episode. */
    std::vector<Real> episodeReturns;
    Real mean = 0;
    Real stddev = 0;
    Real min = 0;
    Real max = 0;
    /** Per-agent mean returns (length = numAgents). */
    std::vector<Real> perAgentMean;
};

/**
 * Run @p episodes greedy episodes of @p trainer in @p environment.
 *
 * @param episode_length Steps per episode (paper: 25).
 */
EvalResult evaluate(env::Environment &environment, Trainer &trainer,
                    std::size_t episodes,
                    std::size_t episode_length = 25);

} // namespace marlin::core

#endif // MARLIN_CORE_EVALUATOR_HH
