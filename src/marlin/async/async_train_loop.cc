#include "marlin/async/async_train_loop.hh"

#include <algorithm>
#include <string>

#include "marlin/async/actor_runner.hh"
#include "marlin/async/learner_runner.hh"
#include "marlin/async/supervisor.hh"
#include "marlin/base/logging.hh"
#include "marlin/core/checkpoint.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::async
{

AsyncTrainLoop::AsyncTrainLoop(core::CtdeTrainerBase &trainer_in,
                               EnvFactory env_factory,
                               PolicyFactory policy_factory,
                               core::TrainConfig config_in,
                               AsyncConfig async_in)
    : trainer(trainer_in), envFactory(std::move(env_factory)),
      policyFactory(std::move(policy_factory)),
      config(std::move(config_in)), async(std::move(async_in)),
      layout(replay::JointTransitionLayout::fromShapes(
          trainer_in.transitionShapes()))
{
    MARLIN_ASSERT(async.actors >= 1, "async loop needs >= 1 actor");
    MARLIN_ASSERT(async.lanesPerActor >= 1,
                  "async loop needs >= 1 lane per actor");
    if (config.backend == core::SamplingBackend::Interleaved)
    {
        fatal("the async runtime supports only the per-agent and "
              "sharded sampling backends (the interleaved store's "
              "reorg bookkeeping assumes the lockstep loop)");
    }
    const bool wantSharded =
        config.backend == core::SamplingBackend::Sharded ||
        config.replayShards > 1 || !config.replayColdDir.empty();
    if (wantSharded)
    {
        replay::ShardedStoreConfig scfg;
        scfg.shards = config.replayShards;
        scfg.hotCapacity = config.replayHotCapacity;
        scfg.coldDir = config.replayColdDir;
        sharded = std::make_unique<replay::ShardedStore>(
            trainer_in.transitionShapes(), config.bufferCapacity,
            scfg);
        storage = sharded.get();
    }
    else
    {
        buffers = std::make_unique<replay::MultiAgentBuffer>(
            trainer_in.transitionShapes(), config.bufferCapacity);
        storage = buffers.get();
    }
    if (config.healthPolicy == core::HealthGuardPolicy::Rollback)
    {
        fatal("HealthGuardPolicy::Rollback requires the synchronous "
              "checkpoint/restore cycle of the lockstep TrainLoop; "
              "use the sync loop (--actors 1) or another policy");
    }
}

void
AsyncTrainLoop::setTelemetry(obs::TelemetryWriter *writer,
                             std::size_t every_steps)
{
    telemetry = writer;
    telemetryEvery = every_steps > 0 ? every_steps : 1;
}

AsyncTrainResult
AsyncTrainLoop::run(std::size_t episodes)
{
    AsyncTrainResult result;

    PolicySnapshot snapshot;
    snapshot.registerActors(async.actors);
    RunControl control;
    control.episodeTarget = episodes;
    control.activeActors.store(async.actors,
                               std::memory_order_relaxed);
    obs::Registry::instance().gauge("async.actors").set(
        static_cast<double>(async.actors));

    // Resume before anything is cloned or published: the restored
    // trainer weights must be what the first snapshot carries.
    if (async.resume && !async.checkpointDir.empty())
    {
        core::LoopProgress progress;
        core::RunState state;
        state.trainer = &trainer;
        state.buffers = buffers.get();
        state.sharded = sharded.get();
        state.progress = &progress;
        const core::CkptResult loaded =
            core::resumeLatest(async.checkpointDir, state);
        if (loaded)
        {
            // The snapshot's episode progress is the contiguous
            // completed prefix: re-enter the run as if episodes
            // [0, P) just finished, and let the fleet re-claim
            // everything after.
            const std::uint64_t prefix = progress.episodeIndex;
            control.episodesClaimed.store(
                prefix, std::memory_order_relaxed);
            control.completedCount.store(
                prefix, std::memory_order_relaxed);
            for (std::uint64_t e = 0; e < prefix; ++e)
                control.episodeRewards.emplace_back(
                    e, progress.episodeRewards[e]);
            result.resumedFromEpisode = prefix;
            inform("async resume: restored %llu episodes, %zu "
                   "replay transitions from %s",
                   static_cast<unsigned long long>(prefix),
                   static_cast<std::size_t>(storage->size()),
                   async.checkpointDir.c_str());
        }
        else if (loaded.error == core::CkptError::NotFound)
        {
            inform("async resume: no checkpoint in %s yet, starting "
                   "fresh",
                   async.checkpointDir.c_str());
        }
        else
        {
            fatal("async resume from %s failed (%s): %s",
                  async.checkpointDir.c_str(),
                  core::ckptErrorName(loaded.error),
                  loaded.detail.c_str());
        }
    }

    // Actors must start from the learner's exact current weights,
    // not their clones' random init: publish before any thread runs.
    snapshot.publish(trainer);

    std::vector<std::unique_ptr<replay::TransitionRing>> rings;
    std::vector<std::unique_ptr<ActorRunner>> actors;
    rings.reserve(async.actors);
    actors.reserve(async.actors);
    for (std::size_t a = 0; a < async.actors; ++a)
    {
        rings.push_back(std::make_unique<replay::TransitionRing>(
            layout.stride, async.ringCapacity));

        std::vector<std::unique_ptr<env::Environment>> lanes;
        lanes.reserve(async.lanesPerActor);
        for (std::size_t l = 0; l < async.lanesPerActor; ++l)
        {
            // Distinct decorrelated seeds per lane; the sync loop's
            // stream (plain config.seed) is deliberately not among
            // them — async runs are a different experiment.
            lanes.push_back(envFactory(config.seed + 1 +
                                       a * async.lanesPerActor + l));
        }

        ActorConfig acfg;
        acfg.actorId = a;
        acfg.maxEpisodeLength = config.maxEpisodeLength;
        acfg.publishBatch = async.publishBatch;
        acfg.actionMode = config.actionMode;
        actors.push_back(std::make_unique<ActorRunner>(
            acfg, std::move(lanes),
            policyFactory(config.seed + 7919 * (a + 1)), *rings[a],
            layout, snapshot, control));
    }

    std::vector<replay::TransitionRing *> ringPtrs;
    ringPtrs.reserve(rings.size());
    for (auto &r : rings)
        ringPtrs.push_back(r.get());

    LearnerConfig lcfg;
    lcfg.snapshotEvery =
        async.snapshotEvery > 0 ? async.snapshotEvery : 1;
    lcfg.checkpointDir = async.checkpointDir;
    lcfg.checkpointEveryUpdates = async.checkpointEveryUpdates;
    LearnerRunner learner(trainer, *storage, ringPtrs, layout,
                          snapshot, control, config, lcfg);
    learner.setCheckpointStorage(buffers.get(), sharded.get());
    learner.setTelemetry(telemetry, telemetryEvery);

    SupervisorConfig scfg;
    scfg.watchdogDeadlineMs = async.watchdogDeadlineMs;
    scfg.degradeAfterMs = async.degradeAfterMs;
    scfg.maxRestarts = async.maxActorRestarts;
    scfg.restartBackoffMs = async.restartBackoffMs;
    Supervisor supervisor(scfg, control, injector);
    if (supervisorHook)
        supervisor.setPollHook(supervisorHook);
    supervisor.setLearner("marlin-learner", &learner);
    for (std::size_t a = 0; a < async.actors; ++a)
        supervisor.addActor("marlin-actor" + std::to_string(a),
                            actors[a].get(), rings[a].get());

    supervisor.start();
    // The orchestrating thread is the watchdog; this returns with
    // every worker joined.
    supervisor.superviseUntilDone();

    for (const auto &actor : actors)
    {
        result.envSteps += actor->envSteps();
        result.weightRefreshes += actor->weightRefreshes();
        result.timer.merge(actor->timer());
    }
    result.timer.merge(learner.timer());
    result.drainedSteps = learner.drainedSteps();
    result.updateCalls = learner.updateCalls();
    result.nonFiniteUpdates = learner.nonFiniteUpdates();
    result.halted = learner.halted();
    result.quarantined = learner.quarantinedCount();
    result.checkpointsSaved = learner.checkpointsSaved();
    for (const auto &ring : rings)
    {
        result.ringPushed += ring->pushedCount();
        result.ringDropped += ring->droppedCount();
        result.ringSeqGaps += ring->seqGapCount();
        result.ringResidual += ring->depth();
    }

    const SupervisorStats &stats = supervisor.stats();
    result.restarts =
        stats.restarts.load(std::memory_order_relaxed);
    result.degradations =
        stats.degradations.load(std::memory_order_relaxed);
    result.watchdogTrips =
        stats.watchdogTrips.load(std::memory_order_relaxed);
    result.learnerFailed = supervisor.learnerFailed();
    result.learnerError = supervisor.learnerError();

    {
        const std::lock_guard<std::mutex> lock(control.rewardMutex);
        std::sort(control.episodeRewards.begin(),
                  control.episodeRewards.end(),
                  [](const auto &x, const auto &y) {
                      return x.first < y.first;
                  });
        result.episodeRewards.reserve(control.episodeRewards.size());
        for (const auto &[index, reward] : control.episodeRewards)
            result.episodeRewards.push_back(reward);
    }
    if (!result.episodeRewards.empty())
    {
        const std::size_t done = result.episodeRewards.size();
        const std::size_t tail = std::max<std::size_t>(1, done / 10);
        Real total = 0;
        for (std::size_t e = done - tail; e < done; ++e)
            total += result.episodeRewards[e];
        result.finalScore = total / static_cast<Real>(tail);
    }

    if (telemetry != nullptr)
    {
        telemetry->writeSummary({
            {"episodes",
             static_cast<double>(result.episodeRewards.size())},
            {"env_steps", static_cast<double>(result.envSteps)},
            {"drained_steps",
             static_cast<double>(result.drainedSteps)},
            {"update_calls",
             static_cast<double>(result.updateCalls)},
            {"final_score", static_cast<double>(result.finalScore)},
            {"nonfinite_updates",
             static_cast<double>(result.nonFiniteUpdates)},
            {"ring_pushed",
             static_cast<double>(result.ringPushed)},
            {"ring_dropped",
             static_cast<double>(result.ringDropped)},
            {"ring_seq_gaps",
             static_cast<double>(result.ringSeqGaps)},
            {"ring_residual",
             static_cast<double>(result.ringResidual)},
            {"actors", static_cast<double>(async.actors)},
            {"halted", result.halted ? 1.0 : 0.0},
            {"restarts", static_cast<double>(result.restarts)},
            {"degradations",
             static_cast<double>(result.degradations)},
            {"watchdog_trips",
             static_cast<double>(result.watchdogTrips)},
            {"quarantined",
             static_cast<double>(result.quarantined)},
            {"learner_failed", result.learnerFailed ? 1.0 : 0.0},
            {"checkpoints_saved",
             static_cast<double>(result.checkpointsSaved)},
            {"resumed_from_episode",
             static_cast<double>(result.resumedFromEpisode)},
        });
    }

    return result;
}

} // namespace marlin::async
