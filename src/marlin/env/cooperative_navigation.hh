/**
 * @file
 * Cooperative Navigation (simple_spread): N agents cover N landmarks
 * while avoiding collisions. Observation dim is 6N, matching the
 * paper (Box(18) at 3 agents ... Box(144) at 24).
 */

#ifndef MARLIN_ENV_COOPERATIVE_NAVIGATION_HH
#define MARLIN_ENV_COOPERATIVE_NAVIGATION_HH

#include "marlin/env/scenario.hh"

namespace marlin::env
{

/** Roster and shaping parameters for CooperativeNavigationScenario. */
struct CooperativeNavigationConfig
{
    std::size_t numAgents = 3;
    /** Landmarks; 0 = one per agent (the MPE default). */
    std::size_t numLandmarks = 0;
    /** Penalty per inter-agent collision. */
    Real collisionPenalty = Real(1);
};

/** Cooperative coverage task with a shared distance-based reward. */
class CooperativeNavigationScenario : public Scenario
{
  public:
    explicit CooperativeNavigationScenario(
        CooperativeNavigationConfig config = {});

    std::string name() const override { return "cooperative_navigation"; }

    void makeWorld(World &world) override;
    void resetWorld(World &world, Rng &rng) override;
    std::size_t learnableAgents(const World &world) const override;
    void observationInto(const World &world, std::size_t i,
                         Real *out) const override;
    std::size_t observationDim(std::size_t i) const override;
    Real reward(const World &world, std::size_t i) const override;

    const CooperativeNavigationConfig &config() const { return _config; }

  private:
    CooperativeNavigationConfig _config;
};

} // namespace marlin::env

#endif // MARLIN_ENV_COOPERATIVE_NAVIGATION_HH
