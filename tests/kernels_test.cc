/**
 * @file
 * Unit tests for marlin/numeric/kernels: the ISA-dispatched kernel
 * table. The load-bearing property is the determinism contract —
 * every kernel must produce bit-identical output under the scalar
 * reference and the AVX2 path, for every tail length and for the
 * IEEE special values (-0.0, NaN, Inf) the branch-free vector code
 * is most likely to mishandle. GEMM shapes deliberately avoid
 * multiples of the 8-float vector width so the tail loops run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "marlin/base/random.hh"
#include "marlin/base/thread_pool.hh"
#include "marlin/numeric/gemm.hh"
#include "marlin/numeric/kernels.hh"
#include "marlin/numeric/matrix.hh"
#include "marlin/numeric/ops.hh"

namespace marlin::numeric
{
namespace
{

using kernels::Isa;
using kernels::KernelTable;

/** Edge lengths straddling the 8-lane width and its unroll blocks. */
const std::vector<std::size_t> kEdgeSizes = {
    0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65};

std::vector<Real>
randomVec(std::size_t n, Rng &rng, Real lo = Real(-2),
          Real hi = Real(2))
{
    std::vector<Real> v(n);
    for (auto &x : v)
        x = lo + (hi - lo) * rng.uniformf();
    return v;
}

/** Values the compare/blend kernels must not normalize away. */
std::vector<Real>
specialVec(std::size_t n)
{
    const Real pool[] = {Real(-0.0),
                         Real(0.0),
                         Real(1.5),
                         Real(-1.5),
                         std::numeric_limits<Real>::infinity(),
                         -std::numeric_limits<Real>::infinity(),
                         std::numeric_limits<Real>::quiet_NaN(),
                         std::numeric_limits<Real>::denorm_min()};
    std::vector<Real> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = pool[i % (sizeof(pool) / sizeof(pool[0]))];
    return v;
}

bool
bitEqual(const std::vector<Real> &a, const std::vector<Real> &b)
{
    return a.size() == b.size() &&
           (a.empty() || std::memcmp(a.data(), b.data(),
                                     a.size() * sizeof(Real)) == 0);
}

bool
bitEqual(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           (a.size() == 0 ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(Real)) == 0);
}

bool
avx2Available()
{
    return kernels::isaAvailable(Isa::Avx2);
}

#define SKIP_WITHOUT_AVX2()                                           \
    do {                                                              \
        if (!avx2Available())                                         \
            GTEST_SKIP() << "AVX2 kernels unavailable on this host";  \
    } while (0)

/**
 * Run @p op once under each ISA on identical inputs and require
 * bit-identical output. @p op receives the kernel table and the
 * in/out vectors it should use.
 */
template <typename Op>
void
expectIsaParity(std::size_t n, std::uint64_t seed, Op op)
{
    Rng rng_a(seed), rng_b(seed);
    kernels::ScopedIsa pin(Isa::Scalar);
    auto ref = op(kernels::active(), rng_a);
    kernels::setIsa(Isa::Avx2);
    auto vec = op(kernels::active(), rng_b);
    EXPECT_TRUE(bitEqual(ref, vec)) << "n=" << n;
}

// --- Dispatch plumbing ----------------------------------------------

TEST(Kernels, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(kernels::isaAvailable(Isa::Scalar));
    EXPECT_STREQ(kernels::isaName(Isa::Scalar), "scalar");
    EXPECT_STREQ(kernels::isaName(Isa::Avx2), "avx2");
}

TEST(Kernels, IsaFromString)
{
    EXPECT_EQ(kernels::isaFromString("scalar"), Isa::Scalar);
    EXPECT_EQ(kernels::isaFromString("avx2"), Isa::Avx2);
    EXPECT_FALSE(kernels::isaFromString("sse9").has_value());
    EXPECT_FALSE(kernels::isaFromString("").has_value());
}

TEST(Kernels, SetIsaSwitchesActiveTable)
{
    kernels::ScopedIsa pin(Isa::Scalar);
    EXPECT_EQ(kernels::activeIsa(), Isa::Scalar);
    EXPECT_EQ(kernels::active().isa, Isa::Scalar);
    if (avx2Available()) {
        kernels::setIsa(Isa::Avx2);
        EXPECT_EQ(kernels::activeIsa(), Isa::Avx2);
        EXPECT_EQ(kernels::active().isa, Isa::Avx2);
    }
}

TEST(Kernels, ScopedIsaRestores)
{
    const Isa before = kernels::activeIsa();
    {
        kernels::ScopedIsa pin(Isa::Scalar);
        EXPECT_EQ(kernels::activeIsa(), Isa::Scalar);
    }
    EXPECT_EQ(kernels::activeIsa(), before);
}

// --- Elementwise kernels: scalar vs AVX2 bit parity -----------------

TEST(Kernels, AxpyParityAllTails)
{
    SKIP_WITHOUT_AVX2();
    for (std::size_t n : kEdgeSizes) {
        expectIsaParity(n, 11, [n](const KernelTable &kt, Rng &rng) {
            auto x = randomVec(n, rng);
            auto y = randomVec(n, rng);
            kt.axpy(Real(0.37), x.data(), y.data(), n);
            return y;
        });
    }
}

TEST(Kernels, AddSubScaleParityAllTails)
{
    SKIP_WITHOUT_AVX2();
    for (std::size_t n : kEdgeSizes) {
        expectIsaParity(n, 12, [n](const KernelTable &kt, Rng &rng) {
            auto x = randomVec(n, rng);
            auto y = randomVec(n, rng);
            kt.add(x.data(), y.data(), n);
            kt.sub(x.data(), y.data(), n);
            kt.scale(Real(1.25), y.data(), n);
            return y;
        });
    }
}

TEST(Kernels, ClampParitySpecialValues)
{
    SKIP_WITHOUT_AVX2();
    for (std::size_t n : kEdgeSizes) {
        expectIsaParity(n, 13, [n](const KernelTable &kt, Rng &) {
            auto y = specialVec(n);
            kt.clamp(Real(-1), Real(1), y.data(), n);
            return y;
        });
    }
}

TEST(Kernels, ReluForwardParitySpecialValues)
{
    SKIP_WITHOUT_AVX2();
    for (std::size_t n : kEdgeSizes) {
        expectIsaParity(n, 14, [n](const KernelTable &kt, Rng &) {
            auto x = specialVec(n);
            std::vector<Real> y(n, Real(7));
            kt.reluForward(x.data(), y.data(), n);
            return y;
        });
    }
}

TEST(Kernels, ReluForwardKeepsNegativeZero)
{
    // The reference branch `x < 0 ? 0 : x` passes -0.0 through
    // unchanged; vmaxps(x, 0) would return +0.0 instead, which is
    // why the AVX2 kernel uses compare+andnot. Every ISA must keep
    // the sign bit the branch keeps.
    const std::vector<Real> x = {Real(-0.0), Real(0.0), Real(-1),
                                 Real(2)};
    for (Isa isa : {Isa::Scalar, Isa::Avx2}) {
        if (!kernels::isaAvailable(isa))
            continue;
        kernels::ScopedIsa pin(isa);
        std::vector<Real> y(x.size());
        kernels::active().reluForward(x.data(), y.data(), x.size());
        EXPECT_TRUE(std::signbit(y[0])) << kernels::isaName(isa);
        EXPECT_FALSE(std::signbit(y[1])) << kernels::isaName(isa);
        EXPECT_EQ(y[2], Real(0)) << kernels::isaName(isa);
        EXPECT_EQ(y[3], Real(2)) << kernels::isaName(isa);
    }
}

TEST(Kernels, ReluBackwardParitySpecialValues)
{
    SKIP_WITHOUT_AVX2();
    for (std::size_t n : kEdgeSizes) {
        expectIsaParity(n, 15, [n](const KernelTable &kt, Rng &rng) {
            auto pre = specialVec(n);
            auto g = randomVec(n, rng);
            kt.reluBackward(pre.data(), g.data(), n);
            return g;
        });
    }
}

TEST(Kernels, AdamStepParityAllTails)
{
    SKIP_WITHOUT_AVX2();
    kernels::AdamParams p{};
    p.beta1 = Real(0.9);
    p.beta2 = Real(0.999);
    p.biasCorr1 = Real(1) - Real(std::pow(0.9, 3));
    p.biasCorr2 = Real(1) - Real(std::pow(0.999, 3));
    p.lr = Real(0.01);
    p.epsilon = Real(1e-8);
    for (std::size_t n : kEdgeSizes) {
        expectIsaParity(n, 16, [&, n](const KernelTable &kt,
                                      Rng &rng) {
            auto g = randomVec(n, rng);
            auto w = randomVec(n, rng);
            auto m = randomVec(n, rng, Real(-0.1), Real(0.1));
            auto v = randomVec(n, rng, Real(0), Real(0.1));
            kt.adamStep(p, g.data(), w.data(), m.data(), v.data(),
                        n);
            // Fold the moment vectors in so their bits are checked
            // too, not just the weights.
            w.insert(w.end(), m.begin(), m.end());
            w.insert(w.end(), v.begin(), v.end());
            return w;
        });
    }
}

TEST(Kernels, SoftUpdateParityAllTails)
{
    SKIP_WITHOUT_AVX2();
    for (std::size_t n : kEdgeSizes) {
        expectIsaParity(n, 17, [n](const KernelTable &kt, Rng &rng) {
            auto s = randomVec(n, rng);
            auto d = randomVec(n, rng);
            kt.softUpdate(Real(0.01), s.data(), d.data(), n);
            return d;
        });
    }
}

TEST(Kernels, CopyParityAllTails)
{
    SKIP_WITHOUT_AVX2();
    // Include sizes around the 32-float unrolled copy block.
    for (std::size_t n :
         {std::size_t(0), std::size_t(1), std::size_t(7),
          std::size_t(8), std::size_t(31), std::size_t(32),
          std::size_t(33), std::size_t(40), std::size_t(97)}) {
        expectIsaParity(n, 18, [n](const KernelTable &kt, Rng &rng) {
            auto s = randomVec(n, rng);
            std::vector<Real> d(n, Real(-9));
            kt.copy(s.data(), d.data(), n);
            return d;
        });
    }
}

// --- Scalar reference semantics -------------------------------------

TEST(Kernels, ScalarAdamMatchesWrittenOpOrder)
{
    // The documented reference sequence, spelled out longhand. The
    // scalar kernel must reproduce it exactly — the AVX2 parity
    // tests then anchor the vector path to the same bits.
    kernels::ScopedIsa pin(Isa::Scalar);
    kernels::AdamParams p{};
    p.beta1 = Real(0.9);
    p.beta2 = Real(0.999);
    p.biasCorr1 = Real(0.271);
    p.biasCorr2 = Real(0.002997);
    p.lr = Real(0.01);
    p.epsilon = Real(1e-8);

    Rng rng(19);
    const std::size_t n = 13;
    auto g = randomVec(n, rng);
    auto w = randomVec(n, rng);
    auto m = randomVec(n, rng, Real(-0.1), Real(0.1));
    auto v = randomVec(n, rng, Real(0), Real(0.1));
    auto wr = w, mr = m, vr = v;
    for (std::size_t j = 0; j < n; ++j) {
        mr[j] = p.beta1 * mr[j] + (Real(1) - p.beta1) * g[j];
        vr[j] = p.beta2 * vr[j] + (Real(1) - p.beta2) * g[j] * g[j];
        const Real mhat = mr[j] / p.biasCorr1;
        const Real vhat = vr[j] / p.biasCorr2;
        wr[j] -= p.lr * mhat / (std::sqrt(vhat) + p.epsilon);
    }
    kernels::active().adamStep(p, g.data(), w.data(), m.data(),
                               v.data(), n);
    EXPECT_TRUE(bitEqual(w, wr));
    EXPECT_TRUE(bitEqual(m, mr));
    EXPECT_TRUE(bitEqual(v, vr));
}

// --- GEMM variants: scalar vs AVX2 bit parity -----------------------

/** Shapes that stress vector tails: none are multiples of 8. */
struct GemmShape {
    std::size_t m, k, n;
};

const std::vector<GemmShape> kGemmShapes = {
    {0, 0, 0}, {1, 1, 1},  {1, 7, 1},  {1, 1, 9},  {3, 5, 7},
    {2, 3, 1}, {5, 9, 13}, {7, 17, 3}, {9, 8, 15}, {13, 31, 33},
    {1, 64, 65}, {17, 23, 129},
};

template <typename Product>
void
gemmParity(Product product)
{
    SKIP_WITHOUT_AVX2();
    for (const GemmShape &s : kGemmShapes) {
        Rng rng(21);
        Matrix a(s.m, s.k), b(s.k, s.n);
        fillUniform(a, rng, -1, 1);
        fillUniform(b, rng, -1, 1);

        Matrix ref, vec;
        {
            kernels::ScopedIsa pin(Isa::Scalar);
            product(a, b, ref);
        }
        {
            kernels::ScopedIsa pin(Isa::Avx2);
            product(a, b, vec);
        }
        EXPECT_TRUE(bitEqual(ref, vec))
            << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(Kernels, GemmParityEdgeShapes)
{
    gemmParity([](const Matrix &a, const Matrix &b, Matrix &c) {
        gemm(a, b, c);
    });
}

TEST(Kernels, GemmAccParityEdgeShapes)
{
    gemmParity([](const Matrix &a, const Matrix &b, Matrix &c) {
        c.resize(a.rows(), b.cols());
        Rng rng(22);
        fillUniform(c, rng, -1, 1);
        gemmAcc(a, b, c);
    });
}

TEST(Kernels, GemmTNParityEdgeShapes)
{
    // gemmTN computes a^T * b where a is (k x m): reuse the shape
    // list with a stored transposed.
    SKIP_WITHOUT_AVX2();
    for (const GemmShape &s : kGemmShapes) {
        Rng rng(23);
        Matrix a(s.k, s.m), b(s.k, s.n);
        fillUniform(a, rng, -1, 1);
        fillUniform(b, rng, -1, 1);
        Matrix ref, vec;
        {
            kernels::ScopedIsa pin(Isa::Scalar);
            gemmTN(a, b, ref);
        }
        {
            kernels::ScopedIsa pin(Isa::Avx2);
            gemmTN(a, b, vec);
        }
        EXPECT_TRUE(bitEqual(ref, vec))
            << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(Kernels, GemmNTParityEdgeShapes)
{
    // gemmNT computes a * b^T where b is (n x k).
    SKIP_WITHOUT_AVX2();
    for (const GemmShape &s : kGemmShapes) {
        Rng rng(24);
        Matrix a(s.m, s.k), b(s.n, s.k);
        fillUniform(a, rng, -1, 1);
        fillUniform(b, rng, -1, 1);
        Matrix ref, vec;
        {
            kernels::ScopedIsa pin(Isa::Scalar);
            gemmNT(a, b, ref);
        }
        {
            kernels::ScopedIsa pin(Isa::Avx2);
            gemmNT(a, b, vec);
        }
        EXPECT_TRUE(bitEqual(ref, vec))
            << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(Kernels, GemmSizeOneRowsAndEmpty)
{
    // Degenerate shapes must not crash and must agree across ISAs:
    // empty product, single-element, and size-1 rows against wide
    // operands.
    for (Isa isa : {Isa::Scalar, Isa::Avx2}) {
        if (!kernels::isaAvailable(isa))
            continue;
        kernels::ScopedIsa pin(isa);
        Matrix a(0, 5), b(5, 3), c;
        gemm(a, b, c);
        EXPECT_EQ(c.rows(), 0u);
        EXPECT_EQ(c.cols(), 3u);

        Matrix a1(1, 1), b1(1, 1), c1;
        a1(0, 0) = Real(3);
        b1(0, 0) = Real(-2);
        gemm(a1, b1, c1);
        EXPECT_EQ(c1(0, 0), Real(-6));

        Matrix a2(1, 9), b2(1, 9), c2;
        for (std::size_t j = 0; j < 9; ++j) {
            a2(0, j) = Real(1);
            b2(0, j) = Real(2);
        }
        gemmNT(a2, b2, c2);
        EXPECT_EQ(c2(0, 0), Real(18));
    }
}

// --- Thread-count invariance under AVX2 -----------------------------

TEST(Kernels, Avx2GemmBitIdenticalAcrossThreadCounts)
{
    SKIP_WITHOUT_AVX2();
    kernels::ScopedIsa pin(Isa::Avx2);
    Rng rng(25);
    // Big enough to clear the parallel-dispatch FLOP threshold.
    Matrix a(96, 130), b(130, 70);
    fillUniform(a, rng, -1, 1);
    fillUniform(b, rng, -1, 1);

    base::ThreadPool::setGlobalThreads(1);
    Matrix c1, c1nt, c1tn;
    gemm(a, b, c1);
    Matrix bt(70, 130);
    fillUniform(bt, rng, -1, 1);
    gemmNT(a, bt, c1nt);
    Matrix at(130, 96);
    fillUniform(at, rng, -1, 1);
    gemmTN(at, b, c1tn);

    base::ThreadPool::setGlobalThreads(3);
    Matrix c3, c3nt, c3tn;
    gemm(a, b, c3);
    gemmNT(a, bt, c3nt);
    gemmTN(at, b, c3tn);
    base::ThreadPool::setGlobalThreads(0);

    EXPECT_TRUE(bitEqual(c1, c3));
    EXPECT_TRUE(bitEqual(c1nt, c3nt));
    EXPECT_TRUE(bitEqual(c1tn, c3tn));
}

} // namespace
} // namespace marlin::numeric
