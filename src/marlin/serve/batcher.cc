#include "marlin/serve/batcher.hh"

#include <cstring>

#include "marlin/base/instant.hh"
#include "marlin/obs/metrics.hh"
#include "marlin/obs/trace.hh"

namespace marlin::serve
{

namespace
{

/** Microsecond "le" bounds shared by the serving histograms. */
std::vector<double>
latencyBoundsUs()
{
    return {50,    100,   250,    500,    1000,  2500,
            5000,  10000, 25000,  50000,  100000};
}

obs::Histogram &
batchInferHistogram()
{
    static obs::Histogram &h = obs::Registry::instance().histogram(
        "serve.batch.infer_us", latencyBoundsUs());
    return h;
}

obs::Gauge &
batchSizeGauge()
{
    static obs::Gauge &g =
        obs::Registry::instance().gauge("serve.batch_size");
    return g;
}

obs::Counter &
requestCounter()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("serve.requests");
    return c;
}

obs::Histogram &
queueWaitHistogram()
{
    static obs::Histogram &h = obs::Registry::instance().histogram(
        "serve.request.queue_wait_us", latencyBoundsUs());
    return h;
}

} // namespace

MicroBatcher::MicroBatcher(std::size_t batch_max,
                           std::uint64_t deadline_us)
    : batchMax(batch_max > 0 ? batch_max : 1),
      deadlineNs(deadline_us * 1000)
{
}

void
MicroBatcher::add(std::uint64_t conn_id, std::uint16_t agent_id,
                  const void *obs, std::size_t count,
                  std::uint64_t now_ns)
{
    PendingRequest req;
    req.connId = conn_id;
    req.agentId = agent_id;
    req.obsOffset = obsFlat.size();
    req.enqueueNs = now_ns;
    if (obs::TraceRing *tr = obs::TraceRing::active()) {
        // Flow out: the response-write span for this request (in
        // the server's sink) carries the matching id, so a trace
        // shows accept → enqueue → infer → write per request.
        req.traceId = nextTraceId++;
        tr->record("serve_enqueue", "serve", now_ns, 0,
                   req.traceId, obs::FlowDir::Out);
    }
    obsFlat.resize(req.obsOffset + count);
    std::memcpy(obsFlat.data() + req.obsOffset, obs,
                count * sizeof(Real));
    pending.push_back(req);
    requestCounter().add();
}

bool
MicroBatcher::deadlineExpired(std::uint64_t now_ns) const
{
    if (pending.empty())
        return false;
    return now_ns - pending.front().enqueueNs >= deadlineNs;
}

std::uint64_t
MicroBatcher::nsUntilDeadline(std::uint64_t now_ns) const
{
    if (pending.empty())
        return 0;
    const std::uint64_t waited = now_ns - pending.front().enqueueNs;
    return waited >= deadlineNs ? 0 : deadlineNs - waited;
}

void
MicroBatcher::flush(ServePolicy &policy, const Sink &sink,
                    std::uint64_t now_ns)
{
    if (pending.empty())
        return;

    const std::size_t agents = policy.numAgents();
    agentRows.resize(agents);
    for (auto &rows : agentRows)
        rows.clear();
    inputs.resize(agents);
    outputs.resize(agents);
    rowInBatch.resize(pending.size());

    // Group requests by agent, preserving arrival order per agent.
    for (std::size_t i = 0; i < pending.size(); ++i) {
        rowInBatch[i] = agentRows[pending[i].agentId].size();
        agentRows[pending[i].agentId].push_back(i);
    }

    // One batched forward per agent with queued work.
    for (std::size_t a = 0; a < agents; ++a) {
        const auto &rows = agentRows[a];
        if (rows.empty())
            continue;
        const std::size_t obs_dim = policy.obsDim(a);
        inputs[a].reshape(rows.size(), obs_dim);
        for (std::size_t r = 0; r < rows.size(); ++r) {
            std::memcpy(inputs[a].row(r),
                        obsFlat.data() +
                            pending[rows[r]].obsOffset,
                        obs_dim * sizeof(Real));
        }
        policy.forward(a, inputs[a], outputs[a]);
    }

    const std::uint64_t done_ns = base::nowNsSinceStart();
    batchInferHistogram().observe(
        static_cast<double>(done_ns - now_ns) / 1000.0);
    batchSizeGauge().set(static_cast<double>(pending.size()));
    // Queue wait is the other half of the end-to-end latency: time
    // from enqueue to this flush starting, per request.
    for (const PendingRequest &req : pending)
        queueWaitHistogram().observe(
            static_cast<double>(now_ns - req.enqueueNs) / 1000.0);
    obs::recordSpan("serve_infer", "serve", now_ns, done_ns - now_ns);

    const std::size_t act_dim = policy.actDim();
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const PendingRequest &req = pending[i];
        sink(req.connId, outputs[req.agentId].row(rowInBatch[i]),
             act_dim, req.enqueueNs, req.traceId);
    }

    pending.clear();
    obsFlat.clear();
}

} // namespace marlin::serve
