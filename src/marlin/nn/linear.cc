#include "marlin/nn/linear.hh"

#include <cmath>

#include "marlin/numeric/gemm.hh"
#include "marlin/numeric/ops.hh"

namespace marlin::nn
{

Linear::Linear(std::size_t in, std::size_t out, Rng &rng)
{
    weight.init(in, out);
    bias.init(1, out);
    const Real bound = Real(1) / std::sqrt(static_cast<Real>(in));
    numeric::fillUniform(weight.value, rng, -bound, bound);
    numeric::fillUniform(bias.value, rng, -bound, bound);
}

void
Linear::forward(const Matrix &x, Matrix &y)
{
    MARLIN_ASSERT(x.cols() == weight.value.rows(),
                  "linear input dimension mismatch");
    cachedInput = x;
    numeric::gemm(x, weight.value, y);
    numeric::addRowBias(y, bias.value);
}

void
Linear::backward(const Matrix &grad_y, Matrix &grad_x)
{
    MARLIN_ASSERT(grad_y.rows() == cachedInput.rows(),
                  "backward batch mismatch — missing forward()?");
    // dW += x^T dy ; db += sum_rows(dy) ; dx = dy W^T
    numeric::gemmTN(cachedInput, grad_y, dwScratch);
    weight.grad += dwScratch;
    numeric::sumRowsInto(grad_y, dbScratch);
    bias.grad += dbScratch;
    numeric::gemmNT(grad_y, weight.value, grad_x);
}

std::vector<Param *>
Linear::params()
{
    return {&weight, &bias};
}

std::vector<const Param *>
Linear::params() const
{
    return {&weight, &bias};
}

} // namespace marlin::nn
