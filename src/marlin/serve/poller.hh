/**
 * @file
 * Readiness-notification backend for the serving event loop: epoll
 * on Linux, portable poll(2) everywhere (and on Linux when forced,
 * so the fallback stays tested on the primary platform).
 *
 * The interface is the small subset the server needs: every
 * registered fd is always read-interested, write interest toggles
 * as output queues fill and drain, and wait() reports (fd,
 * readable, writable, closed) tuples.
 */

#ifndef MARLIN_SERVE_POLLER_HH
#define MARLIN_SERVE_POLLER_HH

#include <map>
#include <string>
#include <vector>

#include <poll.h>

namespace marlin::serve
{

/** Which readiness backend a Server uses. */
enum class PollerKind
{
    Auto,  ///< epoll on Linux, poll elsewhere.
    Epoll, ///< Force epoll (fatal off Linux).
    Poll,  ///< Force the portable poll(2) backend.
};

/** Parse "auto" / "epoll" / "poll"; returns false on junk. */
bool pollerKindFromString(const std::string &name, PollerKind &out);

/** One ready fd from Poller::wait. */
struct PollEvent
{
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /** Error/hangup condition; treat as readable-then-close. */
    bool closed = false;
};

/** Level-triggered readiness multiplexer over one of the backends. */
class Poller
{
  public:
    explicit Poller(PollerKind kind);
    ~Poller();

    Poller(const Poller &) = delete;
    Poller &operator=(const Poller &) = delete;

    /** Backend actually in use after Auto resolution. */
    const char *backendName() const;

    /** Register @p fd with read interest. */
    void add(int fd);

    /** Toggle write interest for a registered fd. */
    void setWriteInterest(int fd, bool on);

    /** Deregister @p fd (call before closing it). */
    void remove(int fd);

    /**
     * Block up to @p timeout_ms (0 = return immediately) and fill
     * @p out with ready fds. Returns the event count; EINTR reports
     * as 0 events.
     */
    std::size_t wait(std::vector<PollEvent> &out, int timeout_ms);

  private:
    bool useEpoll = false;
    int epollFd = -1;
    /** fd -> write interest, for both backends. */
    std::map<int, bool> interest;
    /** poll(2) backend scratch, rebuilt per wait. */
    std::vector<struct pollfd> pollScratch;
};

} // namespace marlin::serve

#endif // MARLIN_SERVE_POLLER_HH
