#include "marlin/replay/interleaved_store.hh"

#include <cstring>
#include <string>

#include "marlin/base/serialize.hh"
#include "marlin/replay/transition_ring.hh"
#include "marlin/numeric/kernels.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

InterleavedReplayStore::InterleavedReplayStore(
    std::vector<TransitionShape> shapes_in, BufferIndex capacity)
    : shapes(std::move(shapes_in)), _capacity(capacity)
{
    MARLIN_ASSERT(!shapes.empty(), "interleaved store needs agents");
    MARLIN_ASSERT(capacity > 0, "interleaved store capacity must be > 0");
    layouts.reserve(shapes.size());
    std::size_t offset = 0;
    for (const TransitionShape &s : shapes) {
        layouts.push_back({offset, s.obsDim, s.actDim});
        offset += s.flatSize();
    }
    stride = offset;
    data.resize(static_cast<std::size_t>(capacity) * stride);
}

void
InterleavedReplayStore::writeRecord(
    BufferIndex slot, const std::vector<std::vector<Real>> &obs,
    const std::vector<std::vector<Real>> &actions,
    const std::vector<Real> &rewards,
    const std::vector<std::vector<Real>> &next_obs,
    const std::vector<bool> &dones)
{
    Real *rec = data.data() + slot * stride;
    for (std::size_t a = 0; a < shapes.size(); ++a) {
        const AgentLayout &lay = layouts[a];
        Real *dst = rec + lay.base;
        std::memcpy(dst, obs[a].data(), lay.obsDim * sizeof(Real));
        dst += lay.obsDim;
        std::memcpy(dst, actions[a].data(), lay.actDim * sizeof(Real));
        dst += lay.actDim;
        *dst++ = rewards[a];
        std::memcpy(dst, next_obs[a].data(),
                    lay.obsDim * sizeof(Real));
        dst += lay.obsDim;
        *dst = dones[a] ? Real(1) : Real(0);
    }
}

void
InterleavedReplayStore::rebuildFrom(const MultiAgentBuffer &buffers)
{
    MARLIN_ASSERT(buffers.numAgents() == shapes.size(),
                  "agent count mismatch in rebuildFrom");
    const BufferIndex n =
        std::min<BufferIndex>(buffers.size(), _capacity);
    static obs::Counter &reorgs = obs::Registry::instance().counter(
        "replay.interleaved.reorgs");
    static obs::Counter &reorg_bytes =
        obs::Registry::instance().counter(
            "replay.interleaved.reorg_bytes");
    reorgs.add();
    reorg_bytes.add(static_cast<std::uint64_t>(n) * stride *
                    sizeof(Real));
    // Reshaping pass: stream every agent's SoA arrays into the
    // record-major layout. This is the cost Figure 14 accounts for.
    for (std::size_t a = 0; a < shapes.size(); ++a) {
        const ReplayBuffer &src = buffers.agent(a);
        MARLIN_ASSERT(src.shape() == shapes[a],
                      "shape mismatch in rebuildFrom");
        const AgentLayout &lay = layouts[a];
        for (BufferIndex t = 0; t < n; ++t) {
            Real *dst = data.data() + t * stride + lay.base;
            std::memcpy(dst, src.obsRow(t),
                        lay.obsDim * sizeof(Real));
            dst += lay.obsDim;
            std::memcpy(dst, src.actRow(t),
                        lay.actDim * sizeof(Real));
            dst += lay.actDim;
            *dst++ = src.rewardAt(t);
            std::memcpy(dst, src.nextObsRow(t),
                        lay.obsDim * sizeof(Real));
            dst += lay.obsDim;
            *dst = src.doneAt(t);
        }
    }
    _size = n;
    pos = n % _capacity;
}

void
InterleavedReplayStore::append(
    const std::vector<std::vector<Real>> &obs,
    const std::vector<std::vector<Real>> &actions,
    const std::vector<Real> &rewards,
    const std::vector<std::vector<Real>> &next_obs,
    const std::vector<bool> &dones)
{
    MARLIN_ASSERT(obs.size() == shapes.size(),
                  "per-agent vectors must match agent count");
    writeRecord(pos, obs, actions, rewards, next_obs, dones);
    pos = (pos + 1) % _capacity;
    if (_size < _capacity)
        ++_size;
}

void
InterleavedReplayStore::appendRecord(const JointTransitionLayout &layout,
                                     const Real *rec)
{
    // JointTransitionLayout and this store lay fields out
    // identically (per agent: obs | act | reward | nextObs | done,
    // agent blocks back to back), so one memcpy appends the joint
    // record.
    MARLIN_ASSERT(layout.stride == stride,
                  "drain layout does not match interleaved stride");
    std::memcpy(data.data() + pos * stride, rec,
                stride * sizeof(Real));
    pos = (pos + 1) % _capacity;
    if (_size < _capacity)
        ++_size;
}

void
InterleavedReplayStore::gatherAgent(std::size_t agent,
                                    const IndexPlan &plan,
                                    AgentBatch &out,
                                    AccessTrace *trace) const
{
    MARLIN_ASSERT(agent < shapes.size(), "agent out of range");
    const TransitionShape &shape = shapes[agent];
    const AgentLayout &lay = layouts[agent];
    const std::size_t batch = plan.batchSize();
    out.resize(batch, shape);

    const numeric::kernels::KernelTable &kt =
        numeric::kernels::active();
    for (std::size_t b = 0; b < batch; ++b) {
        const BufferIndex idx = plan.indices[b];
        MARLIN_ASSERT(idx < _size,
                      "gather index beyond valid transitions");
        const Real *src = record(idx) + lay.base;
        if (MARLIN_UNLIKELY(trace != nullptr))
            trace->record(src, shape.flatSize() * sizeof(Real));
        kt.copy(src, out.obs.row(b), lay.obsDim);
        src += lay.obsDim;
        kt.copy(src, out.actions.row(b), lay.actDim);
        src += lay.actDim;
        out.rewards(b, 0) = *src++;
        kt.copy(src, out.nextObs.row(b), lay.obsDim);
        src += lay.obsDim;
        out.dones(b, 0) = *src;
    }
}

void
InterleavedReplayStore::gatherAllAgents(const IndexPlan &plan,
                                        std::vector<AgentBatch> &out,
                                        AccessTrace *trace) const
{
    const std::size_t n = shapes.size();
    const std::size_t batch = plan.batchSize();
    out.resize(n);
    for (std::size_t a = 0; a < n; ++a)
        out[a].resize(batch, shapes[a]);

    // Single loop over the common indices: each iteration touches
    // one contiguous record holding every agent's transition.
    const numeric::kernels::KernelTable &kt =
        numeric::kernels::active();
    static obs::Counter &recs = obs::Registry::instance().counter(
        "replay.interleaved.gather_records");
    static obs::Counter &bytes = obs::Registry::instance().counter(
        "replay.interleaved.gather_bytes");
    recs.add(batch);
    bytes.add(batch * stride * sizeof(Real));
    for (std::size_t b = 0; b < batch; ++b) {
        const BufferIndex idx = plan.indices[b];
        MARLIN_ASSERT(idx < _size,
                      "gather index beyond valid transitions");
        const Real *rec = record(idx);
        if (MARLIN_UNLIKELY(trace != nullptr))
            trace->record(rec, stride * sizeof(Real));
        for (std::size_t a = 0; a < n; ++a) {
            const AgentLayout &lay = layouts[a];
            const Real *src = rec + lay.base;
            AgentBatch &dst = out[a];
            kt.copy(src, dst.obs.row(b), lay.obsDim);
            src += lay.obsDim;
            kt.copy(src, dst.actions.row(b), lay.actDim);
            src += lay.actDim;
            dst.rewards(b, 0) = *src++;
            kt.copy(src, dst.nextObs.row(b), lay.obsDim);
            src += lay.obsDim;
            dst.dones(b, 0) = *src;
        }
    }
}

void
InterleavedReplayStore::saveState(std::ostream &os) const
{
    writePod<std::uint64_t>(os, stride);
    writePod<std::uint64_t>(os, _capacity);
    writePod<std::uint64_t>(os, _size);
    writePod<std::uint64_t>(os, pos);
    os.write(reinterpret_cast<const char *>(data.data()),
             static_cast<std::streamsize>(_size * stride *
                                          sizeof(Real)));
}

StoreLoadResult
InterleavedReplayStore::loadState(std::istream &is)
{
    std::uint64_t file_stride = 0, capacity = 0;
    is.read(reinterpret_cast<char *>(&file_stride),
            sizeof(file_stride));
    is.read(reinterpret_cast<char *>(&capacity), sizeof(capacity));
    if (!is)
        return StoreLoadResult::fail(
            StoreLoadError::Truncated,
            "interleaved checkpoint header truncated");
    if (file_stride != stride || capacity != _capacity)
        return StoreLoadResult::fail(
            StoreLoadError::ShapeMismatch,
            "interleaved checkpoint layout (stride " +
                std::to_string(file_stride) + ", cap " +
                std::to_string(capacity) +
                ") does not match store (stride " +
                std::to_string(stride) + ", cap " +
                std::to_string(_capacity) + ")");
    std::uint64_t size = 0, cursor = 0;
    is.read(reinterpret_cast<char *>(&size), sizeof(size));
    is.read(reinterpret_cast<char *>(&cursor), sizeof(cursor));
    if (!is)
        return StoreLoadResult::fail(
            StoreLoadError::Truncated,
            "interleaved checkpoint cursors truncated");
    if (size > _capacity || cursor >= _capacity)
        return StoreLoadResult::fail(
            StoreLoadError::ShapeMismatch,
            "interleaved checkpoint cursors (size " +
                std::to_string(size) + ", pos " +
                std::to_string(cursor) + ") exceed capacity " +
                std::to_string(_capacity));
    // Stage the record data before committing anything, so a
    // truncated payload leaves the store's previous contents intact
    // (the StoreLoadResult contract).
    std::vector<Real> staged(static_cast<std::size_t>(size) * stride);
    is.read(reinterpret_cast<char *>(staged.data()),
            static_cast<std::streamsize>(staged.size() *
                                         sizeof(Real)));
    if (!is)
        return StoreLoadResult::fail(
            StoreLoadError::Truncated,
            "interleaved checkpoint data truncated");
    _size = size;
    pos = cursor;
    if (!staged.empty())
        std::memcpy(data.data(), staged.data(),
                    staged.size() * sizeof(Real));
    return StoreLoadResult::ok();
}

} // namespace marlin::replay
