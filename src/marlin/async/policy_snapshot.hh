/**
 * @file
 * Versioned actor-weight snapshots: how learner updates reach the
 * rollout threads.
 *
 * The learner publishes the current actor parameters of every agent
 * into a flat buffer under a mutex and bumps an atomic version;
 * actors poll the version (one relaxed-ish atomic load, no lock) at
 * episode boundaries and only take the mutex when there is something
 * new to copy. Actors therefore run on a slightly stale policy
 * between refreshes — the standard async actor-learner trade the
 * README's determinism caveats spell out.
 */

#ifndef MARLIN_ASYNC_POLICY_SNAPSHOT_HH
#define MARLIN_ASYNC_POLICY_SNAPSHOT_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "marlin/base/types.hh"

namespace marlin::core
{
class CtdeTrainerBase;
}

namespace marlin::async
{

/** Mutex-guarded flat copy of every agent's actor parameters. */
class PolicySnapshot
{
  public:
    /**
     * Learner: overwrite the snapshot with @p source's current actor
     * weights (every agent) and advance the version.
     */
    void publish(core::CtdeTrainerBase &source);

    /**
     * Actor: if the snapshot is newer than @p seen_version, copy it
     * into @p policy's actors and advance @p seen_version. Returns
     * true when weights were refreshed. @p policy must have the same
     * architecture as the publishing trainer.
     */
    bool refresh(core::CtdeTrainerBase &policy,
                 std::uint64_t &seen_version);

    /** Publications so far (0 = nothing published yet). */
    std::uint64_t
    version() const noexcept
    {
        return ver.load(std::memory_order_acquire);
    }

    /**
     * Size the per-actor adopted-version table. Call once, before
     * any thread runs; actors then stamp the version they adopt so
     * the learner can surface policy staleness (version() minus the
     * slowest actor's adopted version) as a live gauge.
     */
    void
    registerActors(std::size_t n)
    {
        adopted =
            std::make_unique<std::atomic<std::uint64_t>[]>(n);
        for (std::size_t i = 0; i < n; ++i)
            adopted[i].store(0, std::memory_order_relaxed);
        adoptedCount = n;
    }

    /** Actor @p actor now runs snapshot @p version (relaxed: the
     *  gauge is approximate by nature). */
    void
    noteAdopted(std::size_t actor, std::uint64_t version) noexcept
    {
        if (actor < adoptedCount)
            adopted[actor].store(version,
                                 std::memory_order_relaxed);
    }

    /** Oldest adopted version across registered actors (0 when no
     *  actors are registered or none refreshed yet). */
    std::uint64_t
    minAdoptedVersion() const noexcept
    {
        if (adoptedCount == 0)
            return 0;
        std::uint64_t lo = ~std::uint64_t{0};
        for (std::size_t i = 0; i < adoptedCount; ++i)
            lo = std::min(
                lo, adopted[i].load(std::memory_order_relaxed));
        return lo;
    }

  private:
    std::mutex mutex;
    std::atomic<std::uint64_t> ver{0};
    /** Per agent: actor params flattened in layer order. */
    std::vector<std::vector<Real>> flat;
    /** Per actor: snapshot version it last adopted. */
    std::unique_ptr<std::atomic<std::uint64_t>[]> adopted;
    std::size_t adoptedCount = 0;
};

} // namespace marlin::async

#endif // MARLIN_ASYNC_POLICY_SNAPSHOT_HH
