#include "marlin/replay/rank_sampler.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "marlin/base/logging.hh"
#include "marlin/base/serialize.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

RankBasedSampler::RankBasedSampler(PerConfig config)
    : _config(config), beta(config.beta)
{
    tdError.assign(_config.capacity, Real(0));
    order.resize(_config.capacity);
    std::iota(order.begin(), order.end(), BufferIndex{0});
    // The cumulative table tracks the filled prefix of the buffer,
    // which grows during training; reserving the full capacity up
    // front keeps its doubling reallocations out of steady-state
    // plans.
    cumulative.reserve(_config.capacity);
}

void
RankBasedSampler::setResortInterval(std::uint64_t interval)
{
    MARLIN_ASSERT(interval > 0, "resort interval must be positive");
    resortInterval = interval;
}

void
RankBasedSampler::onAdd(BufferIndex idx)
{
    const BufferIndex slot = idx % _config.capacity;
    // New transitions get the running max TD so they are replayed
    // promptly, matching the proportional sampler's policy.
    tdError[slot] = maxTd;
    known = std::max<BufferIndex>(known, slot + 1);
    dirty = true;
}

void
RankBasedSampler::updatePriorities(
    const std::vector<BufferIndex> &priority_ids,
    const std::vector<Real> &td_errors)
{
    MARLIN_ASSERT(priority_ids.size() == td_errors.size(),
                  "priority update size mismatch");
    for (std::size_t i = 0; i < priority_ids.size(); ++i) {
        const BufferIndex slot = priority_ids[i] % _config.capacity;
        tdError[slot] = std::abs(td_errors[i]);
        maxTd = std::max(maxTd, tdError[slot]);
        known = std::max<BufferIndex>(known, slot + 1);
    }
    dirty = true;
}

void
RankBasedSampler::resort()
{
    // Resorts are the rank sampler's amortized cost center; the
    // counter makes the resort interval's effect visible.
    static obs::Counter &resorts =
        obs::Registry::instance().counter("replay.rank.resorts");
    resorts.add();
    std::sort(order.begin(), order.begin() + known,
              [this](BufferIndex a, BufferIndex b) {
                  return tdError[a] > tdError[b];
              });
    dirty = false;
    plansSinceSort = 0;
}

void
RankBasedSampler::planInto(BufferIndex buffer_size, std::size_t batch,
                           Rng &rng, IndexPlan &out)
{
    MARLIN_ASSERT(buffer_size > 0, "sampling from an empty buffer");
    const BufferIndex n = std::min<BufferIndex>(
        std::min(buffer_size, known), _config.capacity);
    MARLIN_ASSERT(n > 0, "rank sampler used before any onAdd");
    static obs::Counter &plans =
        obs::Registry::instance().counter("replay.rank.plans");
    plans.add();
    if (dirty && plansSinceSort++ % resortInterval == 0)
        resort();

    // P(rank) = (1/rank)^alpha / Z, sampled by stratified inverse
    // transform over the cumulative mass. The cumulative table only
    // depends on n and alpha, so it is cached between plans.
    const double alpha = _config.alpha;
    if (cumulative.size() != n) {
        cumulative.resize(n);
        double acc = 0.0;
        for (BufferIndex r = 0; r < n; ++r) {
            acc += std::pow(1.0 / static_cast<double>(r + 1), alpha);
            cumulative[r] = acc;
        }
    }
    const double z = cumulative.back();

    out.indices.resize(batch);
    out.weights.resize(batch);
    out.priorityIds.resize(batch);
    std::vector<double> &raw = rawWeights;
    raw.resize(batch);
    double max_w = 0;
    const double segment = z / static_cast<double>(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        const double target =
            (static_cast<double>(b) + rng.uniform()) * segment;
        const auto it = std::lower_bound(cumulative.begin(),
                                         cumulative.end(), target);
        const BufferIndex rank = static_cast<BufferIndex>(
            std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                     static_cast<std::ptrdiff_t>(n) -
                                         1));
        const BufferIndex slot = order[rank];
        const double p =
            std::pow(1.0 / static_cast<double>(rank + 1), alpha) / z;
        const double w =
            std::pow(1.0 / (static_cast<double>(n) * p),
                     static_cast<double>(beta));
        out.indices[b] = std::min<BufferIndex>(slot, buffer_size - 1);
        out.priorityIds[b] = slot;
        raw[b] = w;
        max_w = std::max(max_w, w);
    }
    const double inv = max_w > 0 ? 1.0 / max_w : 1.0;
    for (std::size_t b = 0; b < batch; ++b)
        out.weights[b] = static_cast<Real>(raw[b] * inv);

    if (_config.betaAnneal > Real(0))
        beta = std::min(Real(1), beta + _config.betaAnneal);
}

void
RankBasedSampler::saveState(std::ostream &os) const
{
    writePod<Real>(os, beta);
    writeVector(os, tdError);
    writeVector(os, order);
    writePod<std::uint8_t>(os, dirty ? 1 : 0);
    writePod<std::uint64_t>(os, plansSinceSort);
    writePod<std::uint64_t>(os, resortInterval);
    writePod<std::uint64_t>(os, known);
    writePod<Real>(os, maxTd);
    writeVector(os, cumulative);
}

void
RankBasedSampler::loadState(std::istream &is)
{
    beta = readPod<Real>(is);
    tdError = readVector<Real>(is);
    order = readVector<BufferIndex>(is);
    dirty = readPod<std::uint8_t>(is) != 0;
    plansSinceSort = readPod<std::uint64_t>(is);
    resortInterval = readPod<std::uint64_t>(is);
    known = readPod<std::uint64_t>(is);
    maxTd = readPod<Real>(is);
    cumulative = readVector<double>(is);
    // Restore the full-capacity reservation the constructor made, so
    // a resumed run is as allocation-free as an uninterrupted one.
    cumulative.reserve(_config.capacity);
}

} // namespace marlin::replay
