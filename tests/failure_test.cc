/**
 * @file
 * Failure-injection tests: every misuse MARLIN_ASSERT guards
 * against must die loudly instead of corrupting state. These death
 * tests pin the library's precondition contract.
 */

#include <gtest/gtest.h>

#include "marlin/core/maddpg.hh"
#include "marlin/env/environment.hh"
#include "marlin/memsim/cache.hh"
#include "marlin/nn/loss.hh"
#include "marlin/nn/mlp.hh"
#include "marlin/numeric/gemm.hh"
#include "marlin/numeric/ops.hh"
#include "marlin/replay/gather.hh"
#include "marlin/replay/locality_sampler.hh"
#include "marlin/replay/sum_tree.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin
{
namespace
{

TEST(FailureDeath, GatherIndexBeyondValidTransitions)
{
    replay::ReplayBuffer buf({3, 5}, 16);
    std::vector<Real> obs(3), next(3);
    std::vector<Real> act(5, 0);
    buf.add(obs, act, 0, next, false);
    replay::IndexPlan plan;
    plan.indices = {5}; // Only slot 0 is valid.
    replay::AgentBatch batch;
    EXPECT_DEATH(gatherAgentBatch(buf, plan, batch),
                 "gather index beyond valid");
}

TEST(FailureDeath, ReplayAddDimensionMismatch)
{
    replay::ReplayBuffer buf({3, 5}, 16);
    std::vector<Real> wrong_obs(7), next(3);
    std::vector<Real> act(5, 0);
    EXPECT_DEATH(buf.add(wrong_obs, act, 0, next, false),
                 "observation size mismatch");
}

TEST(FailureDeath, SamplingFromEmptyBuffer)
{
    replay::UniformSampler sampler;
    Rng rng(1);
    EXPECT_DEATH(sampler.plan(0, 16, rng), "empty");
}

TEST(FailureDeath, SumTreeIndexOutOfRange)
{
    replay::SumTree tree(8);
    EXPECT_DEATH(tree.set(8, 1.0), "out of range");
}

TEST(FailureDeath, SumTreeNegativePriority)
{
    replay::SumTree tree(8);
    EXPECT_DEATH(tree.set(0, -1.0), "non-negative");
}

TEST(FailureDeath, SumTreeFindOnEmptyTree)
{
    replay::SumTree tree(8);
    EXPECT_DEATH(tree.find(0.5), "empty sum tree");
}

TEST(FailureDeath, HconcatRowMismatch)
{
    numeric::Matrix a(2, 3), b(3, 3);
    EXPECT_DEATH(numeric::hconcat({&a, &b}), "row mismatch");
}

TEST(FailureDeath, GemmInnerDimensionMismatch)
{
    numeric::Matrix a(2, 3), b(4, 2), c;
    EXPECT_DEATH(numeric::gemm(a, b, c), "inner dimension");
}

TEST(FailureDeath, MlpForwardWrongInputWidth)
{
    Rng rng(1);
    nn::MlpConfig cfg;
    cfg.inputDim = 4;
    cfg.hiddenDims = {4};
    cfg.outputDim = 2;
    nn::Mlp net(cfg, rng);
    numeric::Matrix x(1, 5);
    EXPECT_DEATH(net.forward(x), "input dimension mismatch");
}

TEST(FailureDeath, EnvironmentWrongActionCount)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 1);
    environment->reset();
    EXPECT_DEATH(environment->step({1, 2}), "one action per");
}

TEST(FailureDeath, EnvironmentActionOutOfRange)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 1);
    environment->reset();
    EXPECT_DEATH(environment->step({1, 2, 9}),
                 "action out of range");
}

TEST(FailureDeath, TrainerObservationCountMismatch)
{
    core::TrainConfig config;
    config.hiddenDims = {4};
    core::MaddpgTrainer trainer(
        {6, 6}, 5, config,
        [] { return std::make_unique<replay::UniformSampler>(); });
    std::vector<std::vector<Real>> obs(1, std::vector<Real>(6));
    EXPECT_DEATH(trainer.selectActions(obs, 0),
                 "one observation per agent");
}

TEST(FailureDeath, CacheLineSizeMustBePowerOfTwo)
{
    EXPECT_DEATH(memsim::CacheModel({1024, 48, 2}), "power of two");
}

TEST(FailureDeath, CacheSmallerThanOneSet)
{
    EXPECT_DEATH(memsim::CacheModel({64, 64, 4}),
                 "smaller than one set");
}

TEST(FailureDeath, WeightedMseWrongWeightCount)
{
    numeric::Matrix pred(4, 1), target(4, 1), grad;
    std::vector<Real> weights(3, Real(1));
    EXPECT_DEATH(nn::weightedMseLoss(pred, target, weights, grad),
                 "one importance weight per batch row");
}

} // namespace
} // namespace marlin
