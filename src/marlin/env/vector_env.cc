#include "marlin/env/vector_env.hh"

#include "marlin/base/logging.hh"
#include "marlin/base/thread_pool.hh"

namespace marlin::env
{

namespace
{

// Lanes below this count step serially: dispatching the pool costs
// more than a handful of particle-physics ticks.
constexpr std::size_t parallelLaneThreshold = 4;

bool
useParallel(base::ThreadPool &pool, std::size_t lanes)
{
    return pool.numThreads() > 1 && lanes >= parallelLaneThreshold &&
           !base::ThreadPool::inWorker();
}

} // namespace

VectorEnvironment::VectorEnvironment(const EnvFactory &factory,
                                     std::size_t count)
{
    MARLIN_ASSERT(count >= 1, "vector env needs at least one lane");
    MARLIN_ASSERT(factory != nullptr, "vector env needs a factory");
    lanes.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        lanes.push_back(factory(i));
        MARLIN_ASSERT(lanes.back() != nullptr,
                      "factory returned a null environment");
    }
    const std::size_t agents = lanes.front()->numAgents();
    for (const auto &lane_env : lanes) {
        MARLIN_ASSERT(lane_env->numAgents() == agents,
                      "vector env lanes must be homogeneous");
        for (std::size_t a = 0; a < agents; ++a) {
            MARLIN_ASSERT(lane_env->obsDim(a) ==
                              lanes.front()->obsDim(a),
                          "vector env lanes must share obs shapes");
        }
    }
}

std::vector<std::vector<std::vector<Real>>>
VectorEnvironment::reset()
{
    // Each lane owns its Environment and RNG, and each writes only
    // its own slot of the preallocated result, so lanes fan out on
    // the pool with no synchronization and bit-identical outcomes
    // for any thread count.
    std::vector<std::vector<std::vector<Real>>> obs(lanes.size());
    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, lanes.size())) {
        for (std::size_t i = 0; i < lanes.size(); ++i)
            obs[i] = lanes[i]->reset();
        return obs;
    }
    pool.parallelFor(0, lanes.size(), 1,
                     [&](std::size_t i0, std::size_t i1) {
                         for (std::size_t i = i0; i < i1; ++i)
                             obs[i] = lanes[i]->reset();
                     });
    return obs;
}

std::vector<std::vector<Real>>
VectorEnvironment::resetLane(std::size_t i)
{
    MARLIN_ASSERT(i < lanes.size(), "lane index out of range");
    return lanes[i]->reset();
}

std::vector<StepResult>
VectorEnvironment::step(const std::vector<std::vector<int>> &actions)
{
    MARLIN_ASSERT(actions.size() == lanes.size(),
                  "one action vector per lane required");
    std::vector<StepResult> results(lanes.size());
    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, lanes.size())) {
        for (std::size_t i = 0; i < lanes.size(); ++i)
            results[i] = lanes[i]->step(actions[i]);
        return results;
    }
    pool.parallelFor(0, lanes.size(), 1,
                     [&](std::size_t i0, std::size_t i1) {
                         for (std::size_t i = i0; i < i1; ++i)
                             results[i] = lanes[i]->step(actions[i]);
                     });
    return results;
}

} // namespace marlin::env
