#include "marlin/core/checkpoint.hh"

#include <fstream>

#include "marlin/base/serialize.hh"
#include "marlin/nn/serialize.hh"

namespace marlin::core
{

void
saveTrainer(std::ostream &os, CtdeTrainerBase &trainer)
{
    writeHeader(os, checkpointMagic, checkpointVersion);
    writeString(os, trainer.name());
    writePod<std::uint64_t>(os, trainer.numAgents());
    for (std::size_t i = 0; i < trainer.numAgents(); ++i) {
        AgentNetworks &net = trainer.networks(i);
        const bool twin = net.critic2 != nullptr;
        writePod<std::uint8_t>(os, twin ? 1 : 0);
        nn::saveMlp(os, net.actor);
        nn::saveMlp(os, net.critic);
        nn::saveMlp(os, net.targetActor);
        nn::saveMlp(os, net.targetCritic);
        if (twin) {
            nn::saveMlp(os, *net.critic2);
            nn::saveMlp(os, *net.targetCritic2);
        }
        nn::saveAdam(os, net.actorOpt);
        nn::saveAdam(os, net.criticOpt);
    }
}

void
loadTrainer(std::istream &is, CtdeTrainerBase &trainer)
{
    readHeader(is, checkpointMagic, checkpointVersion);
    const std::string algo = readString(is);
    if (algo != trainer.name())
        fatal("checkpoint was written by '%s' but trainer is '%s'",
              algo.c_str(), trainer.name().c_str());
    const auto agents = readPod<std::uint64_t>(is);
    if (agents != trainer.numAgents())
        fatal("checkpoint has %llu agents, trainer has %zu",
              static_cast<unsigned long long>(agents),
              trainer.numAgents());
    for (std::size_t i = 0; i < trainer.numAgents(); ++i) {
        AgentNetworks &net = trainer.networks(i);
        const bool twin_ckpt = readPod<std::uint8_t>(is) != 0;
        const bool twin = net.critic2 != nullptr;
        if (twin_ckpt != twin)
            fatal("checkpoint twin-critic flag mismatch for agent "
                  "%zu",
                  i);
        nn::loadMlp(is, net.actor);
        nn::loadMlp(is, net.critic);
        nn::loadMlp(is, net.targetActor);
        nn::loadMlp(is, net.targetCritic);
        if (twin) {
            nn::loadMlp(is, *net.critic2);
            nn::loadMlp(is, *net.targetCritic2);
        }
        nn::loadAdam(is, net.actorOpt);
        nn::loadAdam(is, net.criticOpt);
    }
}

void
saveTrainerFile(const std::string &path, CtdeTrainerBase &trainer)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    saveTrainer(os, trainer);
    if (!os)
        fatal("failed while writing checkpoint '%s'", path.c_str());
}

void
loadTrainerFile(const std::string &path, CtdeTrainerBase &trainer)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open checkpoint '%s'", path.c_str());
    loadTrainer(is, trainer);
}

} // namespace marlin::core
