/**
 * @file
 * Abstract trainer interface consumed by the training loop, plus the
 * sampler-factory type that selects the paper's sampling strategy.
 */

#ifndef MARLIN_CORE_TRAINER_HH
#define MARLIN_CORE_TRAINER_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "marlin/core/config.hh"
#include "marlin/profile/timer.hh"
#include "marlin/replay/interleaved_store.hh"
#include "marlin/replay/replay_buffer.hh"
#include "marlin/replay/sampler.hh"

namespace marlin::core
{

/** Per-update diagnostics averaged over agents. */
struct UpdateStats
{
    Real criticLoss = 0;
    Real actorLoss = 0;
    Real meanAbsTd = 0;
    /**
     * L2 norms of the critic/actor loss gradients (dL/dQ resp.
     * dL/dlogits), averaged over agents. Telemetry diagnostics only:
     * computed from values the update already produced, so recording
     * them cannot perturb the training numerics.
     */
    Real criticGradNorm = 0;
    Real actorGradNorm = 0;
    /**
     * Agent updates in which a non-finite loss or gradient was
     * detected this call (0 on a healthy update). Under
     * HealthGuardPolicy::Off the poisoned updates were applied
     * anyway; under every other policy they were skipped before
     * touching the weights.
     */
    std::size_t nonFiniteCount = 0;
};

/**
 * Creates one Sampler per agent trainer. Called N times so that
 * prioritized samplers keep independent per-agent priority trees.
 */
using SamplerFactory =
    std::function<std::unique_ptr<replay::Sampler>()>;

/** Trainer interface: action selection plus update-all-trainers. */
class Trainer
{
  public:
    virtual ~Trainer() = default;

    /** Workload name ("maddpg", "matd3"). */
    virtual std::string name() const = 0;

    virtual std::size_t numAgents() const = 0;

    /**
     * Action-selection phase: one discrete action per agent from the
     * current policies (with exploration), written into @p out. The
     * out-parameter form is the steady-state hot path: a warm call
     * reuses @p out's capacity and performs no heap allocation.
     *
     * @param obs Per-agent observations.
     * @param episode Episode number (drives epsilon decay).
     * @param out Destination, resized to one action per agent.
     */
    virtual void
    selectActionsInto(const std::vector<std::vector<Real>> &obs,
                      std::size_t episode, std::vector<int> &out) = 0;

    /** Convenience by-value form of selectActionsInto. */
    std::vector<int>
    selectActions(const std::vector<std::vector<Real>> &obs,
                  std::size_t episode)
    {
        std::vector<int> out;
        selectActionsInto(obs, episode, out);
        return out;
    }

    /** Greedy actions (no exploration), for evaluation. */
    virtual std::vector<int>
    greedyActions(const std::vector<std::vector<Real>> &obs) = 0;

    /**
     * Continuous-control action selection (ActionMode::Continuous
     * trainers only): one clipped 2D force per agent with
     * exploration noise, written into @p out. Panics on discrete
     * trainers.
     */
    virtual void selectContinuousActionsInto(
        const std::vector<std::vector<Real>> &obs, std::size_t episode,
        std::vector<std::array<Real, 2>> &out)
    {
        (void)obs;
        (void)episode;
        (void)out;
        panic("trainer '%s' does not support continuous actions",
              name().c_str());
    }

    /** Convenience by-value form of selectContinuousActionsInto. */
    std::vector<std::array<Real, 2>>
    selectContinuousActions(const std::vector<std::vector<Real>> &obs,
                            std::size_t episode)
    {
        std::vector<std::array<Real, 2>> out;
        selectContinuousActionsInto(obs, episode, out);
        return out;
    }

    /** Greedy continuous actions (no exploration). */
    virtual std::vector<std::array<Real, 2>>
    greedyContinuousActions(const std::vector<std::vector<Real>> &obs)
    {
        panic("trainer '%s' does not support continuous actions",
              name().c_str());
    }

    /** Notify samplers that slot @p idx was (over)written. */
    virtual void onTransitionAdded(BufferIndex idx) = 0;

    /**
     * The paper's update-all-trainers stage: for every agent, sample
     * a mini-batch, compute target Q, and update critic/actor.
     *
     * @param store Replay storage behind the ReplayStore interface
     *              (per-agent, interleaved or sharded/out-of-core) —
     *              samplers plan over store.size() and batches are
     *              gathered through store.gatherAll, so trainers are
     *              agnostic to the storage layout.
     * @param timer Phase accounting sink.
     */
    virtual UpdateStats update(const replay::ReplayStore &store,
                               profile::PhaseTimer &timer) = 0;
};

} // namespace marlin::core

#endif // MARLIN_CORE_TRAINER_HH
