/**
 * @file
 * Fully-connected layer with manual backprop.
 */

#ifndef MARLIN_NN_LINEAR_HH
#define MARLIN_NN_LINEAR_HH

#include <vector>

#include "marlin/base/random.hh"
#include "marlin/numeric/matrix.hh"

namespace marlin::nn
{

using numeric::Matrix;

/**
 * A trainable parameter: value plus accumulated gradient. Layers own
 * their Params; optimizers receive stable pointers to them.
 */
struct Param
{
    Matrix value; ///< Current parameter values.
    Matrix grad;  ///< Accumulated gradient (same shape).

    /** Allocate with the given shape, gradient zeroed. */
    void
    init(std::size_t rows, std::size_t cols)
    {
        value.resize(rows, cols);
        grad.resize(rows, cols);
    }

    /** Zero the gradient (start of a backward pass). */
    void zeroGrad() { grad.zero(); }
};

/**
 * y = x W + b, with W of shape (in, out) and b of shape (1, out).
 *
 * forward() caches the input so that a subsequent backward() can
 * compute the weight gradient; exactly one backward per forward.
 */
class Linear
{
  public:
    Linear() = default;

    /**
     * Construct and initialize with the fan-in uniform scheme
     * U(-1/sqrt(in), 1/sqrt(in)) used by the reference MADDPG code.
     */
    Linear(std::size_t in, std::size_t out, Rng &rng);

    std::size_t inDim() const { return weight.value.rows(); }
    std::size_t outDim() const { return weight.value.cols(); }

    /** Compute y = x W + b; caches x. */
    void forward(const Matrix &x, Matrix &y);

    /**
     * Given dL/dy, accumulate dL/dW and dL/db, and produce dL/dx.
     * @pre forward() was called with the matching batch.
     */
    void backward(const Matrix &grad_y, Matrix &grad_x);

    /** Stable pointers to the layer's parameters. */
    std::vector<Param *> params();
    std::vector<const Param *> params() const;

    Param weight; ///< (in, out)
    Param bias;   ///< (1, out)

  private:
    Matrix cachedInput;
    // Persistent backward scratch (dL/dW, dL/db) so steady-state
    // backprop performs no heap allocations.
    Matrix dwScratch;
    Matrix dbScratch;
};

} // namespace marlin::nn

#endif // MARLIN_NN_LINEAR_HH
