/**
 * @file
 * Unit tests for marlin/core: agent networks, exploration schedule,
 * trainer mechanics (action selection, target updates, PER wiring,
 * MATD3 policy delay), and the training loop's phase accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "marlin/base/thread_pool.hh"
#include "marlin/core/checkpoint.hh"
#include "marlin/core/maddpg.hh"
#include "marlin/core/matd3.hh"
#include "marlin/core/train_loop.hh"
#include "marlin/env/environment.hh"
#include "marlin/replay/prioritized_sampler.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin::core
{
namespace
{

core::SamplerFactory
uniformFactory()
{
    return [] { return std::make_unique<replay::UniformSampler>(); };
}

TrainConfig
tinyConfig()
{
    TrainConfig c;
    c.batchSize = 16;
    c.bufferCapacity = 512;
    c.warmupTransitions = 32;
    c.updateEvery = 20;
    c.hiddenDims = {8, 8};
    c.seed = 3;
    return c;
}

TEST(EpsilonSchedule, LinearDecay)
{
    EpsilonSchedule s(Real(1.0), Real(0.1), 100);
    EXPECT_NEAR(s.value(0), 1.0, 1e-6);
    EXPECT_NEAR(s.value(50), 0.55, 1e-6);
    EXPECT_NEAR(s.value(100), 0.1, 1e-6);
    EXPECT_NEAR(s.value(10000), 0.1, 1e-6);
}

TEST(EpsilonSchedule, ZeroDecayIsConstantEnd)
{
    EpsilonSchedule s(Real(0.5), Real(0.2), 0);
    EXPECT_NEAR(s.value(0), 0.2, 1e-6);
}

TEST(OrnsteinUhlenbeck, MeanRevertsAndResets)
{
    OrnsteinUhlenbeckNoise noise(4);
    Rng rng(1);
    double acc = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto &x = noise.step(rng);
        acc += x[0];
    }
    EXPECT_LT(std::abs(acc / 5000), 0.3); // Hovers around zero.
    noise.reset();
    for (Real v : noise.state())
        EXPECT_EQ(v, Real(0));
}

TEST(AgentNetworks, ShapesAndTargetInit)
{
    Rng rng(2);
    AgentNetworksConfig cfg;
    cfg.obsDim = 10;
    cfg.actDim = 5;
    cfg.jointDim = 40;
    cfg.hiddenDims = {8, 8};
    AgentNetworks nets(cfg, rng);

    Matrix obs(2, 10);
    Matrix logits = nets.actor.forward(obs);
    EXPECT_EQ(logits.cols(), 5u);
    Matrix joint(2, 40);
    EXPECT_EQ(nets.critic.forward(joint).cols(), 1u);
    EXPECT_EQ(nets.critic2, nullptr);

    // Target nets start identical to the online nets.
    Matrix a = nets.actor.forward(obs);
    Matrix ta = nets.targetActor.forward(obs);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.data()[i], ta.data()[i]);
}

TEST(AgentNetworks, TwinCriticAllocatedForMatd3)
{
    Rng rng(3);
    AgentNetworksConfig cfg;
    cfg.obsDim = 4;
    cfg.actDim = 5;
    cfg.jointDim = 18;
    cfg.twinCritic = true;
    AgentNetworks nets(cfg, rng);
    ASSERT_NE(nets.critic2, nullptr);
    ASSERT_NE(nets.targetCritic2, nullptr);
    Matrix joint(1, 18);
    EXPECT_EQ(nets.critic2->forward(joint).cols(), 1u);
}

TEST(AgentNetworks, SoftUpdateMovesTargets)
{
    Rng rng(4);
    AgentNetworksConfig cfg;
    cfg.obsDim = 4;
    cfg.actDim = 5;
    cfg.jointDim = 18;
    AgentNetworks nets(cfg, rng);
    // Perturb the online actor, then soft-update.
    nets.actor.params()[0]->value(0, 0) += Real(1);
    const Real before = nets.targetActor.params()[0]->value(0, 0);
    nets.softUpdateTargets(Real(0.5));
    const Real after = nets.targetActor.params()[0]->value(0, 0);
    EXPECT_NEAR(after - before, 0.5, 1e-5);
}

TEST(MaddpgTrainer, SelectActionsInRange)
{
    MaddpgTrainer trainer({6, 6, 6}, 5, tinyConfig(),
                          uniformFactory());
    std::vector<std::vector<Real>> obs(3, std::vector<Real>(6, 0.1f));
    for (int rep = 0; rep < 50; ++rep) {
        auto actions = trainer.selectActions(obs, 0);
        ASSERT_EQ(actions.size(), 3u);
        for (int a : actions) {
            EXPECT_GE(a, 0);
            EXPECT_LT(a, 5);
        }
    }
}

TEST(MaddpgTrainer, GreedyActionsDeterministic)
{
    MaddpgTrainer trainer({6, 6}, 5, tinyConfig(), uniformFactory());
    std::vector<std::vector<Real>> obs(2, std::vector<Real>(6, 0.3f));
    auto a = trainer.greedyActions(obs);
    auto b = trainer.greedyActions(obs);
    EXPECT_EQ(a, b);
}

TEST(MaddpgTrainer, TransitionShapesMatchDims)
{
    MaddpgTrainer trainer({7, 9}, 5, tinyConfig(), uniformFactory());
    auto shapes = trainer.transitionShapes();
    ASSERT_EQ(shapes.size(), 2u);
    EXPECT_EQ(shapes[0].obsDim, 7u);
    EXPECT_EQ(shapes[1].obsDim, 9u);
    EXPECT_EQ(shapes[0].actDim, 5u);
}

/** Fill a MultiAgentBuffer with random but consistent transitions. */
void
fillRandom(replay::MultiAgentBuffer &buf, int steps, Rng &rng)
{
    const std::size_t n = buf.numAgents();
    for (int t = 0; t < steps; ++t) {
        std::vector<std::vector<Real>> obs(n), act(n), next(n);
        std::vector<Real> rew(n);
        std::vector<bool> done(n);
        for (std::size_t a = 0; a < n; ++a) {
            const auto &shape = buf.agent(a).shape();
            obs[a].resize(shape.obsDim);
            next[a].resize(shape.obsDim);
            for (auto &v : obs[a])
                v = static_cast<Real>(rng.uniform(-1, 1));
            for (auto &v : next[a])
                v = static_cast<Real>(rng.uniform(-1, 1));
            act[a].assign(shape.actDim, Real(0));
            act[a][rng.randint(shape.actDim)] = Real(1);
            rew[a] = static_cast<Real>(rng.uniform(-1, 1));
            done[a] = false;
        }
        buf.add(obs, act, rew, next, done);
    }
}

TEST(MaddpgTrainer, UpdateChangesParametersAndTimesPhases)
{
    auto config = tinyConfig();
    MaddpgTrainer trainer({6, 6}, 5, config, uniformFactory());
    replay::MultiAgentBuffer buf(trainer.transitionShapes(),
                                 config.bufferCapacity);
    Rng rng(5);
    fillRandom(buf, 64, rng);

    const Real w_before =
        trainer.networks(0).actor.params()[0]->value(0, 0);
    profile::PhaseTimer timer;
    auto stats = trainer.update(buf, timer);
    const Real w_after =
        trainer.networks(0).actor.params()[0]->value(0, 0);

    EXPECT_NE(w_before, w_after);
    EXPECT_TRUE(std::isfinite(stats.criticLoss));
    EXPECT_TRUE(std::isfinite(stats.actorLoss));
    EXPECT_GT(timer.seconds(profile::Phase::Sampling), 0.0);
    EXPECT_GT(timer.seconds(profile::Phase::TargetQ), 0.0);
    EXPECT_GT(timer.seconds(profile::Phase::QPLoss), 0.0);
    EXPECT_EQ(timer.count(profile::Phase::Sampling), 2u); // 2 agents.
    EXPECT_EQ(trainer.updateCount(), 1u);
}

TEST(MaddpgTrainer, PerSamplerReceivesTdErrors)
{
    auto config = tinyConfig();
    replay::PerConfig per;
    per.capacity = config.bufferCapacity;
    std::vector<replay::PrioritizedSampler *> raw;
    auto factory = [&]() -> std::unique_ptr<replay::Sampler> {
        auto s = std::make_unique<replay::PrioritizedSampler>(per);
        raw.push_back(s.get());
        return s;
    };
    MaddpgTrainer trainer({6, 6}, 5, config, factory);
    replay::MultiAgentBuffer buf(trainer.transitionShapes(),
                                 config.bufferCapacity);
    Rng rng(6);
    fillRandom(buf, 64, rng);
    for (BufferIndex i = 0; i < 64; ++i)
        trainer.onTransitionAdded(i);

    // All fresh transitions share the initial max priority == 1.
    ASSERT_EQ(raw.size(), 2u);
    EXPECT_EQ(raw[0]->tree().priorityOf(5), 1.0);

    profile::PhaseTimer timer;
    trainer.update(buf, timer);
    // After the update, TD write-back must have reshaped priorities.
    bool changed = false;
    for (BufferIndex i = 0; i < 64 && !changed; ++i)
        changed = std::abs(raw[0]->tree().priorityOf(i) - 1.0) > 1e-6;
    EXPECT_TRUE(changed);
}

TEST(Matd3Trainer, DelayedPolicyUpdates)
{
    auto config = tinyConfig();
    config.policyDelay = 2;
    Matd3Trainer trainer({6, 6}, 5, config, uniformFactory());
    replay::MultiAgentBuffer buf(trainer.transitionShapes(),
                                 config.bufferCapacity);
    Rng rng(7);
    fillRandom(buf, 64, rng);

    const Real actor_before =
        trainer.networks(0).actor.params()[0]->value(0, 0);
    const Real critic_before =
        trainer.networks(0).critic.params()[0]->value(0, 0);

    profile::PhaseTimer timer;
    trainer.update(buf, timer); // Critic step 1: no actor.
    EXPECT_EQ(trainer.networks(0).actor.params()[0]->value(0, 0),
              actor_before);
    EXPECT_NE(trainer.networks(0).critic.params()[0]->value(0, 0),
              critic_before);

    trainer.update(buf, timer); // Critic step 2: actor moves.
    EXPECT_NE(trainer.networks(0).actor.params()[0]->value(0, 0),
              actor_before);
}

TEST(Matd3Trainer, TwinCriticsDiverge)
{
    auto config = tinyConfig();
    Matd3Trainer trainer({6}, 5, config, uniformFactory());
    auto &net = trainer.networks(0);
    ASSERT_NE(net.critic2, nullptr);
    // Independently initialized twins must differ.
    EXPECT_NE(net.critic.params()[0]->value(0, 0),
              net.critic2->params()[0]->value(0, 0));
}

TEST(TrainLoop, InterleavedBackendMirrorsBuffer)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 21);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));

    auto config = tinyConfig();
    config.backend = SamplingBackend::Interleaved;
    MaddpgTrainer trainer(dims, environment->actionDim(), config,
                          uniformFactory());
    TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(10);

    ASSERT_NE(loop.interleavedStore(), nullptr);
    EXPECT_EQ(loop.interleavedStore()->size(), loop.buffer().size());
    EXPECT_GT(result.timer.seconds(profile::Phase::LayoutReorg), 0.0);
    EXPECT_GT(result.updateCalls, 0u);
}

TEST(TrainLoop, EnvStepsMatchEpisodeLength)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 22);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    auto config = tinyConfig();
    config.maxEpisodeLength = 7;
    MaddpgTrainer trainer(dims, environment->actionDim(), config,
                          uniformFactory());
    TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(5);
    EXPECT_EQ(result.envSteps, 35u);
    EXPECT_EQ(result.episodeRewards.size(), 5u);
}

TEST(TrainLoop, CallbackInvokedPerEpisode)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 23);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    auto config = tinyConfig();
    MaddpgTrainer trainer(dims, environment->actionDim(), config,
                          uniformFactory());
    TrainLoop loop(*environment, trainer, config);
    std::size_t calls = 0;
    loop.run(4, [&](const EpisodeInfo &info) {
        EXPECT_EQ(info.episode, calls);
        ++calls;
    });
    EXPECT_EQ(calls, 4u);
}

/**
 * Run a short training session with the global pool at @p threads
 * and return the full serialized trainer state (weights, targets,
 * Adam moments) for bit-exact comparison.
 */
template <typename TrainerT>
std::string
trainSerialized(std::size_t threads)
{
    base::ThreadPool::setGlobalThreads(threads);
    auto environment = env::makePredatorPreyEnv(3, 77);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    auto config = tinyConfig();
    // Big enough batch and hidden layers that the GEMMs cross the
    // parallel FLOP threshold, so this exercises pool-partitioned
    // kernels inside pool-parallel agent updates (nested dispatch).
    config.batchSize = 64;
    config.warmupTransitions = 64;
    config.hiddenDims = {64, 64};
    config.updateEvery = 20;
    TrainerT trainer(dims, environment->actionDim(), config,
                     uniformFactory());
    TrainLoop loop(*environment, trainer, config);
    loop.run(4);
    std::ostringstream os;
    saveTrainer(os, trainer);
    base::ThreadPool::setGlobalThreads(0); // Restore auto sizing.
    return os.str();
}

TEST(Determinism, MaddpgWeightsBitIdenticalAcrossThreadCounts)
{
    const std::string one = trainSerialized<MaddpgTrainer>(1);
    const std::string four = trainSerialized<MaddpgTrainer>(4);
    ASSERT_EQ(one.size(), four.size());
    EXPECT_TRUE(one == four)
        << "parallel agent updates diverged from the serial path";
}

TEST(Determinism, Matd3WeightsBitIdenticalAcrossThreadCounts)
{
    const std::string one = trainSerialized<Matd3Trainer>(1);
    const std::string four = trainSerialized<Matd3Trainer>(4);
    ASSERT_EQ(one.size(), four.size());
    EXPECT_TRUE(one == four)
        << "per-agent RNG streams should decouple MATD3's target "
           "noise from pool scheduling";
}

} // namespace
} // namespace marlin::core
