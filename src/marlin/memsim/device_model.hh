/**
 * @file
 * Analytic GPU offload cost model. The paper observes (Figs. 12-13)
 * that a CPU-only platform can out-gain a CPU+GPU one at small
 * agent counts because PCIe transfers and kernel launches swamp the
 * small network computations; this model reproduces that effect
 * without a GPU.
 */

#ifndef MARLIN_MEMSIM_DEVICE_MODEL_HH
#define MARLIN_MEMSIM_DEVICE_MODEL_HH

#include <cstdint>
#include <string>

namespace marlin::memsim
{

/** Device throughput/latency parameters. */
struct DeviceConfig
{
    std::string name = "none";
    /** Kernel launch + driver overhead per offloaded op (s). */
    double launchLatency = 10e-6;
    /** Host<->device bandwidth (bytes/s). */
    double pcieBandwidth = 12e9;
    /** Sustained FP32 throughput (FLOP/s). */
    double flops = 8e12;
    /** True when a device is present (false = CPU-only platform). */
    bool present = false;
};

/** RTX 3090 on PCIe 4.0 (paper Table II). */
DeviceConfig makeRtx3090();

/** GTX 1070 on PCIe 3.0 (paper Section VI-B). */
DeviceConfig makeGtx1070();

/**
 * Time for one offloaded dense computation of @p flop floating
 * point operations moving @p bytes_to_device and @p bytes_to_host
 * across PCIe.
 */
double offloadSeconds(const DeviceConfig &device, double flop,
                      double bytes_to_device, double bytes_to_host);

/**
 * Estimated FLOPs of a 2-hidden-layer MLP forward pass.
 *
 * @param batch Batch rows.
 * @param in Input features.
 * @param hidden Hidden width (both layers).
 * @param out Output features.
 */
double mlpForwardFlops(std::size_t batch, std::size_t in,
                       std::size_t hidden, std::size_t out);

} // namespace marlin::memsim

#endif // MARLIN_MEMSIM_DEVICE_MODEL_HH
