/**
 * @file
 * printf-style std::string formatting helpers (csprintf analog).
 */

#ifndef MARLIN_BASE_STRING_UTILS_HH
#define MARLIN_BASE_STRING_UTILS_HH

#include <cstdarg>
#include <string>
#include <vector>

namespace marlin
{

/**
 * Format a printf-style format string into a std::string.
 *
 * @param fmt printf format string.
 * @return The formatted string.
 */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list variant of csprintf(). */
std::string vcsprintf(const char *fmt, va_list args);

/** Split @p s on @p delim, dropping empty fields. */
std::vector<std::string> tokenize(const std::string &s, char delim);

/** Render a byte count as a human-friendly string ("32 KiB"). */
std::string formatBytes(std::size_t bytes);

} // namespace marlin

#endif // MARLIN_BASE_STRING_UTILS_HH
