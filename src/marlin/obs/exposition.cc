#include "marlin/obs/exposition.hh"

#include <cmath>
#include <cstdio>

namespace marlin::obs
{

namespace
{

/**
 * Prometheus sample values: shortest round-trip decimal; the text
 * format spells non-finite values NaN / +Inf / -Inf (Go strconv
 * spelling, which every scraper parses).
 */
std::string
formatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** "le" label values: bounds are small round numbers; render them
 *  without a trailing ".0" so the golden files stay readable. */
std::string
formatBound(double v)
{
    if (std::isinf(v))
        return "+Inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/** # HELP text: backslash and newline are the only escapes. */
std::string
escapeHelp(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
renderSample(std::string &out, const MetricSample &s)
{
    const std::string name = sanitizeMetricName(s.name);
    out += "# HELP " + name + " MARLin metric '" +
           escapeHelp(s.name) + "'\n";
    switch (s.kind) {
    case MetricSample::Kind::Counter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(s.count) + "\n";
        break;
    case MetricSample::Kind::Gauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + formatValue(s.value) + "\n";
        break;
    case MetricSample::Kind::Histogram: {
        out += "# TYPE " + name + " histogram\n";
        // Registry buckets are per-bucket counts; Prometheus
        // _bucket series are cumulative and must end at +Inf.
        std::uint64_t cumulative = 0;
        for (const auto &[bound, count] : s.buckets) {
            cumulative += count;
            out += name + "_bucket{le=\"" + formatBound(bound) +
                   "\"} " + std::to_string(cumulative) + "\n";
        }
        if (s.buckets.empty() ||
            !std::isinf(s.buckets.back().first)) {
            out += name + "_bucket{le=\"+Inf\"} " +
                   std::to_string(cumulative) + "\n";
        }
        out += name + "_sum " + formatValue(s.value) + "\n";
        out += name + "_count " + std::to_string(cumulative) + "\n";
        break;
    }
    }
}

} // namespace

std::string
sanitizeMetricName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        const bool alpha = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') || c == '_' ||
                           c == ':';
        const bool digit = c >= '0' && c <= '9';
        if (alpha || (digit && i > 0))
            out += c;
        else if (digit)
            out += std::string("_") + c; // Leading digit.
        else
            out += '_';
    }
    if (out.empty())
        out = "_";
    return out;
}

std::string
renderPrometheusText(const std::vector<MetricSample> &samples)
{
    std::string out;
    out.reserve(samples.size() * 96);
    for (const MetricSample &s : samples)
        renderSample(out, s);
    return out;
}

std::string
renderPrometheusText()
{
    return renderPrometheusText(Registry::instance().snapshot());
}

} // namespace marlin::obs
