/**
 * @file
 * Gym-style wrapper combining a World and a Scenario into the
 * reset/step interface the training loop consumes.
 */

#ifndef MARLIN_ENV_ENVIRONMENT_HH
#define MARLIN_ENV_ENVIRONMENT_HH

#include <memory>
#include <vector>

#include "marlin/env/scenario.hh"

namespace marlin::env
{

/** Output of one environment step for the learnable agents. */
struct StepResult
{
    /** Per-agent observation vectors. */
    std::vector<std::vector<Real>> observations;
    /** Per-agent scalar rewards. */
    std::vector<Real> rewards;
    /** Per-agent terminal flags (always false in particle tasks;
     *  episodes end on the external length limit). */
    std::vector<bool> dones;
};

/**
 * Multi-agent environment over a particle world.
 *
 * The trainer controls the first learnableAgents() agents with
 * discrete actions; any scripted agents (e.g. prey) are driven by
 * the scenario's policy inside step().
 */
class Environment
{
  public:
    /**
     * @param scenario Task definition (owned).
     * @param seed RNG seed for resets and scripted agents.
     */
    Environment(std::unique_ptr<Scenario> scenario,
                std::uint64_t seed = 1, WorldConfig world_config = {});

    /** Number of agents the MARL algorithm controls. */
    std::size_t numAgents() const { return _numAgents; }

    /** Observation dimension of learnable agent @p i. */
    std::size_t obsDim(std::size_t i) const;

    /** Discrete action count (5 in all particle tasks). */
    std::size_t actionDim() const { return numDiscreteActions; }

    const Scenario &scenario() const { return *_scenario; }
    const World &world() const { return _world; }
    World &world() { return _world; }

    /**
     * Randomize the world and write initial observations into
     * @p obs (resized to one vector per agent; inner capacity is
     * reused across episodes, so a warm reset does not allocate).
     */
    void resetInto(std::vector<std::vector<Real>> &obs);

    /** Convenience by-value form of resetInto. */
    std::vector<std::vector<Real>> reset()
    {
        std::vector<std::vector<Real>> obs;
        resetInto(obs);
        return obs;
    }

    /**
     * Apply one discrete action per learnable agent, script the
     * remaining agents, advance physics, and write observations,
     * rewards and done flags into @p result (the steady-state hot
     * path: a warm call reuses the result's capacity and performs
     * no heap allocation).
     */
    void stepInto(const std::vector<int> &actions, StepResult &result);

    /** Convenience by-value form of stepInto. */
    StepResult step(const std::vector<int> &actions)
    {
        StepResult result;
        stepInto(actions, result);
        return result;
    }

    /**
     * Continuous-control variant: apply one 2D force per learnable
     * agent (each component clamped to [-1, 1]); scripted agents
     * still follow their discrete scenario policy.
     */
    void stepContinuousInto(const std::vector<Vec2> &forces,
                            StepResult &result);

    /** Convenience by-value form of stepContinuousInto. */
    StepResult stepContinuous(const std::vector<Vec2> &forces)
    {
        StepResult result;
        stepContinuousInto(forces, result);
        return result;
    }

    /**
     * Snapshot / restore the environment RNG stream. At an episode
     * boundary this is the environment's only live state (reset()
     * rebuilds the world from the stream), so checkpointing it makes
     * resumed runs replay resets bit-identically.
     */
    RngState rngState() const { return rng.state(); }
    void setRngState(const RngState &state) { rng.setState(state); }

  private:
    std::unique_ptr<Scenario> _scenario;
    World _world;
    Rng rng;
    std::size_t _numAgents = 0;

    void
    gatherObservationsInto(std::vector<std::vector<Real>> &obs) const;
};

/** Factory: predator-prey with N trained predators. */
std::unique_ptr<Environment> makePredatorPreyEnv(std::size_t num_agents,
                                                 std::uint64_t seed);

/** Factory: cooperative navigation with N agents. */
std::unique_ptr<Environment>
makeCooperativeNavigationEnv(std::size_t num_agents, std::uint64_t seed);

} // namespace marlin::env

#endif // MARLIN_ENV_ENVIRONMENT_HH
