#include "marlin/obs/trace.hh"

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "marlin/base/thread_pool.hh"

namespace marlin::obs
{

std::atomic<TraceRing *> TraceRing::g_active{nullptr};

namespace
{

/**
 * Rings are never destroyed once enabled: recording sites hold no
 * lock, so a racing record() must stay valid even if the ring is
 * being replaced. A leaked ring per enable() call is the price; the
 * CLI enables at most once per process.
 */
TraceRing *
retire(TraceRing *ring)
{
    static std::vector<std::unique_ptr<TraceRing>> graveyard;
    if (ring != nullptr)
        graveyard.emplace_back(ring);
    return nullptr;
}

void
poolChunkHook(std::uint64_t start_ns, std::uint64_t dur_ns)
{
    recordSpan("pool_chunk", "pool", start_ns, dur_ns);
}

} // namespace

void
TraceRing::enable(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    TraceRing *ring = new TraceRing(capacity);
    // Resolve the registry counter on this cold path so countDrop()
    // never takes the registration lock (or allocates) from a
    // recording thread that may sit inside an AllocGuard scope.
    ring->dropCounter =
        &Registry::instance().counter("trace.dropped");
    retire(g_active.exchange(ring, std::memory_order_acq_rel));
    base::ThreadPool::setTaskHook(&poolChunkHook);
}

void
TraceRing::disable()
{
    base::ThreadPool::setTaskHook(nullptr);
    retire(g_active.exchange(nullptr, std::memory_order_acq_rel));
}

bool
exportTrace(const std::string &path, std::string *error)
{
    TraceRing *ring = TraceRing::active();
    if (ring == nullptr) {
        if (error != nullptr)
            *error = "tracing is not enabled";
        return false;
    }

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }

    // Spans arriving during serialization are rejected + counted
    // (see beginSnapshot) instead of racing the loop below over
    // half-written slots.
    ring->beginSnapshot();
    std::fputs("{\"traceEvents\":[", f);
    const std::size_t n = ring->size();
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &e = ring->event(i);
        // ts/dur are microseconds in the trace_event spec; keep the
        // sub-microsecond part as a fraction so short kernels do not
        // collapse to zero-width slices.
        std::fprintf(f,
                     "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                     "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                     i == 0 ? "" : ",", e.name, e.cat,
                     static_cast<double>(e.startNs) / 1e3,
                     static_cast<double>(e.durNs) / 1e3, e.tid);
        if (e.flowDir != FlowDir::None) {
            // bind_id flows: same id on the producing (flow_out)
            // and consuming (flow_in) slices draws the arrow.
            std::fprintf(f, ",\"bind_id\":\"0x%" PRIx64 "\",\"%s\":true",
                         e.flowId,
                         e.flowDir == FlowDir::Out ? "flow_out"
                                                   : "flow_in");
        }
        std::fputc('}', f);
    }
    ring->endSnapshot();
    std::fprintf(f,
                 "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                 "\"capacity\":%zu,\"storedEvents\":%zu,"
                 "\"droppedEvents\":%zu}}\n",
                 ring->capacity(), n, ring->dropped());

    const bool ok = std::fflush(f) == 0;
    std::fclose(f);
    if (!ok && error != nullptr)
        *error = "write to '" + path + "' failed";
    return ok;
}

} // namespace marlin::obs
