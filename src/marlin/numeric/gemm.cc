#include "marlin/numeric/gemm.hh"

#include <cstring>

#include "marlin/base/compiler.hh"

namespace marlin::numeric
{

namespace
{

// Block sizes tuned for ~32 KiB L1d with Real = float.
constexpr std::size_t blockM = 64;
constexpr std::size_t blockK = 64;

void
gemmKernel(const Matrix &a, const Matrix &b, Matrix &c, bool accumulate)
{
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    MARLIN_ASSERT(b.rows() == k, "gemm inner dimension mismatch");
    if (!accumulate)
        c.resize(m, n);
    MARLIN_ASSERT(c.rows() == m && c.cols() == n,
                  "gemm output shape mismatch");

    // i-k-j loop order with blocking: the inner j loop streams rows
    // of B and C, which vectorizes well.
    for (std::size_t i0 = 0; i0 < m; i0 += blockM) {
        const std::size_t i1 = std::min(i0 + blockM, m);
        for (std::size_t k0 = 0; k0 < k; k0 += blockK) {
            const std::size_t k1 = std::min(k0 + blockK, k);
            for (std::size_t i = i0; i < i1; ++i) {
                const Real *MARLIN_RESTRICT arow = a.row(i);
                Real *MARLIN_RESTRICT crow = c.row(i);
                for (std::size_t kk = k0; kk < k1; ++kk) {
                    const Real aik = arow[kk];
                    if (aik == Real(0))
                        continue;
                    const Real *MARLIN_RESTRICT brow = b.row(kk);
                    for (std::size_t j = 0; j < n; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        }
    }
}

} // namespace

void
gemm(const Matrix &a, const Matrix &b, Matrix &c)
{
    gemmKernel(a, b, c, false);
}

void
gemmAcc(const Matrix &a, const Matrix &b, Matrix &c)
{
    gemmKernel(a, b, c, true);
}

void
gemmTN(const Matrix &a, const Matrix &b, Matrix &c)
{
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    MARLIN_ASSERT(b.rows() == k, "gemmTN inner dimension mismatch");
    c.resize(m, n);
    // C(m,n) = sum_k A(k,m)^T B(k,n): stream rows of A and B together.
    for (std::size_t kk = 0; kk < k; ++kk) {
        const Real *MARLIN_RESTRICT arow = a.row(kk);
        const Real *MARLIN_RESTRICT brow = b.row(kk);
        for (std::size_t i = 0; i < m; ++i) {
            const Real aki = arow[i];
            if (aki == Real(0))
                continue;
            Real *MARLIN_RESTRICT crow = c.row(i);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += aki * brow[j];
        }
    }
}

void
gemmNT(const Matrix &a, const Matrix &b, Matrix &c)
{
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    MARLIN_ASSERT(b.cols() == k, "gemmNT inner dimension mismatch");
    c.resize(m, n);
    // C(i,j) = dot(A.row(i), B.row(j)): both operands stream row-wise.
    for (std::size_t i = 0; i < m; ++i) {
        const Real *MARLIN_RESTRICT arow = a.row(i);
        Real *MARLIN_RESTRICT crow = c.row(i);
        for (std::size_t j = 0; j < n; ++j) {
            const Real *MARLIN_RESTRICT brow = b.row(j);
            Real acc = 0;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
}

} // namespace marlin::numeric
