/**
 * @file
 * Ablation (DESIGN.md decision 1): per-agent SoA arrays vs per-agent
 * AoS records vs the fully interleaved all-agents store, under
 * uniform and locality-aware index plans. Shows why the baseline
 * SoA layout is a faithful stand-in for the reference NumPy buffers
 * and how much of the Figure 14 effect is pure layout.
 */

#include "common.hh"

#include "marlin/replay/aos_buffer.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

struct Layouts
{
    std::unique_ptr<replay::MultiAgentBuffer> soa;
    std::vector<replay::AosReplayBuffer> aos;
    std::unique_ptr<replay::InterleavedReplayStore> interleaved;
};

Layouts
buildLayouts(Task task, std::size_t agents, BufferIndex capacity)
{
    Layouts l;
    auto shapes = taskShapes(task, agents);
    l.soa =
        std::make_unique<replay::MultiAgentBuffer>(shapes, capacity);
    l.interleaved = std::make_unique<replay::InterleavedReplayStore>(
        shapes, capacity);
    for (const auto &s : shapes)
        l.aos.emplace_back(s, capacity);

    Rng rng(agents);
    std::vector<std::vector<Real>> obs(agents), act(agents),
        next(agents);
    std::vector<Real> rew(agents);
    std::vector<bool> done(agents, false);
    for (std::size_t a = 0; a < agents; ++a) {
        obs[a].resize(shapes[a].obsDim);
        next[a].resize(shapes[a].obsDim);
        act[a].assign(shapes[a].actDim, Real(0));
    }
    for (BufferIndex t = 0; t < capacity; ++t) {
        for (std::size_t a = 0; a < agents; ++a) {
            for (auto &v : obs[a])
                v = rng.uniformf();
            next[a] = obs[a];
            rew[a] = rng.uniformf();
        }
        l.soa->add(obs, act, rew, next, done);
        l.interleaved->append(obs, act, rew, next, done);
        for (std::size_t a = 0; a < agents; ++a) {
            l.aos[a].add(obs[a].data(), act[a].data(), rew[a],
                         next[a].data(), done[a]);
        }
    }
    return l;
}

/** Seconds per update (N trainers x N-agent gathers). */
template <typename GatherFn>
double
timeGather(std::size_t agents, replay::Sampler &sampler,
           BufferIndex size, GatherFn &&gather, int reps)
{
    Rng rng(7);
    for (std::size_t t = 0; t < agents; ++t)
        gather(sampler.plan(size, 1024, rng)); // Warm-up.
    profile::Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep)
        for (std::size_t t = 0; t < agents; ++t)
            gather(sampler.plan(size, 1024, rng));
    return sw.elapsedSeconds() / reps;
}

void
run(Task task, replay::Sampler &sampler, const char *plan_name)
{
    std::printf("\n%s, %s index plans\n", taskName(task), plan_name);
    std::printf("%-8s %12s %12s %14s\n", "agents", "soa(ms)",
                "aos(ms)", "interleaved(ms)");
    for (std::size_t n : {3, 6, 12}) {
        const BufferIndex capacity = scaledCapacity(
            taskShapes(task, n), 256ull << 20);
        auto layouts = buildLayouts(task, n, capacity);
        std::vector<replay::AgentBatch> batches;
        const int reps = n >= 12 ? 2 : 4;

        const double soa = timeGather(
            n, sampler, capacity,
            [&](const replay::IndexPlan &plan) {
                replay::gatherAllAgents(*layouts.soa, plan, batches);
            },
            reps);
        const double aos = timeGather(
            n, sampler, capacity,
            [&](const replay::IndexPlan &plan) {
                batches.resize(n);
                for (std::size_t a = 0; a < n; ++a)
                    layouts.aos[a].gather(plan, batches[a]);
            },
            reps);
        const double inter = timeGather(
            n, sampler, capacity,
            [&](const replay::IndexPlan &plan) {
                layouts.interleaved->gatherAllAgents(plan, batches);
            },
            reps);
        std::printf("%-8zu %12.2f %12.2f %14.2f\n", n, soa * 1e3,
                    aos * 1e3, inter * 1e3);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_ablation_layout");
    banner("Ablation: replay storage layout (SoA vs AoS vs "
           "interleaved)");
    replay::UniformSampler uniform;
    run(Task::PredatorPrey, uniform, "uniform");
    replay::LocalityAwareSampler locality({16, 64});
    run(Task::PredatorPrey, locality, "locality n16");
    std::printf("\nexpectation: AoS beats SoA under random plans "
                "(one seek per row vs three);\ninterleaved wins "
                "once agents multiply the per-row seek count.\n");
    return 0;
}
