#include "marlin/obs/metrics.hh"

#include <algorithm>
#include <limits>

#include "marlin/base/instant.hh"
#include "marlin/base/logging.hh"

namespace marlin::obs
{

std::size_t
Counter::shardIndex() noexcept
{
    return base::currentThreadTag() % metricShards;
}

Histogram::Histogram(std::string name, std::vector<double> bounds_in)
    : _name(std::move(name)), bounds(std::move(bounds_in)),
      counts(bounds.size() + 1)
{
    MARLIN_ASSERT(std::is_sorted(bounds.begin(), bounds.end()),
                  "histogram bucket bounds must be ascending");
}

void
Histogram::observe(double v) noexcept
{
    // First bucket whose upper bound covers v; overflow otherwise.
    std::size_t i = 0;
    while (i < bounds.size() && v > bounds[i])
        ++i;
    counts[i].fetch_add(1, std::memory_order_relaxed);
    double expected = _sum.load(std::memory_order_relaxed);
    while (!_sum.compare_exchange_weak(expected, expected + v,
                                       std::memory_order_relaxed)) {
    }
}

double
Histogram::bucketUpperBound(std::size_t i) const
{
    MARLIN_ASSERT(i < counts.size(), "histogram bucket out of range");
    return i < bounds.size()
               ? bounds[i]
               : std::numeric_limits<double>::infinity();
}

std::uint64_t
Histogram::totalCount() const noexcept
{
    std::uint64_t total = 0;
    for (const auto &c : counts)
        total += c.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::quantile(double q) const noexcept
{
    const std::uint64_t total = totalCount();
    if (total == 0)
        return 0.0;
    const double rank = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i)
    {
        const std::uint64_t inBucket =
            counts[i].load(std::memory_order_relaxed);
        if (static_cast<double>(cumulative + inBucket) < rank)
        {
            cumulative += inBucket;
            continue;
        }
        // Landing bucket. The overflow bucket has no upper bound;
        // clamp to the last finite bound (Prometheus reports the
        // same).
        if (i >= bounds.size())
            return bounds.empty() ? 0.0 : bounds.back();
        const double hi = bounds[i];
        const double lo = i == 0 ? 0.0 : bounds[i - 1];
        if (inBucket == 0)
            return hi;
        const double frac =
            (rank - static_cast<double>(cumulative)) /
            static_cast<double>(inBucket);
        return lo + (hi - lo) * frac;
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

void
Histogram::reset() noexcept
{
    for (auto &c : counts)
        c.store(0, std::memory_order_relaxed);
    _sum.store(0.0, std::memory_order_relaxed);
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (gauges.count(name) != 0 || histograms.count(name) != 0)
        fatal("metric '%s' already registered with another kind",
              name.c_str());
    auto it = counters.find(name);
    if (it == counters.end()) {
        it = counters
                 .emplace(name, std::unique_ptr<Counter>(
                                    new Counter(name)))
                 .first;
    }
    return *it->second;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (counters.count(name) != 0 || histograms.count(name) != 0)
        fatal("metric '%s' already registered with another kind",
              name.c_str());
    auto it = gauges.find(name);
    if (it == gauges.end()) {
        it = gauges
                 .emplace(name,
                          std::unique_ptr<Gauge>(new Gauge(name)))
                 .first;
    }
    return *it->second;
}

Histogram &
Registry::histogram(const std::string &name,
                    std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (counters.count(name) != 0 || gauges.count(name) != 0)
        fatal("metric '%s' already registered with another kind",
              name.c_str());
    auto it = histograms.find(name);
    if (it == histograms.end()) {
        if (bounds.empty())
            fatal("histogram '%s' needs bucket bounds on first "
                  "registration",
                  name.c_str());
        it = histograms
                 .emplace(name,
                          std::unique_ptr<Histogram>(new Histogram(
                              name, std::move(bounds))))
                 .first;
    }
    return *it->second;
}

std::vector<MetricSample>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<MetricSample> out;
    out.reserve(counters.size() + gauges.size() +
                histograms.size());
    for (const auto &[name, c] : counters) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Counter;
        s.count = c->value();
        out.push_back(std::move(s));
    }
    for (const auto &[name, g] : gauges) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Gauge;
        s.value = g->value();
        out.push_back(std::move(s));
    }
    for (const auto &[name, h] : histograms) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Histogram;
        s.count = h->totalCount();
        s.value = h->sum();
        s.buckets.reserve(h->numBuckets());
        for (std::size_t i = 0; i < h->numBuckets(); ++i)
            s.buckets.emplace_back(h->bucketUpperBound(i),
                                   h->bucketCount(i));
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

void
Registry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (auto &[name, c] : counters)
        c->reset();
    for (auto &[name, g] : gauges)
        g->reset();
    for (auto &[name, h] : histograms)
        h->reset();
}

} // namespace marlin::obs
