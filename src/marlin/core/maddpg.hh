/**
 * @file
 * MADDPG (Lowe et al., 2017) with the CTDE structure the paper
 * characterizes: decentralized actors, centralized critics over the
 * joint observation-action space, target networks, and a pluggable
 * mini-batch sampling strategy.
 *
 * The shared base class CtdeTrainerBase implements everything common
 * to MADDPG and MATD3 — action selection, the per-agent sampling /
 * target-Q / loss phase structure, and the joint-input assembly —
 * so the two workloads differ only where the algorithms differ.
 */

#ifndef MARLIN_CORE_MADDPG_HH
#define MARLIN_CORE_MADDPG_HH

#include <iosfwd>

#include "marlin/core/agent_networks.hh"
#include "marlin/core/noise.hh"
#include "marlin/core/trainer.hh"

namespace marlin::core
{

using numeric::Matrix;
using replay::AgentBatch;

/** Common machinery for centralized-critic actor-critic trainers. */
class CtdeTrainerBase : public Trainer
{
  public:
    /**
     * @param obs_dims Observation dimension per agent.
     * @param act_dim Discrete action count (shared).
     * @param config Hyper-parameters.
     * @param sampler_factory Builds one sampler per agent trainer.
     * @param twin_critic Allocate MATD3's second critic.
     */
    CtdeTrainerBase(std::vector<std::size_t> obs_dims,
                    std::size_t act_dim, TrainConfig config,
                    SamplerFactory sampler_factory, bool twin_critic);

    std::size_t numAgents() const override { return obsDims.size(); }

    void
    selectActionsInto(const std::vector<std::vector<Real>> &obs,
                      std::size_t episode,
                      std::vector<int> &out) override;

    std::vector<int>
    greedyActions(const std::vector<std::vector<Real>> &obs) override;

    void selectContinuousActionsInto(
        const std::vector<std::vector<Real>> &obs, std::size_t episode,
        std::vector<std::array<Real, 2>> &out) override;

    std::vector<std::array<Real, 2>>
    greedyContinuousActions(
        const std::vector<std::vector<Real>> &obs) override;

    void onTransitionAdded(BufferIndex idx) override;

    UpdateStats update(const replay::ReplayStore &store,
                       profile::PhaseTimer &timer) override;

    const TrainConfig &config() const { return _config; }
    AgentNetworks &networks(std::size_t i) { return *nets[i]; }
    replay::Sampler &sampler(std::size_t i) { return *samplers[i]; }

    /** Total updates applied so far (all agents count as one). */
    StepCount updateCount() const { return updates; }

    /** Per-agent replay shapes matching this trainer. */
    std::vector<replay::TransitionShape> transitionShapes() const;

    /**
     * Serialize everything mutable besides the networks: the shared
     * and per-agent RNG streams, OU noise processes, the update
     * counter, per-agent sampler state, and subclass extras (MATD3's
     * policy-delay counters). Together with the network checkpoint
     * and the replay contents this pins the trainer so a resumed run
     * continues bit-identically.
     */
    void saveRuntimeState(std::ostream &os) const;

    /** Restore state written by saveRuntimeState. */
    void loadRuntimeState(std::istream &is);

    /** Architecture fingerprint written into checkpoint metadata. */
    const std::vector<std::size_t> &observationDims() const
    {
        return obsDims;
    }
    std::size_t actionDim() const { return actDim; }
    bool twinCritic() const { return nets[0]->critic2 != nullptr; }

  protected:
    /**
     * Per-agent update workspace: every index plan, batch matrix and
     * intermediate the sampling / target-Q / loss pipeline produces,
     * owned by the agent so the pool can run agent updates
     * concurrently without sharing mutable buffers — and retained
     * across update() calls so a warm update performs no heap
     * allocation (the zero-allocation steady-state contract).
     */
    struct UpdateWorkspace
    {
        replay::IndexPlan plan;
        /** Target actions of every agent (cross-agent policy read). */
        std::vector<Matrix> nextActions;
        /** Pointer scratch for the hconcat joint assembly. */
        std::vector<const Matrix *> concat;
        Matrix jointNext; ///< [next obs | target actions].
        Matrix qNext;     ///< Target critic output.
        Matrix qNext2;    ///< Twin target critic output (MATD3).
        Matrix y;         ///< TD target.
        Matrix joint;     ///< [stored obs | stored actions].
        Matrix q1, q2;    ///< Critic outputs on the stored joint.
        Matrix dq, dq2;   ///< Critic loss gradients.
        Matrix logits;    ///< Actor forward on this agent's obs.
        Matrix soft;      ///< Softmax relaxation of the logits.
        Matrix jointPi;   ///< Joint with agent i's policy action.
        Matrix qPi;       ///< Critic output on jointPi.
        Matrix dqPi;      ///< Policy-loss gradient dL/dQ.
        Matrix dJoint;    ///< Critic input gradient.
        Matrix dSoft;     ///< dJoint slice at agent i's action block.
        Matrix dLogits;   ///< Gradient through the relaxation.
        std::vector<Real> td; ///< |TD error| per batch row.
        /** Per-agent accumulators for the concurrent update path. */
        UpdateStats stats;
        profile::PhaseTimer timer;
    };

    /**
     * Per-agent algorithm step, called inside update() after the
     * mini-batch gather and cross-agent target-action computation.
     * @p ws holds this agent's index plan, target next actions and
     * every intermediate buffer. The step may only touch agent
     * @p i's networks, sampler, Adam state and workspace — update()
     * runs all agents concurrently on the global ThreadPool, which
     * is race-free exactly because agents own disjoint state and
     * only read the shared batches. Implementations charge their
     * work to the TargetQ / QPLoss phases of @p timer.
     */
    virtual void updateAgent(std::size_t i,
                             const std::vector<AgentBatch> &batches,
                             UpdateWorkspace &ws,
                             profile::PhaseTimer &timer,
                             UpdateStats &stats) = 0;

    /**
     * Target next actions for every agent, written into @p out (one
     * matrix per agent, capacity reused across updates): target-actor
     * forward on next observations followed by a softmax relaxation.
     * MATD3 overrides to inject clipped smoothing noise (drawn from
     * @p noise_rng, the per-agent stream of the updating agent) into
     * the logits. Runs in the serial prologue of update() because it
     * forwards every agent's target actor: all agents read one
     * consistent pre-update snapshot of the target networks.
     */
    virtual void
    targetNextActionsInto(const std::vector<AgentBatch> &batches,
                          Rng &noise_rng, std::vector<Matrix> &out);

    /** [obs_0..obs_{N-1} | act_0..act_{N-1}] from stored samples. */
    void buildJointCurrentInto(const std::vector<AgentBatch> &batches,
                               std::vector<const Matrix *> &scratch,
                               Matrix &out) const;

    /** Same layout from next observations and given next actions. */
    void buildJointNextInto(const std::vector<AgentBatch> &batches,
                            const std::vector<Matrix> &next_actions,
                            std::vector<const Matrix *> &scratch,
                            Matrix &out) const;

    /** TD target y = r + gamma * (1 - done) * q_next. */
    void tdTargetInto(const AgentBatch &batch, const Matrix &q_next,
                      Matrix &y) const;

    /** Column where agent @p i's action block starts in the joint. */
    std::size_t actionColumn(std::size_t i) const;

    /**
     * Critic-loss + actor-loss + optimizer step shared by both
     * algorithms (MATD3 passes its twin critic and defers the actor
     * by gating @p update_actor). Consumes @p ws.plan / @p ws.y and
     * the workspace intermediates.
     *
     * Losses and loss gradients are screened for NaN/Inf before the
     * optimizers apply them. @return false when a non-finite value
     * was found (the caller must then skip the target soft update);
     * under any policy except HealthGuardPolicy::Off the poisoned
     * step is dropped before it can touch the weights.
     */
    bool criticActorStep(std::size_t i,
                         const std::vector<AgentBatch> &batches,
                         UpdateWorkspace &ws, bool update_actor,
                         UpdateStats &stats);

    /** Subclass hook: extra runtime state (MATD3 criticSteps). */
    virtual void saveExtraState(std::ostream &os) const { (void)os; }
    virtual void loadExtraState(std::istream &is) { (void)is; }

    TrainConfig _config;
    std::vector<std::size_t> obsDims;
    std::size_t actDim;
    std::size_t jointDim;
    std::size_t sumObsDims;
    Rng rng;
    /**
     * One independent RNG stream per agent (seeded from the trainer
     * seed via SplitMix64) for randomness consumed inside the
     * per-agent update, e.g. MATD3's target policy smoothing noise.
     * Keeping these draws off the shared stream is what makes the
     * parallel agent updates deterministic for any thread count.
     */
    std::vector<Rng> agentRngs;
    EpsilonSchedule epsilon;
    std::vector<std::unique_ptr<AgentNetworks>> nets;
    std::vector<std::unique_ptr<replay::Sampler>> samplers;
    /** Per-agent OU exploration processes (continuous mode only). */
    std::vector<OrnsteinUhlenbeckNoise> ouNoise;
    StepCount updates = 0;

    // Per-update scratch reused across update() calls: each agent
    // keeps its own gathered batches so the pool can run agent
    // updates concurrently without sharing mutable buffers.
    std::vector<std::vector<AgentBatch>> scratchBatches;
    /** One retained workspace per agent (see UpdateWorkspace). */
    std::vector<UpdateWorkspace> workspaces;
    // Action-selection scratch (selection runs serially on the
    // calling thread): single-row observation input and the actor's
    // output logits / squashed action.
    Matrix selObs;
    Matrix selOut;
};

/** The baseline workload of the paper. */
class MaddpgTrainer : public CtdeTrainerBase
{
  public:
    MaddpgTrainer(std::vector<std::size_t> obs_dims,
                  std::size_t act_dim, TrainConfig config,
                  SamplerFactory sampler_factory);

    std::string name() const override { return "maddpg"; }

  protected:
    void updateAgent(std::size_t i,
                     const std::vector<AgentBatch> &batches,
                     UpdateWorkspace &ws, profile::PhaseTimer &timer,
                     UpdateStats &stats) override;
};

} // namespace marlin::core

#endif // MARLIN_CORE_MADDPG_HH
