#include "marlin/serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace marlin::serve
{

BlockingClient::~BlockingClient()
{
    close();
}

bool
BlockingClient::connect(const std::string &host,
                        std::uint16_t port, int retry_ms)
{
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        return false;

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(retry_ms);
    for (;;) {
        _fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (_fd < 0)
            return false;
        if (::connect(_fd,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            const int one = 1;
            ::setsockopt(_fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            decoder.reset();
            return true;
        }
        ::close(_fd);
        _fd = -1;
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }
}

void
BlockingClient::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

bool
BlockingClient::sendRaw(const void *data, std::size_t n)
{
    const auto *p = static_cast<const char *>(data);
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t w =
            ::send(_fd, p + sent, n - sent, MSG_NOSIGNAL);
        if (w > 0) {
            sent += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        close();
        return false;
    }
    return true;
}

bool
BlockingClient::recvResponse(std::vector<Real> &actions,
                             Status &status)
{
    ResponseView view;
    for (;;) {
        const FrameDecoder::Result r = decoder.next(view);
        if (r == FrameDecoder::Result::Frame) {
            status = view.status;
            actions.resize(view.actionCount());
            view.copyActions(actions.data());
            return true;
        }
        if (FrameDecoder::isError(r)) {
            close();
            return false;
        }
        char buf[16384];
        const ssize_t n = ::recv(_fd, buf, sizeof(buf), 0);
        if (n > 0) {
            decoder.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        close();
        return false;
    }
}

bool
BlockingClient::request(std::uint16_t agent, const Real *obs,
                        std::size_t count,
                        std::vector<Real> &actions, Status &status)
{
    if (_fd < 0)
        return false;
    sendBuf.clear();
    encodeRequest(sendBuf, agent, obs, count);
    if (!sendRaw(sendBuf.data(), sendBuf.size()))
        return false;
    return recvResponse(actions, status);
}

} // namespace marlin::serve
