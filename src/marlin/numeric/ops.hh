/**
 * @file
 * Elementwise and reduction operations on Matrix plus small
 * vector helpers used by the environments and trainers.
 */

#ifndef MARLIN_NUMERIC_OPS_HH
#define MARLIN_NUMERIC_OPS_HH

#include <cstddef>
#include <vector>

#include "marlin/base/random.hh"
#include "marlin/numeric/matrix.hh"

namespace marlin::numeric
{

/** out = a + b (shape-checked). */
Matrix add(const Matrix &a, const Matrix &b);

/** out = a - b. */
Matrix sub(const Matrix &a, const Matrix &b);

/** out = a * scale. */
Matrix scale(const Matrix &a, Real factor);

/** Add row-vector @p bias (1 x cols) to every row of @p m in place. */
void addRowBias(Matrix &m, const Matrix &bias);

/** Sum of rows -> 1 x cols matrix (bias gradient reduction). */
Matrix sumRows(const Matrix &m);

/**
 * sumRows into caller-owned storage (capacity-retaining; identical
 * reduction order, so results match sumRows bit-for-bit).
 */
void sumRowsInto(const Matrix &m, Matrix &out);

/** Mean of all elements. */
Real mean(const Matrix &m);

/** Sum of all elements. */
Real sum(const Matrix &m);

/** Max |element|. */
Real maxAbs(const Matrix &m);

/** True if any element is NaN or infinite. */
bool hasNonFinite(const Matrix &m);

/** Row-wise softmax in place. */
void softmaxRows(Matrix &m);

/**
 * Backward pass of a row-wise softmax.
 *
 * @param softmax_out The forward result S (rows of probabilities).
 * @param grad_out dL/dS.
 * @param grad_in Receives dL/dx where S = softmax(x):
 *        dx_j = S_j * (dS_j - sum_k dS_k * S_k) per row.
 */
void softmaxBackwardRows(const Matrix &softmax_out,
                         const Matrix &grad_out, Matrix &grad_in);

/**
 * Gumbel-softmax style discrete action sampling: adds Gumbel noise to
 * each row of logits and returns per-row argmax indices.
 */
std::vector<std::size_t> gumbelArgmaxRows(const Matrix &logits, Rng &rng);

/**
 * Single-row Gumbel argmax: identical RNG draw order and arithmetic
 * as gumbelArgmaxRows restricted to @p row, without allocating the
 * result vector (hot per-step action selection).
 */
std::size_t gumbelArgmaxRow(const Matrix &logits, std::size_t row,
                            Rng &rng);

/** Per-row argmax indices. */
std::vector<std::size_t> argmaxRows(const Matrix &m);

/** Build a rows x classes one-hot matrix from indices. */
Matrix oneHot(const std::vector<std::size_t> &indices,
              std::size_t classes);

/**
 * Horizontal concatenation: out = [a | b | ...]. All inputs must
 * share a row count. Used to build joint observation-action inputs
 * for the centralized critic.
 */
Matrix hconcat(const std::vector<const Matrix *> &parts);

/**
 * hconcat into caller-owned storage (capacity-retaining; the output
 * is fully overwritten, so no zero-fill happens).
 */
void hconcatInto(const std::vector<const Matrix *> &parts,
                 Matrix &out);

/** Fill @p m with uniform values in [lo, hi). */
void fillUniform(Matrix &m, Rng &rng, Real lo, Real hi);

/** Fill @p m with N(0, sigma) noise. */
void fillGaussian(Matrix &m, Rng &rng, Real sigma);

/** Elementwise clamp in place. */
void clampInPlace(Matrix &m, Real lo, Real hi);

} // namespace marlin::numeric

#endif // MARLIN_NUMERIC_OPS_HH
