/**
 * @file
 * Dedicated named threads for long-lived runtime roles.
 *
 * base::ThreadPool is built for short blocking parallelFor dispatches
 * from one coordinating thread; borrowing its workers for roles that
 * live for a whole training run (async actors, the learner) would
 * starve the pool mid-step, confuse the task hook's chunk accounting
 * and make TSan reports unreadable. Long-lived roles get their own
 * WorkerThread instead: a plain std::thread with an OS-visible name
 * (so traces, TSan reports and /proc/<pid>/task attribute work to
 * "marlin-actor3" rather than an anonymous thread) and join-on-
 * destruction lifetime.
 */

#ifndef MARLIN_BASE_WORKER_THREAD_HH
#define MARLIN_BASE_WORKER_THREAD_HH

#include <functional>
#include <string>
#include <thread>

namespace marlin::base
{

/** A named long-lived thread; joins in the destructor. */
class WorkerThread
{
  public:
    /**
     * Start @p fn on a new thread named @p name (truncated to the
     * platform limit, 15 chars on Linux).
     */
    WorkerThread(std::string name, std::function<void()> fn);

    WorkerThread(const WorkerThread &) = delete;
    WorkerThread &operator=(const WorkerThread &) = delete;
    WorkerThread(WorkerThread &&) = default;
    WorkerThread &operator=(WorkerThread &&) = delete;

    ~WorkerThread();

    const std::string &name() const { return _name; }

    /** Block until the thread function returns (idempotent). */
    void join();

    /**
     * Name the calling thread at the OS level. No-op on platforms
     * without pthread_setname_np.
     */
    static void setCurrentThreadName(const std::string &name);

  private:
    std::string _name;
    std::thread thread;
};

} // namespace marlin::base

#endif // MARLIN_BASE_WORKER_THREAD_HH
