#include "marlin/profile/timer.hh"

namespace marlin::profile
{

double
PhaseTimer::totalSeconds() const
{
    std::uint64_t total = 0;
    for (const Slot &s : slots)
        total += s.ns;
    return static_cast<double>(total) * 1e-9;
}

double
PhaseTimer::updateAllTrainersSeconds() const
{
    double total = 0;
    for (Phase p : updateAllTrainersPhases)
        total += seconds(p);
    return total;
}

void
PhaseTimer::reset()
{
    slots.fill({});
}

void
PhaseTimer::merge(const PhaseTimer &other)
{
    for (std::size_t i = 0; i < numPhases; ++i) {
        slots[i].ns += other.slots[i].ns;
        slots[i].count += other.slots[i].count;
    }
}

} // namespace marlin::profile
