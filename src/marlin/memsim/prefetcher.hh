/**
 * @file
 * Hardware stream prefetcher model. The paper's locality-aware
 * sampling works precisely because sequential neighbor runs let
 * this unit stay ahead of the demand stream, so modeling it is
 * essential for the Figure-4-style counter reproduction.
 */

#ifndef MARLIN_MEMSIM_PREFETCHER_HH
#define MARLIN_MEMSIM_PREFETCHER_HH

#include <cstdint>
#include <vector>

namespace marlin::memsim
{

/** Stream prefetcher knobs. */
struct PrefetcherConfig
{
    /** Concurrent streams tracked. */
    std::uint32_t streams = 8;
    /** Lines fetched ahead once a stream is confirmed. */
    std::uint32_t degree = 4;
    /** Consecutive-line hits needed to confirm a stream. */
    std::uint32_t trainThreshold = 2;
    bool enabled = true;
};

/** Prefetcher activity counters. */
struct PrefetcherStats
{
    std::uint64_t trained = 0;
    std::uint64_t issued = 0;
};

/**
 * Reference-style stream prefetcher: observes demand line
 * addresses, trains on ascending or descending unit-stride runs,
 * and emits prefetch candidates once trained.
 */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(PrefetcherConfig config = {});

    const PrefetcherConfig &config() const { return _config; }
    const PrefetcherStats &stats() const { return _stats; }

    /**
     * Observe a demand access to line number @p line.
     * @param out Receives line numbers to prefetch (may be empty).
     */
    void observe(std::uint64_t line, std::vector<std::uint64_t> &out);

    void reset();

  private:
    struct Stream
    {
        std::uint64_t lastLine = 0;
        std::int32_t direction = 0; ///< +1 / -1, 0 = untrained.
        std::uint32_t confidence = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    PrefetcherConfig _config;
    PrefetcherStats _stats;
    std::vector<Stream> streams;
    std::uint64_t useClock = 0;
};

} // namespace marlin::memsim

#endif // MARLIN_MEMSIM_PREFETCHER_HH
