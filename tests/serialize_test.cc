/**
 * @file
 * Tests for binary serialization and trainer checkpointing: value
 * round trips, header validation, resume-equivalence, and failure
 * injection (truncated / mismatched checkpoints must die cleanly).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "marlin/base/serialize.hh"
#include "marlin/core/checkpoint.hh"
#include "marlin/core/matd3.hh"
#include "marlin/nn/loss.hh"
#include "marlin/nn/serialize.hh"
#include "marlin/numeric/ops.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin
{
namespace
{

TEST(Serialize, PodRoundTrip)
{
    std::stringstream ss;
    writePod<std::uint32_t>(ss, 0xdeadbeef);
    writePod<double>(ss, 3.25);
    EXPECT_EQ(readPod<std::uint32_t>(ss), 0xdeadbeefu);
    EXPECT_EQ(readPod<double>(ss), 3.25);
}

TEST(Serialize, VectorRoundTrip)
{
    std::stringstream ss;
    std::vector<float> v = {1.5f, -2.0f, 0.0f};
    writeVector(ss, v);
    EXPECT_EQ(readVector<float>(ss), v);
}

TEST(Serialize, EmptyVectorRoundTrip)
{
    std::stringstream ss;
    writeVector(ss, std::vector<int>{});
    EXPECT_TRUE(readVector<int>(ss).empty());
}

TEST(Serialize, StringRoundTrip)
{
    std::stringstream ss;
    writeString(ss, "hello marl");
    writeString(ss, "");
    EXPECT_EQ(readString(ss), "hello marl");
    EXPECT_EQ(readString(ss), "");
}

TEST(Serialize, HeaderRoundTrip)
{
    std::stringstream ss;
    writeHeader(ss, 0x4d41524c, 3);
    EXPECT_EQ(readHeader(ss, 0x4d41524c, 5), 3u);
}

TEST(SerializeDeath, BadMagicDies)
{
    std::stringstream ss;
    writeHeader(ss, 0x11111111, 1);
    EXPECT_EXIT(readHeader(ss, 0x22222222, 1),
                ::testing::ExitedWithCode(1), "bad checkpoint magic");
}

TEST(SerializeDeath, FutureVersionDies)
{
    std::stringstream ss;
    writeHeader(ss, 0x4d41524c, 9);
    EXPECT_EXIT(readHeader(ss, 0x4d41524c, 1),
                ::testing::ExitedWithCode(1), "newer than supported");
}

TEST(SerializeDeath, TruncatedPodDies)
{
    std::stringstream ss;
    ss.write("xy", 2); // Not enough for a uint64.
    EXPECT_EXIT(readPod<std::uint64_t>(ss),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(NnSerialize, MatrixRoundTrip)
{
    Rng rng(1);
    numeric::Matrix m(4, 7);
    numeric::fillUniform(m, rng, -2, 2);
    std::stringstream ss;
    nn::saveMatrix(ss, m);
    EXPECT_EQ(nn::loadMatrix(ss), m);
}

TEST(NnSerialize, MlpRoundTripPreservesOutputs)
{
    Rng rng(2);
    nn::MlpConfig cfg;
    cfg.inputDim = 5;
    cfg.hiddenDims = {8, 8};
    cfg.outputDim = 3;
    nn::Mlp a(cfg, rng);
    nn::Mlp b(cfg, rng); // Different init.

    std::stringstream ss;
    nn::saveMlp(ss, a);
    nn::loadMlp(ss, b);

    numeric::Matrix x(4, 5);
    numeric::fillUniform(x, rng, -1, 1);
    EXPECT_EQ(a.forward(x), b.forward(x));
}

TEST(NnSerializeDeath, ShapeMismatchDies)
{
    Rng rng(3);
    nn::MlpConfig small_cfg;
    small_cfg.inputDim = 4;
    small_cfg.hiddenDims = {4};
    small_cfg.outputDim = 2;
    nn::Mlp small(small_cfg, rng);

    nn::MlpConfig big_cfg = small_cfg;
    big_cfg.inputDim = 6;
    nn::Mlp big(big_cfg, rng);

    std::stringstream ss;
    nn::saveMlp(ss, small);
    EXPECT_EXIT(nn::loadMlp(ss, big), ::testing::ExitedWithCode(1),
                "does not match");
}

TEST(NnSerialize, AdamRoundTripResumesIdentically)
{
    // Two identical nets + optimizers; train one for 5 steps, save,
    // restore into the second, then both must evolve identically.
    Rng rng(4);
    nn::MlpConfig cfg;
    cfg.inputDim = 3;
    cfg.hiddenDims = {6};
    cfg.outputDim = 1;
    nn::Mlp net_a(cfg, rng);
    nn::Mlp net_b(cfg, rng);
    nn::AdamOptimizer opt_a(net_a.params());
    nn::AdamOptimizer opt_b(net_b.params());

    numeric::Matrix x(8, 3), y(8, 1);
    numeric::fillUniform(x, rng, -1, 1);
    numeric::fillUniform(y, rng, -1, 1);
    auto step = [&](nn::Mlp &net, nn::AdamOptimizer &opt) {
        numeric::Matrix pred = net.forward(x);
        numeric::Matrix g;
        nn::mseLoss(pred, y, g);
        net.backward(g);
        opt.step();
    };
    for (int i = 0; i < 5; ++i)
        step(net_a, opt_a);

    std::stringstream ss;
    nn::saveMlp(ss, net_a);
    nn::saveAdam(ss, opt_a);
    nn::loadMlp(ss, net_b);
    nn::loadAdam(ss, opt_b);
    EXPECT_EQ(opt_b.stepCount(), 5u);

    for (int i = 0; i < 3; ++i) {
        step(net_a, opt_a);
        step(net_b, opt_b);
    }
    EXPECT_EQ(net_a.forward(x), net_b.forward(x));
}

core::TrainConfig
tinyConfig()
{
    core::TrainConfig c;
    c.batchSize = 16;
    c.bufferCapacity = 256;
    c.hiddenDims = {8, 8};
    c.seed = 9;
    return c;
}

core::SamplerFactory
uniformFactory()
{
    return [] { return std::make_unique<replay::UniformSampler>(); };
}

TEST(Checkpoint, MaddpgRoundTripPreservesPolicies)
{
    core::MaddpgTrainer a({6, 7}, 5, tinyConfig(), uniformFactory());
    core::TrainConfig other = tinyConfig();
    other.seed = 99; // Different init.
    core::MaddpgTrainer b({6, 7}, 5, other, uniformFactory());

    std::stringstream ss;
    core::saveTrainer(ss, a);
    core::loadTrainer(ss, b);

    std::vector<std::vector<Real>> obs = {
        std::vector<Real>(6, Real(0.2)),
        std::vector<Real>(7, Real(-0.3))};
    EXPECT_EQ(a.greedyActions(obs), b.greedyActions(obs));
    // Deep check: actor outputs identical, not just argmax.
    numeric::Matrix x(1, 6, std::vector<Real>(6, Real(0.2)));
    EXPECT_EQ(a.networks(0).actor.forward(x),
              b.networks(0).actor.forward(x));
}

TEST(Checkpoint, Matd3RoundTripIncludesTwinCritics)
{
    core::Matd3Trainer a({5}, 5, tinyConfig(), uniformFactory());
    core::TrainConfig other = tinyConfig();
    other.seed = 31;
    core::Matd3Trainer b({5}, 5, other, uniformFactory());

    std::stringstream ss;
    core::saveTrainer(ss, a);
    core::loadTrainer(ss, b);

    numeric::Matrix joint(2, 10); // obs 5 + one-hot action 5.
    Rng rng(5);
    numeric::fillUniform(joint, rng, -1, 1);
    EXPECT_EQ(a.networks(0).critic2->forward(joint),
              b.networks(0).critic2->forward(joint));
}

TEST(CheckpointDeath, AlgorithmMismatchDies)
{
    core::MaddpgTrainer maddpg({5}, 5, tinyConfig(),
                               uniformFactory());
    core::Matd3Trainer matd3({5}, 5, tinyConfig(), uniformFactory());
    std::stringstream ss;
    core::saveTrainer(ss, maddpg);
    EXPECT_EXIT(core::loadTrainer(ss, matd3),
                ::testing::ExitedWithCode(1), "written by 'maddpg'");
}

TEST(CheckpointDeath, AgentCountMismatchDies)
{
    core::MaddpgTrainer two({5, 5}, 5, tinyConfig(),
                            uniformFactory());
    core::MaddpgTrainer three({5, 5, 5}, 5, tinyConfig(),
                              uniformFactory());
    std::stringstream ss;
    core::saveTrainer(ss, two);
    EXPECT_EXIT(core::loadTrainer(ss, three),
                ::testing::ExitedWithCode(1), "agents");
}

TEST(CheckpointDeath, MissingFileDies)
{
    core::MaddpgTrainer t({5}, 5, tinyConfig(), uniformFactory());
    EXPECT_EXIT(core::loadTrainerFile("/nonexistent/x.ckpt", t),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace marlin
